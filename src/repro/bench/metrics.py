"""Run measurement: wall time + peak traced memory (Table 3 columns)."""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar

from repro.utils.timers import PeakMemory, Timer

T = TypeVar("T")


def measure_run(
    fn: Callable[[], T], recorder=None
) -> Tuple[T, float, int]:
    """Execute ``fn`` and return ``(result, wall_seconds, peak_bytes)``.

    Peak memory is tracked with ``tracemalloc`` (Python allocations,
    which dominate here: NumPy buffers including retained autodiff
    tapes).  Note that tracing slows execution somewhat; wall times are
    therefore measured on the *same* footing for every method, preserving
    the comparison the paper's Table 3 makes.

    When a live ``recorder`` is given, the measurements are also merged
    into the trace metadata (``bench_wall_time_s``/``bench_peak_bytes``)
    so a trace artifact is self-describing without the table next to it.

    Child-worker memory: runs that fan out (``--jobs``) do their heavy
    allocation in worker processes ``tracemalloc`` cannot see, so the
    manager also watches the children's OS-level peak RSS and the
    reported peak is ``max(parent traced, child RSS)`` — ledger memory
    numbers stay truthful for parallel runs.
    """
    with PeakMemory(track_children=True) as mem:
        with Timer() as timer:
            result = fn()
    if recorder:
        recorder.set_meta(
            bench_wall_time_s=timer.elapsed,
            bench_peak_bytes=mem.total_peak_bytes,
            bench_child_peak_bytes=mem.child_peak_bytes,
        )
    return result, timer.elapsed, mem.total_peak_bytes

"""Run measurement: wall time + peak traced memory (Table 3 columns)."""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

from repro.utils.timers import PeakMemory, Timer

T = TypeVar("T")


def measure_run(fn: Callable[[], T]) -> Tuple[T, float, int]:
    """Execute ``fn`` and return ``(result, wall_seconds, peak_bytes)``.

    Peak memory is tracked with ``tracemalloc`` (Python allocations,
    which dominate here: NumPy buffers including retained autodiff
    tapes).  Note that tracing slows execution somewhat; wall times are
    therefore measured on the *same* footing for every method, preserving
    the comparison the paper's Table 3 makes.
    """
    with PeakMemory() as mem:
        with Timer() as timer:
            result = fn()
    return result, timer.elapsed, mem.peak_bytes

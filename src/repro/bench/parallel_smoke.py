"""CI smoke gate: parallel execution must be bitwise-faithful (and fast).

Runs the Laplace PINN two-step ω line search twice — serial and fanned
across ``--jobs`` worker processes — and fails unless both runs select
the same ω*, report bit-identical costs, and emit identical convergence
traces (modulo timing fields, via the standard
:class:`~repro.obs.compare.TolerancePolicy`).  Wall times and the
measured speedup are written to a JSON artifact, together with the merged
worker observability set (one Chrome trace with per-worker tracks, one
summed metrics snapshot).

The speedup *gate* adapts to the machine: parallel speedup is physically
impossible on a single hardware thread, so the threshold defaults to
2.0× only when at least four CPUs are available, 1.2× on two to three,
and correctness-only below that.  The measured number is always recorded
in the artifact — honestly, including slowdowns.

Usage::

    python -m repro.bench.parallel_smoke [--jobs 4] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.cloud.square import SquareCloud
from repro.control.pinn import LaplacePINN, PINNTrainConfig, omega_line_search
from repro.obs.compare import TolerancePolicy, diff_traces, format_diff
from repro.obs.metrics import use_registry
from repro.obs.profile import SpanProfiler, profiling
from repro.obs.recorder import TraceRecorder
from repro.pde.laplace import LaplaceControlProblem

#: Four candidates spanning the paper's decisive decades (ω* = 1e-1).
DEFAULT_OMEGAS = (1e-2, 1e-1, 1.0, 1e1)


def _default_min_speedup() -> float:
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return 0.0  # single hardware thread: gate correctness only


def _flat(params) -> np.ndarray:
    out = []
    for layer in params:
        out.append(layer["W"].ravel())
        out.append(layer["b"].ravel())
    return np.concatenate(out)


def _run_once(problem, cfg, omegas, hidden, jobs, profiler=None):
    """One full line search; returns (result, recorder, wall seconds)."""
    pinn = LaplacePINN(problem, state_hidden=hidden, control_hidden=(8,),
                       config=cfg)
    recorder = TraceRecorder(mode="serial" if jobs <= 1 else f"jobs={jobs}")
    t0 = time.perf_counter()
    if profiler is not None:
        with use_registry(), profiling(profiler):
            ls = omega_line_search(pinn, omegas, recorder=recorder, jobs=jobs)
    else:
        ls = omega_line_search(pinn, omegas, recorder=recorder, jobs=jobs)
    return ls, recorder, time.perf_counter() - t0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker processes for the parallel run")
    ap.add_argument("--nx", type=int, default=12, help="cloud resolution")
    ap.add_argument("--epochs", type=int, default=120,
                    help="step-1/2 training epochs per candidate")
    ap.add_argument("--omegas", type=float, nargs="+",
                    default=list(DEFAULT_OMEGAS),
                    help="candidate omegas (>= 4 for the acceptance run)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail below this parallel speedup "
                         "(default: 2.0 with >=4 CPUs, 1.2 with 2-3, "
                         "0 on a single CPU)")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write speedup JSON + merged obs artifacts here")
    args = ap.parse_args(argv)
    if args.jobs < 2:
        ap.error("--jobs must be >= 2 (the point is to exercise the pool)")
    min_speedup = (
        _default_min_speedup() if args.min_speedup is None else args.min_speedup
    )

    problem = LaplaceControlProblem(SquareCloud(args.nx))
    cfg = PINNTrainConfig(epochs=args.epochs, lr=2e-3, n_interior=80,
                          n_boundary=12, seed=0)
    hidden = (12, 12)

    ls_s, rec_s, t_serial = _run_once(
        problem, cfg, args.omegas, hidden, jobs=1
    )
    profiler = SpanProfiler()
    ls_p, rec_p, t_parallel = _run_once(
        problem, cfg, args.omegas, hidden, jobs=args.jobs, profiler=profiler
    )

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cpus = os.cpu_count() or 1
    print(
        f"laplace-pinn line search, {len(args.omegas)} omegas x "
        f"{args.epochs} epochs (nx={args.nx}, {cpus} CPUs):\n"
        f"  serial        {t_serial:8.2f} s\n"
        f"  --jobs {args.jobs}      {t_parallel:8.2f} s   "
        f"speedup {speedup:.2f}x\n"
        f"  omega*: serial {ls_s.best_omega:g}  parallel {ls_p.best_omega:g}\n"
        f"  J:      serial {ls_s.best_cost!r}  parallel {ls_p.best_cost!r}"
    )

    failures = []
    if ls_p.best_omega != ls_s.best_omega:
        failures.append("parallel selected a different omega*")
    if ls_p.best_cost != ls_s.best_cost:
        failures.append("parallel best cost is not bit-identical to serial")
    if ls_p.step2_costs != ls_s.step2_costs:
        failures.append("step-2 costs differ between serial and parallel")
    if not np.array_equal(_flat(ls_p.params_u_retrained),
                          _flat(ls_s.params_u_retrained)):
        failures.append("retrained state parameters differ")
    deviations = diff_traces(rec_s, rec_p, TolerancePolicy())
    if deviations:
        failures.append(
            f"convergence traces deviate:\n{format_diff(deviations[:10])}"
        )
    if ls_p.failures or ls_s.failures:
        failures.append("a line-search candidate failed during the smoke run")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        artifact = {
            "kind": "repro.parallel.smoke",
            "problem": "laplace-pinn-line-search",
            "omegas": [float(o) for o in args.omegas],
            "epochs": args.epochs,
            "nx": args.nx,
            "jobs": args.jobs,
            "cpu_count": cpus,
            "serial_seconds": t_serial,
            "parallel_seconds": t_parallel,
            "speedup": speedup,
            "min_speedup_gate": min_speedup,
            "best_omega": float(ls_s.best_omega),
            "best_cost": float(ls_s.best_cost),
            "bitwise_identical": not failures,
        }
        path = os.path.join(args.out_dir, "parallel_speedup.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=1)
        print(f"  artifact -> {path}")
        trace_path = os.path.join(args.out_dir, "parallel_smoke.trace.json")
        profiler.save_chrome_trace(trace_path, meta={"jobs": args.jobs})
        rec_p.to_jsonl(os.path.join(args.out_dir, "parallel_smoke.jsonl"))
        print(f"  merged trace -> {trace_path}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    if speedup < min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below the {min_speedup:.1f}x gate "
            f"({cpus} CPUs)",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke gate: the matrix-free Krylov backend must be trustworthy.

Four checks, in order of increasing cost:

1. **Adjoint-gradcheck fast tier** — the Krylov primitive suite
   (``tests/autodiff/test_krylov.py``) runs in a pytest subprocess; a
   VJP regression fails the gate before any timing run starts.
2. **DP/DAL parity at N ≈ 2k** — on a 45×45 local-backend Laplace
   problem, the iterative DP *and* DAL gradients must match the direct
   (``splu``) backend's to tight relative tolerance.  This is the
   implicit-adjoint contract: the gradient must not depend on how the
   solves were performed.
3. **Iteration ceiling** — the ILU-preconditioned solve must converge
   within ``--max-iterations`` (default 60) at N ≈ 2k.  A silently
   degrading preconditioner shows up as iteration creep long before it
   shows up as wrong answers or timeouts.
4. **Scaling sweep artifact** — the smoke-tier
   :mod:`repro.bench.scaling_cloud` sweep runs (with its own per-size
   gradchecks) and writes ``scaling_cloud.json`` for upload.

Usage::

    python -m repro.bench.krylov_smoke [--out-dir DIR] [--skip-gradcheck]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

import numpy as np

GRADCHECK_SUITE = os.path.join("tests", "autodiff", "test_krylov.py")

#: Parity tolerance for iterative-vs-direct gradients (relative to the
#: direct gradient's max magnitude).  The Krylov tolerance is 1e-10; the
#: observed parity is ~1e-10 at N = 2k, so 1e-6 has four decades of
#: headroom while still catching any real adjoint defect.
PARITY_RTOL = 1e-6


def _run_gradcheck_suite() -> "tuple[bool, str]":
    if not os.path.exists(GRADCHECK_SUITE):
        return True, f"skipped ({GRADCHECK_SUITE} not found in cwd)"
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", GRADCHECK_SUITE, "-q", "-x",
         "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
    )
    tail = "\n".join(proc.stdout.strip().splitlines()[-3:])
    return proc.returncode == 0, tail


def _check_parity(nx: int, max_iterations: int) -> "tuple[list[str], dict]":
    """DP + DAL gradient parity and iteration ceiling at one size."""
    from repro.cloud.square import SquareCloud
    from repro.control.dal import LaplaceDAL
    from repro.control.dp import LaplaceDP
    from repro.pde.laplace import LaplaceControlProblem

    failures = []
    cloud = SquareCloud(nx)
    p_direct = LaplaceControlProblem(cloud, backend="local")
    p_iter = LaplaceControlProblem(
        cloud, backend="local", solver="iterative"
    )
    c = p_direct.optimal_control() * 0.5

    report = {"n": int(cloud.n)}
    for name, direct, iterative in (
        ("DP", LaplaceDP(p_direct), LaplaceDP(p_iter)),
        ("DAL", LaplaceDAL(p_direct), LaplaceDAL(p_iter)),
    ):
        vd, gd = direct.value_and_grad(c)
        vi, gi = iterative.value_and_grad(c)
        scale = max(float(np.max(np.abs(gd))), 1e-300)
        rel = float(np.max(np.abs(gi - gd)) / scale)
        report[name] = {
            "grad_max_rel_diff": rel,
            "cost_abs_diff": float(abs(vi - vd)),
        }
        if rel > PARITY_RTOL:
            failures.append(
                f"{name} iterative gradient differs from direct by "
                f"rel {rel:.3e} at N={cloud.n} (gate {PARITY_RTOL:g})"
            )
        ks = iterative.solver
        iters = int(ks.last_iterations or 0)
        report[name]["iterations_last"] = iters
        if iters > max_iterations:
            failures.append(
                f"{name} Krylov took {iters} iterations at N={cloud.n} "
                f"(ceiling {max_iterations})"
            )
        if ks.n_fallbacks:
            failures.append(
                f"{name} Krylov fell back to direct factorisation "
                f"{ks.n_fallbacks} time(s) at N={cloud.n}"
            )
    return failures, report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=45,
                    help="parity-check cloud resolution (N = nx², ≈ 2k)")
    ap.add_argument("--max-iterations", type=int, default=60,
                    help="Krylov iteration ceiling at the parity size")
    ap.add_argument("--sweep-sizes", type=int, nargs="+", default=None,
                    help="scaling-sweep node counts (default: smoke tier)")
    ap.add_argument("--jobs", type=int, default=None,
                    help="concurrent sweep rows")
    ap.add_argument("--skip-gradcheck", action="store_true",
                    help="skip the pytest adjoint-gradcheck tier")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write krylov_smoke.json + scaling_cloud.json here")
    args = ap.parse_args(argv)

    failures = []

    if args.skip_gradcheck:
        gradcheck = "skipped (--skip-gradcheck)"
    else:
        ok, gradcheck = _run_gradcheck_suite()
        print(f"adjoint-gradcheck tier: {gradcheck}")
        if not ok:
            failures.append("Krylov adjoint-gradcheck suite failed")

    parity_failures, parity = _check_parity(args.nx, args.max_iterations)
    failures += parity_failures
    print(
        f"parity at N={parity['n']}: "
        f"DP rel {parity['DP']['grad_max_rel_diff']:.2e} "
        f"({parity['DP']['iterations_last']} iters), "
        f"DAL rel {parity['DAL']['grad_max_rel_diff']:.2e} "
        f"({parity['DAL']['iterations_last']} iters)"
    )

    from repro.bench import scaling_cloud

    sweep_rc = scaling_cloud.main(
        (["--sizes"] + [str(s) for s in args.sweep_sizes]
         if args.sweep_sizes else [])
        + (["--jobs", str(args.jobs)] if args.jobs else [])
        + (["--out-dir", args.out_dir] if args.out_dir else [])
    )
    if sweep_rc != 0:
        failures.append("scaling_cloud sweep failed (see its FAIL lines)")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        artifact = {
            "kind": "repro.krylov.smoke",
            "gradcheck": gradcheck,
            "parity": parity,
            "max_iterations": args.max_iterations,
            "parity_rtol": PARITY_RTOL,
            "failures": failures,
        }
        path = os.path.join(args.out_dir, "krylov_smoke.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=1)
        print(f"artifact -> {path}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Plain-text table renderers matching the paper's layout."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.control.problem import ControlResult


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_hyperparameter_table(
    title: str, rows: Dict[str, Dict[str, str]]
) -> str:
    """Render a Table-1/2-style hyperparameter summary.

    ``rows`` maps hyperparameter name → {"DAL": ..., "PINN": ..., "DP": ...};
    missing entries render as the paper's "-" (not applicable).
    """
    headers = ["Hyperparameter", "DAL", "PINN", "DP"]
    body = [
        [name, vals.get("DAL", "-"), vals.get("PINN", "-"), vals.get("DP", "-")]
        for name, vals in rows.items()
    ]
    return render_table(headers, body, title=title)


def render_performance_table(results: List[ControlResult], title: str = "") -> str:
    """Render a Table-3-style performance summary from control results."""
    headers = ["Problem", "Metric", "DAL", "PINN", "DP"]
    by_key = {(r.problem, r.method): r for r in results}
    problems = []
    for r in results:
        if r.problem not in problems:
            problems.append(r.problem)
    rows = []
    for prob in problems:
        def get(method: str):
            return by_key.get((prob, method))

        def fmt(method: str, f):
            r = get(method)
            return f(r) if r is not None else "-"

        rows.append(
            [prob, "Time (s)"]
            + [fmt(m, lambda r: f"{r.wall_time_s:.2f}") for m in ("DAL", "PINN", "DP")]
        )
        rows.append(
            [prob, "Peak mem. (MiB)"]
            + [
                fmt(m, lambda r: f"{r.peak_mem_bytes / 2**20:.1f}")
                for m in ("DAL", "PINN", "DP")
            ]
        )
        rows.append(
            [prob, "Epochs / Iters."]
            + [fmt(m, lambda r: str(r.iterations)) for m in ("DAL", "PINN", "DP")]
        )
        rows.append(
            [prob, "Final cost J"]
            + [
                fmt(m, lambda r: f"{r.final_cost:.2e}")
                for m in ("DAL", "PINN", "DP")
            ]
        )
    return render_table(headers, rows, title=title)

"""CI smoke gate: the performance ledger's append/diff contract, end-to-end.

Drives ``python -m repro.bench`` three times back-to-back (Laplace DP
only, the fastest matrix entry) against a scratch ledger directory and
checks the whole chain the ledger promises:

1. each invocation appends exactly one schema-valid entry to
   ``<dir>/<suite>.jsonl`` and refreshes the ``BENCH_<suite>.json``
   snapshot;
2. an *honest* re-run on the same machine scores **neutral** — no
   metric may cross the regression threshold from run-to-run noise
   alone (with fewer honest runs than ``DiffPolicy.min_window`` the
   comparator itself forces neutral, which the gate also exercises);
3. an *injected* 2× wall-time slowdown (a synthetic entry cloned from
   the last honest run with every timing metric doubled, scored
   against the full ``min_window``-deep honest history) is flagged
   **regressed** by the comparator.

Point 2 and 3 together pin the comparator's noise model: floors wide
enough for CI wobble, tight enough that a genuine 2× slowdown can
never hide.  Exits nonzero on any violation.

Usage::

    python -m repro.bench.ledger_smoke [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import tempfile

from repro.bench.__main__ import main as bench_main
from repro.obs.ledger import (
    ENTRY_KIND,
    SNAPSHOT_KIND,
    PerformanceLedger,
    compare_entries,
    format_verdicts,
    validate_entry,
)

SUITE = "smoke"


def _bench(ledger_dir: str, snapshot: str) -> int:
    return bench_main([
        "--methods", "dp", "--problem", "laplace",
        "--ledger-dir", ledger_dir, "--suite", SUITE,
        "--ledger-snapshot", snapshot,
    ])


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def _inject_slowdown(entry: dict, factor: float) -> dict:
    """Clone ``entry`` with every timing metric multiplied by ``factor``."""
    slow = copy.deepcopy(entry)
    for metrics in slow["runs"].values():
        if "wall_time_s" in metrics:
            metrics["wall_time_s"] *= factor
        for phase in (metrics.get("phase_seconds") or {}):
            metrics["phase_seconds"][phase] *= factor
    if "wall_time_s" in slow:
        slow["wall_time_s"] *= factor
    return validate_entry(slow)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="keep the ledger + snapshot here "
                         "(default: a scratch temp dir)")
    ap.add_argument("--factor", type=float, default=2.0,
                    help="injected slowdown factor (default 2.0)")
    args = ap.parse_args(argv)

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        out_dir = args.out_dir
        ctx = None
    else:
        ctx = tempfile.TemporaryDirectory(prefix="repro-ledger-smoke-")
        out_dir = ctx.name
    try:
        ledger_dir = os.path.join(out_dir, "ledger")
        snapshot = os.path.join(out_dir, f"BENCH_{SUITE}.json")
        store = PerformanceLedger(ledger_dir, SUITE)

        # --- 1. three honest invocations -> three schema-valid entries
        # (three, so the injected-slowdown check below clears the
        # comparator's min_window and can issue a real verdict)
        n_honest = 3
        for i in range(1, n_honest + 1):
            print(f"--- ledger_smoke: bench invocation {i}/{n_honest} ---")
            rc = _bench(ledger_dir, snapshot)
            if rc != 0:
                return _fail(f"bench invocation {i} exited {rc}")
            entries = store.entries()  # entries() re-validates every line
            if len(entries) != i:
                return _fail(
                    f"after invocation {i}: {len(entries)} ledger entries "
                    f"in {store.path}, expected {i}"
                )
        latest = entries[-1]
        for e in entries:
            if e["kind"] != ENTRY_KIND or e["suite"] != SUITE:
                return _fail(f"unexpected entry header: {e['kind']}/{e['suite']}")
        if "laplace_dp" not in latest["runs"]:
            return _fail(f"run 'laplace_dp' missing from entry: "
                         f"{sorted(latest['runs'])}")

        if not os.path.exists(snapshot):
            return _fail(f"snapshot {snapshot} was not written")
        with open(snapshot, "r", encoding="utf-8") as f:
            snap = json.load(f)
        if snap.get("kind") != SNAPSHOT_KIND or snap.get("n_entries") != n_honest:
            return _fail(
                f"snapshot malformed: kind={snap.get('kind')!r} "
                f"n_entries={snap.get('n_entries')!r}"
            )

        # --- 2. honest re-run must be neutral -------------------------
        # Against a single prior run this is neutral *by construction*
        # (min_window forces insufficient_history); against the full
        # honest history it must stay neutral on the noise model alone.
        for label, hist in (
            ("first run (short history)", entries[:1]),
            ("honest history", entries[:-1]),
        ):
            verdicts = compare_entries(latest, hist)
            print(f"\nhonest re-run vs {label}:")
            print(format_verdicts(verdicts))
            regressed = [v.metric for v in verdicts if v.verdict == "regressed"]
            if regressed:
                return _fail(
                    f"honest re-run flagged as regressed vs {label}: "
                    f"{regressed} (the noise floors are too tight)"
                )
        short = compare_entries(latest, entries[:1])
        if not all(v.note == "insufficient_history" for v in short):
            return _fail(
                "short-history comparison did not carry the "
                "insufficient_history note"
            )

        # --- 3. injected slowdown must regress ------------------------
        slow = _inject_slowdown(latest, args.factor)
        verdicts = compare_entries(slow, entries)
        print(f"\ninjected {args.factor:g}x slowdown vs honest history:")
        print(format_verdicts(verdicts))
        slow_regressed = {v.metric for v in verdicts if v.verdict == "regressed"}
        if "laplace_dp/wall_time_s" not in slow_regressed:
            return _fail(
                f"injected {args.factor:g}x wall-time slowdown was NOT "
                f"flagged (regressed: {sorted(slow_regressed)})"
            )

        print("\nOK")
        return 0
    finally:
        if ctx is not None:
            ctx.cleanup()


if __name__ == "__main__":
    sys.exit(main())

"""Load generator for the control service: ``python -m repro.bench serve``.

Boots a :class:`~repro.serve.runner.ServiceThread` (warm worker pool +
result store + coalescer), drives ``--clients`` concurrent blocking
clients through a scripted request mix, and checks the serving layer's
acceptance contract end-to-end:

1. **parity** — every served ``final_cost``/``cost`` must match a direct
   in-process run of the same ``control.*`` oracles (same
   :func:`repro.serve.worker.execute_job` path, no HTTP, no pool);
2. **zero dropped requests** — every client round-trip must come back
   ``200`` (the queue limit is sized so honest load never hits 429);
3. **store idempotency** — re-submitting a byte-identical request after
   the first completion is served from the disk store (``X-Repro-Store:
   hit``);
4. **cross-request warm caches** — the workers' compiled-replay and
   LU-factorisation counters must show hits, proving requests shared
   compiled programs and factorisations instead of rebuilding them;
5. **coalescing** — concurrent compatible evaluations must ride at
   least one multi-RHS batch (``serve.coalesce.requests`` strictly
   greater than ``serve.coalesce.batches``).

The scripted mix has three phases, with all clients synchronised on a
barrier between phases:

- *solve storm*: each client posts its group's solve request (two DP
  iteration variants sharing one compiled program, plus a DAL variant
  sharing the same factorisation);
- *evaluate burst*: each client posts ``--rounds`` distinct evaluation
  requests back-to-back — concurrent bursts coalesce into multi-RHS
  solves;
- *replay*: each client re-posts its phase-1 solve byte-identically —
  these must be store hits.

With ``--ledger-dir`` (or ``$REPRO_LEDGER_DIR``) the run appends a
``serve``-suite entry — throughput (requests/s), p50/p95/p99 latency,
store and cache hit rates, coalesce width — to the performance ledger
and refreshes ``BENCH_serve.json``, so serving-layer regressions are
caught by the same comparator as the solver benchmarks.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["main", "run_load"]

#: Phase-1/3 solve mix.  Variants 0 and 1 share the compiled-DP-program
#: cache key (same family/method/shape/target, different iteration
#: budget → different digest); variant 2 shares the factorisation.
SOLVE_VARIANTS: Tuple[Dict[str, Any], ...] = (
    {"family": "laplace", "kind": "solve", "method": "dp",
     "iterations": 6, "lr": 1e-2},
    {"family": "laplace", "kind": "solve", "method": "dp",
     "iterations": 10, "lr": 1e-2},
    {"family": "laplace", "kind": "solve", "method": "dal",
     "iterations": 6, "lr": 1e-2},
)

#: Parity tolerance: service and reference run the same deterministic
#: code path on the same machine, so agreement is essentially bitwise;
#: the epsilon only absorbs float repr round-trips through JSON.
PARITY_RTOL = 1e-9


def _evaluate_request(client: int, rnd: int, n_control: int) -> Dict[str, Any]:
    """A deterministic, per-(client, round) distinct evaluation request."""
    control = [
        0.05 * (((client + 1) * (j + 3)) % 7 - 3) + 0.01 * rnd
        for j in range(n_control)
    ]
    return {"family": "laplace", "kind": "evaluate", "control": control}


def _canonical(request: Dict[str, Any]) -> str:
    return json.dumps(request, sort_keys=True)


def _client_script(cid: int, addr: Tuple[str, int], timeout: float,
                   rounds: int, n_control: int, barrier: threading.Barrier,
                   record, errors: List[str]) -> None:
    """One client thread: solve storm -> evaluate burst -> replay."""
    from repro.serve.client import ServeClient

    client = ServeClient(addr[0], addr[1], timeout=timeout)
    solve = SOLVE_VARIANTS[cid % len(SOLVE_VARIANTS)]

    def post(phase: str, request: Dict[str, Any]) -> None:
        try:
            doc = client.control(**request)
            record(phase, request, doc)
        except Exception as exc:  # noqa: BLE001 — tallied, gate fails on any
            errors.append(f"client {cid} {phase}: {type(exc).__name__}: {exc}")

    barrier.wait()
    post("solve", solve)
    barrier.wait()
    for rnd in range(rounds):
        post("evaluate", _evaluate_request(cid, rnd, n_control))
    barrier.wait()
    post("replay", solve)


def run_load(
    clients: int = 8,
    rounds: int = 3,
    workers: int = 2,
    timeout: float = 120.0,
    store_dir: Optional[str] = None,
    root_seed: int = 0,
) -> Dict[str, Any]:
    """Drive the scripted load; returns the full report (see module doc).

    The report's ``"failures"`` list is empty iff every acceptance gate
    passed; ``main`` turns a non-empty list into a nonzero exit.
    """
    from repro.serve.runner import ServiceThread
    from repro.serve.service import ServeConfig
    from repro.serve.worker import WorkerState
    from repro.serve.client import ServeClient

    if clients < 1:
        raise ValueError("need at least one client")

    # The parity reference shares nothing with the service but code.
    reference = WorkerState(root_seed)
    n_control = reference.problem("laplace", 26, 11).n_control

    config = ServeConfig(
        workers=workers,
        queue_limit=max(64, 4 * clients),
        request_timeout_s=timeout,
        coalesce_window_s=0.05,
        store_dir=store_dir,
        root_seed=root_seed,
    )

    ctx = None
    if config.store_dir is None:
        ctx = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        config = dataclasses.replace(config, store_dir=ctx.name)

    lock = threading.Lock()
    responses: Dict[str, Dict[str, Any]] = {}
    store_status: List[Tuple[str, str]] = []
    errors: List[str] = []
    n_ok = 0

    def record(phase: str, request: Dict[str, Any], doc: Dict[str, Any]) -> None:
        nonlocal n_ok
        with lock:
            n_ok += 1
            responses[_canonical(request)] = doc
            store_status.append((phase, doc.get("store", "")))

    try:
        with ServiceThread(config) as svc:
            addr = (svc.host, svc.port)
            barrier = threading.Barrier(clients)
            threads = [
                threading.Thread(
                    target=_client_script, name=f"serve-client-{i}",
                    args=(i, addr, timeout, rounds, n_control, barrier,
                          record, errors),
                )
                for i in range(clients)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            metrics_doc = ServeClient(*addr, timeout=timeout).metrics()
    finally:
        if ctx is not None:
            ctx.cleanup()

    report = _assemble_report(
        clients, rounds, wall, n_ok, errors, store_status, metrics_doc,
    )
    report["parity"] = _check_parity(reference, responses, report["failures"])
    return report


def _metric_value(metrics: Dict[str, Any], name: str) -> float:
    spec = metrics.get(name) or {}
    return float(spec.get("value", 0.0))


def _assemble_report(clients, rounds, wall, n_ok, errors, store_status,
                     metrics_doc) -> Dict[str, Any]:
    metrics = metrics_doc.get("metrics", {})
    latency = metrics_doc.get("latency", {})
    store = metrics_doc.get("store", {})
    expected = clients * (rounds + 2)
    batches = _metric_value(metrics, "serve.coalesce.batches")
    coalesced = _metric_value(metrics, "serve.coalesce.requests")
    cache = {
        name: {
            "hits": _metric_value(metrics, f"cache.{name}.hits"),
            "misses": _metric_value(metrics, f"cache.{name}.misses"),
        }
        for name in ("compiled-replay", "lu-cache")
    }

    failures: List[str] = list(errors)
    if n_ok != expected:
        failures.append(
            f"dropped requests: {n_ok}/{expected} round-trips succeeded"
        )
    replay_hits = [s for phase, s in store_status if phase == "replay"]
    if replay_hits and not all(s == "hit" for s in replay_hits):
        failures.append(
            f"store idempotency: replay phase statuses {replay_hits} "
            "(expected all 'hit')"
        )
    if coalesced <= batches or batches < 1:
        failures.append(
            f"no multi-RHS coalescing observed "
            f"(batches={batches:g}, coalesced requests={coalesced:g})"
        )
    for name, hm in cache.items():
        if hm["hits"] <= 0:
            failures.append(f"no cross-request {name} cache hits")

    return {
        "clients": clients,
        "rounds": rounds,
        "requests_expected": expected,
        "requests_ok": n_ok,
        "wall_time_s": wall,
        "throughput_rps": n_ok / wall if wall > 0 else 0.0,
        "latency": latency,
        "store": store,
        "coalesce": {
            "batches": batches,
            "requests": coalesced,
            "mean_width": coalesced / batches if batches else 0.0,
        },
        "cache": cache,
        "pool": metrics_doc.get("pool", {}),
        "failures": failures,
    }


def _check_parity(reference, responses: Dict[str, Dict[str, Any]],
                  failures: List[str], n_evaluate: int = 4) -> Dict[str, Any]:
    """Re-run a sample of served requests in-process; compare costs."""
    from repro.serve.protocol import parse_request, request_digest
    from repro.serve.worker import execute_job

    checked = 0
    max_rel = 0.0
    sample: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
    seen_eval = 0
    for blob, doc in sorted(responses.items()):
        request = json.loads(blob)
        if request.get("kind") == "evaluate":
            if seen_eval >= n_evaluate:
                continue
            seen_eval += 1
        sample.append((request, doc))

    for request, doc in sample:
        parsed = parse_request(request)
        if parsed.kind == "solve":
            job = {"op": "solve", "request": parsed,
                   "digest": request_digest(parsed)}
            reply = execute_job(reference, job)
            ref = reply["result"]["final_cost"] if reply.get("ok") else None
            got = doc.get("result", {}).get("final_cost")
        else:
            reply = execute_job(reference, {"op": "evaluate",
                                            "requests": [parsed]})
            ref = (reply["results"][0].get("cost")
                   if reply.get("ok") else None)
            got = doc.get("result", {}).get("cost")
        if ref is None or got is None:
            failures.append(f"parity: reference or served cost missing for "
                            f"{request.get('kind')} request")
            continue
        checked += 1
        rel = abs(got - ref) / max(abs(ref), 1e-300)
        max_rel = max(max_rel, rel)
        if not math.isclose(got, ref, rel_tol=PARITY_RTOL, abs_tol=1e-12):
            failures.append(
                f"parity: served {request.get('kind')} cost {got!r} != "
                f"direct {ref!r} (rel err {rel:.3e})"
            )
    return {"checked": checked, "max_rel_err": max_rel}


def _append_ledger(report: Dict[str, Any], ledger_out: str, suite: str,
                   snapshot_path: Optional[str], config: Dict[str, Any]) -> None:
    from repro.obs import ledger as _ledger
    from repro.obs.fingerprint import config_digest, environment_fingerprint

    store = report["store"]
    store_total = store.get("hits", 0) + store.get("misses", 0)
    cache_rates = {}
    for name, hm in report["cache"].items():
        total = hm["hits"] + hm["misses"]
        if total:
            cache_rates[name] = hm["hits"] / total
    metrics: Dict[str, Any] = {
        "wall_time_s": report["wall_time_s"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_s": float(report["latency"].get("p50_s", 0.0)),
        "latency_p95_s": float(report["latency"].get("p95_s", 0.0)),
        "latency_p99_s": float(report["latency"].get("p99_s", 0.0)),
        "requests_ok": float(report["requests_ok"]),
        "coalesce_mean_width": float(report["coalesce"]["mean_width"]),
    }
    if store_total:
        metrics["store_hit_rate"] = store.get("hits", 0) / store_total
    if cache_rates:
        metrics["cache_hit_rate"] = cache_rates

    store_ledger = _ledger.PerformanceLedger(ledger_out, suite)
    history = store_ledger.entries()
    entry = _ledger.build_entry(
        suite=suite,
        runs={"serve": metrics},
        fingerprint=environment_fingerprint(),
        config_digest=config_digest(config),
        scale="serve",
        jobs=int(config.get("workers", 1)),
        wall_time_s=report["wall_time_s"],
    )
    store_ledger.append(entry)
    verdicts = _ledger.compare_entries(entry, history)
    snapshot_path = snapshot_path or f"BENCH_{suite}.json"
    _ledger.write_snapshot(snapshot_path, history + [entry], verdicts)
    print(f"\nledger: {store_ledger.path} ({len(history) + 1} entries)")
    print(f"ledger snapshot -> {snapshot_path}")
    print(_ledger.format_verdicts(verdicts))


def _print_report(report: Dict[str, Any]) -> None:
    lat = report["latency"]
    print(
        f"serve bench: {report['requests_ok']}/{report['requests_expected']} "
        f"requests ok from {report['clients']} concurrent clients "
        f"in {report['wall_time_s']:.2f}s "
        f"({report['throughput_rps']:.1f} req/s)"
    )
    print(
        f"  latency: p50 {lat.get('p50_s', 0):.3f}s  "
        f"p95 {lat.get('p95_s', 0):.3f}s  p99 {lat.get('p99_s', 0):.3f}s  "
        f"(n={lat.get('count', 0)})"
    )
    print(
        f"  store: {report['store'].get('hits', 0)} hits / "
        f"{report['store'].get('misses', 0)} misses"
    )
    co = report["coalesce"]
    print(
        f"  coalesce: {co['requests']:g} evaluations in {co['batches']:g} "
        f"batches (mean width {co['mean_width']:.2f})"
    )
    for name, hm in report["cache"].items():
        print(f"  cache {name}: {hm['hits']:g} hits / {hm['misses']:g} misses")
    par = report["parity"]
    print(
        f"  parity: {par['checked']} requests re-run directly, "
        f"max rel err {par['max_rel_err']:.3e}"
    )


def main(argv=None) -> int:
    from repro.bench.configs import ledger_dir

    ap = argparse.ArgumentParser(
        prog="python -m repro.bench serve",
        description="Load-test the control service and gate its contract.",
    )
    ap.add_argument("--clients", type=int, default=8,
                    help="concurrent clients (default 8)")
    ap.add_argument("--rounds", type=int, default=3,
                    help="evaluate requests per client (default 3)")
    ap.add_argument("--workers", type=int, default=2,
                    help="warm service workers (default 2)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-request client/worker deadline in seconds")
    ap.add_argument("--store-dir", default=None, metavar="DIR",
                    help="result-store directory (default: scratch temp)")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="also write the full JSON report here")
    ap.add_argument("--ledger-dir", default=None, metavar="DIR",
                    help="append a 'serve' suite entry to the performance "
                         "ledger here (overrides $REPRO_LEDGER_DIR)")
    ap.add_argument("--suite", default="serve", metavar="NAME")
    ap.add_argument("--ledger-snapshot", default=None, metavar="PATH",
                    help="snapshot path (default: BENCH_<suite>.json)")
    args = ap.parse_args(argv)

    report = run_load(
        clients=args.clients, rounds=args.rounds, workers=args.workers,
        timeout=args.timeout, store_dir=args.store_dir,
    )
    _print_report(report)

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1, sort_keys=True)
        print(f"  report -> {args.report}")

    ledger_out = ledger_dir(args.ledger_dir)
    if ledger_out is not None:
        os.makedirs(ledger_out, exist_ok=True)
        _append_ledger(report, ledger_out, args.suite, args.ledger_snapshot, {
            "clients": args.clients, "rounds": args.rounds,
            "workers": args.workers,
        })

    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke gate: the control service's serving contract, end-to-end.

Runs ``python -m repro.bench serve`` (a small battery: 8 concurrent
clients, 2 evaluate rounds each) against a scratch ledger directory and
checks everything the serving layer promises:

1. the load generator itself exits 0 — which already gates request
   parity against direct ``control.*`` calls, zero dropped requests,
   store idempotency on byte-identical re-submits, cross-request
   compiled-program and factorisation cache hits, and at least one
   coalesced multi-RHS batch (see :mod:`repro.bench.serve_bench`);
2. the run appended exactly one schema-valid ``serve``-suite entry to
   the ledger and refreshed the ``BENCH_serve.json`` snapshot;
3. the entry carries the throughput/latency artifact CI uploads —
   ``throughput_rps`` plus p50/p95/p99 latency, all finite and
   positive.

Exits nonzero on any violation.

Usage::

    python -m repro.bench.serve_smoke [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile

from repro.bench.serve_bench import main as serve_main
from repro.obs.ledger import ENTRY_KIND, SNAPSHOT_KIND, PerformanceLedger

SUITE = "serve"

#: The latency metrics the gate requires in the ledger entry (seconds).
LATENCY_METRICS = ("latency_p50_s", "latency_p95_s", "latency_p99_s")


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="keep the ledger + snapshot + report here "
                         "(default: a scratch temp dir)")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--rounds", type=int, default=2)
    args = ap.parse_args(argv)

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        out_dir = args.out_dir
        ctx = None
    else:
        ctx = tempfile.TemporaryDirectory(prefix="repro-serve-smoke-")
        out_dir = ctx.name
    try:
        ledger_dir = os.path.join(out_dir, "ledger")
        snapshot = os.path.join(out_dir, f"BENCH_{SUITE}.json")
        report = os.path.join(out_dir, "serve_report.json")

        rc = serve_main([
            "--clients", str(args.clients), "--rounds", str(args.rounds),
            "--ledger-dir", ledger_dir, "--suite", SUITE,
            "--ledger-snapshot", snapshot, "--report", report,
        ])
        if rc != 0:
            return _fail(f"serve bench exited {rc} (contract gate tripped)")

        # --- the ledger artifact -------------------------------------
        store = PerformanceLedger(ledger_dir, SUITE)
        entries = store.entries()  # re-validates every line
        if len(entries) != 1:
            return _fail(f"{len(entries)} ledger entries in {store.path}, "
                         "expected exactly 1")
        entry = entries[0]
        if entry["kind"] != ENTRY_KIND or entry["suite"] != SUITE:
            return _fail(f"unexpected entry header: "
                         f"{entry['kind']}/{entry['suite']}")
        metrics = entry["runs"].get("serve")
        if not metrics:
            return _fail(f"run 'serve' missing from entry: "
                         f"{sorted(entry['runs'])}")

        # --- the throughput/latency numbers CI uploads ----------------
        rps = metrics.get("throughput_rps")
        if not isinstance(rps, (int, float)) or not math.isfinite(rps) or rps <= 0:
            return _fail(f"throughput_rps is not finite-positive: {rps!r}")
        for name in LATENCY_METRICS:
            v = metrics.get(name)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                return _fail(f"{name} is not a finite latency: {v!r}")
        if not (metrics[LATENCY_METRICS[0]]
                <= metrics[LATENCY_METRICS[1]]
                <= metrics[LATENCY_METRICS[2]]):
            return _fail("latency percentiles are not monotone: "
                         + ", ".join(f"{n}={metrics[n]:g}"
                                     for n in LATENCY_METRICS))

        if not os.path.exists(snapshot):
            return _fail(f"snapshot {snapshot} was not written")
        with open(snapshot, "r", encoding="utf-8") as f:
            snap = json.load(f)
        if snap.get("kind") != SNAPSHOT_KIND or snap.get("suite") != SUITE:
            return _fail(f"snapshot malformed: kind={snap.get('kind')!r} "
                         f"suite={snap.get('suite')!r}")
        if not os.path.exists(report):
            return _fail(f"JSON report {report} was not written")

        print("\nOK")
        return 0
    finally:
        if ctx is not None:
            ctx.cleanup()


if __name__ == "__main__":
    sys.exit(main())

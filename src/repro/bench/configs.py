"""Scaled experiment configurations.

The paper's full runs take hours (Table 3: up to 26.8 h for the NS PINN
on an RTX 3090).  The benchmark suite therefore runs a *scaled* tier by
default — small enough for seconds-per-benchmark on one CPU core, large
enough that every qualitative comparison (who wins, failure modes,
crossovers) still manifests — and a ``full`` tier selected with
``REPRO_FULL=1`` that moves every knob towards the paper's values.

Paper values, for reference:

=====================  =========  =========  =========
hyperparameter         DAL        PINN       DP
=====================  =========  =========  =========
Laplace lr             1e-2       1e-3       1e-2
Laplace iters/epochs   500        20k        500
Laplace cloud          100×100    100×100    100×100
NS lr                  1e-1       1e-3       1e-1
NS iters/epochs        350        100k       350
NS refinements k       3          —          10
NS cloud               1385       1385       1385
=====================  =========  =========  =========
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.env import env_flag


def is_full_scale() -> bool:
    """True when the ``REPRO_FULL`` environment switch is set.

    Parsed by :func:`repro.utils.env.env_flag`: ``1``/``true``/``yes``/
    ``on`` enable, ``0``/``false``/``no``/``off`` disable (case- and
    whitespace-insensitive), anything else raises.
    """
    return env_flag("REPRO_FULL", default=False)


def is_compile_enabled() -> bool:
    """True when ``REPRO_COMPILE`` opts the benchmarks into a compiled
    execution tier (:mod:`repro.autodiff.compile`)."""
    return compile_mode() is not False


def compile_mode() -> "bool | str":
    """Compiled-execution tier requested via ``REPRO_COMPILE``.

    ``REPRO_COMPILE=1`` (or ``true``/``replay``) selects the trace-once
    replay engine; ``REPRO_COMPILE=codegen`` selects the fused-source
    codegen backend (:mod:`repro.autodiff.codegen`, with automatic
    fallback to replay per program); unset/``0`` keeps eager execution.
    The return value feeds the ``compile=`` knob on the scale dataclasses
    unchanged.
    """
    raw = os.environ.get("REPRO_COMPILE", "").strip()
    if raw.lower() == "codegen":
        return "codegen"
    if raw.lower() == "replay":
        return True
    return env_flag("REPRO_COMPILE", default=False)


def artifact_dir(cli_value: "str | None", env_var: str) -> "str | None":
    """Resolve an artifact output directory from CLI flag and environment.

    Precedence: an explicit CLI value (``--trace-dir`` / ``--profile-dir``)
    always wins; otherwise the environment variable is consulted; empty or
    whitespace-only values in either place mean "disabled" and resolve to
    ``None``.
    """
    if cli_value is not None:
        return cli_value.strip() or None
    d = os.environ.get(env_var, "").strip()
    return d or None


def trace_dir(cli_value: "str | None" = None) -> "str | None":
    """Directory for convergence-trace JSONL artifacts, if requested.

    Pass ``--trace-dir`` to ``python -m repro.bench`` (or set
    ``REPRO_TRACE_DIR=/some/dir``; the CLI flag wins when both are given)
    to make every benchmark runner attach a
    :class:`~repro.obs.recorder.TraceRecorder` and write one
    ``<problem>_<method>.jsonl`` per run.  Unset (the default): telemetry
    stays disabled and the hot loops take the no-recorder fast path.
    """
    return artifact_dir(cli_value, "REPRO_TRACE_DIR")


def profile_dir(cli_value: "str | None" = None) -> "str | None":
    """Directory for span-profile artifacts, if requested.

    Pass ``--profile-dir`` to ``python -m repro.bench`` (or set
    ``REPRO_PROFILE_DIR=/some/dir``; the CLI flag wins when both are
    given) to install a :class:`~repro.obs.profile.SpanProfiler` around
    every run and write one ``<problem>_<method>.trace.json`` Chrome
    trace plus one ``<problem>_<method>.metrics.json`` snapshot per run.
    Unset (the default): profiling stays disabled and ``span()`` costs a
    single global read.
    """
    return artifact_dir(cli_value, "REPRO_PROFILE_DIR")


def ledger_dir(cli_value: "str | None" = None) -> "str | None":
    """Directory for the performance-ledger JSONL store, if requested.

    Pass ``--ledger-dir`` to ``python -m repro.bench`` (or set
    ``REPRO_LEDGER_DIR=/some/dir``; the CLI flag wins when both are
    given) to append one :mod:`repro.obs.ledger` entry per invocation to
    ``<dir>/<suite>.jsonl`` and refresh the ``BENCH_<suite>.json``
    snapshot.  Unset (the default): no ledger writes.  Shares the
    precedence code path of :func:`trace_dir`/:func:`profile_dir`.
    """
    return artifact_dir(cli_value, "REPRO_LEDGER_DIR")


def watchdog_enabled(cli_value: bool = False) -> bool:
    """True when run-health monitoring is requested.

    Enabled by ``--watchdog`` on the bench CLI or ``REPRO_WATCHDOG=1``
    in the environment (same falsy spellings as the other switches).
    """
    if cli_value:
        return True
    return env_flag("REPRO_WATCHDOG", default=False)


@dataclass(frozen=True)
class LaplaceScale:
    """Laplace-problem knobs (paper values in comments)."""

    nx: int = 26                 # paper: 100
    iterations: int = 150        # paper: 500
    lr_dal: float = 1e-2         # paper: 1e-2
    lr_dp: float = 1e-2          # paper: 1e-2
    backend: str = "dense"       # "dense" (paper) or "local" (RBF-FD)
    solver: str = "direct"       # "direct" (LU) or "iterative" (Krylov,
    # requires the local backend; see repro.autodiff.krylov)
    compile: "bool | str" = False  # False | True (replay) | "codegen"


@dataclass(frozen=True)
class NavierStokesScale:
    """Navier–Stokes knobs (paper values in comments)."""

    nx: int = 21                 # cloud ≈ nx*ny ≈ 1385 at full scale
    ny: int = 11
    iterations: int = 60         # paper: 350
    lr: float = 1e-1             # paper: 1e-1
    refinements_dal: int = 3     # paper: 3
    refinements_dp: int = 10     # paper: 10
    adjoint_refinements: int = 30
    reynolds: float = 100.0
    pseudo_dt: float = 0.5
    perturbation: float = 0.3
    backend: str = "dense"       # "dense" (paper) or "local" (RBF-FD)
    solver: str = "direct"       # "direct" (LU) or "iterative" (Krylov)
    compile: "bool | str" = False  # False | True (replay) | "codegen"


@dataclass(frozen=True)
class PinnScale:
    """PINN knobs (paper values in comments)."""

    laplace_epochs: int = 2000       # paper: 20k
    laplace_hidden: Tuple[int, ...] = (30, 30, 30)  # paper: 3×30
    laplace_lr: float = 2e-3         # paper: 1e-3
    laplace_omegas: Tuple[float, ...] = (1e-1, 1.0, 1e1)
    # paper: 11 values 1e-3..1e7, ω* = 1e-1
    ns_epochs: int = 1500            # paper: 100k
    ns_hidden: Tuple[int, ...] = (40, 40, 40)  # paper: 5×50 (full tier)
    ns_lr: float = 1e-3              # paper: 1e-3
    ns_omegas: Tuple[float, ...] = (1.0, 1e1)
    # paper: 9 values 1e-3..1e5, ω* = 1
    n_interior: int = 300
    n_boundary: int = 30
    compile: "bool | str" = False    # False | True (replay) | "codegen"


@dataclass(frozen=True)
class ExperimentScale:
    """The complete scale bundle for one tier."""

    name: str
    laplace: LaplaceScale = field(default_factory=LaplaceScale)
    ns: NavierStokesScale = field(default_factory=NavierStokesScale)
    pinn: PinnScale = field(default_factory=PinnScale)


DEFAULT_SCALE = ExperimentScale(name="default")

FULL_SCALE = ExperimentScale(
    name="full",
    laplace=LaplaceScale(nx=60, iterations=500),
    ns=NavierStokesScale(
        nx=43, ny=32, iterations=350, refinements_dal=3, refinements_dp=10,
        adjoint_refinements=60,
    ),
    pinn=PinnScale(
        laplace_epochs=20000,
        laplace_lr=1e-3,
        laplace_omegas=tuple(10.0**k for k in range(-3, 8)),
        ns_epochs=20000,
        ns_hidden=(50, 50, 50, 50, 50),
        ns_omegas=tuple(10.0**k for k in range(-3, 6)),
        n_interior=1000,
        n_boundary=80,
    ),
)


def get_scale() -> ExperimentScale:
    """Return the active tier (``REPRO_FULL=1`` selects the full tier).

    ``REPRO_COMPILE=1`` additionally switches every strategy onto the
    trace-once replay engine — results are bit-identical (the property
    tests assert it), only the per-iteration wall time changes.
    ``REPRO_COMPILE=codegen`` selects the fused-source codegen tier
    instead (gradient parity is gated by the conformance tests; programs
    the lowering pass cannot fuse fall back to replay automatically).
    """
    from dataclasses import replace

    scale = FULL_SCALE if is_full_scale() else DEFAULT_SCALE
    mode = compile_mode()
    if mode is not False:
        suffix = "+codegen" if mode == "codegen" else "+compile"
        scale = ExperimentScale(
            name=scale.name + suffix,
            laplace=replace(scale.laplace, compile=mode),
            ns=replace(scale.ns, compile=mode),
            pinn=replace(scale.pinn, compile=mode),
        )
    return scale

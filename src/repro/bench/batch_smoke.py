"""CI smoke gate: vbatch must be bitwise-faithful (and fast).

Three checks, in order of increasing cost:

1. **Conformance fast tier** — the per-primitive batching-rule suite
   (``tests/autodiff/test_batching.py``) runs in a pytest subprocess;
   any rule regression fails the gate before the timing runs start.
2. **DP bit-identity** — :func:`repro.control.loop.batched_cost_sweep`
   scores a population of controls against a Laplace DP oracle on the
   sparse (SuperLU) backend, whose multi-RHS solves are bitwise per
   column; every entry must equal ``oracle.value`` exactly.
3. **Batched line-search parity + speedup** — the Laplace PINN two-step
   ω line search runs twice, looped and ``batch=True``.  Both must pick
   the same ω* with bit-identical costs, histories, and parameters, and
   the batched run (profiled, so the artifact proves the stacked path
   actually executed) must beat the loop by the machine-adaptive
   speedup gate: 2.0× with ≥4 CPUs, 1.2× with 2–3, correctness-only on
   a single hardware thread.

Wall times, the measured speedup, and the parity verdicts land in
``batch_speedup.json``.

Usage::

    python -m repro.bench.batch_smoke [--out-dir DIR] [--skip-conformance]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import batched_cost_sweep
from repro.control.pinn import LaplacePINN, PINNTrainConfig, omega_line_search
from repro.obs.metrics import use_registry
from repro.obs.profile import SpanProfiler, profiling
from repro.pde.laplace import LaplaceControlProblem

#: Four candidates spanning the paper's decisive decades (ω* = 1e-1).
DEFAULT_OMEGAS = (1e-2, 1e-1, 1.0, 1e1)

CONFORMANCE_SUITE = os.path.join("tests", "autodiff", "test_batching.py")


def _default_min_speedup() -> float:
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return 0.0  # single hardware thread: gate correctness only


def _flat(params) -> np.ndarray:
    out = []
    for layer in params:
        out.append(layer["W"].ravel())
        out.append(layer["b"].ravel())
    return np.concatenate(out)


def _run_conformance() -> "tuple[bool, str]":
    """Run the batching conformance suite in a pytest subprocess."""
    if not os.path.exists(CONFORMANCE_SUITE):
        return True, f"skipped ({CONFORMANCE_SUITE} not found in cwd)"
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", CONFORMANCE_SUITE, "-q", "-x",
         "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
    )
    tail = "\n".join(proc.stdout.strip().splitlines()[-3:])
    return proc.returncode == 0, tail


def _check_dp_bit_identity(nx: int, n_controls: int) -> "list[str]":
    """Batched cost sweep vs per-candidate oracle.value — must be bitwise."""
    problem = LaplaceControlProblem(SquareCloud(nx), backend="local")
    oracle = LaplaceDP(problem)
    rng = np.random.default_rng(0)
    controls = rng.standard_normal((n_controls, problem.n_control))
    swept = batched_cost_sweep(oracle, controls)
    looped = np.asarray([oracle.value(c) for c in controls])
    if not np.array_equal(swept, looped):
        bad = int(np.sum(swept != looped))
        return [
            f"DP cost sweep not bit-identical to looped oracle.value "
            f"({bad}/{n_controls} entries differ; max |Δ| = "
            f"{np.max(np.abs(swept - looped)):.3e})"
        ]
    return []


def _run_line_search(problem, cfg, omegas, hidden, batch, profiler=None):
    pinn = LaplacePINN(problem, state_hidden=hidden, control_hidden=(8,),
                       config=cfg)
    t0 = time.perf_counter()
    if profiler is not None:
        with use_registry(), profiling(profiler):
            ls = omega_line_search(pinn, omegas, batch=batch)
    else:
        ls = omega_line_search(pinn, omegas, batch=batch)
    return ls, time.perf_counter() - t0


def _compare_line_searches(ls_s, ls_b) -> "list[str]":
    failures = []
    if ls_b.best_omega != ls_s.best_omega:
        failures.append("batched selected a different omega*")
    if ls_b.best_cost != ls_s.best_cost:
        failures.append("batched best cost is not bit-identical to looped")
    if ls_b.step2_costs != ls_s.step2_costs:
        failures.append("step-2 costs differ between looped and batched")
    if not np.array_equal(_flat(ls_b.params_u_retrained),
                          _flat(ls_s.params_u_retrained)):
        failures.append("retrained state parameters differ")
    if not np.array_equal(_flat(ls_b.params_c), _flat(ls_s.params_c)):
        failures.append("control parameters differ")
    for rs, rb in zip(ls_s.step1, ls_b.step1):
        if rs.loss_history != rb.loss_history:
            failures.append(
                f"step-1 loss history differs at omega={rs.omega:g}"
            )
            break
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=12, help="cloud resolution")
    ap.add_argument("--epochs", type=int, default=120,
                    help="step-1/2 training epochs per candidate")
    ap.add_argument("--omegas", type=float, nargs="+",
                    default=list(DEFAULT_OMEGAS),
                    help="candidate omegas (>= 4 for the acceptance run)")
    ap.add_argument("--n-controls", type=int, default=16,
                    help="population size for the DP cost-sweep check")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail below this batched speedup "
                         "(default: 2.0 with >=4 CPUs, 1.2 with 2-3, "
                         "0 on a single CPU)")
    ap.add_argument("--skip-conformance", action="store_true",
                    help="skip the pytest conformance tier (timing only)")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write the speedup JSON + profiler trace here")
    args = ap.parse_args(argv)
    min_speedup = (
        _default_min_speedup() if args.min_speedup is None else args.min_speedup
    )

    failures = []

    if args.skip_conformance:
        conformance = "skipped (--skip-conformance)"
    else:
        ok, conformance = _run_conformance()
        print(f"conformance tier: {conformance}")
        if not ok:
            failures.append("batching-rule conformance suite failed")

    failures += _check_dp_bit_identity(args.nx, args.n_controls)
    print(f"DP cost sweep ({args.n_controls} controls): "
          f"{'FAILED' if failures and failures[-1].startswith('DP') else 'bit-identical'}")

    problem = LaplaceControlProblem(SquareCloud(args.nx))
    cfg = PINNTrainConfig(epochs=args.epochs, lr=2e-3, n_interior=80,
                          n_boundary=12, seed=0)
    hidden = (12, 12)

    ls_s, t_loop = _run_line_search(
        problem, cfg, args.omegas, hidden, batch=False
    )
    profiler = SpanProfiler()
    ls_b, t_batch = _run_line_search(
        problem, cfg, args.omegas, hidden, batch=True, profiler=profiler
    )

    spans = {row["name"] for row in profiler.summary_rows()}
    if "pinn.line_search_batched" not in spans:
        failures.append(
            "profiler saw no pinn.line_search_batched span — the batched "
            "path did not execute"
        )

    speedup = t_loop / t_batch if t_batch > 0 else float("inf")
    cpus = os.cpu_count() or 1
    print(
        f"laplace-pinn line search, {len(args.omegas)} omegas x "
        f"{args.epochs} epochs (nx={args.nx}, {cpus} CPUs):\n"
        f"  looped        {t_loop:8.2f} s\n"
        f"  batched       {t_batch:8.2f} s   speedup {speedup:.2f}x\n"
        f"  omega*: looped {ls_s.best_omega:g}  batched {ls_b.best_omega:g}\n"
        f"  J:      looped {ls_s.best_cost!r}  batched {ls_b.best_cost!r}"
    )

    failures += _compare_line_searches(ls_s, ls_b)

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        artifact = {
            "kind": "repro.batch.smoke",
            "problem": "laplace-pinn-line-search",
            "omegas": [float(o) for o in args.omegas],
            "epochs": args.epochs,
            "nx": args.nx,
            "cpu_count": cpus,
            "conformance": conformance,
            "n_controls": args.n_controls,
            "looped_seconds": t_loop,
            "batched_seconds": t_batch,
            "speedup": speedup,
            "min_speedup_gate": min_speedup,
            "best_omega": float(ls_s.best_omega),
            "best_cost": float(ls_s.best_cost),
            "bitwise_identical": not failures,
        }
        path = os.path.join(args.out_dir, "batch_speedup.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=1)
        print(f"  artifact -> {path}")
        trace_path = os.path.join(args.out_dir, "batch_smoke.trace.json")
        profiler.save_chrome_trace(
            trace_path, meta={"n_omega": len(args.omegas)}
        )
        print(f"  batched trace -> {trace_path}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    if speedup < min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below the {min_speedup:.1f}x gate "
            f"({cpus} CPUs)",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

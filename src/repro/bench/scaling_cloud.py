"""Cloud-size scaling sweep for the matrix-free Krylov backend.

The paper's future-work line — "improve the memory and computational
efficiency of DP by massively parallelising the framework" — runs into
one wall first: the linear solver.  Dense LU is ``O(N³)``/``O(N²)``;
even sparse SuperLU fill-in becomes the memory ceiling near ``N = 10⁵``.
This sweep measures the third tier (preconditioned, matrix-free Krylov
with an implicit-adjoint VJP, :mod:`repro.autodiff.krylov`) against the
direct sparse path on the Laplace DP control problem from ``N ≈ 10³``
up to ``N ≈ 10⁵`` nodes:

- **wall time** for operator assembly, solver setup (LU factorisation
  vs preconditioner build) and one DP ``value_and_grad`` (forward +
  adjoint solve through the tape);
- **peak traced memory** of the gradient evaluation;
- **Krylov iteration counts** (forward and adjoint solves), straight
  from the solver's own counters — the same numbers the obs layer
  records per solve;
- **gradient parity**: below ``--gradcheck-max`` nodes the iterative
  DP gradient is checked against the direct (``splu``) backend's — the
  acceptance criterion that makes the timing numbers trustworthy.

Rows run as :class:`repro.parallel.Task`s, so ``--jobs K`` measures K
sizes concurrently (per-row ``tracemalloc`` peaks stay per-process and
therefore honest).

Usage::

    python -m repro.bench.scaling_cloud [--sizes N ...] [--full]
        [--jobs K] [--out-dir DIR]

``--full`` extends the sweep to the 100k-node tier (minutes, not CI);
the default sizes keep the smoke-gate run in seconds.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

import numpy as np

#: Smoke-tier sweep: large enough to show the scaling trend, small
#: enough for a CI gate.
DEFAULT_SIZES = (1024, 2025, 4096)

#: Full sweep: the 100k-node regime the backend exists for.
FULL_SIZES = (1024, 4096, 16384, 65536, 102400)

#: Direct-backend rows are skipped above this size unless overridden —
#: sparse-LU fill-in is exactly the cost the sweep demonstrates, and the
#: comparison column only needs the overlap region.
DEFAULT_DIRECT_MAX = 20_000

#: Sizes at or below this get the iterative-vs-direct gradient check.
DEFAULT_GRADCHECK_MAX = 5_000


def run_row(
    n_target: int,
    solver: str,
    gradcheck: bool = False,
    solver_opts: "dict | None" = None,
) -> dict:
    """One sweep row: Laplace DP on a ``~n_target``-node cloud.

    Module-level (picklable) so it can run as a parallel-engine task.
    Returns a JSON-ready record; gradient-parity info is included when
    ``gradcheck`` is set (requires ``solver == "iterative"``).
    """
    from repro.bench.metrics import measure_run
    from repro.cloud.square import SquareCloud
    from repro.control.dp import LaplaceDP
    from repro.pde.laplace import LaplaceControlProblem

    nx = max(4, int(round(math.sqrt(n_target))))
    opts = dict(solver_opts or {})
    if solver == "iterative" and "tol" not in opts and n_target > DEFAULT_GRADCHECK_MAX:
        # BiCGSTAB's recurrence residual drifts from the true residual
        # by O(cond·eps); near 100k nodes the achievable floor sits
        # above 1e-10 and the true-residual safety net would (rightly)
        # refuse to report convergence.  Timing-only rows don't need
        # gradcheck-grade accuracy, so loosen the target.
        opts["tol"] = 1e-8

    t0 = time.perf_counter()
    cloud = SquareCloud(nx)
    problem = LaplaceControlProblem(
        cloud, backend="local", solver=solver,
        solver_opts=opts if solver == "iterative" else None,
    )
    assemble_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    oracle = LaplaceDP(problem)
    setup_s = time.perf_counter() - t0

    c = problem.optimal_control() * 0.5
    (cost, grad), grad_s, peak_bytes = measure_run(
        lambda: oracle.value_and_grad(c)
    )

    row = {
        "n": int(cloud.n),
        "nx": int(nx),
        "solver": solver,
        "assemble_s": float(assemble_s),
        "setup_s": float(setup_s),
        "grad_s": float(grad_s),
        "peak_bytes": int(peak_bytes),
        "cost": float(cost),
        "grad_norm": float(np.linalg.norm(grad)),
        "system_nnz": int(problem.system.nnz),
    }
    ks = oracle.solver
    if solver == "iterative":
        row["iterations_last"] = int(ks.last_iterations or 0)
        row["n_solves"] = int(ks.n_solves)
        row["n_fallbacks"] = int(ks.n_fallbacks)
    if gradcheck:
        direct = LaplaceDP(
            LaplaceControlProblem(cloud, backend="local")
        )
        cost_d, grad_d = direct.value_and_grad(c)
        scale = max(float(np.max(np.abs(grad_d))), 1e-300)
        row["gradcheck"] = {
            "cost_abs_diff": float(abs(cost - cost_d)),
            "grad_max_abs_diff": float(np.max(np.abs(grad - grad_d))),
            "grad_max_rel_diff": float(np.max(np.abs(grad - grad_d)) / scale),
        }
    return row


def run_sweep(
    sizes,
    jobs: int = 1,
    direct_max: int = DEFAULT_DIRECT_MAX,
    gradcheck_max: int = DEFAULT_GRADCHECK_MAX,
    solver_opts: "dict | None" = None,
) -> "list[dict]":
    """Run all rows (iterative everywhere, direct up to ``direct_max``)."""
    from repro.parallel import Task, run_tasks

    tasks = []
    for n in sizes:
        tasks.append(Task(
            key=f"iterative-{n}",
            fn=run_row,
            args=(n, "iterative", n <= gradcheck_max, solver_opts),
        ))
        if n <= direct_max:
            tasks.append(Task(key=f"direct-{n}", fn=run_row, args=(n, "direct")))
    results = run_tasks(tasks, jobs=jobs)
    rows = []
    for res in results:
        rows.append(res.unwrap())  # a failed row fails the sweep loudly
    return sorted(rows, key=lambda r: (r["n"], r["solver"]))


def render(rows) -> str:
    from repro.bench.tables import render_table

    table = []
    for r in rows:
        gc = r.get("gradcheck")
        table.append([
            str(r["n"]),
            r["solver"],
            f"{r['assemble_s']:.2f}",
            f"{r['setup_s']:.2f}",
            f"{r['grad_s']:.2f}",
            f"{r['peak_bytes'] / 2**20:.1f}",
            str(r.get("iterations_last", "-")),
            f"{gc['grad_max_rel_diff']:.1e}" if gc else "-",
        ])
    return render_table(
        ["N", "solver", "assemble s", "setup s", "grad s", "peak MiB",
         "iters", "grad rel diff"],
        table,
        title="SCALING: Laplace DP value_and_grad, direct splu vs "
        "matrix-free Krylov (local RBF-FD backend)",
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sizes", type=int, nargs="+", default=None,
                    help="target node counts (default: smoke tier)")
    ap.add_argument("--full", action="store_true",
                    help="run the full sweep up to ~100k nodes")
    ap.add_argument("--jobs", type=int, default=None,
                    help="concurrent rows (default: $REPRO_JOBS or 1)")
    ap.add_argument("--direct-max", type=int, default=DEFAULT_DIRECT_MAX,
                    help="skip direct-backend rows above this size")
    ap.add_argument("--gradcheck-max", type=int,
                    default=DEFAULT_GRADCHECK_MAX,
                    help="check iterative vs direct gradients up to this size")
    ap.add_argument("--tol", type=float, default=None,
                    help="Krylov convergence tolerance override")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write scaling_cloud.json here")
    args = ap.parse_args(argv)

    sizes = args.sizes or (FULL_SIZES if args.full else DEFAULT_SIZES)
    solver_opts = {"tol": args.tol} if args.tol is not None else None
    rows = run_sweep(
        sizes,
        jobs=args.jobs or 1,
        direct_max=args.direct_max,
        gradcheck_max=args.gradcheck_max,
        solver_opts=solver_opts,
    )
    print(render(rows))

    failures = []
    for r in rows:
        gc = r.get("gradcheck")
        if gc and gc["grad_max_rel_diff"] > 1e-6:
            failures.append(
                f"N={r['n']}: iterative DP gradient differs from direct "
                f"by rel {gc['grad_max_rel_diff']:.3e}"
            )
        if r.get("n_fallbacks"):
            failures.append(
                f"N={r['n']}: Krylov fell back to direct factorisation "
                f"{r['n_fallbacks']} time(s)"
            )

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        artifact = {
            "kind": "repro.scaling.cloud",
            "sizes": [int(s) for s in sizes],
            "direct_max": args.direct_max,
            "gradcheck_max": args.gradcheck_max,
            "rows": rows,
            "failures": failures,
        }
        path = os.path.join(args.out_dir, "scaling_cloud.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=1)
        print(f"artifact -> {path}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke benchmark: the *disabled* profiler path must stay within budget.

The span call sites threaded through the optimisation and solver loops
(``repro.obs.profile.span``) promise near-zero cost while no profiler is
installed: one module-global read plus an empty context manager each.
This gate holds them to it.  It runs the Laplace DP iteration loop at
the smallest benchmarked scale twice per repeat —

- **baseline**: a local replica of the hot loop with no span sites at
  all (the code as it would look uninstrumented), and
- **instrumented**: the real :func:`repro.control.loop.optimize` with
  profiling disabled (the default) —

and fails when the instrumented loop is more than ``--tolerance`` slower
(default 2 %, the budget promised in DESIGN §11).  Uses the same
min-pairwise-ratio statistic as :mod:`repro.bench.trace_smoke`:
alternating the two modes within each repeat cancels clock drift, and
taking the minimum over pairwise ratios rejects one-off scheduler
hiccups that make best-of times flap on loaded machines.

A final *profiled* run (live :class:`~repro.obs.profile.SpanProfiler`)
checks that enabling profiling never perturbs the numerics; its
overhead is reported for information but not gated — profiling is
opt-in, and its cost is dominated by span bookkeeping the user asked
for.

Usage::

    python -m repro.bench.profile_smoke [--nx 16] [--iters 60]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.nn.optimizers import Adam
from repro.nn.schedules import paper_schedule
from repro.obs.profile import SpanProfiler, profiling
from repro.pde.laplace import LaplaceControlProblem


def _optimize_baseline(oracle, n_iterations: int, initial_lr: float):
    """The ``optimize`` hot loop with no instrumentation whatsoever.

    Mirrors :func:`repro.control.loop.optimize` (Adam, paper schedule,
    history/best tracking) minus the span sites, timer and recorder
    branches, so the pairwise comparison isolates the cost of having
    the instrumentation *present but disabled*.
    """
    c = np.array(oracle.initial_control(), dtype=np.float64)
    schedule = paper_schedule(initial_lr)
    opt = Adam(lr=initial_lr)
    state = opt.init(c)
    costs = []
    best_c, best_j = c.copy(), np.inf
    for it in range(n_iterations):
        j, g = oracle.value_and_grad(c)
        lr = schedule(it, n_iterations)
        costs.append(float(j))
        if np.isfinite(j) and j < best_j:
            best_j, best_c = float(j), c.copy()
        if not bool(np.all(np.isfinite(g))):
            break
        c, state = opt.step(c, g, state, lr=lr)
    return best_c, min(costs)


def _paired_times(oracle, iters: int, lr: float, repeats: int):
    """Interleaved baseline/instrumented wall times over ``repeats`` pairs."""
    pairs = []
    base = inst = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        base = _optimize_baseline(oracle, iters, lr)
        t_base = time.perf_counter() - t0

        t0 = time.perf_counter()
        inst = optimize(oracle, iters, lr)
        pairs.append((t_base, time.perf_counter() - t0))
    return pairs, base, inst


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=16, help="cloud resolution")
    ap.add_argument("--iters", type=int, default=60, help="optimiser iterations")
    ap.add_argument("--lr", type=float, default=1e-2)
    ap.add_argument("--repeats", type=int, default=7, help="best-of repeats")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="max allowed fractional slowdown of the disabled span path",
    )
    args = ap.parse_args(argv)
    if args.repeats < 1:
        ap.error("--repeats must be >= 1")
    if args.iters < 1:
        ap.error("--iters must be >= 1")

    problem = LaplaceControlProblem(SquareCloud(args.nx))
    oracle = LaplaceDP(problem)
    # Warm caches (LU factorisation) so both modes time the same work.
    optimize(oracle, 2, args.lr)

    pairs, (c_base, j_base), (c_off, h_off) = _paired_times(
        oracle, args.iters, args.lr, args.repeats
    )

    cost_diff = abs(j_base - h_off.best_cost)
    ctrl_diff = float(np.max(np.abs(c_base - c_off)))
    t_base = min(t for t, _ in pairs)
    t_off = min(t for _, t in pairs)
    overhead = min(off / base for base, off in pairs) - 1.0

    # One profiled run: numerics must be untouched; overhead is
    # informational (profiling is opt-in).
    prof = SpanProfiler()
    with profiling(prof):
        t0 = time.perf_counter()
        c_on, h_on = optimize(oracle, args.iters, args.lr)
        t_on = time.perf_counter() - t0
    on_cost_diff = abs(h_off.best_cost - h_on.best_cost)
    on_ctrl_diff = float(np.max(np.abs(c_off - c_on)))
    n_phase_spans = sum(1 for sp in prof.spans() if sp.category == "phase")

    print(
        f"laplace-dp nx={args.nx} iters={args.iters} ({args.repeats} pairs):\n"
        f"  uninstrumented   {t_base * 1e3:9.2f} ms (best)\n"
        f"  spans disabled   {t_off * 1e3:9.2f} ms (best)   "
        f"overhead {overhead:+.2%} (min pairwise, gated)\n"
        f"  spans profiled   {t_on * 1e3:9.2f} ms          "
        f"overhead {t_on / t_base - 1.0:+.2%} (informational)\n"
        f"  |cost diff| = {max(cost_diff, on_cost_diff):.3e}   "
        f"|control diff| = {max(ctrl_diff, on_ctrl_diff):.3e}\n"
        f"  phase spans recorded: {n_phase_spans}"
    )

    scale = max(abs(h_off.best_cost), 1e-30)
    if cost_diff > 1e-10 * scale + 1e-14 or on_cost_diff > 1e-10 * scale + 1e-14:
        print("FAIL: instrumentation perturbs the final cost", file=sys.stderr)
        return 1
    if ctrl_diff > 0.0 or on_ctrl_diff > 0.0:
        print("FAIL: instrumentation perturbs the final control", file=sys.stderr)
        return 1
    if n_phase_spans != 3 * args.iters:
        print(
            f"FAIL: profiler saw {n_phase_spans} phase spans, "
            f"expected {3 * args.iters} (grad + eval + update per iteration)",
            file=sys.stderr,
        )
        return 1
    if overhead > args.tolerance:
        print(
            f"FAIL: disabled span path adds {overhead:.1%} overhead "
            f"(budget {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark harness regenerating the paper's tables and figures.

- :mod:`repro.bench.configs` — scaled experiment configurations with a
  ``default`` tier (CI-speed) and a ``full`` tier (``REPRO_FULL=1``).
- :mod:`repro.bench.metrics` — wall-time + peak-memory measurement of a
  control run (Table 3 rows).
- :mod:`repro.bench.harness` — end-to-end runners: one function per
  method × problem, returning :class:`~repro.control.problem.ControlResult`.
- :mod:`repro.bench.tables` — plain-text table renderers matching the
  paper's layout.
"""

from repro.bench.configs import (
    ExperimentScale,
    LaplaceScale,
    NavierStokesScale,
    PinnScale,
    get_scale,
    is_full_scale,
)
from repro.bench.metrics import measure_run
from repro.bench.harness import (
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_fd,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
    run_ns_pinn,
    make_laplace_problem,
    make_ns_problem,
)
from repro.bench.tables import render_table, render_hyperparameter_table, render_performance_table

__all__ = [
    "ExperimentScale",
    "LaplaceScale",
    "NavierStokesScale",
    "PinnScale",
    "get_scale",
    "is_full_scale",
    "measure_run",
    "run_laplace_dal",
    "run_laplace_dp",
    "run_laplace_fd",
    "run_laplace_pinn",
    "run_ns_dal",
    "run_ns_dp",
    "run_ns_pinn",
    "make_laplace_problem",
    "make_ns_problem",
    "render_table",
    "render_hyperparameter_table",
    "render_performance_table",
]

"""End-to-end experiment runners — one per method × problem.

Each runner builds the problem at the active scale, runs the method, and
returns a :class:`~repro.control.problem.ControlResult` carrying the
Table-3 metrics (final cost, iterations, wall time, peak memory) plus
method-specific extras (cost history for Fig. 3b/4b, controls for
Fig. 3a/4c, line-search data for Fig. 3c–e).

Every runner accepts an optional ``recorder``
(:class:`~repro.obs.recorder.TraceRecorder`): when given, the run emits
per-iteration convergence telemetry — tagged with the method/problem/
scale identity — and the oracle's cumulative cache statistics, ready for
JSONL export (``python -m repro.bench --trace-dir``).  Without one, the
loops take their zero-overhead path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.configs import ExperimentScale, get_scale
from repro.bench.metrics import measure_run
from repro.cloud.channel import ChannelCloud
from repro.cloud.square import SquareCloud
from repro.control.dal import LaplaceDAL, NavierStokesDAL
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.fd import FiniteDifferenceOracle
from repro.control.loop import optimize
from repro.control.pinn import (
    LaplacePINN,
    NavierStokesPINN,
    PINNTrainConfig,
    omega_line_search,
)
from repro.control.problem import ControlResult
from repro.obs.hooks import record_oracle_telemetry
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig


def _tag_trace(recorder, method: str, problem: str, scale: ExperimentScale,
               backend: str) -> None:
    """Stamp run identity onto a trace (no-op for falsy recorders)."""
    if recorder:
        recorder.set_meta(
            method=method, problem=problem, scale=scale.name, backend=backend
        )


# ----------------------------------------------------------------------
# Problem factories
# ----------------------------------------------------------------------
def make_laplace_problem(
    scale: Optional[ExperimentScale] = None,
    backend: Optional[str] = None,
    solver: Optional[str] = None,
) -> LaplaceControlProblem:
    """Laplace problem at the active scale.

    ``backend`` overrides the scale's operator backend ("dense" for the
    paper's global collocation, "local" for sparse RBF-FD); ``solver``
    overrides the linear-solver choice ("direct" or "iterative" — the
    latter requires the local backend).
    """
    s = scale or get_scale()
    return LaplaceControlProblem(
        SquareCloud(s.laplace.nx),
        backend=backend or s.laplace.backend,
        solver=solver or s.laplace.solver,
    )


def make_ns_problem(
    scale: Optional[ExperimentScale] = None,
    backend: Optional[str] = None,
    solver: Optional[str] = None,
) -> ChannelFlowProblem:
    """Channel-flow problem at the active scale."""
    s = scale or get_scale()
    return ChannelFlowProblem(
        cloud=ChannelCloud(s.ns.nx, s.ns.ny),
        perturbation=s.ns.perturbation,
        backend=backend or s.ns.backend,
        solver=solver or s.ns.solver,
    )


def _ns_config(scale: ExperimentScale, refinements: int, reynolds=None) -> NSConfig:
    return NSConfig(
        reynolds=scale.ns.reynolds if reynolds is None else reynolds,
        refinements=refinements,
        pseudo_dt=scale.ns.pseudo_dt,
    )


# ----------------------------------------------------------------------
# Laplace runners
# ----------------------------------------------------------------------
def run_laplace_dal(
    problem: Optional[LaplaceControlProblem] = None,
    scale: Optional[ExperimentScale] = None,
    recorder=None,
) -> ControlResult:
    """DAL on the Laplace problem (Table 1 column / Fig. 3 curves)."""
    s = scale or get_scale()
    prob = problem or make_laplace_problem(s)
    oracle = LaplaceDAL(prob, compile=s.laplace.compile)
    _tag_trace(recorder, "DAL", "laplace", s, prob.backend)

    def run():
        return optimize(
            oracle, s.laplace.iterations, s.laplace.lr_dal, recorder=recorder
        )

    (c, hist), t, mem = measure_run(run, recorder)
    record_oracle_telemetry(recorder, oracle)
    return ControlResult(
        method="DAL",
        problem="laplace",
        control=c,
        final_cost=hist.best_cost,
        iterations=s.laplace.iterations,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=hist.costs,
        extra={"grad_norms": hist.grad_norms, "control_x": prob.control_x},
    )


def run_laplace_dp(
    problem: Optional[LaplaceControlProblem] = None,
    scale: Optional[ExperimentScale] = None,
    recorder=None,
) -> ControlResult:
    """DP on the Laplace problem."""
    s = scale or get_scale()
    prob = problem or make_laplace_problem(s)
    oracle = LaplaceDP(prob, compile=s.laplace.compile)
    _tag_trace(recorder, "DP", "laplace", s, prob.backend)

    def run():
        return optimize(
            oracle, s.laplace.iterations, s.laplace.lr_dp, recorder=recorder
        )

    (c, hist), t, mem = measure_run(run, recorder)
    record_oracle_telemetry(recorder, oracle)
    return ControlResult(
        method="DP",
        problem="laplace",
        control=c,
        final_cost=hist.best_cost,
        iterations=s.laplace.iterations,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=hist.costs,
        extra={"grad_norms": hist.grad_norms, "control_x": prob.control_x},
    )


def run_laplace_fd(
    problem: Optional[LaplaceControlProblem] = None,
    scale: Optional[ExperimentScale] = None,
    iterations: Optional[int] = None,
    recorder=None,
) -> ControlResult:
    """Finite-difference baseline on Laplace (footnote-11 comparison).

    FD costs ``2n`` solves per gradient, so its iteration budget is cut
    to keep runtime bounded.
    """
    s = scale or get_scale()
    prob = problem or make_laplace_problem(s)
    dp = LaplaceDP(prob)  # reuse the cheap forward evaluation
    oracle = FiniteDifferenceOracle(dp.value, prob.zero_control())
    iters = iterations if iterations is not None else max(s.laplace.iterations // 5, 10)
    _tag_trace(recorder, "FD", "laplace", s, prob.backend)

    def run():
        return optimize(oracle, iters, s.laplace.lr_dp, recorder=recorder)

    (c, hist), t, mem = measure_run(run, recorder)
    record_oracle_telemetry(recorder, dp)
    return ControlResult(
        method="FD",
        problem="laplace",
        control=c,
        final_cost=hist.best_cost,
        iterations=iters,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=hist.costs,
        extra={"n_evaluations": oracle.n_evaluations},
    )


def run_laplace_pinn(
    problem: Optional[LaplaceControlProblem] = None,
    scale: Optional[ExperimentScale] = None,
    recorder=None,
    jobs: Optional[int] = None,
    batch: bool = False,
) -> ControlResult:
    """PINN with the two-step ω line search on Laplace (Fig. 3c–e).

    ``jobs`` fans the ω candidates across worker processes (default: the
    ``$REPRO_JOBS`` resolution of :func:`repro.parallel.resolve_jobs`);
    ``batch`` vectorises the candidates through
    :func:`repro.autodiff.vbatch` (composable with ``jobs`` for
    process × batch parallelism).  Either way results are
    bitwise-identical to the serial search.
    """
    s = scale or get_scale()
    prob = problem or make_laplace_problem(s)
    cfg = PINNTrainConfig(
        epochs=s.pinn.laplace_epochs,
        lr=s.pinn.laplace_lr,
        n_interior=s.pinn.n_interior,
        n_boundary=s.pinn.n_boundary,
        compile=s.pinn.compile,
    )
    pinn = LaplacePINN(prob, state_hidden=s.pinn.laplace_hidden, config=cfg)
    _tag_trace(recorder, "PINN", "laplace", s, prob.backend)

    def run():
        return omega_line_search(
            pinn, s.pinn.laplace_omegas, recorder=recorder, jobs=jobs,
            batch=batch,
        )

    ls, t, mem = measure_run(run, recorder)
    c = pinn.control_values(ls.params_c)
    # Physical cost of the PINN's control under the reference RBF solver —
    # the PINN surrogate's own flux evaluation is budget-limited (see
    # EXPERIMENTS.md D4), so both numbers are reported.
    dp_eval = LaplaceDP(prob)
    physical_cost = dp_eval.value(c)
    return ControlResult(
        method="PINN",
        problem="laplace",
        control=c,
        final_cost=physical_cost,
        iterations=s.pinn.laplace_epochs,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=[r.cost_history[-1] for r in ls.step1],
        extra={
            "surrogate_cost": ls.best_cost,
            "physical_cost": physical_cost,
            "omegas": list(ls.omegas),
            "best_omega": ls.best_omega,
            "step1_final_losses": [r.loss_history[-1] for r in ls.step1],
            "step1_final_costs": [r.cost_history[-1] for r in ls.step1],
            "step1_final_residuals": [r.residual_history[-1] for r in ls.step1],
            "step2_costs": ls.step2_costs,
            # Index into the ω values that actually ran (ls.omegas), not
            # the requested list — a failed parallel candidate drops out
            # of both ls.omegas and ls.step1, keeping them aligned.
            "epoch_cost_history": ls.step1[
                ls.omegas.index(float(ls.best_omega))
            ].cost_history,
        },
    )


# ----------------------------------------------------------------------
# Navier–Stokes runners
# ----------------------------------------------------------------------
def run_ns_dal(
    problem: Optional[ChannelFlowProblem] = None,
    scale: Optional[ExperimentScale] = None,
    reynolds: Optional[float] = None,
    recorder=None,
) -> ControlResult:
    """DAL on the channel problem (expected to fail at Re = 100)."""
    s = scale or get_scale()
    prob = problem or make_ns_problem(s)
    cfg = _ns_config(s, s.ns.refinements_dal, reynolds)
    oracle = NavierStokesDAL(
        prob, cfg, adjoint_refinements=s.ns.adjoint_refinements,
        compile=s.ns.compile, recorder=recorder,
    )
    _tag_trace(recorder, "DAL", "navier-stokes", s, prob.backend)

    def run():
        return optimize(oracle, s.ns.iterations, s.ns.lr, recorder=recorder)

    (c, hist), t, mem = measure_run(run, recorder)
    record_oracle_telemetry(recorder, oracle)
    return ControlResult(
        method="DAL",
        problem="navier-stokes",
        control=c,
        final_cost=hist.costs[-1],  # report the *final* cost: the paper's
        # Table 3 reflects where DAL ends up, not its best transient
        iterations=s.ns.iterations,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=hist.costs,
        extra={
            "best_cost": hist.best_cost,
            "reynolds": cfg.reynolds,
            "refinements": cfg.refinements,
            "inflow_y": prob.inflow_y,
        },
    )


def run_ns_dp(
    problem: Optional[ChannelFlowProblem] = None,
    scale: Optional[ExperimentScale] = None,
    reynolds: Optional[float] = None,
    refinements: Optional[int] = None,
    recorder=None,
) -> ControlResult:
    """DP on the channel problem."""
    s = scale or get_scale()
    prob = problem or make_ns_problem(s)
    cfg = _ns_config(
        s, refinements if refinements is not None else s.ns.refinements_dp, reynolds
    )
    oracle = NavierStokesDP(prob, cfg, compile=s.ns.compile)
    _tag_trace(recorder, "DP", "navier-stokes", s, prob.backend)

    def run():
        return optimize(oracle, s.ns.iterations, s.ns.lr, recorder=recorder)

    (c, hist), t, mem = measure_run(run, recorder)
    record_oracle_telemetry(recorder, oracle)
    return ControlResult(
        method="DP",
        problem="navier-stokes",
        control=c,
        final_cost=hist.best_cost,
        iterations=s.ns.iterations,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=hist.costs,
        extra={
            "reynolds": cfg.reynolds,
            "refinements": cfg.refinements,
            "inflow_y": prob.inflow_y,
        },
    )


def run_ns_pinn(
    problem: Optional[ChannelFlowProblem] = None,
    scale: Optional[ExperimentScale] = None,
    recorder=None,
    jobs: Optional[int] = None,
    batch: bool = False,
) -> ControlResult:
    """PINN with the two-step ω line search on the channel problem.

    ``jobs`` fans the ω candidates across worker processes and ``batch``
    stacks them through :func:`repro.autodiff.vbatch`; results are
    bitwise-identical to the serial search either way.
    """
    s = scale or get_scale()
    prob = problem or make_ns_problem(s)
    cfg = PINNTrainConfig(
        epochs=s.pinn.ns_epochs,
        lr=s.pinn.ns_lr,
        n_interior=s.pinn.n_interior,
        n_boundary=s.pinn.n_boundary,
        compile=s.pinn.compile,
    )
    ns_cfg = _ns_config(s, s.ns.refinements_dp)
    pinn = NavierStokesPINN(
        prob, ns_config=ns_cfg, state_hidden=s.pinn.ns_hidden, config=cfg
    )
    _tag_trace(recorder, "PINN", "navier-stokes", s, prob.backend)

    def run():
        return omega_line_search(
            pinn, s.pinn.ns_omegas, recorder=recorder, jobs=jobs,
            batch=batch,
        )

    ls, t, mem = measure_run(run, recorder)
    c = pinn.control_values(ls.params_c)
    # Physical cost of the PINN control under the reference solver
    # (Fig. 1's "good control at the expense of first principles").
    # Reported as the headline cost so Table 3 compares all methods under
    # the same physics; the surrogate's own estimate is kept in extras.
    physical = prob.solve(c, ns_cfg)
    physical_cost = prob.cost(physical.u, physical.v)
    return ControlResult(
        method="PINN",
        problem="navier-stokes",
        control=c,
        final_cost=physical_cost,
        iterations=s.pinn.ns_epochs,
        wall_time_s=t,
        peak_mem_bytes=mem,
        cost_history=[r.cost_history[-1] for r in ls.step1],
        extra={
            "omegas": list(ls.omegas),
            "best_omega": ls.best_omega,
            "step2_costs": ls.step2_costs,
            "surrogate_cost": ls.best_cost,
            "physical_cost": physical_cost,
            "inflow_y": prob.inflow_y,
        },
    )

"""CI smoke benchmark: telemetry overhead must stay within budget.

Runs the Laplace DP iteration loop at the smallest benchmarked scale
with telemetry disabled (no recorder — the hot loop's fast path) and
enabled (a live :class:`~repro.obs.recorder.TraceRecorder`) and compares
best-of-``repeats`` wall times.  Exits nonzero when the traced run is
more than ``--tolerance`` slower than the untraced one (default 2 %,
the budget promised in DESIGN §10) or when the final costs disagree —
telemetry must observe the optimisation, never perturb it.

Usage::

    python -m repro.bench.trace_smoke [--nx 10] [--iters 30]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.obs.recorder import TraceRecorder
from repro.pde.laplace import LaplaceControlProblem


def _paired_times(oracle, iters: int, lr: float, repeats: int):
    """Interleaved off/on wall times over ``repeats`` pairs.

    Alternating off/on within each repeat means clock-speed drift and
    background load hit both modes alike instead of biasing one side.
    The gate uses the *minimum pairwise ratio*: genuine telemetry
    overhead lifts every pair, whereas a scheduler hiccup inflates only
    the pair it lands in — so min-of-ratios rejects noise that would
    make independent best-of times flap on a loaded machine.
    """
    pairs = []
    result_off = result_on = recorder = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result_off = optimize(oracle, iters, lr)
        t_off = time.perf_counter() - t0

        recorder = TraceRecorder()
        t0 = time.perf_counter()
        result_on = optimize(oracle, iters, lr, recorder=recorder)
        pairs.append((t_off, time.perf_counter() - t0))
    return pairs, result_off, result_on, recorder


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=16, help="cloud resolution")
    ap.add_argument("--iters", type=int, default=60, help="optimiser iterations")
    ap.add_argument("--lr", type=float, default=1e-2)
    ap.add_argument("--repeats", type=int, default=7, help="best-of repeats")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="max allowed fractional slowdown of traced vs untraced",
    )
    args = ap.parse_args(argv)
    if args.repeats < 1:
        ap.error("--repeats must be >= 1")
    if args.iters < 1:
        ap.error("--iters must be >= 1")

    problem = LaplaceControlProblem(SquareCloud(args.nx))
    oracle = LaplaceDP(problem)
    # Warm caches (LU factorisation) so both modes time the same work.
    optimize(oracle, 2, args.lr)

    pairs, (c_off, h_off), (c_on, h_on), rec = _paired_times(
        oracle, args.iters, args.lr, args.repeats
    )

    cost_diff = abs(h_off.best_cost - h_on.best_cost)
    ctrl_diff = float(np.max(np.abs(c_off - c_on)))
    t_off = min(t for t, _ in pairs)
    t_on = min(t for _, t in pairs)
    overhead = min(on / off for off, on in pairs) - 1.0
    print(
        f"laplace-dp nx={args.nx} iters={args.iters} ({args.repeats} pairs):\n"
        f"  telemetry off {t_off * 1e3:9.2f} ms (best)\n"
        f"  telemetry on  {t_on * 1e3:9.2f} ms (best)   "
        f"overhead {overhead:+.2%} (min pairwise)\n"
        f"  |cost diff| = {cost_diff:.3e}   |control diff| = {ctrl_diff:.3e}\n"
        f"  records: {len(rec.iterations)} iterations"
    )

    scale = max(abs(h_off.best_cost), 1e-30)
    if cost_diff > 1e-10 * scale + 1e-14:
        print("FAIL: traced final cost deviates from untraced", file=sys.stderr)
        return 1
    if len(rec.iterations) != args.iters:
        print(
            f"FAIL: trace has {len(rec.iterations)} iteration records, "
            f"expected {args.iters}",
            file=sys.stderr,
        )
        return 1
    if overhead > args.tolerance:
        print(
            f"FAIL: telemetry adds {overhead:.1%} overhead "
            f"(budget {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

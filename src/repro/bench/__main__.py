"""Command-line entry point: ``python -m repro.bench``.

Runs the end-to-end reproduction (every method × problem at the active
scale tier) and prints the paper's Tables 1–3 plus the headline series.
``REPRO_FULL=1`` switches to the paper-scale tier.

Options
-------
``--skip-pinn``
    Skip the (slow) PINN line searches; DAL/DP rows only.
``--problem {laplace,ns,all}``
    Restrict to one benchmark problem.
``--trace-dir DIR``
    Attach a :class:`~repro.obs.recorder.TraceRecorder` to every run and
    write one ``<problem>_<method>.jsonl`` convergence trace per runner
    into ``DIR`` (defaults to ``$REPRO_TRACE_DIR`` when set).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.configs import get_scale, trace_dir
from repro.bench.harness import (
    make_laplace_problem,
    make_ns_problem,
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
    run_ns_pinn,
)
from repro.bench.tables import render_performance_table
from repro.obs.recorder import TraceRecorder


def _traced(out_dir, runner, *args, **kwargs):
    """Run ``runner``; when tracing, attach a recorder and export JSONL."""
    if out_dir is None:
        return runner(*args, **kwargs)
    rec = TraceRecorder()
    result = runner(*args, recorder=rec, **kwargs)
    path = os.path.join(
        out_dir, f"{result.problem}_{result.method.lower()}.jsonl"
    )
    rec.to_jsonl(path)
    print(f"    trace -> {path}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation tables.",
    )
    parser.add_argument("--skip-pinn", action="store_true",
                        help="skip the slow PINN line searches")
    parser.add_argument("--problem", choices=("laplace", "ns", "all"),
                        default="all")
    parser.add_argument("--trace-dir", default=trace_dir(), metavar="DIR",
                        help="write per-run convergence traces (JSONL) here")
    args = parser.parse_args(argv)

    scale = get_scale()
    print(f"scale tier: {scale.name}  (set REPRO_FULL=1 for paper scale)\n")
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)

    results = []
    if args.problem in ("laplace", "all"):
        prob = make_laplace_problem(scale)
        print(f"Laplace problem: {prob.cloud.n} nodes, "
              f"{prob.n_control}-dimensional control")
        for name, runner in (("DAL", run_laplace_dal), ("DP", run_laplace_dp)):
            r = _traced(args.trace_dir, runner, prob, scale)
            results.append(r)
            print("  " + r.summary())
        if not args.skip_pinn:
            r = _traced(args.trace_dir, run_laplace_pinn, prob, scale)
            results.append(r)
            print("  " + r.summary()
                  + f"  (omega* = {r.extra['best_omega']:g})")

    if args.problem in ("ns", "all"):
        prob = make_ns_problem(scale)
        print(f"\nNavier-Stokes channel: {prob.cloud.n} nodes, "
              f"Re = {scale.ns.reynolds:g}")
        for name, runner in (("DAL", run_ns_dal), ("DP", run_ns_dp)):
            r = _traced(args.trace_dir, runner, prob, scale)
            results.append(r)
            print("  " + r.summary())
        if not args.skip_pinn:
            r = _traced(args.trace_dir, run_ns_pinn, prob, scale)
            results.append(r)
            print("  " + r.summary()
                  + f"  (physical J = {r.extra['physical_cost']:.3e})")

    print()
    print(render_performance_table(
        results, title=f"TABLE 3 (scale tier: {scale.name})"
    ))
    print(
        "\nPaper (full scale): Laplace J = 4.6e-3 / 1.6e-2 / 2.2e-9,"
        "\n                    NS      J = 8.2e-2 / 1.0e-3 / 2.6e-4"
        "  (DAL / PINN / DP)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

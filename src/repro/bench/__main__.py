"""Command-line entry point: ``python -m repro.bench``.

Runs the end-to-end reproduction (every method × problem at the active
scale tier) and prints the paper's Tables 1–3 plus the headline series.
``REPRO_FULL=1`` switches to the paper-scale tier.

Options
-------
``--methods dal,dp,pinn``
    Comma-separated subset of methods to run (default: all three).
``--skip-pinn``
    Skip the (slow) PINN line searches; equivalent to removing ``pinn``
    from ``--methods``.
``--problem {laplace,ns,all}``
    Restrict to one benchmark problem.
``--trace-dir DIR``
    Attach a :class:`~repro.obs.recorder.TraceRecorder` to every run and
    write one ``<problem>_<method>.jsonl`` convergence trace per runner
    into ``DIR``.  Defaults to ``$REPRO_TRACE_DIR`` when set; the CLI
    flag wins when both are given.
``--profile-dir DIR``
    Install a :class:`~repro.obs.profile.SpanProfiler` (and a fresh
    metrics registry) around every run and write one
    ``<problem>_<method>.trace.json`` Chrome trace plus one
    ``<problem>_<method>.metrics.json`` snapshot per run into ``DIR``.
    Defaults to ``$REPRO_PROFILE_DIR`` when set; the CLI flag wins.
    Render the artifacts with ``python -m repro.obs report DIR/*.json``.
``--ledger-dir DIR``
    Append one :mod:`repro.obs.ledger` entry for this invocation —
    environment fingerprint, config digest, per-run wall/memory/solver/
    cache metrics — to ``DIR/<suite>.jsonl``, refresh the
    ``BENCH_<suite>.json`` snapshot, and print regression verdicts
    against the rolling history.  Defaults to ``$REPRO_LEDGER_DIR`` when
    set; the CLI flag wins.  Inspect with ``python -m repro.obs ledger``.
``--suite NAME`` / ``--ledger-snapshot PATH``
    Ledger suite name (default ``performance``) and snapshot location
    (default ``BENCH_<suite>.json`` in the working directory).
``--watchdog``
    Install a :class:`~repro.obs.health.Watchdog` around every run:
    NaN/Inf telemetry, stalled convergence, and Krylov iteration
    blow-ups are reported live (and recorded into traces when
    ``--trace-dir`` is active).  Defaults on when ``REPRO_WATCHDOG=1``.
``--jobs N``
    Fan the run matrix across ``N`` worker processes (default:
    ``$REPRO_JOBS``, else serial).  With more than one matrix entry the
    runs themselves parallelise (one worker per method × problem) and any
    requested artifacts are additionally merged into a ``bench_merged.*``
    set; with a single entry the PINN ω line search parallelises instead.
    Results are bitwise-identical to a serial run either way.

Subcommands
-----------
``python -m repro.bench serve``
    Load-test the control service (:mod:`repro.serve`): boots a warm
    worker pool, drives ≥8 concurrent clients, checks parity against
    direct ``control.*`` calls, and ledgers throughput + p50/p95/p99
    latency under the ``serve`` suite.  See
    :mod:`repro.bench.serve_bench` for options.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.configs import (
    get_scale,
    ledger_dir,
    profile_dir,
    trace_dir,
    watchdog_enabled,
)
from repro.bench.harness import (
    make_laplace_problem,
    make_ns_problem,
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
    run_ns_pinn,
)
from repro.bench.tables import render_performance_table
from repro.obs.health import Watchdog, watching
from repro.obs.metrics import get_registry, use_registry
from repro.obs.profile import SpanProfiler, metrics_payload, profiling
from repro.obs.recorder import TraceRecorder
from repro.parallel import ParallelEngine, Task, resolve_jobs
from repro.utils.timers import Timer

METHODS = ("dal", "dp", "pinn")

#: The full run matrix, keyed ``(problem, method)`` in canonical order.
RUNNERS = {
    ("laplace", "dal"): run_laplace_dal,
    ("laplace", "dp"): run_laplace_dp,
    ("laplace", "pinn"): run_laplace_pinn,
    ("ns", "dal"): run_ns_dal,
    ("ns", "dp"): run_ns_dp,
    ("ns", "pinn"): run_ns_pinn,
}


def _parse_methods(spec: str) -> "tuple[str, ...]":
    """Validate a ``--methods`` comma list into a subset of METHODS."""
    chosen = tuple(m.strip().lower() for m in spec.split(",") if m.strip())
    unknown = [m for m in chosen if m not in METHODS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown method(s) {', '.join(sorted(set(unknown)))!s}; "
            f"choose from {', '.join(METHODS)}"
        )
    if not chosen:
        raise argparse.ArgumentTypeError("--methods needs at least one method")
    # Preserve canonical order, drop duplicates.
    return tuple(m for m in METHODS if m in chosen)


def _write_profile_artifacts(out_dir, profiler, result) -> None:
    """Export one run's Chrome trace + metrics snapshot into ``out_dir``."""
    stem = f"{result.problem}_{result.method.lower()}"
    meta = {
        "method": result.method,
        "problem": result.problem,
        "wall_time_s": result.wall_time_s,
    }
    trace_path = os.path.join(out_dir, f"{stem}.trace.json")
    profiler.save_chrome_trace(trace_path, meta=meta)
    metrics_path = os.path.join(out_dir, f"{stem}.metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as f:
        json.dump(metrics_payload(profiler, meta=meta), f, indent=1)
    print(f"    profile -> {trace_path}")


def _call(runner, args, kwargs, watch):
    """Invoke ``runner``, optionally under a fresh watchdog."""
    if not watch:
        return runner(*args, **kwargs)
    with watching(Watchdog()) as wd:
        result = runner(*args, **kwargs)
    if wd.counts:
        tally = ", ".join(f"{k}×{v}" for k, v in sorted(wd.counts.items()))
        print(f"    watchdog: {tally}", file=sys.stderr)
    return result


def _run(trace_out, profile_out, runner, *args, collect=False, watch=False, **kwargs):
    """Run ``runner`` with whichever observability layers are requested.

    Tracing attaches a recorder and exports convergence JSONL; profiling
    installs a span profiler plus a fresh metrics registry (so per-run
    counters don't bleed across runs) and exports Chrome-trace + metrics
    JSON; ``collect`` installs the same profiler/registry pair without
    writing artifacts and returns the observability payload the ledger
    mines (phase seconds + registry snapshot); ``watch`` wraps the run
    in a health watchdog.  All default off, leaving the hot loops on
    their no-op paths.

    Returns ``(result, obs)`` where ``obs`` is ``None`` unless profiling
    or collection was active.
    """
    rec = TraceRecorder() if trace_out is not None else None
    if rec is not None:
        kwargs["recorder"] = rec
    obs = None
    if profile_out is not None or collect:
        prof = SpanProfiler()
        with use_registry(), profiling(prof):
            result = _call(runner, args, kwargs, watch)
            if profile_out is not None:
                _write_profile_artifacts(profile_out, prof, result)
            obs = {
                "phase_seconds": prof.phase_seconds(),
                "metrics": get_registry().snapshot(),
            }
    else:
        result = _call(runner, args, kwargs, watch)
    if rec is not None:
        path = os.path.join(
            trace_out, f"{result.problem}_{result.method.lower()}.jsonl"
        )
        rec.to_jsonl(path)
        print(f"    trace -> {path}")
    return result, obs


def _matrix_task(problem_key, method, trace_out, profile_out, collect, watch):
    """One matrix entry, run inside a parallel worker.

    The worker rebuilds the problem from the (environment-derived) scale
    rather than receiving it pickled, so fork and spawn start methods
    behave identically.  Per-run artifacts land in the shared output
    directories under the same stems a serial run uses; the ``(result,
    obs)`` pair pickles back so the parent can assemble ledger entries.
    """
    runner = RUNNERS[(problem_key, method)]
    return _run(
        trace_out, profile_out, runner, scale=get_scale(),
        collect=collect, watch=watch,
    )


def _merge_matrix_artifacts(trace_out, profile_out, results) -> None:
    """Fold per-run artifact files into one ``bench_merged.*`` set."""
    from repro.obs.merge import merge_profile_artifacts, merge_trace_jsonl

    stems = sorted(f"{r.problem}_{r.method.lower()}" for r in results)
    meta = {"merged": "bench matrix", "runs": stems}
    if profile_out is not None:
        traces = [os.path.join(profile_out, f"{s}.trace.json") for s in stems]
        metrics = [os.path.join(profile_out, f"{s}.metrics.json") for s in stems]
        written = merge_profile_artifacts(
            [p for p in traces if os.path.exists(p)],
            [p for p in metrics if os.path.exists(p)],
            os.path.join(profile_out, "bench_merged"),
            meta=meta,
        )
        for path in written:
            print(f"    merged -> {path}")
    if trace_out is not None:
        shards = [
            os.path.join(trace_out, f"{s}.jsonl")
            for s in stems
            if os.path.exists(os.path.join(trace_out, f"{s}.jsonl"))
        ]
        if shards:
            path = os.path.join(trace_out, "bench_merged.jsonl")
            merge_trace_jsonl(shards, path, meta=meta)
            print(f"    merged -> {path}")


def _append_ledger(ledger_out, suite, snapshot_path, scale, jobs,
                   results, run_obs, wall_time_s) -> None:
    """Append this invocation to the ledger, diff it, snapshot it."""
    from repro.obs import ledger as _ledger
    from repro.obs.fingerprint import config_digest, environment_fingerprint

    runs = {}
    for r in results:
        key = f"{r.problem}_{r.method.lower()}"
        runs[key] = _ledger.run_metrics(r, run_obs.get(key))
    if not runs:
        return
    store = _ledger.PerformanceLedger(ledger_out, suite)
    history = store.entries()
    entry = _ledger.build_entry(
        suite=suite,
        runs=runs,
        fingerprint=environment_fingerprint(),
        config_digest=config_digest(scale),
        scale=scale.name,
        jobs=jobs,
        wall_time_s=wall_time_s,
    )
    store.append(entry)
    verdicts = _ledger.compare_entries(entry, history)
    snapshot_path = snapshot_path or f"BENCH_{suite}.json"
    _ledger.write_snapshot(snapshot_path, history + [entry], verdicts)
    print(f"\nledger: {store.path} ({len(history) + 1} entries)")
    print(f"ledger snapshot -> {snapshot_path}")
    print(_ledger.format_verdicts(verdicts))


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.bench.serve_bench import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation tables.",
    )
    parser.add_argument("--methods", type=_parse_methods, default=METHODS,
                        metavar="LIST",
                        help="comma-separated subset of dal,dp,pinn")
    parser.add_argument("--skip-pinn", action="store_true",
                        help="skip the slow PINN line searches")
    parser.add_argument("--problem", choices=("laplace", "ns", "all"),
                        default="all")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write per-run convergence traces (JSONL) here "
                             "(overrides $REPRO_TRACE_DIR)")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="write per-run Chrome traces + metrics JSON here "
                             "(overrides $REPRO_PROFILE_DIR)")
    parser.add_argument("--ledger-dir", default=None, metavar="DIR",
                        help="append this invocation to the performance "
                             "ledger here (overrides $REPRO_LEDGER_DIR)")
    parser.add_argument("--suite", default="performance", metavar="NAME",
                        help="ledger suite name (default: performance)")
    parser.add_argument("--ledger-snapshot", default=None, metavar="PATH",
                        help="where to write the BENCH_<suite>.json snapshot "
                             "(default: BENCH_<suite>.json in the cwd)")
    parser.add_argument("--watchdog", action="store_true",
                        help="monitor runs for NaN/stall/Krylov blow-ups "
                             "(default on with REPRO_WATCHDOG=1)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the run matrix / PINN "
                             "line search (overrides $REPRO_JOBS)")
    parser.add_argument("--batch", action="store_true",
                        help="vectorise the PINN omega candidates through "
                             "vbatch (stacked training; composes with --jobs "
                             "for process x batch parallelism)")
    args = parser.parse_args(argv)

    methods = tuple(m for m in args.methods if not (args.skip_pinn and m == "pinn"))
    trace_out = trace_dir(args.trace_dir)
    profile_out = profile_dir(args.profile_dir)
    ledger_out = ledger_dir(args.ledger_dir)
    watch = watchdog_enabled(args.watchdog)
    collect = ledger_out is not None
    jobs = resolve_jobs(args.jobs)

    scale = get_scale()
    print(f"scale tier: {scale.name}  (set REPRO_FULL=1 for paper scale)")
    print(f"jobs: {jobs}\n" if jobs > 1 else "")
    for out in (trace_out, profile_out, ledger_out):
        if out:
            os.makedirs(out, exist_ok=True)

    problems = tuple(
        p for p in ("laplace", "ns") if args.problem in (p, "all")
    )
    matrix = [(p, m) for p in problems for m in methods]
    fan_matrix = jobs > 1 and len(matrix) > 1

    results = []
    run_obs = {}

    def keep(result, obs) -> None:
        results.append(result)
        run_obs[f"{result.problem}_{result.method.lower()}"] = obs

    with Timer() as total:
        if fan_matrix:
            # One worker per matrix entry; inside a worker the nested-fan-out
            # guard resolves the PINN line search back to serial.  A failed
            # entry loses only its own row of the table.
            engine = ParallelEngine(jobs=jobs, root_seed=0)
            tasks = [
                Task(key=f"{p}_{m}", fn=_matrix_task,
                     args=(p, m, trace_out, profile_out, collect, watch))
                for p, m in matrix
            ]
            for (p, m), res in zip(matrix, engine.run(tasks)):
                if res.ok:
                    value, obs = res.value
                    keep(value, obs)
                    print("  " + value.summary())
                else:
                    detail = (res.error or {}).get("message", res.status)
                    print(f"  {p}/{m}: FAILED ({res.status}: {detail})",
                          file=sys.stderr)
            _merge_matrix_artifacts(trace_out, profile_out, results)
        else:
            if "laplace" in problems:
                prob = make_laplace_problem(scale)
                print(f"Laplace problem: {prob.cloud.n} nodes, "
                      f"{prob.n_control}-dimensional control")
                for name, runner in (("dal", run_laplace_dal),
                                     ("dp", run_laplace_dp)):
                    if name not in methods:
                        continue
                    r, obs = _run(trace_out, profile_out, runner, prob, scale,
                                  collect=collect, watch=watch)
                    keep(r, obs)
                    print("  " + r.summary())
                if "pinn" in methods:
                    r, obs = _run(trace_out, profile_out, run_laplace_pinn,
                                  prob, scale, jobs=jobs, batch=args.batch,
                                  collect=collect, watch=watch)
                    keep(r, obs)
                    print("  " + r.summary()
                          + f"  (omega* = {r.extra['best_omega']:g})")

            if "ns" in problems:
                prob = make_ns_problem(scale)
                print(f"\nNavier-Stokes channel: {prob.cloud.n} nodes, "
                      f"Re = {scale.ns.reynolds:g}")
                for name, runner in (("dal", run_ns_dal), ("dp", run_ns_dp)):
                    if name not in methods:
                        continue
                    r, obs = _run(trace_out, profile_out, runner, prob, scale,
                                  collect=collect, watch=watch)
                    keep(r, obs)
                    print("  " + r.summary())
                if "pinn" in methods:
                    r, obs = _run(trace_out, profile_out, run_ns_pinn, prob,
                                  scale, jobs=jobs, batch=args.batch,
                                  collect=collect, watch=watch)
                    keep(r, obs)
                    print("  " + r.summary()
                          + f"  (physical J = {r.extra['physical_cost']:.3e})")

    print()
    print(render_performance_table(
        results, title=f"TABLE 3 (scale tier: {scale.name})"
    ))
    print(
        "\nPaper (full scale): Laplace J = 4.6e-3 / 1.6e-2 / 2.2e-9,"
        "\n                    NS      J = 8.2e-2 / 1.0e-3 / 2.6e-4"
        "  (DAL / PINN / DP)"
    )
    if ledger_out is not None:
        _append_ledger(
            ledger_out, args.suite, args.ledger_snapshot, scale, jobs,
            results, run_obs, total.elapsed,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

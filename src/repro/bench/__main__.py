"""Command-line entry point: ``python -m repro.bench``.

Runs the end-to-end reproduction (every method × problem at the active
scale tier) and prints the paper's Tables 1–3 plus the headline series.
``REPRO_FULL=1`` switches to the paper-scale tier.

Options
-------
``--methods dal,dp,pinn``
    Comma-separated subset of methods to run (default: all three).
``--skip-pinn``
    Skip the (slow) PINN line searches; equivalent to removing ``pinn``
    from ``--methods``.
``--problem {laplace,ns,all}``
    Restrict to one benchmark problem.
``--trace-dir DIR``
    Attach a :class:`~repro.obs.recorder.TraceRecorder` to every run and
    write one ``<problem>_<method>.jsonl`` convergence trace per runner
    into ``DIR``.  Defaults to ``$REPRO_TRACE_DIR`` when set; the CLI
    flag wins when both are given.
``--profile-dir DIR``
    Install a :class:`~repro.obs.profile.SpanProfiler` (and a fresh
    metrics registry) around every run and write one
    ``<problem>_<method>.trace.json`` Chrome trace plus one
    ``<problem>_<method>.metrics.json`` snapshot per run into ``DIR``.
    Defaults to ``$REPRO_PROFILE_DIR`` when set; the CLI flag wins.
    Render the artifacts with ``python -m repro.obs report DIR/*.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.configs import get_scale, profile_dir, trace_dir
from repro.bench.harness import (
    make_laplace_problem,
    make_ns_problem,
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
    run_ns_pinn,
)
from repro.bench.tables import render_performance_table
from repro.obs.metrics import get_registry, use_registry
from repro.obs.profile import SpanProfiler, profiling
from repro.obs.recorder import TraceRecorder

METHODS = ("dal", "dp", "pinn")


def _parse_methods(spec: str) -> "tuple[str, ...]":
    """Validate a ``--methods`` comma list into a subset of METHODS."""
    chosen = tuple(m.strip().lower() for m in spec.split(",") if m.strip())
    unknown = [m for m in chosen if m not in METHODS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown method(s) {', '.join(sorted(set(unknown)))!s}; "
            f"choose from {', '.join(METHODS)}"
        )
    if not chosen:
        raise argparse.ArgumentTypeError("--methods needs at least one method")
    # Preserve canonical order, drop duplicates.
    return tuple(m for m in METHODS if m in chosen)


def _write_profile_artifacts(out_dir, profiler, result) -> None:
    """Export one run's Chrome trace + metrics snapshot into ``out_dir``."""
    stem = f"{result.problem}_{result.method.lower()}"
    meta = {
        "method": result.method,
        "problem": result.problem,
        "wall_time_s": result.wall_time_s,
    }
    trace_path = os.path.join(out_dir, f"{stem}.trace.json")
    profiler.save_chrome_trace(trace_path, meta=meta)
    metrics_path = os.path.join(out_dir, f"{stem}.metrics.json")
    payload = {
        "kind": "repro.profile.metrics",
        "meta": meta,
        "phase_seconds": profiler.phase_seconds(),
        "spans": profiler.summary_rows(),
        "metrics": get_registry().snapshot(),
    }
    with open(metrics_path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)
    print(f"    profile -> {trace_path}")


def _run(trace_out, profile_out, runner, *args, **kwargs):
    """Run ``runner`` with whichever observability layers are requested.

    Tracing attaches a recorder and exports convergence JSONL; profiling
    installs a span profiler plus a fresh metrics registry (so per-run
    counters don't bleed across runs) and exports Chrome-trace + metrics
    JSON.  Both default off, leaving the hot loops on their no-op paths.
    """
    rec = TraceRecorder() if trace_out is not None else None
    if rec is not None:
        kwargs["recorder"] = rec
    if profile_out is not None:
        prof = SpanProfiler()
        with use_registry(), profiling(prof):
            result = runner(*args, **kwargs)
            _write_profile_artifacts(profile_out, prof, result)
    else:
        result = runner(*args, **kwargs)
    if rec is not None:
        path = os.path.join(
            trace_out, f"{result.problem}_{result.method.lower()}.jsonl"
        )
        rec.to_jsonl(path)
        print(f"    trace -> {path}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation tables.",
    )
    parser.add_argument("--methods", type=_parse_methods, default=METHODS,
                        metavar="LIST",
                        help="comma-separated subset of dal,dp,pinn")
    parser.add_argument("--skip-pinn", action="store_true",
                        help="skip the slow PINN line searches")
    parser.add_argument("--problem", choices=("laplace", "ns", "all"),
                        default="all")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write per-run convergence traces (JSONL) here "
                             "(overrides $REPRO_TRACE_DIR)")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="write per-run Chrome traces + metrics JSON here "
                             "(overrides $REPRO_PROFILE_DIR)")
    args = parser.parse_args(argv)

    methods = tuple(m for m in args.methods if not (args.skip_pinn and m == "pinn"))
    trace_out = trace_dir(args.trace_dir)
    profile_out = profile_dir(args.profile_dir)

    scale = get_scale()
    print(f"scale tier: {scale.name}  (set REPRO_FULL=1 for paper scale)\n")
    for out in (trace_out, profile_out):
        if out:
            os.makedirs(out, exist_ok=True)

    results = []
    if args.problem in ("laplace", "all"):
        prob = make_laplace_problem(scale)
        print(f"Laplace problem: {prob.cloud.n} nodes, "
              f"{prob.n_control}-dimensional control")
        for name, runner in (("dal", run_laplace_dal), ("dp", run_laplace_dp)):
            if name not in methods:
                continue
            r = _run(trace_out, profile_out, runner, prob, scale)
            results.append(r)
            print("  " + r.summary())
        if "pinn" in methods:
            r = _run(trace_out, profile_out, run_laplace_pinn, prob, scale)
            results.append(r)
            print("  " + r.summary()
                  + f"  (omega* = {r.extra['best_omega']:g})")

    if args.problem in ("ns", "all"):
        prob = make_ns_problem(scale)
        print(f"\nNavier-Stokes channel: {prob.cloud.n} nodes, "
              f"Re = {scale.ns.reynolds:g}")
        for name, runner in (("dal", run_ns_dal), ("dp", run_ns_dp)):
            if name not in methods:
                continue
            r = _run(trace_out, profile_out, runner, prob, scale)
            results.append(r)
            print("  " + r.summary())
        if "pinn" in methods:
            r = _run(trace_out, profile_out, run_ns_pinn, prob, scale)
            results.append(r)
            print("  " + r.summary()
                  + f"  (physical J = {r.extra['physical_cost']:.3e})")

    print()
    print(render_performance_table(
        results, title=f"TABLE 3 (scale tier: {scale.name})"
    ))
    print(
        "\nPaper (full scale): Laplace J = 4.6e-3 / 1.6e-2 / 2.2e-9,"
        "\n                    NS      J = 8.2e-2 / 1.0e-3 / 2.6e-4"
        "  (DAL / PINN / DP)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke gate: the fused codegen tier must be fast *and* exact.

Three checks, all cheap enough for every push:

1. **Optimisation parity** — the tier-0 Laplace DP loop must reach the
   same final cost and control under ``compile="codegen"`` as under the
   eager tape, with zero codegen→replay fallbacks (the DP program —
   including its opaque LU solves, which run through recorded closures —
   must actually lower).
2. **Fusion coverage** — the lowered DP program's symbolic-op fraction
   must clear ``--min-fused-fraction``; a silent classifier regression
   that demotes ops to opaque closures would otherwise keep parity while
   quietly giving the speedup back.
3. **Speedup** — one PINN-loss ``value_and_grad_tree`` call (the paper's
   training unit, fully symbolic after lowering) must run at least
   ``--min-speedup`` (default 1.5x) faster under codegen than under the
   replay tier, with bit-identical value and gradients in both tiers.

Wall times, the measured speedup, and the fusion/arena summary are
written to ``codegen_speedup.json`` when ``--out-dir`` is given —
honestly, including failures.

Usage::

    python -m repro.bench.codegen_smoke [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.autodiff.compile import compiled_value_and_grad_tree
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.control.pinn import LaplacePINN, PINNTrainConfig
from repro.nn.pytree import tree_flatten, value_and_grad_tree
from repro.pde.laplace import LaplaceControlProblem


def _best_of(fn, rounds: int, reps: int) -> float:
    fn()  # warm up: trace/lower/compile, page in buffers
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _codegen_entries(vg):
    return [e for e in vg._cache.values() if getattr(e, "is_codegen", False)]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=10, help="DP cloud resolution")
    ap.add_argument("--iters", type=int, default=30, help="DP optimiser iterations")
    ap.add_argument("--hidden", type=int, nargs="+", default=[20, 20],
                    help="PINN hidden layer widths")
    ap.add_argument("--n-interior", type=int, default=100,
                    help="PINN interior collocation points")
    ap.add_argument("--rounds", type=int, default=7, help="timing rounds")
    ap.add_argument("--reps", type=int, default=50, help="calls per round")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required codegen/replay speedup on the PINN loss")
    ap.add_argument("--min-fused-fraction", type=float, default=0.5,
                    help="required symbolic-op fraction of the DP program")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write codegen_speedup.json here")
    args = ap.parse_args(argv)

    failures = []

    # ------------------------------------------------------------------
    # 1. DP optimisation parity (eager vs codegen), zero fallbacks.
    # ------------------------------------------------------------------
    problem = LaplaceControlProblem(SquareCloud(args.nx))
    c_e, h_e = optimize(LaplaceDP(problem), args.iters, 1e-2)
    dp_cg = LaplaceDP(problem, compile="codegen")
    c_c, h_c = optimize(dp_cg, args.iters, 1e-2)

    cost_diff = abs(h_e.best_cost - h_c.best_cost)
    ctrl_diff = float(np.max(np.abs(c_e - c_c)))
    info = dp_cg._vg.cache_info()
    scale = max(abs(h_e.best_cost), 1e-30)
    if cost_diff > 1e-10 * scale + 1e-14:
        failures.append(f"DP final cost deviates: |diff| = {cost_diff:.3e}")
    if info["codegen_fallbacks"]:
        failures.append(
            f"DP program fell back to replay {info['codegen_fallbacks']} time(s)"
        )
    if not info["codegen_programs"]:
        failures.append("DP loop produced no codegen program")

    # ------------------------------------------------------------------
    # 2. Fusion coverage of the lowered DP program.
    # ------------------------------------------------------------------
    entries = _codegen_entries(dp_cg._vg)
    fused_fraction = min(
        (e.stats.fused_fraction for e in entries), default=0.0
    )
    st = entries[0].stats if entries else None
    if fused_fraction < args.min_fused_fraction:
        failures.append(
            f"fused-op fraction {fused_fraction:.2f} < "
            f"{args.min_fused_fraction:.2f}"
        )

    # ------------------------------------------------------------------
    # 3. PINN loss: bit-exact parity + speedup over the replay tier.
    # ------------------------------------------------------------------
    cfg = PINNTrainConfig(
        epochs=1, n_interior=args.n_interior, n_boundary=30
    )
    pinn = LaplacePINN(
        problem,
        state_hidden=tuple(args.hidden),
        control_hidden=tuple(args.hidden),
        config=cfg,
    )
    params = pinn.init_params(seed=0)
    loss = lambda p: pinn.loss(p, omega=1.0)  # noqa: E731

    v_ref, g_ref = value_and_grad_tree(loss)(params)
    flat_ref, _ = tree_flatten(g_ref)
    times = {}
    for mode in ("replay", "codegen"):
        vg = compiled_value_and_grad_tree(loss, mode=mode)
        v, g = vg(params)
        flat, _ = tree_flatten(g)
        gdiff = max(
            float(np.max(np.abs(a - b))) if a.size else 0.0
            for a, b in zip(flat_ref, flat)
        )
        if v != v_ref or gdiff != 0.0:
            failures.append(
                f"PINN {mode} gradients deviate from eager (max {gdiff:.3e})"
            )
        if mode == "codegen" and vg.cache_info()["codegen_fallbacks"]:
            failures.append("PINN loss program fell back to replay")
        times[mode] = _best_of(lambda: vg(params), args.rounds, args.reps)

    speedup = times["replay"] / times["codegen"]
    if speedup < args.min_speedup:
        failures.append(
            f"PINN codegen speedup {speedup:.2f}x < {args.min_speedup:.2f}x"
        )

    print(
        f"laplace-dp nx={args.nx} iters={args.iters}:\n"
        f"  |cost diff| = {cost_diff:.3e}   |control diff| = {ctrl_diff:.3e}   "
        f"fallbacks = {info['codegen_fallbacks']}\n"
        f"  fused-op fraction = {fused_fraction:.2f}"
        + (
            f"   (groups: {st.n_fused_groups}, fused ops: {st.n_fused}, "
            f"arena: {st.arena_bytes} B / {st.arena_slots} slots)"
            if st
            else ""
        )
        + "\n"
        f"pinn-loss hidden={tuple(args.hidden)} ni={args.n_interior} "
        f"(best of {args.rounds}x{args.reps}):\n"
        f"  replay  {times['replay'] * 1e3:8.3f} ms\n"
        f"  codegen {times['codegen'] * 1e3:8.3f} ms   "
        f"speedup {speedup:.2f}x (gate {args.min_speedup:.2f}x)"
    )

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        payload = {
            "dp": {
                "nx": args.nx,
                "iters": args.iters,
                "cost_diff": cost_diff,
                "control_diff": ctrl_diff,
                "codegen_fallbacks": info["codegen_fallbacks"],
                "fused_fraction": fused_fraction,
                "fusion_groups": st.n_fused_groups if st else 0,
                "fused_ops": st.n_fused if st else 0,
                "arena_bytes": st.arena_bytes if st else 0,
                "arena_slots": st.arena_slots if st else 0,
            },
            "pinn": {
                "hidden": list(args.hidden),
                "n_interior": args.n_interior,
                "replay_seconds": times["replay"],
                "codegen_seconds": times["codegen"],
                "speedup": speedup,
                "min_speedup": args.min_speedup,
            },
            "ok": not failures,
            "failures": failures,
        }
        path = os.path.join(args.out_dir, "codegen_speedup.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

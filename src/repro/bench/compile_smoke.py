"""CI smoke benchmark: compiled replay must not regress below eager.

Runs the Laplace DP iteration loop at the smallest benchmarked scale in
both execution modes and compares best-of-``repeats`` wall times.  Exits
nonzero when the compiled engine is more than ``--tolerance`` slower
than eager (default 10 %) or when the final costs disagree — a cheap
guard that keeps the replay fast path honest on every push.

Usage::

    python -m repro.bench.compile_smoke [--nx 10] [--iters 30]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.pde.laplace import LaplaceControlProblem


def _best_time(oracle, iters: int, lr: float, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = optimize(oracle, iters, lr)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=10, help="cloud resolution")
    ap.add_argument("--iters", type=int, default=30, help="optimiser iterations")
    ap.add_argument("--lr", type=float, default=1e-2)
    ap.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max allowed fractional slowdown of compiled vs eager",
    )
    args = ap.parse_args(argv)
    if args.repeats < 1:
        ap.error("--repeats must be >= 1")
    if args.iters < 1:
        ap.error("--iters must be >= 1")

    problem = LaplaceControlProblem(SquareCloud(args.nx))
    t_eager, (c_e, h_e) = _best_time(
        LaplaceDP(problem), args.iters, args.lr, args.repeats
    )
    t_comp, (c_c, h_c) = _best_time(
        LaplaceDP(problem, compile=True), args.iters, args.lr, args.repeats
    )

    cost_diff = abs(h_e.best_cost - h_c.best_cost)
    ctrl_diff = float(np.max(np.abs(c_e - c_c)))
    speedup = t_eager / t_comp if t_comp > 0 else float("inf")
    print(
        f"laplace-dp nx={args.nx} iters={args.iters} (best of {args.repeats}):\n"
        f"  eager    {t_eager * 1e3:9.2f} ms\n"
        f"  compiled {t_comp * 1e3:9.2f} ms   speedup {speedup:.2f}x\n"
        f"  |cost diff| = {cost_diff:.3e}   |control diff| = {ctrl_diff:.3e}"
    )

    scale = max(abs(h_e.best_cost), 1e-30)
    if cost_diff > 1e-10 * scale + 1e-14:
        print("FAIL: compiled final cost deviates from eager", file=sys.stderr)
        return 1
    if t_comp > t_eager * (1.0 + args.tolerance):
        print(
            f"FAIL: compiled is {t_comp / t_eager - 1.0:.1%} slower than eager "
            f"(tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Global collocation assembly in coefficient space.

Solving :math:`\\mathcal D(u) = q` with boundary conditions means
collocating the interpolant at the nodes: internal nodes get PDE rows,
Dirichlet nodes identity rows, Neumann nodes normal-derivative rows, Robin
nodes the mixed rows, followed by the ``M`` polynomial moment constraints.
Because the cloud is canonically ordered, the blocks are contiguous.

A general second-order linear operator is described by
:class:`LinearOperator2D`:

.. math::

    \\mathcal D = a\\,\\Delta + b\\,\\partial_x + c\\,\\partial_y + d\\,I

with spatially varying coefficient arrays — enough for Laplace, Poisson,
advection–diffusion and the frozen-advection Navier–Stokes momentum
operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.cloud.base import BoundaryKind, Cloud
from repro.obs.profile import profiled
from repro.rbf.kernels import Kernel
from repro.rbf.polynomials import (
    n_poly_terms,
    poly_dx_matrix,
    poly_dy_matrix,
    poly_lap_matrix,
    poly_matrix,
)

Coefficient = Union[float, np.ndarray]


@dataclass(frozen=True)
class LinearOperator2D:
    """``a·Δ + b·∂x + c·∂y + d·I`` with scalar or per-point coefficients."""

    lap: Coefficient = 0.0
    dx: Coefficient = 0.0
    dy: Coefficient = 0.0
    identity: Coefficient = 0.0

    def row_matrix(
        self,
        kernel: Kernel,
        points: np.ndarray,
        centers: np.ndarray,
        degree: int,
    ) -> np.ndarray:
        """Rows ``[D φ_j | D P_m]`` of the operator at ``points``."""
        npts = points.shape[0]

        def col(c: Coefficient) -> np.ndarray:
            arr = np.asarray(c, dtype=np.float64)
            if arr.ndim == 0:
                return np.full((npts, 1), float(arr))
            if arr.shape != (npts,):
                raise ValueError(
                    f"coefficient must be scalar or shape ({npts},), got {arr.shape}"
                )
            return arr[:, None]

        a, b, c, d = (col(self.lap), col(self.dx), col(self.dy), col(self.identity))
        gx, gy = kernel.grad_matrices(points, centers)
        phi_block = (
            a * kernel.lap_matrix(points, centers)
            + b * gx
            + c * gy
            + d * kernel.phi_matrix(points, centers)
        )
        poly_block = (
            a * poly_lap_matrix(points, degree)
            + b * poly_dx_matrix(points, degree)
            + c * poly_dy_matrix(points, degree)
            + d * poly_matrix(points, degree)
        )
        return np.concatenate([phi_block, poly_block], axis=1)


def interpolation_matrix(
    kernel: Kernel, centers: np.ndarray, degree: int
) -> np.ndarray:
    """The symmetric ``(N+M)×(N+M)`` RBF interpolation system

    ``[[Φ, P], [Pᵀ, 0]]`` used both for interpolation fits and for the
    nodal differentiation matrices.
    """
    n = centers.shape[0]
    m = n_poly_terms(degree)
    phi = kernel.phi_matrix(centers, centers)
    p = poly_matrix(centers, degree)
    out = np.zeros((n + m, n + m))
    out[:n, :n] = phi
    out[:n, n:] = p
    out[n:, :n] = p.T
    return out


def operator_eval_matrix(
    kernel: Kernel,
    op: LinearOperator2D,
    points: np.ndarray,
    centers: np.ndarray,
    degree: int,
) -> np.ndarray:
    """``(Np)×(N+M)`` rows of an operator against the full basis."""
    return op.row_matrix(kernel, points, centers, degree)


@profiled("rbf.assemble", "solver")
def assemble_collocation_system(
    cloud: Cloud,
    kernel: Kernel,
    degree: int,
    operator: LinearOperator2D,
    robin_beta: Optional[Dict[str, Coefficient]] = None,
) -> Tuple[np.ndarray, Dict[str, slice]]:
    """Assemble the square collocation matrix on the (λ, γ) unknowns.

    Returns the ``(N+M)×(N+M)`` matrix and a mapping from row-block name
    (``"internal"``, ``"dirichlet"``, ``"neumann"``, ``"robin"``,
    ``"moment"``) to its row slice; the caller fills the matching
    right-hand-side entries (PDE source, boundary data, zeros).
    """
    centers = cloud.points
    n = cloud.n
    m = n_poly_terms(degree)
    rows = np.zeros((n + m, n + m))
    blocks: Dict[str, slice] = {}
    cursor = 0

    # Internal rows: the PDE operator.
    idx = cloud.indices_of_kind(BoundaryKind.INTERNAL)
    if idx.size:
        rows[cursor : cursor + idx.size] = operator.row_matrix(
            kernel, cloud.points[idx], centers, degree
        )
    blocks["internal"] = slice(cursor, cursor + idx.size)
    cursor += idx.size

    # Dirichlet rows: identity operator.
    idx = cloud.indices_of_kind(BoundaryKind.DIRICHLET)
    if idx.size:
        ident = LinearOperator2D(identity=1.0)
        rows[cursor : cursor + idx.size] = ident.row_matrix(
            kernel, cloud.points[idx], centers, degree
        )
    blocks["dirichlet"] = slice(cursor, cursor + idx.size)
    cursor += idx.size

    # Neumann rows: ∂/∂n.
    idx = cloud.indices_of_kind(BoundaryKind.NEUMANN)
    if idx.size:
        nrm = cloud.normals[idx]
        op_n = LinearOperator2D(dx=nrm[:, 0], dy=nrm[:, 1])
        rows[cursor : cursor + idx.size] = op_n.row_matrix(
            kernel, cloud.points[idx], centers, degree
        )
    blocks["neumann"] = slice(cursor, cursor + idx.size)
    cursor += idx.size

    # Robin rows: ∂/∂n + β·I, with per-group β.
    idx = cloud.indices_of_kind(BoundaryKind.ROBIN)
    if idx.size:
        beta = np.zeros(idx.size)
        if robin_beta:
            pos = {node: k for k, node in enumerate(idx)}
            for g, b in robin_beta.items():
                gidx = cloud.groups[g]
                beta[[pos[i] for i in gidx]] = np.broadcast_to(
                    np.asarray(b, dtype=np.float64), gidx.shape
                )
        nrm = cloud.normals[idx]
        op_r = LinearOperator2D(dx=nrm[:, 0], dy=nrm[:, 1], identity=beta)
        rows[cursor : cursor + idx.size] = op_r.row_matrix(
            kernel, cloud.points[idx], centers, degree
        )
    blocks["robin"] = slice(cursor, cursor + idx.size)
    cursor += idx.size

    # Moment constraints: Pᵀ λ = 0.
    if m:
        rows[cursor : cursor + m, :n] = poly_matrix(centers, degree).T
    blocks["moment"] = slice(cursor, cursor + m)
    return rows, blocks

"""Radial kernels and their pairwise value/derivative matrices.

For a kernel :math:`\\phi(r)` centred at :math:`x_j`, the quantities the
collocation assembly needs at an evaluation point :math:`x` are

.. math::

    \\phi(r), \\qquad
    \\nabla_x \\phi = \\frac{\\phi'(r)}{r}(x - x_j), \\qquad
    \\Delta_x \\phi = \\phi''(r) + \\frac{\\phi'(r)}{r} \\quad (2\\text{-D}).

All matrices are built with fully vectorised broadcasting (no Python
loops), which per the HPC guides is where the assembly time goes.

The paper's default is the **polyharmonic cubic spline** ``r³`` — chosen
precisely because it has *no shape parameter to tune* and its derivative
quantities (``φ'/r = 3r``, ``Δφ = 9r``) are smooth at ``r = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

_EPS_R = 1e-14  # guard for r → 0 in ratios φ'(r)/r of singular kernels


@dataclass(frozen=True)
class Kernel:
    """A radial kernel with the radial derivatives assembly needs.

    Attributes
    ----------
    name:
        Registry key.
    phi:
        ``φ(r)``.
    dphi_over_r:
        ``φ'(r)/r`` (the combination that appears in ∇φ; regular at 0 for
        the kernels provided).
    lap:
        ``φ''(r) + φ'(r)/r`` — the 2-D Laplacian of ``φ(‖x‖)``.
    """

    name: str
    phi: Callable[[np.ndarray], np.ndarray]
    dphi_over_r: Callable[[np.ndarray], np.ndarray]
    lap: Callable[[np.ndarray], np.ndarray]

    # ------------------------------------------------------------------
    # Pairwise matrices: rows = evaluation points, cols = centres.
    # ------------------------------------------------------------------
    def _pairwise(self, x: np.ndarray, centers: np.ndarray):
        x = np.asarray(x, dtype=np.float64)
        centers = np.asarray(centers, dtype=np.float64)
        diff = x[:, None, :] - centers[None, :, :]  # (Np, N, 2)
        r = np.sqrt(np.sum(diff * diff, axis=2))  # (Np, N)
        return diff, r

    def phi_matrix(self, x: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """``Φ[i, j] = φ(‖x_i − c_j‖)``."""
        _, r = self._pairwise(x, centers)
        return self.phi(r)

    def grad_matrices(
        self, x: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(∂Φ/∂x, ∂Φ/∂y)`` matrices."""
        diff, r = self._pairwise(x, centers)
        w = self.dphi_over_r(r)
        return w * diff[:, :, 0], w * diff[:, :, 1]

    def lap_matrix(self, x: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """``ΔΦ[i, j] = Δ_x φ(‖x_i − c_j‖)``."""
        _, r = self._pairwise(x, centers)
        return self.lap(r)

    def normal_matrix(
        self, x: np.ndarray, centers: np.ndarray, normals: np.ndarray
    ) -> np.ndarray:
        """``∂Φ/∂n`` with one outward normal per evaluation point."""
        gx, gy = self.grad_matrices(x, centers)
        normals = np.asarray(normals, dtype=np.float64)
        return normals[:, 0:1] * gx + normals[:, 1:2] * gy


def polyharmonic(order: int = 3) -> Kernel:
    """Polyharmonic spline ``φ(r) = r^k`` for odd ``k`` (paper default k=3).

    ``φ'/r = k r^{k-2}`` and ``Δφ = k² r^{k-2}`` in 2-D — both smooth for
    ``k ≥ 3``.
    """
    if order < 1 or order % 2 == 0:
        raise ValueError("polyharmonic order must be odd and >= 1")
    k = float(order)

    if order == 1:
        # φ=r: φ'/r = 1/r and Δφ = 1/r are singular at r=0; guard them.
        return Kernel(
            name="polyharmonic1",
            phi=lambda r: r,
            dphi_over_r=lambda r: 1.0 / np.maximum(r, _EPS_R),
            lap=lambda r: 1.0 / np.maximum(r, _EPS_R),
        )

    return Kernel(
        name=f"polyharmonic{order}",
        phi=lambda r: r**k,
        dphi_over_r=lambda r: k * r ** (k - 2.0),
        lap=lambda r: (k * k) * r ** (k - 2.0),
    )


def gaussian(shape: float = 3.0) -> Kernel:
    """Gaussian ``φ(r) = exp(−(εr)²)`` with shape parameter ε.

    ``φ' = −2ε²r φ`` so ``φ'/r = −2ε² φ`` and
    ``Δφ = (4ε⁴r² − 4ε²) φ`` in 2-D.
    """
    if shape <= 0:
        raise ValueError("shape parameter must be positive")
    e2 = shape * shape

    def phi(r: np.ndarray) -> np.ndarray:
        return np.exp(-e2 * r * r)

    return Kernel(
        name=f"gaussian(eps={shape:g})",
        phi=phi,
        dphi_over_r=lambda r: -2.0 * e2 * phi(r),
        lap=lambda r: (4.0 * e2 * e2 * r * r - 4.0 * e2) * phi(r),
    )


def multiquadric(shape: float = 3.0) -> Kernel:
    """Multiquadric ``φ(r) = sqrt(1 + (εr)²)`` (Kansa's original kernel).

    ``φ'/r = ε²/φ`` and ``Δφ = ε²(φ² + 1)/φ³`` in 2-D.
    """
    if shape <= 0:
        raise ValueError("shape parameter must be positive")
    e2 = shape * shape

    def phi(r: np.ndarray) -> np.ndarray:
        return np.sqrt(1.0 + e2 * r * r)

    return Kernel(
        name=f"multiquadric(eps={shape:g})",
        phi=phi,
        dphi_over_r=lambda r: e2 / phi(r),
        lap=lambda r: e2 * (phi(r) ** 2 + 1.0) / phi(r) ** 3,
    )


def get_kernel(name: str, **kwargs) -> Kernel:
    """Kernel factory by name: ``phs3``, ``phs5``, ``gaussian``, ``mq``."""
    name = name.lower()
    if name in ("phs3", "cubic", "polyharmonic3"):
        return polyharmonic(3)
    if name in ("phs5", "polyharmonic5"):
        return polyharmonic(5)
    if name in ("gaussian", "ga"):
        return gaussian(**kwargs) if kwargs else gaussian()
    if name in ("mq", "multiquadric"):
        return multiquadric(**kwargs) if kwargs else multiquadric()
    raise ValueError(f"unknown kernel {name!r}")

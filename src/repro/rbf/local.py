"""Local RBF-FD: sparse differentiation matrices from per-node stencils.

The paper's global collocation builds dense ``N×N`` operators — accurate
but ``O(N³)`` to factor and ``O(N²)`` to store, which is why its future
work aims at "massively parallelising the framework".  RBF-FD (Tolstykh
2000, ref. [44] of the paper) is the standard scalable alternative: each
node gets a small stencil of its ``k`` nearest neighbours; a *local*
polyharmonic interpolation system yields that node's differentiation
weights; the assembled operators are sparse with ``k`` nonzeros per row.

The stencil systems all share one shape ``(k+M)×(k+M)``, so the weight
computation is batched through ``numpy.linalg.solve`` on a ``(c, k+M,
k+M)`` stack — no Python-level loop over nodes.  Assembly is *chunked*:
nodes are processed in blocks sized so the batched temporaries stay
within a fixed memory budget, which keeps peak assembly memory flat in
``N`` (the 100k-node regime of ``bench_scaling_cloud``) and is bitwise
identical to a monolithic pass for any chunking.

This module is an *extension* (the paper's experiments all use the global
solver); the ablation benchmark ``bench_ablation_local_rbf.py`` compares
the two regimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cloud.base import BoundaryKind, Cloud
from repro.cloud.neighbors import nearest_neighbors
from repro.obs.metrics import get_registry
from repro.obs.profile import profiled
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.polynomials import (
    n_poly_terms,
    poly_dx_matrix,
    poly_dy_matrix,
    poly_lap_matrix,
    poly_matrix,
)


@dataclass
class LocalOperators:
    """Sparse nodal operators from RBF-FD stencils.

    Attributes mirror :class:`repro.rbf.operators.NodalOperators` but the
    matrices are ``scipy.sparse.csr_matrix`` with ``stencil_size``
    nonzeros per row.  ``build_seconds`` records the stencil-assembly
    wall time (the telemetry layer reports it as a ``factorize`` event);
    :attr:`nnz` is the total nonzero count across the three operators.
    """

    cloud: Cloud
    kernel: Kernel
    degree: int
    stencil_size: int
    dx: sp.csr_matrix
    dy: sp.csr_matrix
    lap: sp.csr_matrix
    normal: sp.csr_matrix
    build_seconds: float = 0.0

    @property
    def nnz(self) -> int:
        """Total stored nonzeros of ``∂x``, ``∂y`` and ``Δ``."""
        return int(self.dx.nnz + self.dy.nnz + self.lap.nnz)


def default_stencil_size(degree: int) -> int:
    """The usual RBF-FD heuristic: at least twice the polynomial count."""
    return max(2 * n_poly_terms(degree) + 1, 12)


#: Target size of the stencil-assembly temporaries per chunk.  The
#: dominant intermediates are the ``(c, k, k, 2)`` pairwise-difference
#: array and the ``(c, k+m, k+m)`` batched saddle systems; capping their
#: footprint keeps peak assembly memory flat in ``N`` (a 100k-node cloud
#: monolithically materialises ~GBs of them).
_CHUNK_TARGET_BYTES = 1 << 26  # 64 MiB


def _auto_chunk_size(k: int, m: int) -> int:
    """Nodes per chunk so the per-chunk temporaries stay ~64 MiB."""
    per_node = 8 * (3 * k * k * 2 + 4 * (k + m) * (k + m))
    return max(256, _CHUNK_TARGET_BYTES // max(per_node, 1))


def _stencil_weights(
    pts: np.ndarray, kernel: Kernel, degree: int, m: int
) -> dict:
    """RBF-FD weights for one chunk of locally-shifted stencils.

    ``pts`` is the ``(c, k, 2)`` block of stencil coordinates shifted so
    each evaluation node sits at the local origin.  Returns the ``(c, k)``
    weight blocks for ``dx``/``dy``/``lap``.  Every operation is either
    elementwise or a per-matrix LAPACK solve on the ``(c, k+m, k+m)``
    stack, so the results are bitwise independent of how nodes are
    grouped into chunks — the property the chunked assembly relies on
    (and the Hypothesis suite pins).
    """
    c, k, _ = pts.shape

    # Batched local interpolation systems A: (c, k+m, k+m).
    diff = pts[:, :, None, :] - pts[:, None, :, :]  # (c, k, k, 2)
    r = np.sqrt(np.sum(diff * diff, axis=3))
    A = np.zeros((c, k + m, k + m))
    A[:, :k, :k] = kernel.phi(r)
    flat = pts.reshape(-1, 2)
    P = poly_matrix(flat, degree).reshape(c, k, m)
    A[:, :k, k:] = P
    A[:, k:, :k] = P.transpose(0, 2, 1)

    # Right-hand sides: each operator L applied to φ(x_i − ·) and P at the
    # local origin.  With the shift, the evaluation point is 0, so the
    # distance to stencil point j is ‖pts[i, j]‖ and the gradient factor
    # is (0 − pts[i, j]).
    rr = np.sqrt(np.sum(pts * pts, axis=2))  # (c, k)
    w_ratio = kernel.dphi_over_r(rr)
    zero = np.zeros((c, 2))
    rhs = {
        "dx": np.concatenate(
            [w_ratio * (-pts[:, :, 0]), poly_dx_matrix(zero, degree)], axis=1
        ),
        "dy": np.concatenate(
            [w_ratio * (-pts[:, :, 1]), poly_dy_matrix(zero, degree)], axis=1
        ),
        "lap": np.concatenate(
            [kernel.lap(rr), poly_lap_matrix(zero, degree)], axis=1
        ),
    }

    # One batched solve per operator: A w = rhs (γ block dropped).
    return {
        name: np.linalg.solve(A, b[:, :, None])[:, :k, 0]
        for name, b in rhs.items()
    }


@profiled("rbf.build_operators", "solver")
def build_local_operators(
    cloud: Cloud,
    kernel: Optional[Kernel] = None,
    degree: int = 1,
    stencil_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> LocalOperators:
    """Assemble sparse ``∂x, ∂y, Δ`` (and boundary-normal) operators.

    For node *i* with stencil ``S_i`` the weights solve the local saddle
    system

    .. math::

        \\begin{bmatrix} \\Phi & P \\\\ P^T & 0 \\end{bmatrix}
        \\begin{bmatrix} w \\\\ \\gamma \\end{bmatrix}
        =
        \\begin{bmatrix} L\\phi(x_i, \\cdot) \\\\ L P(x_i) \\end{bmatrix},

    where Φ and P are evaluated on the (locally shifted) stencil points —
    shifting to the stencil centre keeps the polyharmonic system well
    conditioned.

    ``chunk_size`` bounds how many stencils are assembled at once: the
    per-node saddle systems are independent, so the batch is processed in
    blocks of ``chunk_size`` nodes and the ``(c, k, k, 2)`` / ``(c, k+m,
    k+m)`` temporaries never exceed ~64 MiB regardless of ``N`` — the
    property that lets 100k-node operators assemble without dense-scale
    intermediates.  ``None`` picks that bound automatically; the weights
    are bitwise identical for every chunking (see
    :func:`_stencil_weights`).
    """
    kernel = kernel or polyharmonic(3)
    t_build0 = time.perf_counter()
    n = cloud.n
    m = n_poly_terms(degree)
    k = stencil_size or default_stencil_size(degree)
    if k > n:
        raise ValueError(f"stencil size {k} exceeds cloud size {n}")
    if chunk_size is None:
        chunk_size = _auto_chunk_size(k, m)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    idx, _ = nearest_neighbors(cloud.points, k)  # (n, k), self first

    weights = {name: np.empty((n, k)) for name in ("dx", "dy", "lap")}
    n_chunks = 0
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        # Stencil coordinates shifted to each node (x_i at the origin).
        pts = (
            cloud.points[idx[start:stop]]
            - cloud.points[start:stop, None, :]
        )  # (c, k, 2)
        chunk = _stencil_weights(pts, kernel, degree, m)
        for name, w in chunk.items():
            weights[name][start:stop] = w
        n_chunks += 1
    get_registry().counter("rbf.assembly.chunks").inc(n_chunks)

    rows = np.repeat(np.arange(n), k)
    cols = idx.ravel()

    def assemble(w: np.ndarray) -> sp.csr_matrix:
        return sp.csr_matrix((w.ravel(), (rows, cols)), shape=(n, n))

    dx = assemble(weights["dx"])
    dy = assemble(weights["dy"])
    lap = assemble(weights["lap"])

    # Boundary-normal rows.
    normal = sp.lil_matrix((n, n))
    bidx = cloud.boundary
    if bidx.size:
        nrm = cloud.normals[bidx]
        dn = sp.diags(nrm[:, 0]) @ dx[bidx] + sp.diags(nrm[:, 1]) @ dy[bidx]
        normal[bidx] = dn
    return LocalOperators(
        cloud=cloud,
        kernel=kernel,
        degree=degree,
        stencil_size=k,
        dx=dx,
        dy=dy,
        lap=lap,
        normal=normal.tocsr(),
        build_seconds=time.perf_counter() - t_build0,
    )


def solve_pde_local(
    cloud: Cloud,
    local_ops: LocalOperators,
    operator_coeffs: dict,
    source,
    bc_values: dict,
) -> np.ndarray:
    """Sparse linear PDE solve with RBF-FD operators.

    Parameters
    ----------
    operator_coeffs:
        Mapping with optional keys ``"lap"``, ``"dx"``, ``"dy"``,
        ``"identity"`` — scalar coefficients of the interior operator.
    source:
        Scalar, per-interior-node array, or callable of interior points.
    bc_values:
        Mapping group name → boundary values (array or callable); groups
        tagged Dirichlet get unit rows, Neumann groups get normal rows.
    """
    n = cloud.n
    interior = cloud.internal
    A = sp.lil_matrix((n, n))
    op = sp.csr_matrix((n, n))
    if operator_coeffs.get("lap"):
        op = op + operator_coeffs["lap"] * local_ops.lap
    if operator_coeffs.get("dx"):
        op = op + operator_coeffs["dx"] * local_ops.dx
    if operator_coeffs.get("dy"):
        op = op + operator_coeffs["dy"] * local_ops.dy
    if operator_coeffs.get("identity"):
        op = op + operator_coeffs["identity"] * sp.eye(n)
    A[interior] = op[interior]

    b = np.zeros(n)
    pts_int = cloud.points[interior]
    if callable(source):
        b[interior] = source(pts_int)
    else:
        b[interior] = np.broadcast_to(
            np.asarray(source, dtype=np.float64), interior.shape
        )

    for g, values in bc_values.items():
        gi = cloud.groups[g]
        kind = cloud.kinds[g]
        if kind is BoundaryKind.DIRICHLET:
            A[gi, gi] = 1.0
        elif kind is BoundaryKind.NEUMANN:
            A[gi] = local_ops.normal[gi]
        else:
            raise ValueError(f"unsupported kind {kind} for local solve")
        pts = cloud.points[gi]
        b[gi] = values(pts) if callable(values) else np.broadcast_to(
            np.asarray(values, dtype=np.float64), gi.shape
        )

    return spla.spsolve(A.tocsr(), b)

"""RBF interpolation: fit to nodal values, evaluate anywhere.

Used for off-node evaluation (e.g. sampling the optimised state on the
regular test grid the paper's figures use) and for exactness tests
(polynomial reproduction up to the appended degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.rbf.assembly import LinearOperator2D, interpolation_matrix
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.polynomials import n_poly_terms


@dataclass
class RBFInterpolant:
    """A fitted RBF interpolant ``û(x) = Σ λⱼ φ(‖x−xⱼ‖) + Σ γₘ Pₘ(x)``."""

    kernel: Kernel
    degree: int
    centers: np.ndarray
    lam: np.ndarray
    gam: np.ndarray

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the interpolant at ``(Np, 2)`` points."""
        return self.apply(LinearOperator2D(identity=1.0), x)

    def apply(self, op: LinearOperator2D, x: np.ndarray) -> np.ndarray:
        """Evaluate a differential operator of the interpolant at points."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        rows = op.row_matrix(self.kernel, x, self.centers, self.degree)
        coeffs = np.concatenate([self.lam, self.gam])
        return rows @ coeffs

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """``(Np, 2)`` gradient of the interpolant."""
        gx = self.apply(LinearOperator2D(dx=1.0), x)
        gy = self.apply(LinearOperator2D(dy=1.0), x)
        return np.stack([gx, gy], axis=1)

    def laplacian(self, x: np.ndarray) -> np.ndarray:
        """Laplacian of the interpolant at points."""
        return self.apply(LinearOperator2D(lap=1.0), x)


def fit_interpolant(
    centers: np.ndarray,
    values: np.ndarray,
    kernel: Optional[Kernel] = None,
    degree: int = 1,
) -> RBFInterpolant:
    """Fit the interpolation system ``A (λ, γ) = (values, 0)``."""
    kernel = kernel or polyharmonic(3)
    centers = np.asarray(centers, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    n = centers.shape[0]
    if values.shape != (n,):
        raise ValueError(f"values must have shape ({n},), got {values.shape}")
    m = n_poly_terms(degree)
    A = interpolation_matrix(kernel, centers, degree)
    rhs = np.concatenate([values, np.zeros(m)])
    coeffs = sla.solve(A, rhs, check_finite=False)
    return RBFInterpolant(
        kernel=kernel,
        degree=degree,
        centers=centers,
        lam=coeffs[:n],
        gam=coeffs[n:],
    )

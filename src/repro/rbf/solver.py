"""Linear PDE solves on a cloud, in nodal space.

The system matrix has one row per node:

- internal nodes → the PDE operator row (from the nodal differentiation
  matrices),
- Dirichlet nodes → an exact unit row (the BC is imposed strongly),
- Neumann nodes → the boundary-normal derivative row,
- Robin nodes → normal row + β · unit row,

and the right-hand side carries the source / boundary data.  For the
optimal-control loops the matrix is *constant across iterations* (the
control only enters the RHS for linear problems), so :class:`RBFSolver`
caches LU factorisations by a caller-supplied key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np
import scipy.linalg as sla

from repro.cloud.base import BoundaryKind, Cloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.operators import NodalOperators, build_nodal_operators

BCValue = Union[float, np.ndarray, Callable[[np.ndarray], np.ndarray]]


@dataclass(frozen=True)
class BoundaryCondition:
    """Boundary data for one cloud group.

    ``kind`` must match the group's :class:`BoundaryKind` in the cloud
    ordering.  ``value`` may be a constant, a per-node array (group
    ordering), or a callable of the group's ``(n, 2)`` coordinates.
    ``beta`` is the Robin coefficient (ignored otherwise).
    """

    kind: str
    value: BCValue = 0.0
    beta: float = 0.0

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Concrete boundary values at the group's nodes."""
        if callable(self.value):
            out = np.asarray(self.value(points), dtype=np.float64)
        else:
            out = np.broadcast_to(
                np.asarray(self.value, dtype=np.float64), (points.shape[0],)
            ).copy()
        if out.shape != (points.shape[0],):
            raise ValueError(
                f"boundary values have shape {out.shape}, expected ({points.shape[0]},)"
            )
        return out


_KIND_NAME = {
    "dirichlet": BoundaryKind.DIRICHLET,
    "neumann": BoundaryKind.NEUMANN,
    "robin": BoundaryKind.ROBIN,
}


@dataclass
class LinearPDEProblem:
    """A linear PDE ``D u = q`` with per-group boundary conditions."""

    operator: LinearOperator2D
    source: Union[float, np.ndarray, Callable[[np.ndarray], np.ndarray]] = 0.0
    bcs: Dict[str, BoundaryCondition] = field(default_factory=dict)

    def source_values(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the source term at internal points."""
        if callable(self.source):
            return np.asarray(self.source(points), dtype=np.float64)
        return np.broadcast_to(
            np.asarray(self.source, dtype=np.float64), (points.shape[0],)
        ).copy()


class RBFSolver:
    """Reusable solver bound to one cloud/kernel/degree discretisation.

    Builds the nodal differentiation matrices once and caches system-matrix
    LU factorisations by key, so control loops that re-solve the same PDE
    with different boundary data pay only a triangular-solve per iteration
    (the optimisation the paper's timing table depends on).
    """

    def __init__(
        self,
        cloud: Cloud,
        kernel: Optional[Kernel] = None,
        degree: int = 1,
    ) -> None:
        self.cloud = cloud
        self.kernel = kernel or polyharmonic(3)
        self.degree = degree
        self.nodal: NodalOperators = build_nodal_operators(
            cloud, self.kernel, degree
        )
        self._lu_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def assemble_system(self, problem: LinearPDEProblem) -> np.ndarray:
        """Build the ``N×N`` nodal system matrix for ``problem``."""
        cloud = self.cloud
        n = cloud.n
        A = np.zeros((n, n))
        interior = cloud.indices_of_kind(BoundaryKind.INTERNAL)
        op_mat = self.nodal.operator_matrix(problem.operator)
        A[interior] = op_mat[interior]

        for group, idx in cloud.groups.items():
            kind = cloud.kinds[group]
            if kind is BoundaryKind.INTERNAL:
                continue
            bc = problem.bcs.get(group)
            if bc is None:
                raise ValueError(f"missing boundary condition for group {group!r}")
            if _KIND_NAME[bc.kind] is not kind:
                raise ValueError(
                    f"group {group!r} is ordered as {kind.name} but got a "
                    f"{bc.kind!r} condition; rebuild the cloud with matching kinds"
                )
            if kind is BoundaryKind.DIRICHLET:
                A[idx, idx] = 1.0
            elif kind is BoundaryKind.NEUMANN:
                A[idx] = self.nodal.normal[idx]
            else:  # Robin
                A[idx] = self.nodal.normal[idx]
                A[idx, idx] += bc.beta
        return A

    def assemble_rhs(self, problem: LinearPDEProblem) -> np.ndarray:
        """Build the right-hand side for ``problem``."""
        cloud = self.cloud
        b = np.zeros(cloud.n)
        interior = cloud.indices_of_kind(BoundaryKind.INTERNAL)
        b[interior] = problem.source_values(cloud.points[interior])
        for group, idx in cloud.groups.items():
            if cloud.kinds[group] is BoundaryKind.INTERNAL:
                continue
            b[idx] = problem.bcs[group].evaluate(cloud.points[idx])
        return b

    def solve(
        self, problem: LinearPDEProblem, cache_key: Optional[str] = None
    ) -> np.ndarray:
        """Solve ``problem`` for nodal values.

        When ``cache_key`` is given, the LU factorisation of the system
        matrix is cached under that key and reused on subsequent calls —
        the caller asserts the matrix is unchanged (true for linear
        problems whose control enters only through boundary *values*).
        """
        if cache_key is not None and cache_key in self._lu_cache:
            lu = self._lu_cache[cache_key]
        else:
            A = self.assemble_system(problem)
            lu = sla.lu_factor(A, check_finite=False)
            if cache_key is not None:
                self._lu_cache[cache_key] = lu
        b = self.assemble_rhs(problem)
        return sla.lu_solve(lu, b, check_finite=False)

    def clear_cache(self) -> None:
        """Drop all cached factorisations."""
        self._lu_cache.clear()


def solve_pde(
    cloud: Cloud,
    problem: LinearPDEProblem,
    kernel: Optional[Kernel] = None,
    degree: int = 1,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`RBFSolver`."""
    return RBFSolver(cloud, kernel=kernel, degree=degree).solve(problem)

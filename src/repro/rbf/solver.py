"""Linear PDE solves on a cloud, in nodal space.

The system matrix has one row per node:

- internal nodes → the PDE operator row (from the nodal differentiation
  matrices),
- Dirichlet nodes → an exact unit row (the BC is imposed strongly),
- Neumann nodes → the boundary-normal derivative row,
- Robin nodes → normal row + β · unit row,

and the right-hand side carries the source / boundary data.  For the
optimal-control loops the matrix is *constant across iterations* (the
control only enters the RHS for linear problems), so :class:`RBFSolver`
caches LU factorisations by a caller-supplied key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cloud.base import BoundaryKind, Cloud
from repro.obs.profile import span as _span
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.local import LocalOperators, build_local_operators
from repro.rbf.operators import NodalOperators, build_nodal_operators

BCValue = Union[float, np.ndarray, Callable[[np.ndarray], np.ndarray]]


@dataclass(frozen=True)
class BoundaryCondition:
    """Boundary data for one cloud group.

    ``kind`` must match the group's :class:`BoundaryKind` in the cloud
    ordering.  ``value`` may be a constant, a per-node array (group
    ordering), or a callable of the group's ``(n, 2)`` coordinates.
    ``beta`` is the Robin coefficient (ignored otherwise).
    """

    kind: str
    value: BCValue = 0.0
    beta: float = 0.0

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Concrete boundary values at the group's nodes."""
        if callable(self.value):
            out = np.asarray(self.value(points), dtype=np.float64)
        else:
            out = np.broadcast_to(
                np.asarray(self.value, dtype=np.float64), (points.shape[0],)
            ).copy()
        if out.shape != (points.shape[0],):
            raise ValueError(
                f"boundary values have shape {out.shape}, expected ({points.shape[0]},)"
            )
        return out


_KIND_NAME = {
    "dirichlet": BoundaryKind.DIRICHLET,
    "neumann": BoundaryKind.NEUMANN,
    "robin": BoundaryKind.ROBIN,
}


def _dense_condition_estimate(A: np.ndarray, lu) -> Optional[float]:
    """1-norm condition estimate from an existing LU factorisation.

    Uses LAPACK ``gecon`` — O(n²) given the factors, versus O(n³) for a
    fresh SVD — so the telemetry layer can afford it per factorisation.
    Returns ``None`` when the estimate is unavailable (singular matrix,
    LAPACK quirk): telemetry must never turn into a solver failure.
    """
    try:
        (gecon,) = sla.get_lapack_funcs(("gecon",), (lu[0],))
        anorm = float(np.linalg.norm(A, 1))
        rcond, info = gecon(lu[0], anorm)
        if info == 0 and rcond > 0:
            return float(1.0 / rcond)
    except Exception:
        pass
    return None


def _relative_residual(A, x: np.ndarray, b: np.ndarray) -> float:
    """``‖Ax − b‖∞ / max(‖b‖∞, tiny)`` for dense or sparse ``A``."""
    r = A @ x - b
    scale = max(float(np.max(np.abs(b))), 1e-300)
    return float(np.max(np.abs(r))) / scale


@dataclass
class LinearPDEProblem:
    """A linear PDE ``D u = q`` with per-group boundary conditions."""

    operator: LinearOperator2D
    source: Union[float, np.ndarray, Callable[[np.ndarray], np.ndarray]] = 0.0
    bcs: Dict[str, BoundaryCondition] = field(default_factory=dict)

    def source_values(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the source term at internal points."""
        if callable(self.source):
            return np.asarray(self.source(points), dtype=np.float64)
        return np.broadcast_to(
            np.asarray(self.source, dtype=np.float64), (points.shape[0],)
        ).copy()


def assemble_problem_rhs(cloud: Cloud, problem: LinearPDEProblem) -> np.ndarray:
    """Right-hand side shared by the dense and sparse solvers.

    Source values on interior rows, boundary data on boundary rows — the
    RHS depends only on the cloud and problem data, never on how the
    operator matrix is stored.
    """
    b = np.zeros(cloud.n)
    interior = cloud.indices_of_kind(BoundaryKind.INTERNAL)
    b[interior] = problem.source_values(cloud.points[interior])
    for group, idx in cloud.groups.items():
        if cloud.kinds[group] is BoundaryKind.INTERNAL:
            continue
        bc = problem.bcs.get(group)
        if bc is None:
            raise ValueError(f"missing boundary condition for group {group!r}")
        b[idx] = bc.evaluate(cloud.points[idx])
    return b


class RBFSolver:
    """Reusable solver bound to one cloud/kernel/degree discretisation.

    Builds the nodal differentiation matrices once and caches system-matrix
    LU factorisations by key, so control loops that re-solve the same PDE
    with different boundary data pay only a triangular-solve per iteration
    (the optimisation the paper's timing table depends on).

    ``n_factorizations``/``n_solves`` count numeric factorisations and
    triangular solves so regression tests can assert
    factorise-once/solve-many behaviour across loop iterations.

    Telemetry: assigning a :class:`~repro.obs.recorder.TraceRecorder` to
    :attr:`recorder` makes every factorisation emit a ``factorize`` event
    (with a LAPACK ``gecon`` condition estimate) and every solve a
    ``solve`` event with the relative residual.  Residuals require the
    system matrix, which is only retained for factorisations performed
    *while* a recorder is attached — cached factorisations from before
    report ``residual=None``.  With no recorder the solve path is
    unchanged (no matrix retention, no timestamps).
    """

    solver_name = "rbf-dense-lu"

    def __init__(
        self,
        cloud: Cloud,
        kernel: Optional[Kernel] = None,
        degree: int = 1,
    ) -> None:
        self.cloud = cloud
        self.kernel = kernel or polyharmonic(3)
        self.degree = degree
        self.nodal: NodalOperators = build_nodal_operators(
            cloud, self.kernel, degree
        )
        self._lu_cache: Dict[object, object] = {}
        self.n_factorizations = 0
        self.n_solves = 0
        self.recorder = None

    def _cache_token(self) -> tuple:
        """Discretisation fingerprint mixed into every cache key.

        Keys self-invalidate when the cloud or kernel bound to the solver
        changes (a fresh cloud object, a swapped kernel): the stale
        factorisation can never be returned for the new discretisation.
        """
        return (id(self.cloud), self.kernel.name, self.degree)

    # ------------------------------------------------------------------
    def assemble_system(self, problem: LinearPDEProblem) -> np.ndarray:
        """Build the ``N×N`` nodal system matrix for ``problem``."""
        cloud = self.cloud
        n = cloud.n
        A = np.zeros((n, n))
        interior = cloud.indices_of_kind(BoundaryKind.INTERNAL)
        op_mat = self.nodal.operator_matrix(problem.operator)
        A[interior] = op_mat[interior]

        for group, idx in cloud.groups.items():
            kind = cloud.kinds[group]
            if kind is BoundaryKind.INTERNAL:
                continue
            bc = problem.bcs.get(group)
            if bc is None:
                raise ValueError(f"missing boundary condition for group {group!r}")
            if _KIND_NAME[bc.kind] is not kind:
                raise ValueError(
                    f"group {group!r} is ordered as {kind.name} but got a "
                    f"{bc.kind!r} condition; rebuild the cloud with matching kinds"
                )
            if kind is BoundaryKind.DIRICHLET:
                A[idx, idx] = 1.0
            elif kind is BoundaryKind.NEUMANN:
                A[idx] = self.nodal.normal[idx]
            else:  # Robin
                A[idx] = self.nodal.normal[idx]
                A[idx, idx] += bc.beta
        return A

    def assemble_rhs(self, problem: LinearPDEProblem) -> np.ndarray:
        """Build the right-hand side for ``problem``."""
        return assemble_problem_rhs(self.cloud, problem)

    def _factors(
        self, problem: LinearPDEProblem, cache_key: Optional[str], rec
    ) -> tuple:
        """Fetch-or-build the LU factors (and retained matrix) for ``problem``."""
        key = None if cache_key is None else (cache_key, self._cache_token())
        if key is not None and key in self._lu_cache:
            return self._lu_cache[key]
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span("rbf.assemble", "solver", {"n": self.cloud.n}):
            A = self.assemble_system(problem)
        with _span("rbf.factorize", "solver", {"n": self.cloud.n}):
            lu = sla.lu_factor(A, check_finite=False)
        self.n_factorizations += 1
        if rec is not None:
            rec.solver_event(
                self.solver_name,
                "factorize",
                n=self.cloud.n,
                seconds=time.perf_counter() - t0,
                condition_estimate=_dense_condition_estimate(A, lu),
            )
        # The matrix is only retained for residual reporting; without
        # a recorder the cache stays factors-only, as before.
        A_kept = A if rec is not None else None
        if key is not None:
            self._lu_cache[key] = (lu, A_kept)
        return lu, A_kept

    def solve(
        self, problem: LinearPDEProblem, cache_key: Optional[str] = None
    ) -> np.ndarray:
        """Solve ``problem`` for nodal values.

        When ``cache_key`` is given, the LU factorisation of the system
        matrix is cached under that key and reused on subsequent calls —
        the caller asserts the matrix is unchanged (true for linear
        problems whose control enters only through boundary *values*).
        """
        rec = self.recorder if self.recorder else None
        lu, A_kept = self._factors(problem, cache_key, rec)
        b = self.assemble_rhs(problem)
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span("rbf.solve", "solver", {"n": self.cloud.n}):
            x = sla.lu_solve(lu, b, check_finite=False)
        self.n_solves += 1
        if rec is not None:
            rec.solver_event(
                self.solver_name,
                "solve",
                n=self.cloud.n,
                seconds=time.perf_counter() - t0,
                residual=(
                    _relative_residual(A_kept, x, b) if A_kept is not None else None
                ),
            )
        return x

    def solve_block(
        self,
        problem: LinearPDEProblem,
        b_block: np.ndarray,
        cache_key: Optional[str] = None,
    ) -> np.ndarray:
        """Solve against a ``(N_rhs, n)`` block of right-hand sides at once.

        One factorisation (cached under ``cache_key`` exactly as in
        :meth:`solve`) serves every row of ``b_block`` through a single
        multi-RHS ``getrs`` call — the dense analogue of the multi-RHS
        reuse :func:`repro.autodiff.vbatch` performs on the tape.  Counts
        as one entry in ``n_solves``.  Returns the ``(N_rhs, n)`` block
        of solutions (``N_rhs = 0`` is allowed and returns an empty
        block without touching LAPACK).
        """
        b_block = np.asarray(b_block, dtype=np.float64)
        if b_block.ndim != 2 or b_block.shape[1] != self.cloud.n:
            raise ValueError(
                f"b_block must have shape (N_rhs, {self.cloud.n}), "
                f"got {b_block.shape}"
            )
        rec = self.recorder if self.recorder else None
        lu, A_kept = self._factors(problem, cache_key, rec)
        if b_block.shape[0] == 0:
            return b_block.copy()
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span(
            "rbf.solve_block", "solver",
            {"n": self.cloud.n, "n_rhs": b_block.shape[0]},
        ):
            x = sla.lu_solve(lu, b_block.T, check_finite=False).T
        self.n_solves += 1
        if rec is not None:
            rec.solver_event(
                self.solver_name,
                "solve",
                n=self.cloud.n,
                n_rhs=b_block.shape[0],
                seconds=time.perf_counter() - t0,
                residual=(
                    _relative_residual(A_kept, x.T, b_block.T)
                    if A_kept is not None
                    else None
                ),
            )
        return x

    def clear_cache(self) -> None:
        """Drop all cached factorisations."""
        self._lu_cache.clear()


class LocalRBFSolver:
    """Sparse RBF-FD counterpart of :class:`RBFSolver`.

    Assembles its system rows from :class:`~repro.rbf.local.LocalOperators`
    (``k`` nonzeros per row) and caches ``scipy.sparse.linalg.splu``
    factorisations by key.  Interface-compatible with :class:`RBFSolver`
    (``assemble_system``/``assemble_rhs``/``solve``/``clear_cache``), so
    callers switch backend without touching problem definitions.

    Supports the same boundary-condition kinds: Dirichlet (unit rows),
    Neumann (stencil-sparse normal rows) and Robin (``normal + β·I``).

    Telemetry mirrors :class:`RBFSolver`: attach a recorder to
    :attr:`recorder` for per-factorisation/per-solve events.  The sparse
    matrix is always kept next to its factors (it is nnz-bounded), so
    residuals are reported even for factorisations cached before the
    recorder was attached; condition estimates are not available for
    ``splu`` factors and are reported as ``None``.

    ``linear_solver="iterative"`` swaps the exact ``splu`` factorisation
    for a matrix-free preconditioned Krylov iteration
    (:class:`~repro.autodiff.krylov.KrylovSolver`, configured via
    ``solver_opts``): the cache then holds one preconditioner per key
    instead of one LU factor, which is what keeps 100k-node systems
    solvable — SuperLU fill-in is the memory ceiling the iterative path
    removes.  Interface and caching semantics are unchanged.
    """

    solver_name = "rbf-sparse-splu"

    def __init__(
        self,
        cloud: Cloud,
        kernel: Optional[Kernel] = None,
        degree: int = 1,
        stencil_size: Optional[int] = None,
        linear_solver: str = "direct",
        solver_opts: Optional[dict] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if linear_solver not in ("direct", "iterative"):
            raise ValueError(
                "linear_solver must be 'direct' or 'iterative', "
                f"got {linear_solver!r}"
            )
        self.cloud = cloud
        self.kernel = kernel or polyharmonic(3)
        self.degree = degree
        self.linear_solver = linear_solver
        self.solver_opts = dict(solver_opts or {})
        self.local: LocalOperators = build_local_operators(
            cloud, self.kernel, degree, stencil_size, chunk_size=chunk_size
        )
        self.stencil_size = self.local.stencil_size
        self._lu_cache: Dict[object, object] = {}
        self.n_factorizations = 0
        self.n_solves = 0
        self.recorder = None
        if linear_solver == "iterative":
            self.solver_name = "rbf-sparse-krylov"

    def _cache_token(self) -> tuple:
        """Discretisation fingerprint mixed into every cache key."""
        return (id(self.cloud), self.kernel.name, self.degree, self.stencil_size)

    # ------------------------------------------------------------------
    def operator_matrix(self, op: LinearOperator2D) -> sp.csr_matrix:
        """Sparse nodal matrix of ``a·Δ + b·∂x + c·∂y + d·I``."""
        n = self.cloud.n

        def diag(c) -> sp.dia_matrix:
            return sp.diags(
                np.broadcast_to(np.asarray(c, dtype=np.float64), (n,))
            )

        out = sp.csr_matrix((n, n))
        if np.any(np.asarray(op.lap) != 0):
            out = out + diag(op.lap) @ self.local.lap
        if np.any(np.asarray(op.dx) != 0):
            out = out + diag(op.dx) @ self.local.dx
        if np.any(np.asarray(op.dy) != 0):
            out = out + diag(op.dy) @ self.local.dy
        if np.any(np.asarray(op.identity) != 0):
            out = out + diag(op.identity)
        return out.tocsr()

    def assemble_system(self, problem: LinearPDEProblem) -> sp.csr_matrix:
        """Build the sparse ``N×N`` nodal system matrix for ``problem``."""
        cloud = self.cloud
        n = cloud.n
        interior = np.zeros(n)
        interior[cloud.indices_of_kind(BoundaryKind.INTERNAL)] = 1.0
        A = sp.diags(interior) @ self.operator_matrix(problem.operator)

        normal = self.local.normal
        for group, idx in cloud.groups.items():
            kind = cloud.kinds[group]
            if kind is BoundaryKind.INTERNAL:
                continue
            bc = problem.bcs.get(group)
            if bc is None:
                raise ValueError(f"missing boundary condition for group {group!r}")
            if _KIND_NAME[bc.kind] is not kind:
                raise ValueError(
                    f"group {group!r} is ordered as {kind.name} but got a "
                    f"{bc.kind!r} condition; rebuild the cloud with matching kinds"
                )
            sel = sp.csr_matrix(
                (np.ones(idx.size), (idx, idx)), shape=(n, n)
            )
            if kind is BoundaryKind.DIRICHLET:
                A = A + sel
            elif kind is BoundaryKind.NEUMANN:
                A = A + sel @ normal
            else:  # Robin
                A = A + sel @ normal + bc.beta * sel
        return A.tocsr()

    def assemble_rhs(self, problem: LinearPDEProblem) -> np.ndarray:
        """Build the right-hand side for ``problem``."""
        return assemble_problem_rhs(self.cloud, problem)

    def _factors(
        self, problem: LinearPDEProblem, cache_key: Optional[str], rec
    ) -> tuple:
        """Fetch-or-build the solver state and matrix for ``problem``.

        Direct path: ``splu`` factors.  Iterative path: a
        :class:`~repro.autodiff.krylov.KrylovSolver` (preconditioner
        built once, cached under the same keys the LU factors would be).
        """
        key = None if cache_key is None else (cache_key, self._cache_token())
        if key is not None and key in self._lu_cache:
            return self._lu_cache[key]
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span("rbf.assemble", "solver", {"n": self.cloud.n}):
            A = self.assemble_system(problem)
        if self.linear_solver == "iterative":
            from repro.autodiff.krylov import KrylovSolver

            # The KrylovSolver emits its own factorize/solve events
            # (with iteration counts), so the generic events below are
            # suppressed for this path.
            fac = KrylovSolver(A, recorder=self.recorder, **self.solver_opts)
            self.n_factorizations += 1
            if key is not None:
                self._lu_cache[key] = (fac, A)
            return fac, A
        with _span("rbf.factorize", "solver", {"n": self.cloud.n}):
            lu = spla.splu(sp.csc_matrix(A))
        self.n_factorizations += 1
        if rec is not None:
            rec.solver_event(
                self.solver_name,
                "factorize",
                n=self.cloud.n,
                seconds=time.perf_counter() - t0,
                nnz=int(A.nnz),
            )
        if key is not None:
            self._lu_cache[key] = (lu, A)
        return lu, A

    def _apply(self, fac, b: np.ndarray) -> np.ndarray:
        """One (multi-)RHS application of the cached solver state."""
        if self.linear_solver == "iterative":
            fac.recorder = self.recorder  # follow late-attached recorders
            return fac.solve_numpy(b)
        return fac.solve(b)

    def solve(
        self, problem: LinearPDEProblem, cache_key: Optional[str] = None
    ) -> np.ndarray:
        """Sparse solve with per-key caching of the factorisation state."""
        rec = self.recorder if self.recorder else None
        fac, A = self._factors(problem, cache_key, rec)
        b = self.assemble_rhs(problem)
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span("rbf.solve", "solver", {"n": self.cloud.n}):
            x = self._apply(fac, b)
        self.n_solves += 1
        if rec is not None and self.linear_solver != "iterative":
            rec.solver_event(
                self.solver_name,
                "solve",
                n=self.cloud.n,
                seconds=time.perf_counter() - t0,
                residual=_relative_residual(A, x, b),
                nnz=int(A.nnz),
            )
        return x

    def solve_block(
        self,
        problem: LinearPDEProblem,
        b_block: np.ndarray,
        cache_key: Optional[str] = None,
    ) -> np.ndarray:
        """Solve against a ``(N_rhs, n)`` block of right-hand sides at once.

        Sparse counterpart of :meth:`RBFSolver.solve_block`: one cached
        ``splu`` factorisation serves the whole block via a single
        multi-column triangular solve, counted as one entry in
        ``n_solves``.  SuperLU's multi-RHS path is bitwise-identical to
        per-column solves for the narrow blocks the batched line search
        and cost sweeps produce (observed up to ~50 columns); very wide
        blocks may take a blocked substitution that perturbs last bits.
        """
        b_block = np.asarray(b_block, dtype=np.float64)
        if b_block.ndim != 2 or b_block.shape[1] != self.cloud.n:
            raise ValueError(
                f"b_block must have shape (N_rhs, {self.cloud.n}), "
                f"got {b_block.shape}"
            )
        rec = self.recorder if self.recorder else None
        fac, A = self._factors(problem, cache_key, rec)
        if b_block.shape[0] == 0:
            return b_block.copy()
        t0 = time.perf_counter() if rec is not None else 0.0
        with _span(
            "rbf.solve_block", "solver",
            {"n": self.cloud.n, "n_rhs": b_block.shape[0]},
        ):
            x = self._apply(fac, b_block.T).T
        self.n_solves += 1
        if rec is not None and self.linear_solver != "iterative":
            rec.solver_event(
                self.solver_name,
                "solve",
                n=self.cloud.n,
                n_rhs=b_block.shape[0],
                seconds=time.perf_counter() - t0,
                residual=_relative_residual(A, x.T, b_block.T),
                nnz=int(A.nnz),
            )
        return x

    def clear_cache(self) -> None:
        """Drop all cached factorisations."""
        self._lu_cache.clear()


def solve_pde(
    cloud: Cloud,
    problem: LinearPDEProblem,
    kernel: Optional[Kernel] = None,
    degree: int = 1,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`RBFSolver`."""
    return RBFSolver(cloud, kernel=kernel, degree=degree).solve(problem)

"""Radial-basis-function collocation (the paper's `Updec` substrate).

The interpolant is

.. math::

    \\hat u(x) = \\sum_j \\lambda_j \\, \\phi(\\|x - x_j\\|)
               + \\sum_m \\gamma_m P_m(x),

with :math:`\\phi` a radial kernel (default: the paper's polyharmonic
cubic spline :math:`r^3`, shape-parameter free) and :math:`P_m` appended
monomials up to degree ``n`` (paper: ``n = 1``, i.e. 3 polynomials in 2-D)
subject to the usual moment constraints.

Two equivalent solver paths are provided and cross-validated in the test
suite:

- **coefficient space** (:mod:`repro.rbf.assembly` + :func:`solver.solve_pde`)
  — collocate the PDE/BC rows directly on the (λ, γ) unknowns;
- **nodal space** (:mod:`repro.rbf.operators`) — precompute dense nodal
  differentiation matrices ``D_x, D_y, Δ`` so a PDE solve becomes plain
  matrix algebra on nodal values.  This is the path DAL and DP use: the
  matrices are constant w.r.t. the control, which makes solve caching and
  autodiff (matmul/solve VJPs) efficient.
"""

from repro.rbf.kernels import (
    Kernel,
    polyharmonic,
    gaussian,
    multiquadric,
    get_kernel,
)
from repro.rbf.polynomials import (
    n_poly_terms,
    poly_matrix,
    poly_dx_matrix,
    poly_dy_matrix,
    poly_lap_matrix,
)
from repro.rbf.assembly import (
    interpolation_matrix,
    operator_eval_matrix,
    assemble_collocation_system,
    LinearOperator2D,
)
from repro.rbf.operators import NodalOperators, build_nodal_operators
from repro.rbf.solver import (
    BoundaryCondition,
    LinearPDEProblem,
    LocalRBFSolver,
    RBFSolver,
    solve_pde,
)
from repro.rbf.interpolate import RBFInterpolant, fit_interpolant
from repro.rbf.conditioning import collocation_condition_number
from repro.rbf.local import (
    LocalOperators,
    build_local_operators,
    default_stencil_size,
    solve_pde_local,
)

__all__ = [
    "Kernel",
    "polyharmonic",
    "gaussian",
    "multiquadric",
    "get_kernel",
    "n_poly_terms",
    "poly_matrix",
    "poly_dx_matrix",
    "poly_dy_matrix",
    "poly_lap_matrix",
    "interpolation_matrix",
    "operator_eval_matrix",
    "assemble_collocation_system",
    "LinearOperator2D",
    "NodalOperators",
    "build_nodal_operators",
    "BoundaryCondition",
    "LinearPDEProblem",
    "solve_pde",
    "RBFSolver",
    "LocalRBFSolver",
    "RBFInterpolant",
    "fit_interpolant",
    "collocation_condition_number",
    "LocalOperators",
    "build_local_operators",
    "default_stencil_size",
    "solve_pde_local",
]

"""Monomial augmentation for RBF collocation (RBF-FD style).

Appending polynomials of maximum degree ``n`` (paper: ``n = 1``, giving
``M = (n+d choose n) = 3`` terms in 2-D) guarantees polynomial
reproduction and removes the polyharmonic kernel's conditional positive
definiteness issue.  Terms are ordered by total degree then by power of
``y``: ``1, x, y, x², xy, y², ...``.
"""

from __future__ import annotations

from math import comb
from typing import List, Tuple

import numpy as np


def monomial_exponents(degree: int) -> List[Tuple[int, int]]:
    """Exponent pairs ``(px, py)`` of all 2-D monomials up to ``degree``."""
    if degree < 0:
        raise ValueError("degree must be >= 0")
    return [
        (d - j, j) for d in range(degree + 1) for j in range(d + 1)
    ]


def n_poly_terms(degree: int) -> int:
    """Number of monomials up to total ``degree`` in 2-D: C(degree+2, 2)."""
    if degree < 0:
        return 0
    return comb(degree + 2, 2)


def poly_matrix(x: np.ndarray, degree: int) -> np.ndarray:
    """``P[i, m] = x_i^{px_m} y_i^{py_m}``, shape ``(Np, M)``."""
    x = np.asarray(x, dtype=np.float64)
    exps = monomial_exponents(degree)
    return np.stack(
        [x[:, 0] ** px * x[:, 1] ** py for (px, py) in exps], axis=1
    )


def poly_dx_matrix(x: np.ndarray, degree: int) -> np.ndarray:
    """``∂P/∂x`` evaluated at the points."""
    x = np.asarray(x, dtype=np.float64)
    cols = []
    for px, py in monomial_exponents(degree):
        if px == 0:
            cols.append(np.zeros(x.shape[0]))
        else:
            cols.append(px * x[:, 0] ** (px - 1) * x[:, 1] ** py)
    return np.stack(cols, axis=1)


def poly_dy_matrix(x: np.ndarray, degree: int) -> np.ndarray:
    """``∂P/∂y`` evaluated at the points."""
    x = np.asarray(x, dtype=np.float64)
    cols = []
    for px, py in monomial_exponents(degree):
        if py == 0:
            cols.append(np.zeros(x.shape[0]))
        else:
            cols.append(py * x[:, 0] ** px * x[:, 1] ** (py - 1))
    return np.stack(cols, axis=1)


def poly_lap_matrix(x: np.ndarray, degree: int) -> np.ndarray:
    """``ΔP`` evaluated at the points."""
    x = np.asarray(x, dtype=np.float64)
    cols = []
    for px, py in monomial_exponents(degree):
        lap = np.zeros(x.shape[0])
        if px >= 2:
            lap = lap + px * (px - 1) * x[:, 0] ** (px - 2) * x[:, 1] ** py
        if py >= 2:
            lap = lap + py * (py - 1) * x[:, 0] ** px * x[:, 1] ** (py - 2)
        cols.append(lap)
    return np.stack(cols, axis=1)

"""Nodal differentiation matrices.

Given a cloud with nodes :math:`x_1..x_N`, the RBF interpolation system
``A = [[Φ, P], [Pᵀ, 0]]`` maps nodal values ``u`` to coefficients
``(λ, γ) = A⁻¹ [u; 0]``.  Composing with the operator evaluation rows
``B_L = [LΦ | LP]`` yields the dense nodal differentiation matrix

.. math::

    D_L = B_L \\, (A^{-1})_{[:, :N]}  \\qquad (L u)(x_i) = (D_L u)_i .

One LU factorisation of ``A`` produces every operator matrix (identity,
∂x, ∂y, Δ, boundary-normal rows).  These matrices are *constant* for a
fixed cloud: the entire PDE-and-control pipeline downstream — DAL adjoint
solves, Navier–Stokes refinement iterations, DP autodiff — reduces to
dense matrix algebra, which is both fast (BLAS) and trivially
differentiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.linalg as sla

from repro.cloud.base import Cloud
from repro.obs.profile import profiled
from repro.rbf.assembly import LinearOperator2D, interpolation_matrix
from repro.rbf.kernels import Kernel
from repro.rbf.polynomials import n_poly_terms


@dataclass
class NodalOperators:
    """Bundle of dense nodal operator matrices for one cloud/kernel pair.

    Attributes
    ----------
    cloud, kernel, degree:
        The discretisation this bundle was built for.
    identity:
        ``N×N`` interpolation-consistency matrix (≈ I; its deviation from
        the exact identity is a discretisation-quality diagnostic).
    dx, dy, lap:
        Nodal first-derivative and Laplacian matrices.
    normal:
        ``N×N`` matrix whose boundary rows evaluate ``∂u/∂n`` (internal
        rows are zero).
    """

    cloud: Cloud
    kernel: Kernel
    degree: int
    identity: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    lap: np.ndarray
    normal: np.ndarray
    _coeff_map: np.ndarray = field(repr=False, default=None)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.cloud.n

    def coefficient_map(self) -> np.ndarray:
        """``(N+M)×N`` matrix mapping nodal values to (λ, γ) coefficients."""
        return self._coeff_map

    def operator_matrix(self, op: LinearOperator2D) -> np.ndarray:
        """Nodal matrix of an arbitrary ``a·Δ + b·∂x + c·∂y + d·I`` operator."""
        rows = op.row_matrix(
            self.kernel, self.cloud.points, self.cloud.points, self.degree
        )
        return rows @ self._coeff_map


@profiled("rbf.build_operators", "solver")
def build_nodal_operators(
    cloud: Cloud, kernel: Kernel, degree: int = 1
) -> NodalOperators:
    """Factor the interpolation system once and emit all operator matrices."""
    n = cloud.n
    m = n_poly_terms(degree)
    A = interpolation_matrix(kernel, cloud.points, degree)
    lu = sla.lu_factor(A, check_finite=False)
    # Solve A X = [I; 0] for the nodal-values→coefficients map (N rhs at once).
    rhs = np.zeros((n + m, n))
    rhs[:n, :n] = np.eye(n)
    coeff_map = sla.lu_solve(lu, rhs, check_finite=False)

    pts = cloud.points

    def mat(op: LinearOperator2D) -> np.ndarray:
        return op.row_matrix(kernel, pts, pts, degree) @ coeff_map

    identity = mat(LinearOperator2D(identity=1.0))
    dx = mat(LinearOperator2D(dx=1.0))
    dy = mat(LinearOperator2D(dy=1.0))
    lap = mat(LinearOperator2D(lap=1.0))

    normal = np.zeros((n, n))
    bidx = cloud.boundary
    if bidx.size:
        nrm = cloud.normals[bidx]
        normal[bidx] = nrm[:, 0:1] * dx[bidx] + nrm[:, 1:2] * dy[bidx]

    return NodalOperators(
        cloud=cloud,
        kernel=kernel,
        degree=degree,
        identity=identity,
        dx=dx,
        dy=dy,
        lap=lap,
        normal=normal,
        _coeff_map=coeff_map,
    )

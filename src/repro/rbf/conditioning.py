"""Conditioning diagnostics for collocation matrices.

The paper notes the regular 100×100 grid "resulted in better conditioned
collocation matrices compared with a scattered point cloud of the same
size", and attributes DAL's Navier–Stokes failure partly to RBF derivative
noise near boundaries (the Runge phenomenon).  These helpers quantify
that: the condition number of the interpolation/collocation systems as a
function of cloud layout and kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.base import Cloud
from repro.rbf.assembly import interpolation_matrix
from repro.rbf.kernels import Kernel, polyharmonic


def collocation_condition_number(
    cloud: Cloud,
    kernel: Optional[Kernel] = None,
    degree: int = 1,
    norm: int = 2,
) -> float:
    """Condition number of the RBF interpolation system on ``cloud``.

    ``norm=2`` uses the SVD-based 2-norm condition number (exact, O(N³));
    pass ``norm=1`` for the cheaper 1-norm estimate.
    """
    kernel = kernel or polyharmonic(3)
    A = interpolation_matrix(kernel, cloud.points, degree)
    if norm == 2:
        return float(np.linalg.cond(A))
    if norm == 1:
        return float(np.linalg.cond(A, 1))
    raise ValueError("norm must be 1 or 2")

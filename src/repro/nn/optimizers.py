"""First-order optimisers on parameter pytrees.

The paper uses Adam for *all three* methods — not just the PINN but also
DAL and DP, where it "helped increase robustness to noisy gradients at
boundaries due to the Runge phenomenon".  The implementations are
functional: ``step`` consumes and returns explicit state, so the same
optimiser serves network weights (pytrees) and control vectors (bare
arrays, which are just single-leaf pytrees).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.nn.pytree import tree_leaves, tree_map, tree_zip_map


def global_grad_norm(grads: Any) -> float:
    """Euclidean norm over all leaves of a gradient pytree."""
    total = 0.0
    for g in tree_leaves(grads):
        g = np.asarray(g)
        total += float(np.sum(g * g))
    return float(np.sqrt(total))


def clip_grad_norm(grads: Any, max_norm: float) -> Any:
    """Rescale a gradient pytree so its global norm is at most ``max_norm``."""
    norm = global_grad_norm(grads)
    if norm <= max_norm or norm == 0.0:
        return grads
    scale = max_norm / norm
    return tree_map(lambda g: np.asarray(g) * scale, grads)


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.momentum = float(momentum)

    def init(self, params: Any) -> Any:
        """Create the velocity state (zeros like params)."""
        if self.momentum == 0.0:
            return None
        return tree_map(lambda p: np.zeros_like(np.asarray(p, dtype=np.float64)), params)

    def step(
        self, params: Any, grads: Any, state: Any, lr: Optional[float] = None
    ) -> Tuple[Any, Any]:
        """One update; returns ``(new_params, new_state)``."""
        eta = self.lr if lr is None else float(lr)
        if self.momentum == 0.0:
            new_params = tree_zip_map(
                lambda p, g: np.asarray(p, dtype=np.float64) - eta * np.asarray(g),
                params,
                grads,
            )
            return new_params, None
        new_state = tree_zip_map(
            lambda v, g: self.momentum * v + np.asarray(g), state, grads
        )
        new_params = tree_zip_map(
            lambda p, v: np.asarray(p, dtype=np.float64) - eta * v,
            params,
            new_state,
        )
        return new_params, new_state


class Adam:
    """Adam (Kingma & Ba) with bias correction.

    State is ``(step_count, m_tree, v_tree)``.
    """

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def init(self, params: Any) -> Tuple[int, Any, Any]:
        """Create zeroed first/second-moment accumulators."""
        zeros = lambda p: np.zeros_like(np.asarray(p, dtype=np.float64))
        return (0, tree_map(zeros, params), tree_map(zeros, params))

    def step(
        self,
        params: Any,
        grads: Any,
        state: Tuple[int, Any, Any],
        lr: Optional[float] = None,
    ) -> Tuple[Any, Tuple[int, Any, Any]]:
        """One Adam update; returns ``(new_params, new_state)``."""
        eta = self.lr if lr is None else float(lr)
        t, m, v = state
        t += 1
        m = tree_zip_map(
            lambda mi, g: self.beta1 * mi + (1 - self.beta1) * np.asarray(g),
            m,
            grads,
        )
        v = tree_zip_map(
            lambda vi, g: self.beta2 * vi + (1 - self.beta2) * np.asarray(g) ** 2,
            v,
            grads,
        )
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t

        def update(p: np.ndarray, mi: np.ndarray, vi: np.ndarray) -> np.ndarray:
            mhat = mi / bc1
            vhat = vi / bc2
            return np.asarray(p, dtype=np.float64) - eta * mhat / (
                np.sqrt(vhat) + self.eps
            )

        new_params = tree_zip_map(update, params, m, v)
        return new_params, (t, m, v)

"""Analytic propagation of input-derivatives through an MLP.

PINN losses contain spatial derivatives of the network output —
``∂u/∂x``, ``∂²u/∂x²`` (Laplacian), advection terms, divergence.  With JAX
one nests ``grad`` calls; our tape engine instead propagates the triple

.. math::

    (a, \\; \\partial a/\\partial x_i, \\; \\partial^2 a/\\partial x_i^2)
    \\quad i = 1..d

layer by layer:

- affine layer ``z = a W + b``:  ``z_i' = a_i' W``,  ``z_i'' = a_i'' W``;
- elementwise activation ``a = σ(z)``:
  ``a_i' = σ'(z) z_i'``,
  ``a_i'' = σ''(z) (z_i')² + σ'(z) z_i''``.

Because every step is written with autodiff primitives, the result is
itself on the tape: one reverse pass yields exact weight-gradients of any
residual built from ``u``, ``∇u``, ``Δu`` — precisely what PINN training
needs, without nested autodiff.  (Pure second derivatives per coordinate
suffice for every operator in the paper: Laplacian, gradient, divergence,
advection.)
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.autodiff import ops
from repro.autodiff.tensor import ArrayLike, Tensor, tensor
from repro.nn.mlp import MLP

import numpy as np


def mlp_forward(model: MLP, params: Any, x: ArrayLike) -> Tensor:
    """Plain forward pass (alias of :meth:`MLP.apply` for symmetry)."""
    return model.apply(params, x)


def mlp_with_derivatives(
    model: MLP,
    params: Any,
    x: ArrayLike,
    need_second: bool = True,
) -> Tuple[Tensor, List[Tensor], List[Tensor]]:
    """Evaluate the network and its first/second input-derivatives.

    Parameters
    ----------
    model:
        The :class:`~repro.nn.mlp.MLP` architecture.
    params:
        Parameter pytree (arrays or tape tensors).
    x:
        ``(batch, in_dim)`` evaluation points.
    need_second:
        When False, skips the second-derivative propagation (≈30 % cheaper;
        used by first-order residual terms such as the continuity equation).

    Returns
    -------
    (u, du, d2u)
        ``u`` has shape ``(batch, out_dim)``; ``du[i]`` and ``d2u[i]`` are
        ``∂u/∂x_i`` and ``∂²u/∂x_i²`` with the same shape.  ``d2u`` is an
        empty list when ``need_second`` is False.
    """
    xt = tensor(x)
    if xt.ndim != 2 or xt.shape[1] != model.in_dim:
        raise ValueError(
            f"x must have shape (batch, {model.in_dim}), got {xt.shape}"
        )
    batch, d = xt.shape

    act = model.activation
    a = xt
    # Seed: da/dx_i = e_i (constant), d2a/dx_i^2 = 0.
    da: List[Tensor] = []
    d2a: List[Tensor] = []
    for i in range(d):
        seed = np.zeros((batch, d))
        seed[:, i] = 1.0
        da.append(tensor(seed))
        if need_second:
            d2a.append(tensor(np.zeros((batch, d))))

    last = model.n_layers - 1
    for li, layer in enumerate(params):
        W, b = layer["W"], layer["b"]
        z = ops.matmul(a, W) + b
        dz = [ops.matmul(g, W) for g in da]
        d2z = [ops.matmul(h, W) for h in d2a] if need_second else []
        if li < last:
            s1 = act.df(z)
            a = act.f(z)
            if need_second:
                s2 = act.d2f(z)
                d2a = [
                    s2 * ops.square(dz[i]) + s1 * d2z[i] for i in range(d)
                ]
            da = [s1 * dz[i] for i in range(d)]
        else:
            a, da, d2a = z, dz, d2z
    return a, da, d2a

"""Analytic propagation of input-derivatives through an MLP.

PINN losses contain spatial derivatives of the network output —
``∂u/∂x``, ``∂²u/∂x²`` (Laplacian), advection terms, divergence.  With JAX
one nests ``grad`` calls; our tape engine instead propagates the triple

.. math::

    (a, \\; \\partial a/\\partial x_i, \\; \\partial^2 a/\\partial x_i^2)
    \\quad i = 1..d

layer by layer:

- affine layer ``z = a W + b``:  ``z_i' = a_i' W``,  ``z_i'' = a_i'' W``;
- elementwise activation ``a = σ(z)``:
  ``a_i' = σ'(z) z_i'``,
  ``a_i'' = σ''(z) (z_i')² + σ'(z) z_i''``.

The ``d`` directional derivatives are propagated *batched*: the seeds are
stacked into one ``(d, batch, dim)`` tensor, so each layer costs three
matmuls (value, first, second derivative) regardless of ``d`` instead of
``1 + 2d`` — one stacked BLAS call replaces ``d`` small ones and the tape
records ``O(1)`` nodes per layer rather than ``O(d)``.

Because every step is written with autodiff primitives, the result is
itself on the tape: one reverse pass yields exact weight-gradients of any
residual built from ``u``, ``∇u``, ``Δu`` — precisely what PINN training
needs, without nested autodiff.  (Pure second derivatives per coordinate
suffice for every operator in the paper: Laplacian, gradient, divergence,
advection.)
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.autodiff import ops
from repro.autodiff.tensor import ArrayLike, Tensor, tensor
from repro.nn.mlp import MLP

import numpy as np


def mlp_forward(model: MLP, params: Any, x: ArrayLike) -> Tensor:
    """Plain forward pass (alias of :meth:`MLP.apply` for symmetry)."""
    return model.apply(params, x)


def mlp_with_derivatives(
    model: MLP,
    params: Any,
    x: ArrayLike,
    need_second: bool = True,
) -> Tuple[Tensor, List[Tensor], List[Tensor]]:
    """Evaluate the network and its first/second input-derivatives.

    Parameters
    ----------
    model:
        The :class:`~repro.nn.mlp.MLP` architecture.
    params:
        Parameter pytree (arrays or tape tensors).
    x:
        ``(batch, in_dim)`` evaluation points.
    need_second:
        When False, skips the second-derivative propagation (≈30 % cheaper;
        used by first-order residual terms such as the continuity equation).

    Returns
    -------
    (u, du, d2u)
        ``u`` has shape ``(batch, out_dim)``; ``du[i]`` and ``d2u[i]`` are
        ``∂u/∂x_i`` and ``∂²u/∂x_i²`` with the same shape.  ``d2u`` is an
        empty list when ``need_second`` is False.
    """
    xt = tensor(x)
    if xt.ndim != 2 or xt.shape[1] != model.in_dim:
        raise ValueError(
            f"x must have shape (batch, {model.in_dim}), got {xt.shape}"
        )
    batch, d = xt.shape

    act = model.activation
    a = xt
    # Stacked seeds: da[i]/dx_j = δ_ij (a (d, batch, d) identity fan),
    # d2a = 0.  All d directions ride through each layer in one tensor.
    seed = np.zeros((d, batch, d))
    for i in range(d):
        seed[i, :, i] = 1.0
    da = tensor(seed)
    d2a = tensor(np.zeros((d, batch, d))) if need_second else None

    last = model.n_layers - 1
    for li, layer in enumerate(params):
        W, b = layer["W"], layer["b"]
        z = ops.matmul(a, W) + b
        dz = ops.matmul(da, W)
        d2z = ops.matmul(d2a, W) if need_second else None
        if li < last:
            s1 = act.df(z)
            a = act.f(z)
            if need_second:
                s2 = act.d2f(z)
                d2a = s2 * ops.square(dz) + s1 * d2z
            da = s1 * dz
        else:
            a, da, d2a = z, dz, d2z
    du = [da[i] for i in range(d)]
    d2u = [d2a[i] for i in range(d)] if need_second else []
    return a, du, d2u


def mlp_ensemble_with_derivatives(
    model: MLP,
    params_stack: Any,
    x: ArrayLike,
    need_second: bool = True,
) -> Tuple[Tensor, List[Tensor], List[Tensor]]:
    """:func:`mlp_with_derivatives` for a *stack* of N parameter sets.

    ``params_stack`` is a parameter pytree whose leaves carry a leading
    ensemble axis of length N (e.g. the per-ω networks of a batched line
    search, stacked leafwise); the evaluation points ``x`` are shared.
    One :func:`repro.autodiff.vbatch` trace pushes all N networks through
    the layer loop as stacked matmuls, so the tape records ``O(layers)``
    nodes instead of ``O(N · layers)`` and every BLAS call covers the
    whole ensemble.  Each returned tensor gains a leading N axis —
    ``u`` is ``(N, batch, out_dim)``, ``du[i]``/``d2u[i]`` likewise —
    and slice ``j`` is bitwise :func:`mlp_with_derivatives` of parameter
    set ``j`` (the batching rules' stacked-GEMM arrangements are bitwise
    per slice).  Gradients flow to ``params_stack`` leaves as usual.
    """
    from repro.autodiff.batching import vbatch

    def fn(params):
        u, du, d2u = mlp_with_derivatives(model, params, x, need_second)
        return [u] + du + d2u

    d = model.in_dim
    outs = vbatch(fn, in_axes=0)(params_stack)
    u = outs[0]
    du = outs[1 : 1 + d]
    d2u = outs[1 + d :] if need_second else []
    return u, du, d2u

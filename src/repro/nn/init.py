"""Weight initialisation schemes.

Glorot (Xavier) initialisation keeps pre-activation variance roughly
constant across tanh layers, which matters for PINNs whose losses contain
second derivatives of the network output.
"""

from __future__ import annotations

import numpy as np


def glorot_normal(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot normal: ``N(0, 2 / (fan_in + fan_out))``."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.standard_normal((fan_in, fan_out)) * std


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot uniform: ``U(-a, a)`` with ``a = sqrt(6 / (fan_in + fan_out))``."""
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He normal: ``N(0, 2 / fan_in)`` (for ReLU-family activations)."""
    std = np.sqrt(2.0 / fan_in)
    return rng.standard_normal((fan_in, fan_out)) * std


def zeros_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del rng, fan_in
    return np.zeros(fan_out)


INITIALIZERS = {
    "glorot_normal": glorot_normal,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
}

"""Activation functions with first and second derivatives.

Each activation is a triple of callables ``(f, f', f'')`` built from
autodiff primitives.  The derivative members are needed by
:mod:`repro.nn.derivatives` to propagate input-derivatives through the
network analytically; because they are expressed with primitive ops they
remain differentiable w.r.t. the network weights.

The paper uses ``tanh`` throughout ("infinitely differentiable tanh
activation"); the registry also carries ``sin`` and ``sigmoid`` for
experimentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.autodiff import ops
from repro.autodiff.tensor import ArrayLike, Tensor


@dataclass(frozen=True)
class Activation:
    """An activation with its first two derivatives.

    Attributes
    ----------
    f, df, d2f:
        Callables mapping a tensor to σ(z), σ'(z), σ''(z) respectively.
    name:
        Registry key.
    """

    name: str
    f: Callable[[ArrayLike], Tensor]
    df: Callable[[ArrayLike], Tensor]
    d2f: Callable[[ArrayLike], Tensor]


def _tanh_df(z: ArrayLike) -> Tensor:
    t = ops.tanh(z)
    return 1.0 - ops.square(t)


def _tanh_d2f(z: ArrayLike) -> Tensor:
    t = ops.tanh(z)
    return -2.0 * t * (1.0 - ops.square(t))


def _sigmoid_df(z: ArrayLike) -> Tensor:
    s = ops.sigmoid(z)
    return s * (1.0 - s)


def _sigmoid_d2f(z: ArrayLike) -> Tensor:
    s = ops.sigmoid(z)
    return s * (1.0 - s) * (1.0 - 2.0 * s)


def _sin_d2f(z: ArrayLike) -> Tensor:
    return -ops.sin(z)


ACTIVATIONS: Dict[str, Activation] = {
    "tanh": Activation("tanh", ops.tanh, _tanh_df, _tanh_d2f),
    "sigmoid": Activation("sigmoid", ops.sigmoid, _sigmoid_df, _sigmoid_d2f),
    "sin": Activation("sin", ops.sin, ops.cos, _sin_d2f),
}


def get_activation(name: str) -> Activation:
    """Look up an activation triple by name."""
    try:
        return ACTIVATIONS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(ACTIVATIONS)}"
        ) from exc

"""Minimal pytree utilities (JAX style) over nested lists/tuples/dicts.

Model parameters are stored as nested containers of ``numpy`` arrays.  The
helpers here flatten/unflatten those containers, map functions over leaves,
and — crucially — lift :func:`repro.autodiff.value_and_grad` to pytree
arguments via :func:`value_and_grad_tree`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, asdata


def _is_leaf(x: Any) -> bool:
    return not isinstance(x, (list, tuple, dict))


def tree_flatten(tree: Any) -> Tuple[List[Any], Any]:
    """Flatten a nested container into ``(leaves, treedef)``.

    The treedef is an opaque structure usable with :func:`tree_unflatten`.
    Dict keys are traversed in sorted order for determinism.
    """
    leaves: List[Any] = []

    def build(node: Any) -> Any:
        if isinstance(node, dict):
            keys = sorted(node.keys())
            return ("dict", keys, [build(node[k]) for k in keys])
        if isinstance(node, (list, tuple)):
            kind = "list" if isinstance(node, list) else "tuple"
            return (kind, None, [build(c) for c in node])
        leaves.append(node)
        return ("leaf", None, None)

    treedef = build(tree)
    return leaves, treedef


def tree_unflatten(treedef: Any, leaves: Sequence[Any]) -> Any:
    """Rebuild a nested container from ``treedef`` and a leaf sequence."""
    it = iter(leaves)

    def build(node: Any) -> Any:
        kind, keys, children = node
        if kind == "leaf":
            return next(it)
        if kind == "dict":
            return {k: build(c) for k, c in zip(keys, children)}
        seq = [build(c) for c in children]
        return seq if kind == "list" else tuple(seq)

    out = build(treedef)
    # Ensure all leaves were consumed.
    try:
        next(it)
    except StopIteration:
        return out
    raise ValueError("too many leaves for treedef")


def tree_leaves(tree: Any) -> List[Any]:
    """Return the flat list of leaves of ``tree``."""
    return tree_flatten(tree)[0]


def tree_map(f: Callable[[Any], Any], tree: Any) -> Any:
    """Apply ``f`` to every leaf, preserving the container structure."""
    leaves, treedef = tree_flatten(tree)
    return tree_unflatten(treedef, [f(x) for x in leaves])


def tree_zip_map(f: Callable[..., Any], *trees: Any) -> Any:
    """Apply ``f`` leafwise across same-structured trees."""
    flat = [tree_flatten(t) for t in trees]
    leaves0, treedef = flat[0]
    n = len(leaves0)
    for lv, _ in flat[1:]:
        if len(lv) != n:
            raise ValueError("pytrees have mismatched structure")
    zipped = [f(*(flat[k][0][i] for k in range(len(trees)))) for i in range(n)]
    return tree_unflatten(treedef, zipped)


def value_and_grad_tree(
    f: Callable[..., Any],
) -> Callable[..., Tuple[float, Any]]:
    """``value_and_grad`` where the *first* argument is a parameter pytree.

    ``f(params, *rest)`` must return a scalar; the transform returns
    ``(value, grads)`` with ``grads`` a pytree of the same structure holding
    ``numpy`` arrays.  Remaining positional arguments are passed through
    unchanged (not differentiated).
    """

    def wrapped(params: Any, *args: Any, **kwargs: Any) -> Tuple[float, Any]:
        leaves, treedef = tree_flatten(params)
        leaf_tensors = [Tensor(asdata(x), requires_grad=True) for x in leaves]
        wrapped_params = tree_unflatten(treedef, leaf_tensors)
        out = f(wrapped_params, *args, **kwargs)
        out_t = out if isinstance(out, Tensor) else Tensor(out)
        if out_t.size != 1:
            raise ValueError("value_and_grad_tree requires a scalar output")
        out_t.backward()
        grads = tree_unflatten(
            treedef,
            [
                t.grad if t.grad is not None else np.zeros_like(t.data)
                for t in leaf_tensors
            ],
        )
        return float(out_t.data), grads

    return wrapped


def grad_tree(f: Callable[..., Any]) -> Callable[..., Any]:
    """Gradient-only counterpart of :func:`value_and_grad_tree`."""
    vg = value_and_grad_tree(f)

    def wrapped(params: Any, *args: Any, **kwargs: Any) -> Any:
        return vg(params, *args, **kwargs)[1]

    return wrapped

"""Multilayer perceptron (the paper's PINN architecture).

The Laplace PINN uses 3 hidden layers of 30 neurons; the Navier–Stokes
PINN uses 5 hidden layers of 50 neurons; both with tanh activations.  The
class is a thin, stateless wrapper: parameters live in an explicit pytree
so they can be differentiated with
:func:`repro.nn.pytree.value_and_grad_tree` and updated by the optimisers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import ArrayLike, Tensor, tensor
from repro.nn.activations import get_activation
from repro.nn.init import INITIALIZERS


class MLP:
    """A fully connected network ``in_dim → hidden... → out_dim``.

    Parameters
    ----------
    in_dim, out_dim:
        Input/output widths.
    hidden:
        Sequence of hidden-layer widths, e.g. ``(30, 30, 30)`` for the
        paper's Laplace PINN.
    activation:
        Name of an activation registered in
        :mod:`repro.nn.activations` (default ``"tanh"``).
    init:
        Weight initialiser name (default ``"glorot_normal"``).
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        activation: str = "tanh",
        init: str = "glorot_normal",
    ) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError("in_dim and out_dim must be positive")
        if any(h < 1 for h in hidden):
            raise ValueError("hidden widths must be positive")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.hidden = tuple(int(h) for h in hidden)
        self.activation = get_activation(activation)
        self._init_name = init
        self.widths = (self.in_dim, *self.hidden, self.out_dim)

    @property
    def n_layers(self) -> int:
        """Number of affine layers (hidden + output)."""
        return len(self.widths) - 1

    def n_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(
            self.widths[i] * self.widths[i + 1] + self.widths[i + 1]
            for i in range(self.n_layers)
        )

    def init_params(self, seed: int = 0) -> List[Dict[str, np.ndarray]]:
        """Create a parameter pytree: ``[{"W": ..., "b": ...}, ...]``."""
        rng = np.random.default_rng(seed)
        w_init = INITIALIZERS[self._init_name]
        params = []
        for i in range(self.n_layers):
            fan_in, fan_out = self.widths[i], self.widths[i + 1]
            params.append(
                {"W": w_init(rng, fan_in, fan_out), "b": np.zeros(fan_out)}
            )
        return params

    def apply(self, params: Any, x: ArrayLike) -> Tensor:
        """Forward pass; ``x`` has shape ``(batch, in_dim)``.

        ``params`` may hold raw arrays (inference) or tape tensors
        (training); the same code path serves both.
        """
        a = tensor(x)
        last = self.n_layers - 1
        for i, layer in enumerate(params):
            z = ops.matmul(a, layer["W"]) + layer["b"]
            a = self.activation.f(z) if i < last else z
        return a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arch = "x".join(str(w) for w in self.widths)
        return f"MLP({arch}, act={self.activation.name})"

"""Neural-network library for the PINN experiments.

Provides the pieces the paper's PINN implementation needs:

- :mod:`repro.nn.pytree` — nested-container utilities (JAX-pytree style).
- :mod:`repro.nn.init` — Glorot/He weight initialisation.
- :mod:`repro.nn.mlp` — multilayer perceptrons (the paper's 3×30 and 5×50
  tanh networks).
- :mod:`repro.nn.derivatives` — analytic propagation of first and second
  input-derivatives through an MLP, built from autodiff primitives so the
  weight-gradient of a PDE residual comes out of a single reverse pass
  (substitute for JAX's nested ``grad``).
- :mod:`repro.nn.optimizers` — SGD and Adam on pytrees of parameters.
- :mod:`repro.nn.schedules` — the paper's piecewise-constant learning-rate
  schedule (÷10 at 50 % completion, ÷10 again at 75 %).
"""

from repro.nn.pytree import (
    tree_map,
    tree_flatten,
    tree_unflatten,
    tree_zip_map,
    tree_leaves,
    value_and_grad_tree,
    grad_tree,
)
from repro.nn.init import glorot_normal, glorot_uniform, he_normal, zeros_init
from repro.nn.mlp import MLP
from repro.nn.activations import get_activation, ACTIVATIONS
from repro.nn.derivatives import mlp_forward, mlp_with_derivatives
from repro.nn.optimizers import SGD, Adam, clip_grad_norm, global_grad_norm
from repro.nn.schedules import (
    ConstantSchedule,
    PiecewiseConstantSchedule,
    paper_schedule,
)

__all__ = [
    "tree_map",
    "tree_flatten",
    "tree_unflatten",
    "tree_zip_map",
    "tree_leaves",
    "value_and_grad_tree",
    "grad_tree",
    "glorot_normal",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "MLP",
    "get_activation",
    "ACTIVATIONS",
    "mlp_forward",
    "mlp_with_derivatives",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
    "ConstantSchedule",
    "PiecewiseConstantSchedule",
    "paper_schedule",
]

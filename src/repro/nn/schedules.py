"""Learning-rate schedules.

The paper (§3): "the initial learning rate was divided by 10 after half
the iterations or epochs, and again by 10 at 75 % completion" — a
piecewise-constant schedule applied identically to DAL, PINN and DP.
"""

from __future__ import annotations

from typing import Dict


class ConstantSchedule:
    """A constant learning rate."""

    def __init__(self, lr: float) -> None:
        self.lr = float(lr)

    def __call__(self, step: int, total: int) -> float:
        """Return the learning rate for ``step`` of ``total``."""
        del step, total
        return self.lr


class PiecewiseConstantSchedule:
    """Multiply the base rate by factors at fractional milestones.

    Parameters
    ----------
    base_lr:
        Initial learning rate.
    milestones:
        Mapping from completion fraction to *cumulative* multiplier, e.g.
        ``{0.5: 0.1, 0.75: 0.01}`` reproduces the paper's schedule.
    """

    def __init__(self, base_lr: float, milestones: Dict[float, float]) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        for frac in milestones:
            if not 0.0 < frac < 1.0:
                raise ValueError("milestone fractions must be in (0, 1)")
        self.base_lr = float(base_lr)
        self.milestones = dict(sorted(milestones.items()))

    def __call__(self, step: int, total: int) -> float:
        """Learning rate at ``step`` (0-based) of a ``total``-step run."""
        if total <= 0:
            raise ValueError("total must be positive")
        frac = step / total
        factor = 1.0
        for milestone, mult in self.milestones.items():
            if frac >= milestone:
                factor = mult
        return self.base_lr * factor


def paper_schedule(base_lr: float) -> PiecewiseConstantSchedule:
    """The schedule used throughout the paper: ÷10 at 50 %, ÷100 at 75 %."""
    return PiecewiseConstantSchedule(base_lr, {0.5: 0.1, 0.75: 0.01})

"""Learning-rate schedules.

The paper (§3): "the initial learning rate was divided by 10 after half
the iterations or epochs, and again by 10 at 75 % completion" — a
piecewise-constant schedule applied identically to DAL, PINN and DP.
"""

from __future__ import annotations

from typing import Dict


class ConstantSchedule:
    """A constant learning rate."""

    def __init__(self, lr: float) -> None:
        self.lr = float(lr)

    def __call__(self, step: int, total: int) -> float:
        """Return the learning rate for ``step`` of ``total``."""
        del step, total
        return self.lr


class PiecewiseConstantSchedule:
    """Multiply the base rate by factors at fractional milestones.

    Parameters
    ----------
    base_lr:
        Initial learning rate.
    milestones:
        Mapping from completion fraction to *cumulative* multiplier, e.g.
        ``{0.5: 0.1, 0.75: 0.01}`` reproduces the paper's schedule.
    """

    def __init__(self, base_lr: float, milestones: Dict[float, float]) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        for frac in milestones:
            if not 0.0 < frac < 1.0:
                raise ValueError("milestone fractions must be in (0, 1)")
        self.base_lr = float(base_lr)
        self.milestones = dict(sorted(milestones.items()))
        # Exact rational value of each milestone's stored double — the
        # threshold comparison below runs in integer arithmetic, so the
        # firing step never depends on how ``step / total`` happens to
        # round.  Thresholds are cached per ``total`` (schedules are
        # called once per optimiser iteration with a fixed total).
        self._ratios = [
            (float(m).as_integer_ratio(), mult)
            for m, mult in self.milestones.items()
        ]
        self._threshold_cache: Dict[int, list] = {}

    def _thresholds(self, total: int) -> list:
        """``[(first_firing_step, multiplier), …]`` for a given total.

        A milestone ``m`` fires at the smallest integer step with
        ``step / total >= m`` (evaluated exactly): ``ceil(m * total)``.
        Consequences worth pinning: with odd ``total`` the 50 % milestone
        fires at ``(total + 1) // 2`` (the first step past the midpoint);
        with ``total == 1`` no milestone in (0, 1) ever fires and the
        single step runs at the base rate; with ``total == 2`` the paper
        schedule yields ``[base, base / 10]`` (75 % fires at step 2,
        which is out of range).
        """
        cached = self._threshold_cache.get(total)
        if cached is None:
            cached = self._threshold_cache[total] = [
                (-(-num * total // den), mult)  # ceil(num * total / den)
                for (num, den), mult in self._ratios
            ]
        return cached

    def __call__(self, step: int, total: int) -> float:
        """Learning rate at ``step`` (0-based) of a ``total``-step run."""
        if total <= 0:
            raise ValueError("total must be positive")
        if step < 0:
            raise ValueError("step must be non-negative")
        factor = 1.0
        for threshold, mult in self._thresholds(total):
            if step >= threshold:
                factor = mult
        return self.base_lr * factor


def paper_schedule(base_lr: float) -> PiecewiseConstantSchedule:
    """The schedule used throughout the paper: ÷10 at 50 %, ÷100 at 75 %."""
    return PiecewiseConstantSchedule(base_lr, {0.5: 0.1, 0.75: 0.01})

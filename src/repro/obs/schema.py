"""Typed trace records and the JSONL wire format.

A *trace* is the per-iteration telemetry of one optimisation (or
training) run: what the cost did, how large the gradients were, what the
solvers underneath reported, and how the caches behaved.  Three record
kinds cover every producer in the repository:

``iteration``
    One optimiser step: cost ``J``, gradient norm, step size, and wall
    seconds per named phase (``grad``, ``update``, ...).
``solver``
    One linear-algebra event: a factorisation or a solve, with the system
    size, optional relative residual, condition estimate, nonzero count
    (sparse backends), and iteration count (Krylov backends).
``cache``
    Cumulative hit/miss counters of one cache (LU factorisations,
    compiled replay programs, ...), reported once at the end of a run.
``health``
    One typed run-health event from the watchdog
    (:mod:`repro.obs.health`): a NaN/Inf in the telemetry stream, a
    stalled convergence window, a Krylov iteration blow-up.

Records are frozen dataclasses so a trace cannot be mutated after the
fact, and the field lists are part of the public schema: the
``tests/obs`` suite pins them, and :data:`SCHEMA_VERSION` must be bumped
whenever a field is added, removed or renamed.  On disk a trace is one
JSON object per line — a ``header`` line carrying the schema version and
run metadata (plus an optional ``env`` environment fingerprint, see
:mod:`repro.obs.fingerprint`), followed by the records in emission
order.  Readers accept every version in :data:`SUPPORTED_VERSIONS`:
older versions only ever *lack* record kinds, so a v2 file decodes
unchanged under a v3 reader.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Union

SCHEMA_VERSION = 3  # v3: HealthRecord (watchdog events); v2: SolverRecord
# gained ``iterations`` (Krylov backends).

#: Versions this build can read.  Bumps that only *add* a record kind
#: keep the older versions readable (they simply never contain it).
SUPPORTED_VERSIONS = (2, 3)

#: ``kind`` tag used on the wire for each record type.
KIND_HEADER = "header"
KIND_ITERATION = "iteration"
KIND_SOLVER = "solver"
KIND_CACHE = "cache"
KIND_HEALTH = "health"


@dataclass(frozen=True)
class IterationRecord:
    """One optimiser (or training-epoch) step."""

    iteration: int
    cost: float
    grad_norm: float
    step_size: float
    #: Wall seconds per named phase, e.g. ``{"grad": ..., "update": ...}``.
    #: Timings are recorded for profiling but excluded from golden
    #: comparisons (see :mod:`repro.obs.compare`).
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SolverRecord:
    """One linear-solver event (a factorisation or a solve)."""

    solver: str
    event: str  # "factorize" | "solve" | "adjoint" | "fallback" | "failure"
    n: int
    seconds: float = 0.0
    residual: Optional[float] = None
    condition_estimate: Optional[float] = None
    nnz: Optional[int] = None
    #: Krylov iteration count for iterative solves; ``None`` for direct
    #: factorisation backends (schema v2).
    iterations: Optional[int] = None


@dataclass(frozen=True)
class CacheRecord:
    """Cumulative hit/miss counters for one cache."""

    cache: str
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class HealthRecord:
    """One typed run-health event emitted by the watchdog (schema v3)."""

    check: str  # "nan" | "stall" | "krylov_blowup" | "krylov_failure" | ...
    severity: str  # "warning" | "error"
    iteration: int
    value: float
    message: str = ""


Record = Union[IterationRecord, SolverRecord, CacheRecord, HealthRecord]

_KIND_OF = {
    IterationRecord: KIND_ITERATION,
    SolverRecord: KIND_SOLVER,
    CacheRecord: KIND_CACHE,
    HealthRecord: KIND_HEALTH,
}
_TYPE_OF = {kind: cls for cls, kind in _KIND_OF.items()}

#: Public field lists per kind — pinned by the schema-stability tests.
FIELDS = {
    kind: tuple(f.name for f in fields(cls)) for cls, kind in _KIND_OF.items()
}


def encode_record(record: Record) -> Dict[str, Any]:
    """Record → plain JSON-serialisable dict with a ``kind`` tag."""
    kind = _KIND_OF.get(type(record))
    if kind is None:
        raise TypeError(f"not a trace record: {type(record).__name__}")
    out = asdict(record)
    out["kind"] = kind
    return out


def decode_record(obj: Mapping[str, Any]) -> Record:
    """Dict (one parsed JSONL line) → typed record."""
    kind = obj.get("kind")
    cls = _TYPE_OF.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace record kind: {kind!r}")
    data = {k: v for k, v in obj.items() if k != "kind"}
    allowed = set(FIELDS[kind])
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(
            f"unknown fields for {kind!r} record: {sorted(unknown)} "
            f"(schema version {SCHEMA_VERSION})"
        )
    return cls(**data)


def encode_header(
    meta: Mapping[str, Any], env: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Header line: schema version + run metadata (+ env fingerprint).

    ``env`` rides as its own top-level key, *not* inside ``meta``, so
    golden-trace identity comparisons (which look only at ``meta``)
    never see provenance churn between machines.
    """
    out: Dict[str, Any] = {
        "kind": KIND_HEADER,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta),
    }
    if env:
        out["env"] = dict(env)
    return out


def decode_header(obj: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and return the metadata of a header line."""
    if obj.get("kind") != KIND_HEADER:
        raise ValueError("trace file does not start with a header line")
    version = obj.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"trace schema version {version!r} is not supported "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    return dict(obj.get("meta", {}))


def dumps_line(obj: Mapping[str, Any]) -> str:
    """One compact JSONL line (no trailing newline)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True, allow_nan=True)

"""Run-health watchdog: live detection of sick optimisation runs.

The convergence traces record *what happened*; the watchdog notices
*that something is going wrong while it still is*.  It is an in-process
monitor threaded through the DP/DAL/PINN loops and the Krylov solver
with three checks:

``nan``
    A non-finite cost or gradient norm entered the telemetry stream
    (the DAL-on-NS divergence failure mode).  Severity ``error``.
``stall``
    No relative cost improvement greater than ``stall_rtol`` over the
    last ``stall_window`` iterations.  Fires once per stall episode and
    re-arms on the next real improvement.  Severity ``warning``.
``krylov_blowup``
    One iterative solve needed more than ``krylov_blowup_factor`` times
    the rolling median iteration count of recent solves of the same
    system size — the preconditioner went stale or the operator's
    conditioning collapsed.  Severity ``warning``.  A non-converged
    solve additionally emits ``krylov_failure`` (severity ``error``).

Events are :class:`~repro.obs.schema.HealthRecord` instances (schema
v3); the instrumented loops forward them onto their recorder so they
land in trace artifacts, and every occurrence increments a
``health.<check>`` counter in the active metrics registry so ledger
entries and ``--profile-dir`` snapshots pick them up for free.

Install pattern mirrors :mod:`repro.obs.profile`: a process-wide
watchdog set via :func:`set_watchdog` / the :func:`watching` context
manager, read by loops through :func:`current_watchdog` — one global
load hoisted outside the loop, one ``is not None`` test per iteration
when disabled.  The ``trace_smoke`` gate bounds the total enabled-path
observability overhead at 2 %.

Heartbeats — the parallel half of run health — live in
:mod:`repro.parallel`: workers touch a per-task heartbeat file and the
engine flags tasks whose heartbeat goes stale before the hard timeout
fires (counter ``parallel.heartbeat_stalls``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs.metrics import get_registry
from repro.obs.schema import HealthRecord

__all__ = [
    "Watchdog",
    "WatchdogConfig",
    "current_watchdog",
    "set_watchdog",
    "watching",
]


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the health checks (defaults are deliberately lax:
    a watchdog that cries wolf gets turned off)."""

    #: Iterations without improvement before ``stall`` fires.
    stall_window: int = 50
    #: Minimum relative cost improvement that counts as progress.
    stall_rtol: float = 1e-3
    #: A solve needing more than this multiple of the rolling median
    #: iteration count (per system size) is a ``krylov_blowup``.
    krylov_blowup_factor: float = 3.0
    #: Solves observed (per system size) before blow-up detection arms.
    krylov_min_history: int = 5
    #: Rolling-median window length per system size.
    krylov_history: int = 32
    #: Cap on retained event records (counters keep counting past it).
    max_events: int = 100


class Watchdog:
    """Stateful per-run health monitor (one instance per monitored run).

    Not thread-safe: a watchdog watches one optimisation loop.  The
    ``observe_*`` hooks return the events they raised (possibly empty)
    so the calling loop can forward them to its recorder; every raised
    event also increments ``health.<check>`` in the active registry and
    the per-check :attr:`counts` tally.
    """

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig()
        self.events: List[HealthRecord] = []
        self.counts: Dict[str, int] = {}
        self._best = math.inf
        self._last_improve = 0
        self._stalled = False
        self._nan_seen = False
        self._krylov: Dict[int, Deque[int]] = {}
        self._n_solves = 0

    def __bool__(self) -> bool:
        return True

    @property
    def healthy(self) -> bool:
        """True while no ``error``-severity event has been raised."""
        return not any(ev.severity == "error" for ev in self.events)

    # -- emission ------------------------------------------------------
    def _emit(
        self, check: str, severity: str, iteration: int, value: float,
        message: str,
    ) -> List[HealthRecord]:
        self.counts[check] = self.counts.get(check, 0) + 1
        get_registry().counter(f"health.{check}").inc()
        if len(self.events) >= self.config.max_events:
            return []
        ev = HealthRecord(
            check=check, severity=severity, iteration=int(iteration),
            value=float(value), message=message,
        )
        self.events.append(ev)
        return [ev]

    # -- checks --------------------------------------------------------
    def observe_iteration(
        self, iteration: int, cost: float, grad_norm: float
    ) -> List[HealthRecord]:
        """Feed one optimiser step; returns any events it raised."""
        out: List[HealthRecord] = []
        if not (math.isfinite(cost) and math.isfinite(grad_norm)):
            if not self._nan_seen:  # report the *first* occurrence only
                self._nan_seen = True
                bad = cost if not math.isfinite(cost) else grad_norm
                out += self._emit(
                    "nan", "error", iteration, bad,
                    f"non-finite telemetry at iteration {iteration}: "
                    f"cost={cost!r}, grad_norm={grad_norm!r}",
                )
            else:
                self.counts["nan"] = self.counts.get("nan", 0) + 1
            return out
        cfg = self.config
        threshold = cfg.stall_rtol * max(abs(self._best), 1e-300)
        if cost < self._best - threshold:
            self._best = cost
            self._last_improve = iteration
            self._stalled = False
        else:
            self._best = min(self._best, cost)
            window = iteration - self._last_improve
            if not self._stalled and window >= cfg.stall_window:
                self._stalled = True
                out += self._emit(
                    "stall", "warning", iteration, float(window),
                    f"no cost improvement > {cfg.stall_rtol:g} (relative) "
                    f"over the last {window} iterations "
                    f"(best J = {self._best:.6e})",
                )
        return out

    def observe_krylov(
        self, n: int, iterations: int, converged: bool = True
    ) -> List[HealthRecord]:
        """Feed one iterative solve (system size ``n``); returns events.

        The rolling iteration history is keyed by ``n`` so interleaved
        solvers of different sizes never pollute each other's baseline.
        """
        out: List[HealthRecord] = []
        self._n_solves += 1
        cfg = self.config
        hist = self._krylov.get(n)
        if hist is None:
            hist = self._krylov[n] = deque(maxlen=cfg.krylov_history)
        if len(hist) >= cfg.krylov_min_history:
            ordered = sorted(hist)
            mid = len(ordered) // 2
            median = (
                ordered[mid] if len(ordered) % 2
                else 0.5 * (ordered[mid - 1] + ordered[mid])
            )
            if iterations > cfg.krylov_blowup_factor * max(median, 1.0):
                out += self._emit(
                    "krylov_blowup", "warning", self._n_solves,
                    float(iterations),
                    f"solve #{self._n_solves} (n={n}) took {iterations} "
                    f"iterations vs rolling median {median:g}",
                )
        hist.append(int(iterations))
        if not converged:
            out += self._emit(
                "krylov_failure", "error", self._n_solves, float(iterations),
                f"solve #{self._n_solves} (n={n}) did not converge "
                f"within {iterations} iterations",
            )
        return out


# The process-wide active watchdog.  ``None`` (the default) keeps every
# instrumented loop on its no-op path — one hoisted global read per run.
_ACTIVE: Optional[Watchdog] = None


def current_watchdog() -> Optional[Watchdog]:
    """The installed watchdog, or ``None`` when monitoring is disabled."""
    return _ACTIVE


def set_watchdog(watchdog: Optional[Watchdog]) -> Optional[Watchdog]:
    """Install ``watchdog`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = watchdog if watchdog else None
    return previous


class _Watching:
    """Context manager installing a watchdog for the duration of a block."""

    __slots__ = ("_watchdog", "_previous")

    def __init__(self, watchdog: Optional[Watchdog]):
        self._watchdog = watchdog if watchdog is not None else Watchdog()
        self._previous: Optional[Watchdog] = None

    def __enter__(self) -> Watchdog:
        self._previous = set_watchdog(self._watchdog)
        return self._watchdog

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_watchdog(self._previous)
        return False


def watching(watchdog: Optional[Watchdog] = None) -> _Watching:
    """``with watching() as wd:`` — install (a fresh) watchdog for a block."""
    return _Watching(watchdog)

"""The performance ledger: persistent bench history + regression verdicts.

``python -m repro.bench --ledger-dir DIR`` appends one entry per
invocation to ``DIR/<suite>.jsonl`` — an append-only record of the
repo's own performance trajectory.  Each entry carries:

- the **environment fingerprint** (git SHA, CPU count, NumPy/BLAS
  build, ``REPRO_*`` env — :mod:`repro.obs.fingerprint`),
- the **config content-digest** of the active scale tier, so the
  comparator never scores a run against a differently-shaped baseline,
- per-run **metrics** pulled from the bench harness and the
  SpanProfiler/MetricsRegistry: wall time, peak memory, final cost,
  per-phase seconds, Krylov iteration totals, cache hit rates, fused
  fraction.

On top sits a robust statistical comparator
(:func:`compare_entries`): per-metric baselines from the rolling
history using the median and the MAD-derived robust sigma
(``1.4826 * MAD``), a noise floor of
``max(z * sigma, rel_floor * |median|, abs_floor)``, and a verdict of
``improved`` / ``regressed`` / ``neutral`` per metric with
per-category directionality (wall time down is good; cache hit rate up
is good).  The wide relative floors on timing metrics are deliberate:
an honest re-run on a noisy CI box must classify *neutral* while a 2×
slowdown cleanly regresses — the ``ledger_smoke`` CI gate pins exactly
that contract.

:func:`write_snapshot` renders the rolling history into
``BENCH_<suite>.json`` — the tracked trajectory artifact at the repo
root — and ``python -m repro.obs ledger diff|report`` exposes the
comparator and an HTML sparkline view over any ledger directory.
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

try:  # POSIX file locking for the snapshot rewrite; absent on Windows.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "LEDGER_SCHEMA",
    "DiffPolicy",
    "LedgerError",
    "MetricVerdict",
    "PerformanceLedger",
    "baseline_stats",
    "build_entry",
    "compare_entries",
    "flatten_metrics",
    "format_verdicts",
    "metric_direction",
    "run_metrics",
    "validate_entry",
    "write_snapshot",
]

LEDGER_SCHEMA = 1

ENTRY_KIND = "repro.ledger.entry"
SNAPSHOT_KIND = "repro.bench.snapshot"

#: Top-level keys every ledger entry must carry.
_REQUIRED_KEYS = (
    "kind", "ledger_schema", "suite", "created_unix", "fingerprint",
    "config_digest", "scale", "jobs", "runs",
)

#: Scalar per-run metrics (nested dicts ``phase_seconds`` and
#: ``cache_hit_rate`` are validated separately).
_SCALAR_METRICS = (
    "wall_time_s", "peak_mem_bytes", "final_cost", "iterations",
    "solver_iterations", "fused_fraction",
)


class LedgerError(ValueError):
    """Raised on malformed ledger entries or stores."""


# ----------------------------------------------------------------------
# Entry construction and validation
# ----------------------------------------------------------------------
def run_metrics(result: Any, obs: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Reduce one bench run to its ledger metrics.

    ``result`` is duck-typed on the :class:`~repro.control.problem.
    ControlResult` surface (``wall_time_s``, ``peak_mem_bytes``,
    ``final_cost``, ``iterations``).  ``obs`` is the optional
    observability payload the bench CLI collects per run —
    ``{"phase_seconds": ..., "metrics": <registry snapshot>}`` — from
    which the solver/cache/codegen metrics are mined.
    """
    out: Dict[str, Any] = {
        "wall_time_s": float(result.wall_time_s),
        "peak_mem_bytes": float(result.peak_mem_bytes),
        "final_cost": float(result.final_cost),
        "iterations": float(result.iterations),
    }
    if not obs:
        return out
    phases = obs.get("phase_seconds") or {}
    if phases:
        out["phase_seconds"] = {str(k): float(v) for k, v in sorted(phases.items())}
    snap = obs.get("metrics") or {}

    def _value(name: str) -> Optional[float]:
        spec = snap.get(name)
        if isinstance(spec, Mapping) and "value" in spec:
            return float(spec["value"])
        return None

    kry = _value("krylov.iterations")
    if kry is not None:
        out["solver_iterations"] = kry
    fused = _value("codegen.fused_fraction")
    if fused is not None:
        out["fused_fraction"] = fused
    rates: Dict[str, float] = {}
    for name in snap:
        if name.startswith("cache.") and name.endswith(".hits"):
            cache = name[len("cache."):-len(".hits")]
            hits = _value(name) or 0.0
            misses = _value(f"cache.{cache}.misses") or 0.0
            total = hits + misses
            if total > 0:
                rates[cache] = hits / total
    if rates:
        out["cache_hit_rate"] = dict(sorted(rates.items()))
    return out


def build_entry(
    suite: str,
    runs: Mapping[str, Mapping[str, Any]],
    fingerprint: Mapping[str, Any],
    config_digest: str,
    scale: str,
    jobs: int = 1,
    wall_time_s: Optional[float] = None,
    created_unix: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble (and validate) one ledger entry."""
    entry = {
        "kind": ENTRY_KIND,
        "ledger_schema": LEDGER_SCHEMA,
        "suite": str(suite),
        "created_unix": float(
            time.time() if created_unix is None else created_unix
        ),
        "fingerprint": dict(fingerprint),
        "config_digest": str(config_digest),
        "scale": str(scale),
        "jobs": int(jobs),
        "runs": {str(k): dict(v) for k, v in runs.items()},
    }
    if wall_time_s is not None:
        entry["wall_time_s"] = float(wall_time_s)
    return validate_entry(entry)


def validate_entry(obj: Any) -> Dict[str, Any]:
    """Schema-check one ledger entry; returns it, raises :class:`LedgerError`."""
    if not isinstance(obj, Mapping):
        raise LedgerError(f"ledger entry must be an object, got {type(obj).__name__}")
    missing = [k for k in _REQUIRED_KEYS if k not in obj]
    if missing:
        raise LedgerError(f"ledger entry is missing keys: {missing}")
    if obj["kind"] != ENTRY_KIND:
        raise LedgerError(f"not a ledger entry: kind={obj['kind']!r}")
    if obj["ledger_schema"] != LEDGER_SCHEMA:
        raise LedgerError(
            f"ledger schema {obj['ledger_schema']!r} is not supported "
            f"(this build reads version {LEDGER_SCHEMA})"
        )
    if not isinstance(obj["fingerprint"], Mapping):
        raise LedgerError("ledger entry fingerprint must be an object")
    runs = obj["runs"]
    if not isinstance(runs, Mapping) or not runs:
        raise LedgerError("ledger entry needs a non-empty 'runs' mapping")
    for label, metrics in runs.items():
        if not isinstance(metrics, Mapping):
            raise LedgerError(f"run {label!r}: metrics must be an object")
        for name in _SCALAR_METRICS:
            if name in metrics and not isinstance(metrics[name], (int, float)):
                raise LedgerError(
                    f"run {label!r}: metric {name!r} must be numeric, "
                    f"got {type(metrics[name]).__name__}"
                )
        for nested in ("phase_seconds", "cache_hit_rate"):
            sub = metrics.get(nested)
            if sub is None:
                continue
            if not isinstance(sub, Mapping) or not all(
                isinstance(v, (int, float)) for v in sub.values()
            ):
                raise LedgerError(
                    f"run {label!r}: {nested!r} must map names to numbers"
                )
    return dict(obj)


# ----------------------------------------------------------------------
# The JSONL store
# ----------------------------------------------------------------------
class PerformanceLedger:
    """Append-only JSONL store of bench entries: ``<dir>/<suite>.jsonl``."""

    def __init__(self, directory: str, suite: str = "performance") -> None:
        self.directory = str(directory)
        self.suite = str(suite)
        self.path = os.path.join(self.directory, f"{self.suite}.jsonl")

    def __len__(self) -> int:
        return len(self.entries())

    def append(self, entry: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and append one entry; returns the validated entry.

        Concurrency contract: the serialised line (record + trailing
        newline) is written with a *single* ``os.write`` on an
        ``O_APPEND`` descriptor.  POSIX guarantees that appends of this
        size from concurrent writers land whole and in some order —
        buffered ``f.write`` offered no such guarantee and interleaved
        half-lines when several bench workers shared one ledger
        directory.
        """
        entry = validate_entry(entry)
        os.makedirs(self.directory, exist_ok=True)
        line = (json.dumps(entry, sort_keys=True, allow_nan=True) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """All entries in append order (empty list when no file yet).

        A *torn* trailing line — the final line of the file when it
        lacks a terminating newline and does not parse — is skipped with
        a warning rather than raised: it means a writer died (or is
        still mid-write) after ``os.open`` but the prior history is
        intact.  Corrupt lines anywhere else, or a complete (newline-
        terminated) final line that fails to parse, still raise
        :class:`LedgerError` with ``path:lineno``.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as f:
            raw = f.read()
        ends_with_newline = raw.endswith("\n")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        out: List[Dict[str, Any]] = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            torn = lineno == len(lines) and not ends_with_newline
            try:
                obj = json.loads(line)
                out.append(validate_entry(obj))
            except (ValueError, LedgerError) as exc:
                if torn:
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping torn trailing "
                        f"line (no newline; writer interrupted?): {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                raise LedgerError(
                    f"{self.path}:{lineno}: "
                    + (str(exc) if isinstance(exc, LedgerError)
                       else f"invalid JSON: {exc}")
                ) from None
        return out


# ----------------------------------------------------------------------
# Robust statistics and verdicts
# ----------------------------------------------------------------------
#: Metric-name suffix -> (category, higher_is_worse).
def metric_direction(metric: str) -> Tuple[str, bool]:
    """Classify a flattened metric name into (category, higher_is_worse)."""
    name = metric.rsplit("/", 1)[-1]
    if name == "peak_mem_bytes":
        return "mem", True
    if name == "final_cost":
        return "cost", True
    if name in ("solver_iterations", "iterations"):
        return "count", True
    if name == "fused_fraction" or "cache_hit_rate" in name:
        return "rate", False  # higher is better
    if name.endswith("_rps") or "throughput" in name:
        return "throughput", False  # higher is better
    # wall_time_s, latency percentiles, every phase_seconds.* component
    return "time", True


@dataclass(frozen=True)
class DiffPolicy:
    """Noise model of the comparator.

    The threshold for metric ``m`` with rolling history ``H`` is::

        max(z * 1.4826 * MAD(H), rel_floor[cat] * |median(H)|, abs_floor[cat])

    The relative floors encode the *measured* run-to-run noise of each
    metric category on shared CI runners; wall times on a busy box
    routinely wobble ±15–20 %, so the default ``time`` floor is 0.25 —
    honest re-runs stay neutral, a 2× slowdown (Δ = 100 %) regresses.
    """

    z: float = 3.0
    history_window: int = 20
    min_history: int = 1
    #: Minimum comparable history before the comparator will issue a
    #: non-neutral verdict.  Below it, one noisy baseline run can turn an
    #: honest re-run into a false ``regressed`` (the MAD of a singleton
    #: history is zero, so only the floors stand between signal and
    #: noise); such metrics stay ``neutral`` with an explicit
    #: ``insufficient_history`` note.
    min_window: int = 3
    match_config: bool = True
    rel_floors: Mapping[str, float] = field(default_factory=lambda: {
        "time": 0.25, "mem": 0.10, "cost": 1e-6, "count": 0.10, "rate": 0.0,
        "throughput": 0.25,
    })
    abs_floors: Mapping[str, float] = field(default_factory=lambda: {
        "time": 0.02, "mem": float(2**20), "cost": 1e-12, "count": 2.0,
        "rate": 0.02, "throughput": 0.5,
    })


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's comparison against its rolling baseline."""

    metric: str
    verdict: str  # "improved" | "regressed" | "neutral" | "new"
    value: float
    baseline: Optional[float] = None  # median of the history
    sigma: Optional[float] = None     # robust sigma (1.4826 * MAD)
    threshold: Optional[float] = None
    n_history: int = 0
    note: Optional[str] = None  # e.g. "insufficient_history"

    @property
    def delta(self) -> Optional[float]:
        return None if self.baseline is None else self.value - self.baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "verdict": self.verdict,
            "value": self.value,
            "baseline": self.baseline,
            "sigma": self.sigma,
            "threshold": self.threshold,
            "n_history": self.n_history,
            "note": self.note,
        }


def flatten_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """One entry's runs flattened to ``<run>/<metric>`` scalar pairs."""
    out: Dict[str, float] = {}
    for label, metrics in entry.get("runs", {}).items():
        for name, value in metrics.items():
            if isinstance(value, Mapping):
                for sub, v in value.items():
                    out[f"{label}/{name}.{sub}"] = float(v)
            elif isinstance(value, (int, float)):
                out[f"{label}/{name}"] = float(value)
    return out


def baseline_stats(values: Iterable[float]) -> Tuple[float, float]:
    """(median, robust sigma) of a history; sigma is ``1.4826 * MAD``."""
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("baseline_stats needs at least one value")

    def _median(xs: List[float]) -> float:
        mid = len(xs) // 2
        return xs[mid] if len(xs) % 2 else 0.5 * (xs[mid - 1] + xs[mid])

    med = _median(vals)
    mad = _median(sorted(abs(v - med) for v in vals))
    return med, 1.4826 * mad


def _comparable_history(
    current: Mapping[str, Any],
    history: Iterable[Mapping[str, Any]],
    policy: DiffPolicy,
) -> List[Dict[str, Any]]:
    """Prior entries the comparator may use as a baseline for ``current``."""
    out = []
    for entry in history:
        if entry.get("suite") != current.get("suite"):
            continue
        if policy.match_config and (
            entry.get("config_digest") != current.get("config_digest")
            or entry.get("scale") != current.get("scale")
        ):
            continue
        out.append(dict(entry))
    return out[-policy.history_window:]


def compare_entries(
    current: Mapping[str, Any],
    history: Iterable[Mapping[str, Any]],
    policy: Optional[DiffPolicy] = None,
) -> List[MetricVerdict]:
    """Score ``current`` against the rolling ``history`` baselines.

    Metrics with no comparable history get verdict ``"new"``.  Entries
    whose suite, config digest, or scale differ from the current entry
    are excluded from the baseline (unless ``policy.match_config`` is
    off) — a regression verdict must never be an artifact of comparing
    different experiment shapes.
    """
    policy = policy or DiffPolicy()
    usable = _comparable_history(current, history, policy)
    flat_now = flatten_metrics(current)
    flat_hist = [flatten_metrics(e) for e in usable]
    verdicts: List[MetricVerdict] = []
    for metric in sorted(flat_now):
        value = flat_now[metric]
        series = [h[metric] for h in flat_hist if metric in h]
        if len(series) < policy.min_history:
            verdicts.append(MetricVerdict(metric, "new", value))
            continue
        if len(series) < policy.min_window:
            median, sigma = baseline_stats(series)
            verdicts.append(MetricVerdict(
                metric, "neutral", value, baseline=median, sigma=sigma,
                n_history=len(series), note="insufficient_history",
            ))
            continue
        median, sigma = baseline_stats(series)
        category, higher_is_worse = metric_direction(metric)
        threshold = max(
            policy.z * sigma,
            policy.rel_floors.get(category, 0.1) * abs(median),
            policy.abs_floors.get(category, 0.0),
        )
        delta = value - median
        worse = delta if higher_is_worse else -delta
        if not math.isfinite(value):
            verdict = "regressed"
        elif worse > threshold:
            verdict = "regressed"
        elif worse < -threshold:
            verdict = "improved"
        else:
            verdict = "neutral"
        verdicts.append(MetricVerdict(
            metric, verdict, value, baseline=median, sigma=sigma,
            threshold=threshold, n_history=len(series),
        ))
    order = {"regressed": 0, "improved": 1, "neutral": 2, "new": 3}
    verdicts.sort(key=lambda v: (order[v.verdict], v.metric))
    return verdicts


def format_verdicts(verdicts: List[MetricVerdict]) -> str:
    """Human-readable verdict table (what ``ledger diff`` prints)."""
    if not verdicts:
        return "no metrics to compare"
    lines = []
    tallies: Dict[str, int] = {}
    for v in verdicts:
        tallies[v.verdict] = tallies.get(v.verdict, 0) + 1
        if v.baseline is None:
            lines.append(f"  new       {v.metric}: {v.value:.6g}")
            continue
        pct = ""
        if v.baseline:
            pct = f" ({100.0 * (v.value - v.baseline) / abs(v.baseline):+.1f}%)"
        detail = (
            f"[{v.note}, n={v.n_history}]" if v.note is not None
            else f"[threshold ±{v.threshold:.3g}, n={v.n_history}]"
        )
        lines.append(
            f"  {v.verdict:<9s} {v.metric}: {v.value:.6g} "
            f"vs median {v.baseline:.6g}{pct}  {detail}"
        )
    head = ", ".join(
        f"{tallies[k]} {k}" for k in ("regressed", "improved", "neutral", "new")
        if k in tallies
    )
    return head + "\n" + "\n".join(lines)


# ----------------------------------------------------------------------
# The tracked snapshot artifact
# ----------------------------------------------------------------------
def write_snapshot(
    path: str,
    entries: List[Mapping[str, Any]],
    verdicts: Optional[List[MetricVerdict]] = None,
    history_window: int = 20,
) -> Dict[str, Any]:
    """Write ``BENCH_<suite>.json``: latest entry + rolling history + verdicts.

    The snapshot is the repo-root trajectory artifact: small enough to
    commit, complete enough that a reviewer sees the current numbers,
    the recent series per metric, and the comparator's verdicts without
    touching the ledger directory.
    """
    if not entries:
        raise LedgerError("cannot snapshot an empty ledger")
    latest = entries[-1]
    window = entries[-history_window:]
    history: Dict[str, List[float]] = {}
    for entry in window:
        for metric, value in flatten_metrics(entry).items():
            history.setdefault(metric, []).append(value)
    doc = {
        "kind": SNAPSHOT_KIND,
        "ledger_schema": LEDGER_SCHEMA,
        "suite": latest.get("suite"),
        "n_entries": len(entries),
        "latest": dict(latest),
        "history": {k: history[k] for k in sorted(history)},
        "verdicts": [v.to_dict() for v in (verdicts or [])],
    }
    # Unlike the append path, the snapshot is a rewrite — serialise
    # concurrent writers with an advisory lock on a sidecar (the target
    # itself is replaced, so it cannot carry the lock), and publish via
    # tmp + rename so readers never observe a half-written snapshot.
    lock_path = path + ".lock"
    lock_fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.lockf(lock_fd, fcntl.LOCK_EX)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
    finally:
        if fcntl is not None:
            fcntl.lockf(lock_fd, fcntl.LOCK_UN)
        os.close(lock_fd)
    return doc

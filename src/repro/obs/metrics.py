"""Process-wide metrics registry: counters, gauges, histograms.

PR 3 left cache hit/miss counting scattered across three ad-hoc per-call
dicts (``autodiff/linalg.py``, ``autodiff/sparse.py``,
``autodiff/compile.py``) and flushed them through one-off hooks.  This
module generalises that into one registry with three instrument types:

- :class:`Counter` — monotone event count (``inc``).
- :class:`Gauge` — last-written value (``set``).
- :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at construction, plus running sum/count.  Fixed boundaries keep
  snapshots mergeable and diffs meaningful across runs.

A process-wide default registry backs the module-level helpers so hot
loops can do ``get_registry().counter("lu.solves").inc()`` without
plumbing; tests swap it with :func:`use_registry`.  Exports: a prometheus
style text rendering (:meth:`MetricsRegistry.to_text`), a plain dict
snapshot (:meth:`MetricsRegistry.snapshot`) for JSON artifacts, and
:meth:`MetricsRegistry.cache_records` which re-emits the cache gauges in
the frozen :class:`repro.obs.schema.CacheRecord` wire format so PR-3
trace consumers keep working unchanged.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.schema import CacheRecord

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "FLOP_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Per-op wall-time buckets (seconds): 1 µs … 10 s, decade + half-decade.
TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

#: Per-op FLOP-estimate buckets: 1e2 … 1e10.
FLOP_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(2, 11))

#: Per-op bytes-moved buckets: 64 B … 1 GiB, powers of 4.
BYTE_BUCKETS: Tuple[float, ...] = tuple(float(64 * 4 ** e) for e in range(13))


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down; reports the last write."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Observations bucketed against fixed boundaries.

    ``buckets`` are the *upper* bounds of each bucket (ascending); one
    implicit overflow bucket catches everything above the last bound.
    ``counts[i]`` is the number of observations ``<= buckets[i]`` that
    exceeded ``buckets[i-1]`` (non-cumulative, unlike Prometheus, so the
    JSON artifact diffs cleanly per bucket).
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket bound")
        if any(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left keeps bucket bounds inclusive (Prometheus ``le=``).
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments, created on first use; thread-safe creation.

    Instrument updates themselves are plain float adds on the hot path —
    Python's GIL makes them atomic enough for counting, and the smoke
    gates hold the total instrumentation budget to 2 %.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _create(self, name: str, candidate: Any) -> Any:
        # setdefault under the lock: first creator wins on a race.
        with self._lock:
            return self._metrics.setdefault(name, candidate)

    def counter(self, name: str, help: str = "") -> Counter:
        # Hit path (every hot-loop call after the first) is one dict get
        # and a kind check — no allocation.
        m = self._metrics.get(name)
        if m is None:
            m = self._create(name, Counter(name, help))
        if m.kind != "counter":
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, not counter"
            )
        return m

    def gauge(self, name: str, help: str = "") -> Gauge:
        m = self._metrics.get(name)
        if m is None:
            m = self._create(name, Gauge(name, help))
        if m.kind != "gauge":
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, not gauge"
            )
        return m

    def histogram(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS, help: str = ""
    ) -> Histogram:
        m = self._metrics.get(name)
        if m is None:
            m = self._create(name, Histogram(name, buckets, help))
        if m.kind != "histogram":
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, not histogram"
            )
        return m

    def __iter__(self) -> Iterator[Any]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- cache-counter bridge (PR-3 wire format) -----------------------
    def record_cache(self, name: str, hits: int, misses: int) -> None:
        """Publish one cache's totals as ``cache.<name>.hits/.misses`` gauges.

        Gauges, not counters: callers report *cumulative* totals read off
        the owning solver/program, so each report overwrites the last.
        """
        self.gauge(f"cache.{name}.hits").set(hits)
        self.gauge(f"cache.{name}.misses").set(misses)

    def cache_records(self) -> List[CacheRecord]:
        """The cache gauges re-emitted as frozen :class:`CacheRecord` rows.

        Byte-compatible with the PR-3 JSONL wire format — consumers of
        ``kind: "cache"`` records never see the registry migration.
        """
        caches: Dict[str, Dict[str, int]] = {}
        for m in self:
            if m.kind == "gauge" and m.name.startswith("cache."):
                base, _, field = m.name.rpartition(".")
                if field in ("hits", "misses"):
                    caches.setdefault(base[len("cache."):], {})[field] = int(m.value)
        return [
            CacheRecord(cache=name, hits=v.get("hits", 0), misses=v.get("misses", 0))
            for name, v in sorted(caches.items())
        ]

    # -- merge (parallel worker shards) --------------------------------
    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel engine gives every worker process a *fresh* registry
        and ships its snapshot back as a shard; merging sums them into
        the parent so artifacts look like one run.  Because each shard
        starts from zero, summation is the correct combination for every
        instrument kind — including gauges: a worker's ``cache.*`` gauge
        holds that task's cumulative totals and the tasks are disjoint.
        Histogram bucket boundaries must match (they are fixed at
        construction precisely so snapshots stay mergeable).
        """
        for name in sorted(snapshot):
            spec = snapshot[name]
            kind = spec.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(spec.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).inc(float(spec.get("value", 0.0)))
            elif kind == "histogram":
                bounds = tuple(float(b) for b in spec.get("buckets", ()))
                h = self.histogram(name, bounds or TIME_BUCKETS)
                if bounds and bounds != h.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket boundaries differ between "
                        f"shards ({bounds} vs {h.buckets}); snapshots are only "
                        "mergeable across identical boundaries"
                    )
                for i, c in enumerate(spec.get("counts", ())):
                    h.counts[i] += int(c)
                h.sum += float(spec.get("sum", 0.0))
                h.count += int(spec.get("count", 0))
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot of every instrument (JSON-ready)."""
        return {m.name: m.snapshot() for m in self}

    def to_text(self) -> str:
        """Prometheus-flavoured text rendering (human-readable export)."""
        lines: List[str] = []
        for m in self:
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            if m.kind == "histogram":
                for bound, count in zip(m.buckets, m.counts):
                    lines.append(f'{m.name}_bucket{{le="{bound:g}"}} {count}')
                lines.append(f'{m.name}_bucket{{le="+Inf"}} {m.counts[-1]}')
                lines.append(f"{m.name}_sum {m.sum:g}")
                lines.append(f"{m.name}_count {m.count}")
            else:
                lines.append(f"{m.name} {m.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


# Process-wide default registry.  Hot loops fetch instruments from here;
# tests swap it with ``use_registry`` to observe in isolation.
_DEFAULT = MetricsRegistry()
_registry = _DEFAULT

# Guards installation/restoration of the process-wide registry.  Reads
# (``get_registry``) stay lock-free — a single global load — because the
# hot loops call it per event; only the rare install path pays for the
# lock.  An RLock so an installer may re-enter (e.g. a hook that swaps
# registries while already holding the lock via ``use_registry``).
_INSTALL_LOCK = threading.RLock()


def get_registry() -> MetricsRegistry:
    """The active process-wide registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one.

    Install and read-of-previous happen atomically under a module lock,
    so concurrent installers (e.g. task-completion callbacks on different
    threads) cannot interleave and observe each other's half-applied
    swap.
    """
    global _registry
    with _INSTALL_LOCK:
        previous = _registry
        _registry = registry
        return previous


class _UseRegistry:
    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: Optional[MetricsRegistry]):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._previous = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Restore only if our install is still the active one.  If a
        # concurrent ``set_registry``/``use_registry`` replaced it while
        # this block ran, blindly restoring ``_previous`` would clobber
        # that installer's registry with a stale one — exactly the
        # interleaving bug concurrent task callbacks used to hit.  The
        # check-and-restore is atomic under the install lock.
        global _registry
        with _INSTALL_LOCK:
            if _registry is self._registry:
                _registry = self._previous
        return False


def use_registry(registry: Optional[MetricsRegistry] = None) -> _UseRegistry:
    """``with use_registry() as reg:`` — scoped (fresh) registry install.

    Reentrant: blocks may nest (each restores its own predecessor), and
    the context is safe against concurrent installs — on exit the
    previous registry is restored only if this block's registry is still
    the active one, so a stale restore can never clobber a newer install.
    """
    return _UseRegistry(registry)

"""Convergence telemetry: structured traces of the optimisation loops.

Public surface:

- :class:`~repro.obs.recorder.TraceRecorder` / :data:`NULL_RECORDER` —
  collect typed per-iteration records; JSONL round-trip.
- :class:`~repro.obs.compare.TolerancePolicy` / :func:`diff_traces` —
  golden-trace comparison with per-field tolerances.
- :mod:`repro.obs.goldens` — tier-0 configs that produce the committed
  baseline traces (imported lazily; it pulls in the control stack).
- ``python -m repro.obs`` — summary / diff / record CLI.
"""

from repro.obs.compare import Deviation, TolerancePolicy, diff_traces, format_diff
from repro.obs.hooks import (
    record_compile_cache,
    record_oracle_telemetry,
    record_solver_cache,
)
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.schema import (
    SCHEMA_VERSION,
    CacheRecord,
    IterationRecord,
    SolverRecord,
)

__all__ = [
    "SCHEMA_VERSION",
    "CacheRecord",
    "Deviation",
    "IterationRecord",
    "NULL_RECORDER",
    "NullRecorder",
    "SolverRecord",
    "TolerancePolicy",
    "TraceRecorder",
    "diff_traces",
    "format_diff",
    "record_compile_cache",
    "record_oracle_telemetry",
    "record_solver_cache",
]

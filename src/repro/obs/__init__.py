"""Observability: convergence traces, span profiling, metrics.

Public surface:

- :class:`~repro.obs.recorder.TraceRecorder` / :data:`NULL_RECORDER` —
  collect typed per-iteration records; JSONL round-trip.
- :class:`~repro.obs.profile.SpanProfiler` / :func:`span` /
  :func:`profiling` — hierarchical wall-time spans, Chrome-trace and
  HTML export; module-level :func:`span` is a shared no-op while no
  profiler is installed.
- :class:`~repro.obs.metrics.MetricsRegistry` / :func:`get_registry` —
  process-wide counters, gauges and histograms (the cache counters of
  the autodiff layer live here).
- :class:`~repro.obs.compare.TolerancePolicy` / :func:`diff_traces` —
  golden-trace comparison with per-field tolerances.
- :mod:`repro.obs.goldens` — tier-0 configs that produce the committed
  baseline traces (imported lazily; it pulls in the control stack).
- :mod:`repro.obs.report` — standalone HTML rendering of profile
  artifacts (imported lazily by ``SpanProfiler.save_html``).
- :class:`~repro.obs.ledger.PerformanceLedger` / :func:`compare_entries`
  — append-only bench history with robust (median/MAD) regression
  verdicts; written by ``python -m repro.bench --ledger-dir``.
- :class:`~repro.obs.health.Watchdog` / :func:`watching` — in-process
  run-health monitoring (NaN/Inf, stalled convergence, Krylov iteration
  blow-ups) emitting typed :class:`HealthRecord` events.
- :func:`~repro.obs.fingerprint.environment_fingerprint` /
  :func:`~repro.obs.fingerprint.config_digest` — shared provenance for
  every performance artifact.
- ``python -m repro.obs`` — summary / diff / record / report / ledger CLI.
"""

from repro.obs.compare import Deviation, TolerancePolicy, diff_traces, format_diff
from repro.obs.fingerprint import config_digest, environment_fingerprint
from repro.obs.health import (
    Watchdog,
    WatchdogConfig,
    current_watchdog,
    set_watchdog,
    watching,
)
from repro.obs.ledger import (
    DiffPolicy,
    LedgerError,
    MetricVerdict,
    PerformanceLedger,
    compare_entries,
    format_verdicts,
    write_snapshot,
)
from repro.obs.merge import (
    merge_chrome_traces,
    merge_metrics_payloads,
    merge_profile_artifacts,
    merge_snapshots,
    merge_trace_jsonl,
)
from repro.obs.hooks import (
    record_compile_cache,
    record_oracle_telemetry,
    record_solver_cache,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    ProfileError,
    Span,
    SpanProfiler,
    current_profiler,
    metrics_payload,
    profiled,
    profiling,
    set_profiler,
    span,
)
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.schema import (
    SCHEMA_VERSION,
    CacheRecord,
    HealthRecord,
    IterationRecord,
    SolverRecord,
)

__all__ = [
    "SCHEMA_VERSION",
    "CacheRecord",
    "Counter",
    "Deviation",
    "DiffPolicy",
    "Gauge",
    "HealthRecord",
    "Histogram",
    "IterationRecord",
    "LedgerError",
    "MetricVerdict",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NullProfiler",
    "NullRecorder",
    "PerformanceLedger",
    "ProfileError",
    "SolverRecord",
    "Span",
    "SpanProfiler",
    "TolerancePolicy",
    "TraceRecorder",
    "Watchdog",
    "WatchdogConfig",
    "compare_entries",
    "config_digest",
    "current_profiler",
    "current_watchdog",
    "diff_traces",
    "environment_fingerprint",
    "format_diff",
    "format_verdicts",
    "get_registry",
    "merge_chrome_traces",
    "merge_metrics_payloads",
    "merge_profile_artifacts",
    "merge_snapshots",
    "merge_trace_jsonl",
    "metrics_payload",
    "profiled",
    "profiling",
    "record_compile_cache",
    "record_oracle_telemetry",
    "record_solver_cache",
    "set_profiler",
    "set_registry",
    "set_watchdog",
    "span",
    "use_registry",
    "watching",
    "write_snapshot",
]

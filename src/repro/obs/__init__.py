"""Observability: convergence traces, span profiling, metrics.

Public surface:

- :class:`~repro.obs.recorder.TraceRecorder` / :data:`NULL_RECORDER` —
  collect typed per-iteration records; JSONL round-trip.
- :class:`~repro.obs.profile.SpanProfiler` / :func:`span` /
  :func:`profiling` — hierarchical wall-time spans, Chrome-trace and
  HTML export; module-level :func:`span` is a shared no-op while no
  profiler is installed.
- :class:`~repro.obs.metrics.MetricsRegistry` / :func:`get_registry` —
  process-wide counters, gauges and histograms (the cache counters of
  the autodiff layer live here).
- :class:`~repro.obs.compare.TolerancePolicy` / :func:`diff_traces` —
  golden-trace comparison with per-field tolerances.
- :mod:`repro.obs.goldens` — tier-0 configs that produce the committed
  baseline traces (imported lazily; it pulls in the control stack).
- :mod:`repro.obs.report` — standalone HTML rendering of profile
  artifacts (imported lazily by ``SpanProfiler.save_html``).
- ``python -m repro.obs`` — summary / diff / record / report CLI.
"""

from repro.obs.compare import Deviation, TolerancePolicy, diff_traces, format_diff
from repro.obs.merge import (
    merge_chrome_traces,
    merge_metrics_payloads,
    merge_profile_artifacts,
    merge_snapshots,
    merge_trace_jsonl,
)
from repro.obs.hooks import (
    record_compile_cache,
    record_oracle_telemetry,
    record_solver_cache,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    ProfileError,
    Span,
    SpanProfiler,
    current_profiler,
    profiled,
    profiling,
    set_profiler,
    span,
)
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.schema import (
    SCHEMA_VERSION,
    CacheRecord,
    IterationRecord,
    SolverRecord,
)

__all__ = [
    "SCHEMA_VERSION",
    "CacheRecord",
    "Counter",
    "Deviation",
    "Gauge",
    "Histogram",
    "IterationRecord",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NullProfiler",
    "NullRecorder",
    "ProfileError",
    "SolverRecord",
    "Span",
    "SpanProfiler",
    "TolerancePolicy",
    "TraceRecorder",
    "current_profiler",
    "diff_traces",
    "format_diff",
    "get_registry",
    "merge_chrome_traces",
    "merge_metrics_payloads",
    "merge_profile_artifacts",
    "merge_snapshots",
    "merge_trace_jsonl",
    "profiled",
    "profiling",
    "record_compile_cache",
    "record_oracle_telemetry",
    "record_solver_cache",
    "set_profiler",
    "set_registry",
    "span",
    "use_registry",
]

"""Hierarchical span profiling: where the wall-clock time goes.

The convergence traces (:mod:`repro.obs.recorder`) answer *what the
optimiser did*; this module answers *where the time went* — RBF assembly
vs. LU factorisation vs. adjoint solves vs. tape replay — as a tree of
**spans**.  A span is one timed region with a name, a category, optional
attributes, and children (regions opened while it was open).  Spans
nest per thread; spans recorded from worker threads land on their own
track.

Usage mirrors the recorder's zero-overhead contract.  Instrumented code
calls the *module-level* :func:`span` helper::

    from repro.obs.profile import span

    with span("rbf.factorize", "solver"):
        lu = sla.lu_factor(A)

With no profiler installed (the default), :func:`span` returns a shared
no-op context manager: the disabled path costs one global read and an
empty ``with`` block — the ``profile_smoke`` CI gate bounds the total at
2 % on the hottest instrumented loops.  Installing a profiler
(:func:`profiling` / :func:`set_profiler`) makes the same call sites
record real spans.

Exports:

- :meth:`SpanProfiler.to_chrome_trace` — the Chrome/Perfetto
  ``traceEvents`` JSON format (open in https://ui.perfetto.dev).
- :meth:`SpanProfiler.phase_seconds` — wall seconds per top-level phase
  (the per-method breakdown the paper's Table 3 implies).
- :meth:`SpanProfiler.summary_rows` — per-span-name aggregation (calls,
  total, self time) for reports.

Peak-RSS deltas: with ``track_rss=True`` each span records how much the
process-wide peak RSS grew while it was open (``ru_maxrss`` deltas; KiB
on Linux).  This is a *peak* watermark, so only spans that push the
high-water mark show nonzero deltas — exactly the ones that matter.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:  # pragma: no cover - resource is POSIX-only
    import resource

    def _peak_rss_kb() -> int:
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover

    def _peak_rss_kb() -> int:
        return 0


__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "ProfileError",
    "Span",
    "SpanProfiler",
    "current_profiler",
    "metrics_payload",
    "profiled",
    "profiling",
    "set_profiler",
    "span",
]


class ProfileError(RuntimeError):
    """Raised on structurally invalid span usage (unbalanced enter/exit)."""


class Span:
    """One timed region: name, category, wall interval, children.

    ``t_start``/``t_end`` are ``perf_counter`` readings relative to the
    owning profiler's epoch.  The interval deliberately includes the
    profiler's own per-span bookkeeping (object allocation, stack push/
    pop) so that the sum of sibling spans tracks the enclosing wall time
    — phase totals stay within the report's 5 % coverage budget instead
    of leaking profiler overhead into unattributed gaps.

    ``rss_delta_kb`` is the growth of the process peak-RSS watermark
    while the span was open (0 unless the profiler tracks RSS and this
    span pushed the high-water mark).

    A ``Span`` is its own context manager: entering pushes it onto the
    owning profiler's per-thread stack, exiting closes it.  Exceptions
    inside the body still close the span and propagate unchanged —
    profiling must observe a failure, never mask it.
    """

    __slots__ = (
        "name",
        "category",
        "attrs",
        "t_start",
        "t_end",
        "thread_id",
        "children",
        "rss_delta_kb",
        "_rss0",
        "_profiler",
    )

    def __init__(
        self,
        name: str,
        category: str,
        attrs: Optional[Dict[str, Any]],
        profiler: Optional["SpanProfiler"] = None,
    ):
        self.name = name
        self.category = category
        self.attrs = attrs
        self.t_start = 0.0
        self.t_end = 0.0
        self.thread_id = 0
        self.children: List["Span"] = []
        self.rss_delta_kb = 0
        self._rss0 = 0
        self._profiler = profiler

    @property
    def seconds(self) -> float:
        """Total wall seconds (enter to exit)."""
        return self.t_end - self.t_start

    @property
    def self_seconds(self) -> float:
        """Wall seconds not covered by child spans."""
        return self.seconds - sum(c.t_end - c.t_start for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        self._profiler._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.end(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )


class SpanProfiler:
    """Collects a span tree per thread; thread-safe; export to Chrome trace.

    Parameters
    ----------
    track_rss:
        Record peak-RSS watermark deltas per span (one ``getrusage``
        syscall on enter and exit).  Off by default: the smoke gate runs
        with the default configuration.
    """

    enabled = True

    def __init__(self, track_rss: bool = False) -> None:
        self.track_rss = bool(track_rss)
        self.roots: List[Span] = []
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        # Thread registration order -> stable small track ids.
        self._threads: Dict[int, str] = {}
        # Chrome-trace events absorbed from worker-process shards; they
        # carry their own (real) pid/tid and are re-emitted verbatim.
        self._external: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return True

    # -- recording -----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, sp: Span) -> None:
        """Put an already-stamped span on the calling thread's stack."""
        self._stack().append(sp)
        if self.track_rss:
            sp._rss0 = _peak_rss_kb()

    def begin(
        self,
        name: str,
        category: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; it becomes the parent of spans opened after it."""
        sp = self.span(name, category, attrs)
        self._push(sp)
        return sp

    def end(self, span: Optional[Span] = None) -> Span:
        """Close the innermost open span (must be ``span`` when given).

        Raises :class:`ProfileError` on unbalanced usage: closing with no
        span open, or closing a span that is not the innermost one.
        """
        stack = self._stack()
        if not stack:
            name = f" {span.name!r}" if span is not None else ""
            raise ProfileError(
                f"cannot close span{name}: no span is open on this thread "
                "(unbalanced begin/end)"
            )
        top = stack[-1]
        if span is not None and span is not top:
            raise ProfileError(
                f"cannot close span {span.name!r}: the innermost open span "
                f"is {top.name!r} (spans must close in LIFO order)"
            )
        stack.pop()
        if self.track_rss:
            top.rss_delta_kb = max(_peak_rss_kb() - top._rss0, 0)
        if stack:
            # The interval closes *after* the parent-link append so the
            # child absorbs its own bookkeeping (see Span docstring).
            stack[-1].children.append(top)
            top.t_end = time.perf_counter() - self._epoch
        else:
            thread = threading.current_thread()
            top.thread_id = thread.ident or 0
            top.t_end = time.perf_counter() - self._epoch
            with self._lock:
                self._threads.setdefault(top.thread_id, thread.name)
                self.roots.append(top)
        return top

    def span(
        self, name: str, category: str = "", attrs: Optional[Dict[str, Any]] = None
    ) -> Span:
        """Context manager recording one span (the span *is* the CM).

        The start stamp is taken here, before the span object is even
        allocated, so the interval charges the profiler's own cost to
        the span instead of to an unattributed gap.
        """
        t0 = time.perf_counter()
        sp = Span(name, category, attrs, self)
        sp.t_start = t0 - self._epoch
        return sp

    def profiled(
        self, name: Optional[str] = None, category: str = "function"
    ) -> Callable:
        """Decorator wrapping every call of a function in a span."""
        import functools

        def deco(fn):
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label, category):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def open_spans(self) -> int:
        """Number of spans still open on the calling thread."""
        return len(self._stack())

    # -- worker shards -------------------------------------------------
    def absorb_chrome_trace(self, doc: Dict[str, Any]) -> None:
        """Merge a worker shard's Chrome trace into this profiler.

        The parallel engine hands over the ``to_chrome_trace`` document a
        worker process exported; its events keep their real pid/tid, so
        each worker appears as its own process track next to the parent's
        spans in Perfetto.  Absorbed events also contribute to
        :meth:`phase_seconds` and :meth:`summary_rows` (total seconds and
        call counts; self-time attribution stays in the worker's own
        metrics shard, where the span tree lived).
        """
        events = [e for e in doc.get("traceEvents", []) if isinstance(e, dict)]
        with self._lock:
            self._external.extend(events)

    def external_events(self) -> List[Dict[str, Any]]:
        """Absorbed worker-shard events (verbatim Chrome-trace dicts)."""
        with self._lock:
            return list(self._external)

    # -- views ---------------------------------------------------------
    def spans(self) -> List[Span]:
        """All *finished* spans, depth-first from each root, all threads."""
        with self._lock:
            roots = list(self.roots)
        out: List[Span] = []
        for root in roots:
            out.extend(root.walk())
        return out

    def phase_seconds(self, category: str = "phase") -> Dict[str, float]:
        """Total wall seconds per span name within one category.

        The instrumented loops tag their disjoint top-level phases
        (``grad`` / ``update`` / ``eval``) with category ``"phase"``, so
        the default returns the per-run phase breakdown whose sum tracks
        the loop's wall time.
        """
        totals: Dict[str, float] = {}
        for sp in self.spans():
            if sp.category == category:
                totals[sp.name] = totals.get(sp.name, 0.0) + sp.seconds
        for ev in self.external_events():
            if ev.get("ph") == "X" and ev.get("cat") == category:
                name = str(ev.get("name", ""))
                totals[name] = totals.get(name, 0.0) + float(ev.get("dur", 0.0)) / 1e6
        return totals

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Per-name aggregation: calls, total seconds, self seconds, RSS."""
        rows: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for sp in self.spans():
            row = rows.get((sp.name, sp.category))
            if row is None:
                row = rows[(sp.name, sp.category)] = {
                    "name": sp.name,
                    "category": sp.category,
                    "calls": 0,
                    "seconds": 0.0,
                    "self_seconds": 0.0,
                    "rss_delta_kb": 0,
                }
            row["calls"] += 1
            row["seconds"] += sp.seconds
            row["self_seconds"] += sp.self_seconds
            row["rss_delta_kb"] += sp.rss_delta_kb
        for ev in self.external_events():
            if ev.get("ph") != "X":
                continue
            name = str(ev.get("name", ""))
            category = str(ev.get("cat", "") or "")
            row = rows.get((name, category))
            if row is None:
                row = rows[(name, category)] = {
                    "name": name,
                    "category": category,
                    "calls": 0,
                    "seconds": 0.0,
                    # Absorbed events are flat (no tree): self time is
                    # attributed in the worker's own metrics shard.
                    "self_seconds": 0.0,
                    "rss_delta_kb": 0,
                }
            row["calls"] += 1
            row["seconds"] += float(ev.get("dur", 0.0)) / 1e6
        return sorted(rows.values(), key=lambda r: r["seconds"], reverse=True)

    # -- export --------------------------------------------------------
    def to_chrome_trace(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The trace as a Chrome/Perfetto ``traceEvents`` object.

        Every finished span becomes one complete (``"ph": "X"``) event
        with microsecond ``ts``/``dur``; thread-name metadata events map
        worker threads onto named tracks.  The result loads directly in
        ``chrome://tracing`` and https://ui.perfetto.dev.
        """
        pid = os.getpid()
        with self._lock:
            threads = dict(self._threads)
            roots = list(self.roots)
        tid_of = {ident: i for i, ident in enumerate(threads)}
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for ident, name in threads.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid_of[ident],
                    "args": {"name": name},
                }
            )
        for root in roots:
            tid = tid_of.get(root.thread_id, 0)
            for sp in root.walk():
                args: Dict[str, Any] = dict(sp.attrs) if sp.attrs else {}
                if sp.rss_delta_kb:
                    args["rss_delta_kb"] = sp.rss_delta_kb
                events.append(
                    {
                        "name": sp.name,
                        "cat": sp.category or "default",
                        "ph": "X",
                        "ts": round(sp.t_start * 1e6, 3),
                        "dur": round(sp.seconds * 1e6, 3),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
        # Worker-shard events ride along verbatim: their pid/tid are the
        # worker's real ones, so each worker gets its own process track.
        events.extend(self.external_events())
        out: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
        # Profile artifacts share provenance with ledger entries and trace
        # headers: the environment fingerprint rides in ``metadata.env``
        # (caller-supplied ``meta`` keys win on collision).
        from repro.obs.fingerprint import environment_fingerprint

        metadata: Dict[str, Any] = {"env": environment_fingerprint()}
        if meta:
            metadata.update(meta)
        out["metadata"] = metadata
        return out

    def save_chrome_trace(self, path, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write :meth:`to_chrome_trace` as JSON."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_chrome_trace(meta), f)

    def save_html(self, path, title: str = "profile") -> None:
        """Render this profile as a standalone flamegraph-style HTML page."""
        from repro.obs.report import render_report

        with open(path, "w", encoding="utf-8") as f:
            f.write(render_report([self.to_chrome_trace({"label": title})]))


class NullProfiler:
    """Profiling disabled: falsy, and every method is a no-op."""

    __slots__ = ()
    enabled = False
    track_rss = False

    def __bool__(self) -> bool:
        return False

    def begin(self, name, category="", attrs=None):
        return None

    def end(self, span=None):
        return None

    def span(self, name, category="", attrs=None):
        return _NOOP_SPAN

    def profiled(self, name=None, category="function"):
        return lambda fn: fn

    def spans(self):
        return []

    def phase_seconds(self, category="phase"):
        return {}

    def summary_rows(self):
        return []

    def absorb_chrome_trace(self, doc):
        return None

    def external_events(self):
        return []


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()

#: Shared stateless no-op profiler (parallel to ``NULL_RECORDER``).
NULL_PROFILER = NullProfiler()

# The process-wide active profiler.  ``None`` (the default) keeps every
# instrumented call site on the no-op path.
_ACTIVE: Optional[SpanProfiler] = None


def current_profiler() -> Optional[SpanProfiler]:
    """The installed profiler, or ``None`` when profiling is disabled."""
    return _ACTIVE


def set_profiler(profiler: Optional[SpanProfiler]) -> Optional[SpanProfiler]:
    """Install ``profiler`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler else None
    return previous


class _Profiling:
    """Context manager installing a profiler for the duration of a block."""

    __slots__ = ("_profiler", "_previous")

    def __init__(self, profiler: Optional[SpanProfiler]):
        self._profiler = profiler if profiler is not None else SpanProfiler()
        self._previous = None

    def __enter__(self) -> SpanProfiler:
        self._previous = set_profiler(self._profiler)
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_profiler(self._previous)
        return False


def profiling(profiler: Optional[SpanProfiler] = None) -> _Profiling:
    """``with profiling() as prof:`` — install (a fresh) profiler for a block."""
    return _Profiling(profiler)


def span(name: str, category: str = "", attrs: Optional[Dict[str, Any]] = None):
    """Record a span on the active profiler (shared no-op when disabled).

    This is the call instrumented code uses.  The disabled path is one
    module-global read plus an empty context manager; the ``profile_smoke``
    gate holds the instrumented hot loops to ≤ 2 % total overhead.
    """
    p = _ACTIVE
    if p is None:
        return _NOOP_SPAN
    return p.span(name, category, attrs)


def metrics_payload(
    profiler: Optional[SpanProfiler] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``repro.profile.metrics`` artifact document, fingerprinted.

    One shared constructor for the metrics-snapshot payload the bench
    CLI, ``repro.obs record``, and the parallel worker shards all write:
    run metadata, the environment fingerprint, the profiler's per-phase
    seconds and span rows, and the active registry snapshot.  ``profiler``
    defaults to the installed one (no-op rows when none is active).
    """
    from repro.obs.fingerprint import environment_fingerprint
    from repro.obs.metrics import get_registry

    prof: Any = profiler if profiler is not None else (_ACTIVE or NULL_PROFILER)
    return {
        "kind": "repro.profile.metrics",
        "meta": dict(meta) if meta else {},
        "env": environment_fingerprint(),
        "phase_seconds": prof.phase_seconds(),
        "spans": prof.summary_rows(),
        "metrics": get_registry().snapshot(),
    }


def profiled(name: Optional[str] = None, category: str = "function") -> Callable:
    """Decorator: wrap calls in a span *when a profiler is active*.

    Unlike :meth:`SpanProfiler.profiled` this binds dynamically — the
    function stays usable (and no-op cheap) with profiling disabled.
    """
    import functools

    def deco(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            p = _ACTIVE
            if p is None:
                return fn(*args, **kwargs)
            with p.span(label, category):
                return fn(*args, **kwargs)

        return wrapper

    return deco

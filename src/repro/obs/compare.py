"""Golden-trace comparison with per-field tolerance policies.

The regression question is "did the *shape* of convergence change?", not
"did this machine run at the same speed?".  The comparator therefore
splits fields into three classes:

exact
    Structural facts that must match bit-for-bit: record counts, iteration
    indices, solver event sequences (``solver``/``event``/``n``/``nnz``/
    ``iterations``),
    cache hit/miss counters, and the identity metadata keys.
relative
    Floating-point trajectories compared as ``|a − b| ≤ atol + rtol·|b|``:
    costs, gradient norms, step sizes, solver residuals.  NaN equals NaN
    (a diverged run must stay diverged — *becoming* finite is as much a
    behaviour change as blowing up).
excluded
    Anything measuring this machine rather than the algorithm: phase
    timings, solver seconds, condition estimates (BLAS-dependent), and
    non-identity metadata (wall times, host info).

:func:`diff_traces` returns the out-of-tolerance fields as a list of
:class:`Deviation`; an empty list means the candidate reproduces the
baseline's convergence behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.obs.recorder import TraceRecorder
from repro.obs.schema import CacheRecord, IterationRecord, SolverRecord


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-field tolerances for golden comparisons.

    Defaults absorb BLAS/libm variation across machines while catching
    any change a config or code regression would make to the trajectory.
    """

    cost_rtol: float = 1e-6
    cost_atol: float = 1e-12
    grad_rtol: float = 1e-5
    grad_atol: float = 1e-10
    step_rtol: float = 1e-12
    residual_rtol: float = 1e-4
    residual_atol: float = 1e-10
    #: Metadata keys compared exactly (when present in the baseline).
    meta_keys: Tuple[str, ...] = ("method", "problem", "config", "backend")


@dataclass(frozen=True)
class Deviation:
    """One out-of-tolerance field."""

    kind: str  # "iteration" | "solver" | "cache" | "meta" | "structure"
    index: Optional[int]
    field: str
    baseline: Any
    candidate: Any
    detail: str = ""

    def __str__(self) -> str:
        where = f"{self.kind}[{self.index}]" if self.index is not None else self.kind
        msg = f"{where}.{self.field}: baseline={self.baseline!r} candidate={self.candidate!r}"
        return f"{msg}  ({self.detail})" if self.detail else msg


def _close(a: float, b: float, rtol: float, atol: float) -> bool:
    if a is None or b is None:
        return a is b
    a, b = float(a), float(b)
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= atol + rtol * abs(b)


def diff_traces(
    baseline: TraceRecorder,
    candidate: TraceRecorder,
    policy: Optional[TolerancePolicy] = None,
) -> List[Deviation]:
    """Compare ``candidate`` against ``baseline`` under ``policy``.

    Returns every out-of-tolerance field (empty list: traces agree).
    The baseline defines which metadata keys exist; extra candidate
    metadata is ignored so traces can carry host annotations freely.
    """
    pol = policy or TolerancePolicy()
    devs: List[Deviation] = []

    for key in pol.meta_keys:
        if key in baseline.meta and baseline.meta.get(key) != candidate.meta.get(key):
            devs.append(
                Deviation(
                    "meta", None, key, baseline.meta.get(key), candidate.meta.get(key),
                    "identity metadata must match exactly",
                )
            )

    # -- iteration records --------------------------------------------
    bi, ci = baseline.iterations, candidate.iterations
    if len(bi) != len(ci):
        devs.append(
            Deviation(
                "structure", None, "n_iterations", len(bi), len(ci),
                "iteration counts are compared exactly",
            )
        )
    for idx, (a, b) in enumerate(zip(bi, ci)):
        if a.iteration != b.iteration:
            devs.append(
                Deviation("iteration", idx, "iteration", a.iteration, b.iteration)
            )
        if not _close(b.cost, a.cost, pol.cost_rtol, pol.cost_atol):
            devs.append(
                Deviation(
                    "iteration", idx, "cost", a.cost, b.cost,
                    f"rtol={pol.cost_rtol:g}",
                )
            )
        if not _close(b.grad_norm, a.grad_norm, pol.grad_rtol, pol.grad_atol):
            devs.append(
                Deviation(
                    "iteration", idx, "grad_norm", a.grad_norm, b.grad_norm,
                    f"rtol={pol.grad_rtol:g}",
                )
            )
        if not _close(b.step_size, a.step_size, pol.step_rtol, 0.0):
            devs.append(
                Deviation(
                    "iteration", idx, "step_size", a.step_size, b.step_size,
                    f"rtol={pol.step_rtol:g}",
                )
            )
        # a.phases: timings — excluded by design.

    # -- solver records ------------------------------------------------
    bs, cs = baseline.solver_events, candidate.solver_events
    if len(bs) != len(cs):
        devs.append(
            Deviation(
                "structure", None, "n_solver_events", len(bs), len(cs),
                "solver event sequences are compared exactly",
            )
        )
    for idx, (a, b) in enumerate(zip(bs, cs)):
        for name in ("solver", "event", "n", "nnz", "iterations"):
            if getattr(a, name) != getattr(b, name):
                devs.append(
                    Deviation("solver", idx, name, getattr(a, name), getattr(b, name))
                )
        if not _close(b.residual, a.residual, pol.residual_rtol, pol.residual_atol):
            devs.append(
                Deviation(
                    "solver", idx, "residual", a.residual, b.residual,
                    f"rtol={pol.residual_rtol:g}",
                )
            )
        # seconds / condition_estimate: machine-dependent — excluded.

    # -- cache records -------------------------------------------------
    bc = {r.cache: r for r in baseline.caches}
    cc = {r.cache: r for r in candidate.caches}
    for name in sorted(set(bc) | set(cc)):
        a, b = bc.get(name), cc.get(name)
        if a is None or b is None:
            devs.append(
                Deviation(
                    "cache", None, name,
                    None if a is None else (a.hits, a.misses),
                    None if b is None else (b.hits, b.misses),
                    "cache present in only one trace",
                )
            )
            continue
        if (a.hits, a.misses) != (b.hits, b.misses):
            devs.append(
                Deviation(
                    "cache", None, name, (a.hits, a.misses), (b.hits, b.misses),
                    "hit/miss counters are compared exactly",
                )
            )
    return devs


def format_diff(deviations: List[Deviation]) -> str:
    """Human-readable report of :func:`diff_traces` output."""
    if not deviations:
        return "traces agree: 0 out-of-tolerance fields"
    lines = [f"{len(deviations)} out-of-tolerance field(s):"]
    lines += [f"  - {d}" for d in deviations]
    return "\n".join(lines)

"""Trace recording: the live :class:`TraceRecorder` and its no-op twin.

Every instrumented loop takes an optional recorder.  Passing ``None`` (or
the shared :data:`NULL_RECORDER`) keeps the hot path allocation-free: the
loops guard each emission with ``if recorder:`` — both ``None`` and
:class:`NullRecorder` are falsy — so disabled telemetry costs one truth
test per iteration and nothing else.  The enabled path appends frozen
:mod:`repro.obs.schema` records to in-memory lists and defers all
serialisation to :meth:`TraceRecorder.to_jsonl`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.schema import (
    CacheRecord,
    HealthRecord,
    IterationRecord,
    Record,
    SolverRecord,
    decode_header,
    decode_record,
    dumps_line,
    encode_header,
    encode_record,
)

import json


def _health_counts(events: List[HealthRecord]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for ev in events:
        out[ev.check] = out.get(ev.check, 0) + 1
    return out


class TraceRecorder:
    """Collects typed per-iteration telemetry for one run.

    Records are kept in emission order in :attr:`records`; convenience
    views (:attr:`iterations`, :attr:`solver_events`, :attr:`caches`)
    filter by kind.  ``meta`` carries run identity (method, problem,
    scale, backend) plus anything the run reports at the end (wall time,
    iterations run) — golden comparisons only look at the identity keys.
    """

    enabled = True

    def __init__(self, **meta: Any) -> None:
        self.meta: Dict[str, Any] = dict(meta)
        #: Environment fingerprint written into the JSONL header.  Left
        #: ``None`` it is captured lazily at :meth:`to_jsonl` time; set
        #: it explicitly (e.g. to ``{}``) to override or suppress.
        self.env: Optional[Dict[str, Any]] = None
        # Holds schema records plus raw iteration tuples awaiting
        # materialisation (see :meth:`iteration`); consumers go through
        # the :attr:`records` property, which settles the tuples first.
        self._records: List[Any] = []

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[Record]:
        """All records in emission order (materialised)."""
        self._materialize()
        return self._records

    def _materialize(self) -> None:
        recs = self._records
        for i, r in enumerate(recs):
            if type(r) is tuple:
                it, cost, grad_norm, step_size, phases = r
                recs[i] = IterationRecord(
                    iteration=int(it),
                    cost=float(cost),
                    grad_norm=float(grad_norm),
                    step_size=float(step_size),
                    phases=dict(phases) if phases else {},
                )

    # -- emission ------------------------------------------------------
    def set_meta(self, **kv: Any) -> None:
        """Merge key/value pairs into the run metadata."""
        self.meta.update(kv)

    def iteration(
        self,
        iteration: int,
        cost: float,
        grad_norm: float,
        step_size: float,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Record one optimiser step.

        This is the hottest emission path (once per optimiser iteration),
        so it appends a raw tuple — frozen-dataclass construction costs
        microseconds that show up against sub-millisecond iterations —
        and defers the :class:`IterationRecord` to the first read.
        """
        self._records.append((iteration, cost, grad_norm, step_size, phases))

    def solver_event(
        self,
        solver: str,
        event: str,
        n: int,
        seconds: float = 0.0,
        residual: Optional[float] = None,
        condition_estimate: Optional[float] = None,
        nnz: Optional[int] = None,
        iterations: Optional[int] = None,
    ) -> None:
        """Record one factorisation/solve event."""
        self._records.append(
            SolverRecord(
                solver=solver,
                event=event,
                n=int(n),
                seconds=float(seconds),
                residual=None if residual is None else float(residual),
                condition_estimate=(
                    None if condition_estimate is None else float(condition_estimate)
                ),
                nnz=None if nnz is None else int(nnz),
                iterations=None if iterations is None else int(iterations),
            )
        )

    def cache_stats(self, cache: str, hits: int, misses: int) -> None:
        """Record cumulative hit/miss counters of one cache."""
        self._records.append(
            CacheRecord(cache=cache, hits=int(hits), misses=int(misses))
        )

    def health_event(
        self,
        check: str,
        severity: str,
        iteration: int,
        value: float,
        message: str = "",
    ) -> None:
        """Record one watchdog health event (see :mod:`repro.obs.health`)."""
        self._records.append(
            HealthRecord(
                check=check,
                severity=severity,
                iteration=int(iteration),
                value=float(value),
                message=message,
            )
        )

    def absorb(self, other: "TraceRecorder") -> None:
        """Append another recorder's records and merge its metadata.

        Used to fold per-task recorders from parallel workers back into
        the parent's trace in task order — the merged record stream (and
        the last-write-wins metadata) matches what the serial run would
        have emitted into one shared recorder.
        """
        self.meta.update(other.meta)
        self._records.extend(other.records)

    # -- views ---------------------------------------------------------
    @property
    def iterations(self) -> List[IterationRecord]:
        return [r for r in self.records if isinstance(r, IterationRecord)]

    @property
    def solver_events(self) -> List[SolverRecord]:
        return [r for r in self.records if isinstance(r, SolverRecord)]

    @property
    def caches(self) -> List[CacheRecord]:
        return [r for r in self.records if isinstance(r, CacheRecord)]

    @property
    def healths(self) -> List[HealthRecord]:
        return [r for r in self.records if isinstance(r, HealthRecord)]

    # -- summary -------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Headline numbers of the trace (what ``repro.obs summary`` prints)."""
        iters = self.iterations
        costs = [r.cost for r in iters]
        finite = [c for c in costs if c == c]  # drop NaN
        phase_totals: Dict[str, float] = {}
        for r in iters:
            for name, sec in r.phases.items():
                phase_totals[name] = phase_totals.get(name, 0.0) + sec
        return {
            "meta": dict(self.meta),
            "n_iterations": len(iters),
            "first_cost": costs[0] if costs else None,
            "final_cost": costs[-1] if costs else None,
            "best_cost": min(finite) if finite else None,
            "max_grad_norm": max((r.grad_norm for r in iters), default=None),
            "phase_seconds": phase_totals,
            "n_solver_events": len(self.solver_events),
            "caches": {
                r.cache: {"hits": r.hits, "misses": r.misses, "hit_rate": r.hit_rate}
                for r in self.caches
            },
            "health": _health_counts(self.healths),
        }

    # -- persistence ---------------------------------------------------
    def to_jsonl(self, path) -> None:
        """Write the trace as one JSON object per line (header first).

        The header carries the environment fingerprint (see
        :mod:`repro.obs.fingerprint`) so trace artifacts share provenance
        with ledger entries; it rides outside ``meta`` and never affects
        golden identity comparisons.
        """
        env = self.env
        if env is None:
            from repro.obs.fingerprint import environment_fingerprint

            env = environment_fingerprint()
        with open(path, "w", encoding="utf-8") as f:
            f.write(dumps_line(encode_header(self.meta, env=env)) + "\n")
            for rec in self.records:
                f.write(dumps_line(encode_record(rec)) + "\n")

    @classmethod
    def from_jsonl(cls, path) -> "TraceRecorder":
        """Load a trace written by :meth:`to_jsonl`."""
        rec = cls()
        with open(path, "r", encoding="utf-8") as f:
            first = f.readline()
            if not first.strip():
                raise ValueError(f"empty trace file: {path}")
            header = json.loads(first)
            rec.meta = decode_header(header)
            rec.env = header.get("env")
            for line in f:
                line = line.strip()
                if line:
                    rec.records.append(decode_record(json.loads(line)))
        return rec


class NullRecorder:
    """Telemetry disabled: every method is a no-op and ``bool()`` is False.

    The class is stateless (``__slots__`` is empty) and the methods take
    the same signatures as :class:`TraceRecorder`, so it can be passed
    anywhere a recorder is expected without branching at the call sites —
    though the instrumented loops still prefer the ``if recorder:`` guard,
    which skips even the argument computation.
    """

    __slots__ = ()
    enabled = False

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def set_meta(self, **kv: Any) -> None:
        pass

    def iteration(self, iteration, cost, grad_norm, step_size, phases=None) -> None:
        pass

    def solver_event(
        self,
        solver,
        event,
        n,
        seconds=0.0,
        residual=None,
        condition_estimate=None,
        nnz=None,
        iterations=None,
    ) -> None:
        pass

    def cache_stats(self, cache, hits, misses) -> None:
        pass

    def health_event(self, check, severity, iteration, value, message="") -> None:
        pass


#: Shared stateless no-op recorder.
NULL_RECORDER = NullRecorder()

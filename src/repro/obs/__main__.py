"""Command-line trace tooling: ``python -m repro.obs <command>``.

Commands
--------
``summary TRACE``
    Headline numbers of one trace: iteration count, first/final/best
    cost, phase time totals, cache hit rates.
``diff BASELINE CANDIDATE``
    Compare two traces under the golden tolerance policy; exits 1 when
    any field is out of tolerance.  Timings are never compared.
``record CONFIG``
    Run a tier-0 config under telemetry and write its trace (used to
    bless golden baselines).  ``--profile-dir DIR`` additionally installs
    the span profiler and writes Chrome-trace + metrics JSON artifacts.
``report FILES... [-o OUT]``
    Render profile artifacts (``*.trace.json`` / ``*.metrics.json`` from
    ``python -m repro.bench --profile-dir``) into one standalone HTML
    comparison page.
``list``
    Show the available tier-0 configs.
``ledger list|diff|report``
    Performance-ledger tooling over a ``--ledger-dir`` store
    (:mod:`repro.obs.ledger`): ``list`` prints the entries of a suite,
    ``diff`` scores the latest entry against the rolling history (exit 1
    when any metric regressed), ``report`` renders the trajectory — one
    sparkline per metric plus the verdicts — into a standalone HTML page.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.obs.compare import TolerancePolicy, diff_traces, format_diff
from repro.obs.recorder import TraceRecorder


def _cmd_summary(args) -> int:
    trace = TraceRecorder.from_jsonl(args.trace)
    print(json.dumps(trace.summary(), indent=2, sort_keys=True, default=str))
    return 0


def _cmd_diff(args) -> int:
    baseline = TraceRecorder.from_jsonl(args.baseline)
    candidate = TraceRecorder.from_jsonl(args.candidate)
    policy = TolerancePolicy(
        cost_rtol=args.cost_rtol,
        grad_rtol=args.grad_rtol,
        residual_rtol=args.residual_rtol,
    )
    devs = diff_traces(baseline, candidate, policy)
    print(format_diff(devs))
    return 1 if devs else 0


def _cmd_record(args) -> int:
    from repro.obs.goldens import run_tier0

    if args.profile_dir:
        from repro.obs.metrics import use_registry
        from repro.obs.profile import SpanProfiler, metrics_payload, profiling

        os.makedirs(args.profile_dir, exist_ok=True)
        prof = SpanProfiler()
        t0 = time.perf_counter()
        with use_registry(), profiling(prof):
            trace = run_tier0(args.config)
            meta = {"label": args.config,
                    "wall_time_s": time.perf_counter() - t0}
            stem = os.path.join(args.profile_dir, args.config)
            prof.save_chrome_trace(f"{stem}.trace.json", meta=meta)
            with open(f"{stem}.metrics.json", "w", encoding="utf-8") as f:
                json.dump(metrics_payload(prof, meta=meta), f, indent=1)
        print(f"profile -> {stem}.trace.json / {stem}.metrics.json")
    else:
        trace = run_tier0(args.config)
    out = args.out or f"{args.config}.jsonl"
    trace.to_jsonl(out)
    summary = trace.summary()
    print(
        f"wrote {out}: {summary['n_iterations']} iterations, "
        f"final J = {summary['final_cost']:.6e}"
    )
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import load_artifact, render_report

    docs = [load_artifact(p) for p in args.files]
    page = render_report(docs, title=args.title)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(page)
    print(f"wrote {args.out} ({len(docs)} artifact(s))")
    return 0


def _ledger_store(args):
    from repro.obs.ledger import PerformanceLedger

    return PerformanceLedger(args.ledger_dir, args.suite)


def _cmd_ledger_list(args) -> int:
    store = _ledger_store(args)
    entries = store.entries()
    if not entries:
        print(f"no entries in {store.path}")
        return 0
    print(f"{store.path}: {len(entries)} entries")
    for i, e in enumerate(entries):
        fp = e.get("fingerprint", {})
        sha = (fp.get("git_sha") or "?")[:12]
        wall = e.get("wall_time_s")
        wall_s = f"{wall:8.2f}s" if isinstance(wall, (int, float)) else "       ?"
        print(
            f"  [{i}] {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(e['created_unix']))} "
            f"sha={sha} scale={e['scale']} jobs={e['jobs']} "
            f"runs={len(e['runs'])} wall={wall_s}"
        )
    return 0


def _cmd_ledger_diff(args) -> int:
    from repro.obs.ledger import DiffPolicy, compare_entries, format_verdicts

    store = _ledger_store(args)
    entries = store.entries()
    if not entries:
        print(f"no entries in {store.path}", file=sys.stderr)
        return 2
    current = entries[args.index] if args.index is not None else entries[-1]
    history = [e for e in entries if e is not current]
    policy = DiffPolicy(z=args.z, history_window=args.window)
    verdicts = compare_entries(current, history, policy)
    print(format_verdicts(verdicts))
    return 1 if any(v.verdict == "regressed" for v in verdicts) else 0


def _cmd_ledger_report(args) -> int:
    from repro.obs.ledger import compare_entries, format_verdicts
    from repro.obs.report import render_ledger_report

    store = _ledger_store(args)
    entries = store.entries()
    if not entries:
        print(f"no entries in {store.path}", file=sys.stderr)
        return 2
    verdicts = compare_entries(entries[-1], entries[:-1])
    page = render_ledger_report(entries, verdicts, title=args.title)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(page)
    print(f"wrote {args.out} ({len(entries)} entries)")
    print(format_verdicts(verdicts))
    return 0


def _cmd_list(args) -> int:
    from repro.obs.goldens import TIER0

    for name, cfg in sorted(TIER0.items()):
        print(
            f"{name:24s} {cfg.problem:>13s} | {cfg.method.upper():>3s} | "
            f"{cfg.iterations} iters @ lr {cfg.lr:g}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Convergence-trace tooling."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="print headline numbers of a trace")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_summary)

    p = sub.add_parser("diff", help="compare two traces (exit 1 on deviation)")
    p.add_argument("baseline")
    p.add_argument("candidate")
    pol = TolerancePolicy()
    p.add_argument("--cost-rtol", type=float, default=pol.cost_rtol)
    p.add_argument("--grad-rtol", type=float, default=pol.grad_rtol)
    p.add_argument("--residual-rtol", type=float, default=pol.residual_rtol)
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("record", help="run a tier-0 config and write its trace")
    p.add_argument("config")
    p.add_argument("--out", default=None, help="output path (default CONFIG.jsonl)")
    p.add_argument("--profile-dir", default=None, metavar="DIR",
                   help="also profile the run and write Chrome-trace + "
                        "metrics JSON artifacts here")
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser(
        "report", help="render profile artifacts into a standalone HTML page"
    )
    p.add_argument("files", nargs="+",
                   help="*.trace.json / *.metrics.json artifacts")
    p.add_argument("-o", "--out", default="profile_report.html")
    p.add_argument("--title", default="Performance report")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("list", help="list tier-0 configs")
    p.set_defaults(fn=_cmd_list)

    led = sub.add_parser("ledger", help="performance-ledger tooling")
    led_sub = led.add_subparsers(dest="ledger_command", required=True)

    def _ledger_common(q):
        q.add_argument("ledger_dir", help="ledger directory (--ledger-dir)")
        q.add_argument("--suite", default="performance",
                       help="suite name (default: performance)")

    q = led_sub.add_parser("list", help="print the entries of a suite")
    _ledger_common(q)
    q.set_defaults(fn=_cmd_ledger_list)

    q = led_sub.add_parser(
        "diff", help="score one entry against the rest (exit 1 on regression)"
    )
    _ledger_common(q)
    q.add_argument("--index", type=int, default=None,
                   help="entry to score (default: the latest)")
    q.add_argument("--z", type=float, default=3.0,
                   help="robust z threshold (default 3.0)")
    q.add_argument("--window", type=int, default=20,
                   help="rolling-history window (default 20)")
    q.set_defaults(fn=_cmd_ledger_diff)

    q = led_sub.add_parser(
        "report", help="render the perf trajectory as a standalone HTML page"
    )
    _ledger_common(q)
    q.add_argument("-o", "--out", default="ledger_report.html")
    q.add_argument("--title", default="Performance ledger")
    q.set_defaults(fn=_cmd_ledger_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

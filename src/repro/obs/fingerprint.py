"""Environment fingerprinting and config content-digests for provenance.

Every performance artifact this repo writes — ledger entries, trace
JSONL headers, Chrome-trace metadata, metrics snapshots — should answer
the same question when a number looks off six months later: *what
exactly produced this?*  Two primitives cover it:

- :func:`environment_fingerprint` — the machine/build identity: git SHA,
  CPU count, platform, Python and NumPy versions, the BLAS NumPy was
  built against, and every ``REPRO_*`` environment switch in effect.
  Cheap to call repeatedly (the expensive probes are cached; the
  ``REPRO_*`` capture is re-read every call so scoped env overrides are
  honoured).
- :func:`config_digest` — a short content-hash of an arbitrary config
  object (dataclasses included) under canonical JSON, so two runs are
  comparable iff their digests match, regardless of dict ordering.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional

__all__ = ["config_digest", "environment_fingerprint"]

#: Cached static half of the fingerprint (git SHA, BLAS probe, ...).
_STATIC: Optional[Dict[str, Any]] = None


def _git_sha() -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout.

    Tries ``git rev-parse`` in the working directory, then next to this
    package (editable installs), then the ``GITHUB_SHA`` CI variable.
    """
    for cwd in (os.getcwd(), os.path.dirname(os.path.abspath(__file__))):
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd, capture_output=True, text=True, timeout=5.0,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        sha = out.stdout.strip()
        if out.returncode == 0 and sha:
            return sha
    return os.environ.get("GITHUB_SHA") or None


def _numpy_info() -> Dict[str, Any]:
    """NumPy version plus the BLAS it was built against (best effort)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return {"numpy": None, "blas": "unknown"}
    blas = "unknown"
    try:  # numpy >= 1.26 structured config
        cfg = np.show_config(mode="dicts")  # type: ignore[call-arg]
        dep = (cfg or {}).get("Build Dependencies", {}).get("blas", {})
        name = dep.get("name") or ""
        version = dep.get("version") or ""
        blas = f"{name} {version}".strip() or "unknown"
    except TypeError:
        try:  # older numpy: distutils-style system_info
            info = np.__config__.get_info("blas_opt_info")  # type: ignore[attr-defined]
            blas = ",".join(info.get("libraries", ())) or "unknown"
        except Exception:
            pass
    except Exception:
        pass
    return {"numpy": np.__version__, "blas": blas}


def _static_fingerprint() -> Dict[str, Any]:
    global _STATIC
    if _STATIC is None:
        info = _numpy_info()
        _STATIC = {
            "git_sha": _git_sha(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count() or 1,
            "numpy": info["numpy"],
            "blas": info["blas"],
        }
    return _STATIC


def environment_fingerprint() -> Dict[str, Any]:
    """The provenance stamp shared by every performance artifact.

    Returns a fresh plain dict each call (callers may mutate it).  The
    expensive probes (``git rev-parse``, the NumPy BLAS introspection)
    run once per process; the ``REPRO_*`` environment capture is live so
    scoped overrides (tests, CI matrix legs) show up faithfully.
    """
    out = dict(_static_fingerprint())
    out["env"] = {
        k: os.environ[k] for k in sorted(os.environ) if k.startswith("REPRO_")
    }
    return out


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to canonically-ordered JSON-serialisable values."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_digest(obj: Any) -> str:
    """Short sha256 content-digest of a config under canonical JSON.

    Dataclasses are expanded field-by-field; dict keys are sorted;
    tuples and lists hash identically.  Two configurations produce the
    same digest iff they would produce the same canonical JSON — the
    ledger comparator uses this to refuse apples-to-oranges baselines.
    """
    blob = json.dumps(
        _canonical(obj), separators=(",", ":"), sort_keys=True, allow_nan=True
    )
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

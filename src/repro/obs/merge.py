"""Merging per-worker observability shards into one artifact set.

The parallel engine runs observability per process: each worker exports
its own Chrome trace, metrics snapshot, and (for instrumented runs) a
convergence-trace JSONL.  This module folds those shards back into the
single-artifact formats the rest of the tooling already consumes —
``python -m repro.obs report`` renders a merged trace/metrics pair
exactly like a serial one.

Merge semantics:

- **Chrome traces** — event lists are concatenated verbatim.  Events
  keep their original pid/tid, so every worker appears as its own
  process track in Perfetto next to the parent's.
- **Metrics snapshots** — instruments are summed (counters, histogram
  buckets, and gauges alike: shards start from fresh registries, so
  their totals are disjoint and summation is exact).  Histogram bucket
  boundaries must agree across shards.
- **Trace JSONL** — record lines are concatenated in shard order under
  one merged header whose ``merged_from`` entry carries each shard's
  own metadata (the per-task identity: ω, method, seed, …).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "merge_chrome_traces",
    "merge_metrics_payloads",
    "merge_profile_artifacts",
    "merge_snapshots",
    "merge_trace_jsonl",
]


def merge_chrome_traces(
    docs: Iterable[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Concatenate Chrome-trace documents into one (pids kept verbatim)."""
    events: List[Dict[str, Any]] = []
    merged_from: List[Dict[str, Any]] = []
    for doc in docs:
        events.extend(doc.get("traceEvents", []))
        merged_from.append(dict(doc.get("metadata", {})))
    out_meta = dict(meta or {})
    out_meta["merged_from"] = merged_from
    return {"traceEvents": events, "displayTimeUnit": "ms", "metadata": out_meta}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum registry snapshots (the shard-merge semantics of
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`)."""
    reg = MetricsRegistry()
    for snap in snapshots:
        reg.merge_snapshot(snap)
    return reg.snapshot()


def _merge_span_rows(
    row_lists: Iterable[Sequence[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    rows: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for row_list in row_lists:
        for r in row_list:
            key = (str(r.get("name", "")), str(r.get("category", "")))
            row = rows.get(key)
            if row is None:
                row = rows[key] = {
                    "name": key[0],
                    "category": key[1],
                    "calls": 0,
                    "seconds": 0.0,
                    "self_seconds": 0.0,
                    "rss_delta_kb": 0,
                }
            row["calls"] += int(r.get("calls", 0))
            row["seconds"] += float(r.get("seconds", 0.0))
            row["self_seconds"] += float(r.get("self_seconds", 0.0))
            row["rss_delta_kb"] += int(r.get("rss_delta_kb", 0))
    return sorted(rows.values(), key=lambda r: r["seconds"], reverse=True)


def merge_metrics_payloads(
    docs: Iterable[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Merge ``repro.profile.metrics`` artifacts into one payload."""
    docs = list(docs)
    phase_seconds: Dict[str, float] = {}
    for doc in docs:
        for name, sec in (doc.get("phase_seconds") or {}).items():
            phase_seconds[name] = phase_seconds.get(name, 0.0) + float(sec)
    out_meta = dict(meta or {})
    out_meta["merged_from"] = [dict(d.get("meta", {})) for d in docs]
    return {
        "kind": "repro.profile.metrics",
        "meta": out_meta,
        "phase_seconds": phase_seconds,
        "spans": _merge_span_rows(d.get("spans") or [] for d in docs),
        "metrics": merge_snapshots(d.get("metrics") or {} for d in docs),
    }


def merge_profile_artifacts(
    trace_paths: Sequence[str],
    metrics_paths: Sequence[str],
    out_stem: str,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Merge shard files into ``<out_stem>.trace.json`` / ``.metrics.json``.

    Returns the paths written.  Either input list may be empty (e.g. a
    run with metrics shards but no profiler traces).
    """
    written: List[str] = []
    if trace_paths:
        docs = [_load_json(p) for p in trace_paths]
        path = f"{out_stem}.trace.json"
        with open(path, "w", encoding="utf-8") as f:
            json.dump(merge_chrome_traces(docs, meta=meta), f)
        written.append(path)
    if metrics_paths:
        docs = [_load_json(p) for p in metrics_paths]
        path = f"{out_stem}.metrics.json"
        with open(path, "w", encoding="utf-8") as f:
            json.dump(merge_metrics_payloads(docs, meta=meta), f, indent=1)
        written.append(path)
    return written


def merge_trace_jsonl(
    paths: Sequence[str], out_path: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Concatenate convergence-trace JSONL shards under one merged header.

    Each shard's own header metadata (its per-task identity) is preserved
    in the merged header's ``merged_from`` list; record lines follow in
    shard order, byte-for-byte as written by the workers.
    """
    from repro.obs.schema import decode_header, dumps_line, encode_header

    merged_from: List[Dict[str, Any]] = []
    bodies: List[List[str]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln.rstrip("\n") for ln in f if ln.strip()]
        if not lines:
            raise ValueError(f"empty trace shard: {path}")
        shard_meta = decode_header(json.loads(lines[0]))
        shard_meta["shard_file"] = os.path.basename(path)
        merged_from.append(shard_meta)
        bodies.append(lines[1:])
    out_meta = dict(meta or {})
    out_meta["merged_from"] = merged_from
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(dumps_line(encode_header(out_meta)) + "\n")
        for body in bodies:
            for line in body:
                f.write(line + "\n")


def _load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)

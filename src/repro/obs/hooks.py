"""End-of-run telemetry collection from oracles and solvers.

The per-iteration hooks live inside the loops themselves; this module
handles the *cumulative* counters that only make sense once a run is
over: LU-factorisation cache behaviour, compiled-replay program cache
behaviour.  Everything is duck-typed so the collector works on any
oracle that exposes the conventional attributes, and prefers an
oracle-provided ``report_telemetry`` when one exists.

Since PR 4 these hooks publish through the process-wide metrics registry
(:mod:`repro.obs.metrics`): cache totals land as ``cache.<name>.hits`` /
``cache.<name>.misses`` gauges first, and the trace's ``cache`` records
are emitted *from the registry values*, keeping the PR-3
:class:`~repro.obs.schema.CacheRecord` wire format while making the
registry the single source of truth.  Publishing happens even with no
recorder attached, so ``--profile-dir`` metrics artifacts carry cache
stats without tracing enabled.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import get_registry


def _publish(recorder, name: str, hits: int, misses: int) -> None:
    """Registry first; then the trace record, read back off the registry."""
    reg = get_registry()
    reg.record_cache(name, hits, misses)
    if recorder:
        recorder.cache_stats(
            name,
            hits=int(reg.get(f"cache.{name}.hits").value),
            misses=int(reg.get(f"cache.{name}.misses").value),
        )


def record_solver_cache(recorder, solver: Any, name: str = "lu-cache") -> None:
    """Report a solver's factorise-once/solve-many behaviour as cache stats.

    Any object with ``n_factorizations``/``n_solves`` counters qualifies
    (:class:`~repro.autodiff.linalg.LUSolver`,
    :class:`~repro.autodiff.sparse.SparseLUSolver`, and the
    :mod:`repro.rbf.solver` classes all do).  A factorisation is a miss,
    every further solve a hit.
    """
    if solver is None:
        return
    n_fact = getattr(solver, "n_factorizations", None)
    n_solves = getattr(solver, "n_solves", None)
    if n_fact is None or n_solves is None:
        return
    _publish(recorder, name, hits=max(n_solves - n_fact, 0), misses=n_fact)


def record_compile_cache(recorder, vg: Any, name: str = "compiled-replay") -> None:
    """Report a compiled ``value_and_grad`` wrapper's program-cache stats.

    Replays are hits; traces and permanent-eager calls are misses.
    """
    if vg is None:
        return
    cache_info = getattr(vg, "cache_info", None)
    if not callable(cache_info):
        return
    info = cache_info()
    _publish(
        recorder,
        name,
        hits=int(info.get("replays", 0)),
        misses=int(info.get("traces", 0)) + int(info.get("eager", 0)),
    )


def record_oracle_telemetry(recorder, oracle: Any) -> None:
    """Collect an oracle's cumulative telemetry into ``recorder``.

    Prefers the oracle's own ``report_telemetry(recorder)`` (every control
    oracle in :mod:`repro.control` implements it); falls back to the
    conventional ``solver`` / ``_vg`` attributes otherwise.
    """
    if oracle is None:
        return
    report = getattr(oracle, "report_telemetry", None)
    if callable(report):
        report(recorder)
        return
    record_solver_cache(recorder, getattr(oracle, "solver", None))
    record_compile_cache(recorder, getattr(oracle, "_vg", None))

"""Standalone HTML performance reports from profile artifacts.

:func:`render_report` turns the artifacts written by
``python -m repro.bench --profile-dir`` — Chrome-trace JSON
(:meth:`~repro.obs.profile.SpanProfiler.to_chrome_trace`) and metrics
snapshots (``*.metrics.json``) — into one self-contained HTML page:

- a per-method **stacked phase breakdown** (grad / update / eval wall
  seconds per run — the per-method decomposition of Table 3's runtime
  column), with legend and table view;
- a **flamegraph** per trace, spans stacked by containment on each
  thread track, hover tooltips via native ``title``;
- the **metrics registry snapshot** per run (counters, gauges,
  histogram summaries).

No JavaScript dependencies: the page is pure HTML/CSS (light and dark
via CSS custom properties) and renders offline.  The same traces load in
https://ui.perfetto.dev for interactive digging.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["load_artifact", "render_ledger_report", "render_report"]

# Categorical palette (fixed hue order, never cycled; validated for CVD
# separation on both surfaces).  Light / dark steps per slot.
_SERIES_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_SERIES_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)

# Span categories get fixed slots so "solver" is the same hue in every
# flamegraph of the page (color follows the entity, never its rank).
_CATEGORY_SLOT = {
    "phase": 0,
    "method": 1,
    "solver": 2,
    "pde": 3,
    "function": 4,
    "default": 6,
}

_FLAME_MIN_PCT = 0.02   # hide spans narrower than this fraction of the trace
_FLAME_MAX_EVENTS = 6000


def load_artifact(path: str) -> Dict[str, Any]:
    """Read one profile artifact (Chrome trace or metrics JSON)."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


# ----------------------------------------------------------------------
# Artifact normalisation
# ----------------------------------------------------------------------
def _run_label(meta: Dict[str, Any]) -> str:
    method = meta.get("method")
    problem = meta.get("problem")
    if method and problem:
        return f"{problem} · {method}"
    return str(meta.get("label") or "run")


def _phases_from_events(events: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Phase totals (seconds) recovered from ``cat == "phase"`` events."""
    totals: Dict[str, float] = {}
    for ev in events:
        if ev.get("ph") == "X" and ev.get("cat") == "phase":
            name = str(ev.get("name", ""))
            totals[name] = totals.get(name, 0.0) + float(ev.get("dur", 0.0)) / 1e6
    return totals


def _collect_runs(traces: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge trace and metrics artifacts into per-run records by label."""
    runs: Dict[str, Dict[str, Any]] = {}

    def rec_for(meta: Dict[str, Any]) -> Dict[str, Any]:
        label = _run_label(meta)
        rec = runs.setdefault(label, {
            "label": label, "meta": {}, "phase_seconds": {},
            "trace": None, "spans": None, "metrics": None,
        })
        rec["meta"].update(meta)
        return rec

    for doc in traces:
        if not isinstance(doc, dict):
            continue
        if "traceEvents" in doc:
            rec = rec_for(doc.get("metadata") or {})
            rec["trace"] = doc
            if not rec["phase_seconds"]:
                rec["phase_seconds"] = _phases_from_events(doc["traceEvents"])
        else:
            rec = rec_for(doc.get("meta") or {})
            if doc.get("phase_seconds"):
                rec["phase_seconds"] = dict(doc["phase_seconds"])
            if doc.get("spans") is not None:
                rec["spans"] = doc["spans"]
            if doc.get("metrics") is not None:
                rec["metrics"] = doc["metrics"]
    return sorted(runs.values(), key=lambda r: r["label"])


def _phase_order(runs: List[Dict[str, Any]]) -> List[str]:
    """Union of phase names in a stable order (loop phases first)."""
    order = ["grad", "update", "eval"]
    seen = [p for p in order if any(p in r["phase_seconds"] for r in runs)]
    for r in runs:
        for p in r["phase_seconds"]:
            if p not in seen:
                seen.append(p)
    return seen


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _esc(s: Any) -> str:
    return html.escape(str(s), quote=True)


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "—"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def _fmt_num(x: float) -> str:
    if x == int(x) and abs(x) < 1e15:
        return f"{int(x):,}"
    return f"{x:.4g}"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _render_legend(entries: List[Tuple[str, int]]) -> str:
    items = "".join(
        f'<span class="legend-item"><span class="swatch s{slot + 1}"></span>'
        f"{_esc(name)}</span>"
        for name, slot in entries
    )
    return f'<div class="legend">{items}</div>'


def _render_phase_bars(runs: List[Dict[str, Any]], phases: List[str]) -> str:
    """Horizontal stacked bars: one row per run, one segment per phase."""
    if not any(r["phase_seconds"] for r in runs):
        return "<p class='muted'>No phase spans in the supplied artifacts.</p>"
    max_total = max(
        sum(r["phase_seconds"].values()) for r in runs if r["phase_seconds"]
    ) or 1.0
    rows = []
    for r in runs:
        ps = r["phase_seconds"]
        if not ps:
            continue
        total = sum(ps.values())
        segs = []
        for i, p in enumerate(phases):
            sec = ps.get(p, 0.0)
            if sec <= 0:
                continue
            pct = 100.0 * sec / max_total
            segs.append(
                f'<div class="seg s{(i % len(_SERIES_LIGHT)) + 1}" '
                f'style="width:{pct:.3f}%" '
                f'title="{_esc(r["label"])} — {_esc(p)}: {_fmt_s(sec)} '
                f'({100.0 * sec / total:.1f}%)"></div>'
            )
        rows.append(
            '<div class="bar-row">'
            f'<div class="bar-label">{_esc(r["label"])}</div>'
            f'<div class="bar-track">{"".join(segs)}</div>'
            f'<div class="bar-value">{_fmt_s(total)}</div>'
            "</div>"
        )
    legend = _render_legend([(p, i % len(_SERIES_LIGHT)) for i, p in enumerate(phases)])
    return legend + "".join(rows)


def _render_phase_table(runs: List[Dict[str, Any]], phases: List[str]) -> str:
    """Table view of the phase breakdown (Table-3 shape + coverage)."""
    head = "".join(f"<th>{_esc(p)}</th>" for p in phases)
    body = []
    for r in runs:
        ps = r["phase_seconds"]
        total = sum(ps.values())
        wall = r["meta"].get("wall_time_s")
        cov = f"{100.0 * total / wall:.1f}%" if wall else "—"
        cells = "".join(f'<td class="num">{_fmt_s(ps.get(p))}</td>' for p in phases)
        body.append(
            f"<tr><td>{_esc(r['label'])}</td>{cells}"
            f'<td class="num">{_fmt_s(total)}</td>'
            f'<td class="num">{_fmt_s(wall)}</td>'
            f'<td class="num">{cov}</td></tr>'
        )
    return (
        '<table><thead><tr><th>run</th>' + head
        + "<th>phase sum</th><th>wall time</th><th>coverage</th>"
        + "</tr></thead><tbody>" + "".join(body) + "</tbody></table>"
    )


def _flame_tracks(
    events: List[Dict[str, Any]],
) -> List[Tuple[int, str, List[Tuple[int, Dict[str, Any]]]]]:
    """Per-tid (tid, thread name, [(depth, event), ...]) by containment."""
    tracks: Dict[int, List[Dict[str, Any]]] = {}
    names: Dict[int, str] = {}
    for ev in events:
        tid = int(ev.get("tid", 0))
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[tid] = str(ev.get("args", {}).get("name", ""))
        elif ev.get("ph") == "X":
            tracks.setdefault(tid, []).append(ev)
    out = []
    for tid in sorted(tracks):
        evs = sorted(
            tracks[tid], key=lambda e: (float(e["ts"]), -float(e.get("dur", 0.0)))
        )
        open_ends: List[float] = []
        placed: List[Tuple[int, Dict[str, Any]]] = []
        for ev in evs:
            ts = float(ev["ts"])
            while open_ends and ts >= open_ends[-1] - 1e-6:
                open_ends.pop()
            placed.append((len(open_ends), ev))
            open_ends.append(ts + float(ev.get("dur", 0.0)))
        out.append((tid, names.get(tid) or f"thread {tid}", placed))
    return out


def _render_flamegraph(run: Dict[str, Any]) -> str:
    trace = run["trace"]
    if not trace:
        return ""
    events = [ev for ev in trace["traceEvents"] if ev.get("ph") in ("X", "M")]
    xs = [ev for ev in events if ev.get("ph") == "X"]
    if not xs:
        return "<p class='muted'>Empty trace (no spans recorded).</p>"
    t0 = min(float(ev["ts"]) for ev in xs)
    t1 = max(float(ev["ts"]) + float(ev.get("dur", 0.0)) for ev in xs)
    total = max(t1 - t0, 1e-9)
    parts = []
    dropped = 0
    rendered = 0
    for tid, tname, placed in _flame_tracks(events):
        depth = max(d for d, _ in placed) + 1
        spans_html = []
        for d, ev in placed:
            dur = float(ev.get("dur", 0.0))
            pct = 100.0 * dur / total
            if pct < _FLAME_MIN_PCT or rendered >= _FLAME_MAX_EVENTS:
                dropped += 1
                continue
            rendered += 1
            left = 100.0 * (float(ev["ts"]) - t0) / total
            cat = str(ev.get("cat", "default"))
            slot = _CATEGORY_SLOT.get(cat, 7)
            name = str(ev.get("name", ""))
            tip = f"{name} — {_fmt_s(dur / 1e6)} ({cat})"
            label = _esc(name) if pct > 4.0 else ""
            spans_html.append(
                f'<div class="fspan s{slot + 1}" style="left:{left:.3f}%;'
                f'width:{max(pct, 0.05):.3f}%;top:{d * 19}px" '
                f'title="{_esc(tip)}">{label}</div>'
            )
        parts.append(
            f'<div class="track-name">{_esc(tname)}</div>'
            f'<div class="flame" style="height:{depth * 19 - 2}px">'
            + "".join(spans_html) + "</div>"
        )
    cats = sorted(
        {str(ev.get("cat", "default")) for ev in xs},
        key=lambda c: _CATEGORY_SLOT.get(c, 7),
    )
    legend = _render_legend([(c, _CATEGORY_SLOT.get(c, 7)) for c in cats])
    note = (
        f'<p class="muted">{dropped} spans narrower than '
        f"{_FLAME_MIN_PCT:g}% of the trace are not drawn.</p>"
        if dropped else ""
    )
    return legend + "".join(parts) + note


def _render_metrics(run: Dict[str, Any]) -> str:
    metrics = run.get("metrics")
    if not metrics:
        return ""
    scalars = []
    hists = []
    for name in sorted(metrics):
        snap = metrics[name]
        kind = snap.get("kind", "")
        if kind == "histogram":
            hists.append(
                f"<tr><td>{_esc(name)}</td>"
                f'<td class="num">{_fmt_num(float(snap.get("count", 0)))}</td>'
                f'<td class="num">{_fmt_num(float(snap.get("mean", 0.0)))}</td>'
                f'<td class="num">{_fmt_num(float(snap.get("sum", 0.0)))}</td></tr>'
            )
        else:
            scalars.append(
                f"<tr><td>{_esc(name)}</td><td>{_esc(kind)}</td>"
                f'<td class="num">{_fmt_num(float(snap.get("value", 0.0)))}</td></tr>'
            )
    out = []
    if scalars:
        out.append(
            "<table><thead><tr><th>metric</th><th>kind</th><th>value</th>"
            "</tr></thead><tbody>" + "".join(scalars) + "</tbody></table>"
        )
    if hists:
        out.append(
            "<table><thead><tr><th>histogram</th><th>count</th><th>mean</th>"
            "<th>sum</th></tr></thead><tbody>" + "".join(hists)
            + "</tbody></table>"
        )
    return "".join(out)


# ----------------------------------------------------------------------
# Page
# ----------------------------------------------------------------------
def _css() -> str:
    light_vars = "".join(
        f"--c{i + 1}:{c};" for i, c in enumerate(_SERIES_LIGHT)
    )
    dark_vars = "".join(
        f"--c{i + 1}:{c};" for i, c in enumerate(_SERIES_DARK)
    ) + "--surface:#1a1a19;--ink:#ffffff;--ink-2:#c3c2b7;--grid:#2c2c2a;"
    slots = "".join(
        f".viz-root .s{i + 1}{{background:var(--c{i + 1})}}"
        for i in range(len(_SERIES_LIGHT))
    )
    return f"""
:root{{color-scheme:light dark}}
.viz-root{{
  {light_vars}
  --surface:#fcfcfb;--ink:#0b0b0b;--ink-2:#52514e;--grid:#e1e0d9;
  background:var(--surface);color:var(--ink);
  font-family:system-ui,-apple-system,sans-serif;font-size:14px;
  max-width:1080px;margin:0 auto;padding:24px;
}}
{slots}
@media (prefers-color-scheme: dark){{
  .viz-root{{{dark_vars}}}
}}
:root[data-theme="dark"] .viz-root{{{dark_vars}}}
.viz-root h1{{font-size:20px;margin:0 0 4px}}
.viz-root h2{{font-size:16px;margin:28px 0 8px}}
.viz-root h3{{font-size:14px;margin:18px 0 6px;color:var(--ink-2)}}
.viz-root .muted{{color:var(--ink-2)}}
.viz-root .legend{{display:flex;flex-wrap:wrap;gap:14px;margin:8px 0}}
.viz-root .legend-item{{display:inline-flex;align-items:center;gap:6px;color:var(--ink-2)}}
.viz-root .swatch{{width:10px;height:10px;border-radius:3px;display:inline-block}}
.viz-root .bar-row{{display:flex;align-items:center;gap:10px;margin:6px 0}}
.viz-root .bar-label{{flex:0 0 170px;text-align:right;color:var(--ink-2)}}
.viz-root .bar-track{{flex:1;display:flex;gap:2px;height:22px}}
.viz-root .seg{{height:100%}}
.viz-root .seg:first-child{{border-radius:4px 0 0 4px}}
.viz-root .seg:last-child{{border-radius:0 4px 4px 0}}
.viz-root .seg:only-child{{border-radius:4px}}
.viz-root .bar-value{{flex:0 0 70px;font-variant-numeric:tabular-nums}}
.viz-root table{{border-collapse:collapse;margin:10px 0;width:100%}}
.viz-root th{{text-align:left;color:var(--ink-2);font-weight:600}}
.viz-root th,.viz-root td{{padding:4px 10px;border-bottom:1px solid var(--grid)}}
.viz-root td.num,.viz-root th.num{{text-align:right;font-variant-numeric:tabular-nums}}
.viz-root .track-name{{color:var(--ink-2);margin:10px 0 2px}}
.viz-root .flame{{position:relative;border:1px solid var(--grid);border-radius:4px;overflow:hidden}}
.viz-root .fspan{{position:absolute;height:17px;border-radius:2px;
  box-shadow:0 0 0 1px var(--surface);overflow:hidden;white-space:nowrap;
  color:#ffffff;font-size:11px;line-height:17px;padding:0 3px;box-sizing:border-box}}
.viz-root details{{margin:8px 0}}
.viz-root summary{{cursor:pointer;color:var(--ink-2)}}
.viz-root .badge{{display:inline-block;border-radius:10px;padding:1px 9px;
  font-size:12px;font-weight:600;color:#ffffff}}
.viz-root .badge.regressed{{background:var(--c8)}}
.viz-root .badge.improved{{background:var(--c3)}}
.viz-root .badge.neutral{{background:var(--ink-2)}}
.viz-root .badge.new{{background:var(--c1)}}
.viz-root .spark{{vertical-align:middle}}
.viz-root .spark polyline{{fill:none;stroke:var(--c1);stroke-width:1.5}}
.viz-root .spark circle{{fill:var(--c2)}}
"""


def _sparkline(values: List[float], width: int = 120, height: int = 22) -> str:
    """One inline-SVG sparkline: the series as a polyline, latest point dotted."""
    if not values:
        return ""
    finite = [v for v in values if v == v and abs(v) != float("inf")]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    pad = 3.0
    n = len(values)
    step = (width - 2 * pad) / max(n - 1, 1)

    def xy(i: int, v: float) -> Tuple[float, float]:
        y = height - pad - (height - 2 * pad) * (v - lo) / span
        return (pad + i * step, y)

    pts = " ".join(
        f"{x:.1f},{y:.1f}" for x, y in (xy(i, v) for i, v in enumerate(values))
    )
    lx, ly = xy(n - 1, values[-1])
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend over {n} entries">'
        f'<polyline points="{pts}"/><circle cx="{lx:.1f}" cy="{ly:.1f}" r="2"/>'
        "</svg>"
    )


def render_ledger_report(
    entries: List[Dict[str, Any]],
    verdicts: Optional[List[Any]] = None,
    title: str = "Performance ledger",
    history_window: int = 40,
) -> str:
    """Render a ledger's trajectory: one sparkline per metric + verdicts.

    ``entries`` are validated ledger entries in append order (see
    :class:`~repro.obs.ledger.PerformanceLedger`); ``verdicts`` the
    :func:`~repro.obs.ledger.compare_entries` output for the latest
    entry (omit to render the trajectory without the comparison column).
    """
    from repro.obs.ledger import flatten_metrics

    window = entries[-history_window:]
    series: Dict[str, List[float]] = {}
    for entry in window:
        flat = flatten_metrics(entry)
        for metric in flat:
            series.setdefault(metric, [])
    for entry in window:
        flat = flatten_metrics(entry)
        for metric, values in series.items():
            if metric in flat:
                values.append(flat[metric])
    by_metric = {v.metric: v for v in (verdicts or [])}

    latest = entries[-1]
    fp = latest.get("fingerprint", {})
    head = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="muted">{len(entries)} entries · suite '
        f"{_esc(latest.get('suite'))} · scale {_esc(latest.get('scale'))} · "
        f"latest sha {_esc((fp.get('git_sha') or '?')[:12])} · "
        f"{_esc(fp.get('numpy'))} / {_esc(fp.get('blas'))}</p>"
    )
    rows = []
    for metric in sorted(series):
        values = series[metric]
        v = by_metric.get(metric)
        badge = (
            f'<span class="badge {_esc(v.verdict)}">{_esc(v.verdict)}</span>'
            if v is not None else ""
        )
        baseline = (
            f'<td class="num">{_fmt_num(v.baseline)}</td>'
            if v is not None and v.baseline is not None
            else '<td class="num">—</td>'
        )
        rows.append(
            f"<tr><td>{_esc(metric)}</td>"
            f"<td>{_sparkline(values)}</td>"
            f'<td class="num">{_fmt_num(values[-1])}</td>'
            f"{baseline}<td>{badge}</td></tr>"
        )
    table = (
        "<h2>Metric trajectories</h2>"
        "<table><thead><tr><th>metric</th>"
        f"<th>last {len(window)} entries</th><th>latest</th>"
        "<th>baseline (median)</th><th>verdict</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )
    body = head + table
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_css()}</style></head>"
        f'<body style="margin:0"><div class="viz-root">{body}</div>'
        "</body></html>\n"
    )


def render_report(
    traces: List[Dict[str, Any]], title: str = "Performance report"
) -> str:
    """Render profile artifacts (trace and/or metrics dicts) to HTML."""
    runs = _collect_runs(traces)
    phases = _phase_order(runs)
    sections = [
        f"<h1>{_esc(title)}</h1>",
        '<p class="muted">Per-method wall-clock decomposition from the span '
        "profiler; open the raw traces in ui.perfetto.dev for interactive "
        "navigation.</p>",
    ]
    if runs:
        sections.append("<h2>Phase breakdown</h2>")
        sections.append(_render_phase_bars(runs, phases))
        sections.append(_render_phase_table(runs, phases))
        for run in runs:
            flame = _render_flamegraph(run)
            metrics_tbl = _render_metrics(run)
            if not flame and not metrics_tbl:
                continue
            sections.append(f"<h2>{_esc(run['label'])}</h2>")
            if flame:
                sections.append(flame)
            if metrics_tbl:
                sections.append(
                    "<details><summary>metrics registry snapshot</summary>"
                    + metrics_tbl + "</details>"
                )
    else:
        sections.append("<p class='muted'>No profile artifacts supplied.</p>")
    body = "".join(sections)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_css()}</style></head>"
        f'<body style="margin:0"><div class="viz-root">{body}</div>'
        "</body></html>\n"
    )

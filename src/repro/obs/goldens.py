"""Tier-0 golden-trace configs: tiny, deterministic, seconds-fast runs.

Each config pins every knob of one method × problem at a scale small
enough for CI yet large enough that the convergence *shape* (the thing
the golden tests protect) is non-trivial.  The runs are fully
deterministic — the DP/DAL paths contain no randomness, and the initial
controls are the problems' canonical ones — so two runs of the same
config on the same build differ only in timings, which the comparator
excludes.

Baselines live in ``tests/goldens/<name>.jsonl`` and are reblessed with
``pytest --regen-goldens`` (see ``tests/obs/test_goldens.py``) or
``python -m repro.obs record <name> --out tests/goldens/<name>.jsonl``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.obs.hooks import record_oracle_telemetry
from repro.obs.recorder import TraceRecorder


@dataclass(frozen=True)
class Tier0Config:
    """One golden run: problem, method, and every relevant knob."""

    name: str
    problem: str  # "laplace" | "navier-stokes"
    method: str  # "dp" | "dal"
    iterations: int
    lr: float
    nx: int = 10
    ny: int = 7  # navier-stokes only
    refinements: int = 3  # navier-stokes only
    adjoint_refinements: int = 12  # navier-stokes DAL only
    reynolds: float = 100.0  # navier-stokes only
    perturbation: float = 0.3  # navier-stokes only
    backend: str = "dense"
    compile: bool = False


TIER0: Dict[str, Tier0Config] = {
    c.name: c
    for c in (
        Tier0Config(
            name="laplace_dp_tier0",
            problem="laplace",
            method="dp",
            nx=10,
            iterations=25,
            lr=1e-2,
        ),
        Tier0Config(
            name="laplace_dal_tier0",
            problem="laplace",
            method="dal",
            nx=10,
            iterations=25,
            lr=1e-2,
        ),
        Tier0Config(
            name="ns_dp_tier0",
            problem="navier-stokes",
            method="dp",
            nx=13,
            ny=7,
            iterations=8,
            lr=1e-1,
            refinements=3,
        ),
    )
}


def _build_oracle(cfg: Tier0Config):
    # Imports deferred: building the control stack is heavy and the
    # schema/compare half of ``repro.obs`` must stay import-light.
    if cfg.problem == "laplace":
        from repro.cloud.square import SquareCloud
        from repro.control.dal import LaplaceDAL
        from repro.control.dp import LaplaceDP
        from repro.pde.laplace import LaplaceControlProblem

        problem = LaplaceControlProblem(SquareCloud(cfg.nx), backend=cfg.backend)
        if cfg.method == "dp":
            return LaplaceDP(problem, compile=cfg.compile)
        if cfg.method == "dal":
            return LaplaceDAL(problem, compile=cfg.compile)
    elif cfg.problem == "navier-stokes":
        from repro.cloud.channel import ChannelCloud
        from repro.control.dal import NavierStokesDAL
        from repro.control.dp import NavierStokesDP
        from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig

        problem = ChannelFlowProblem(
            cloud=ChannelCloud(cfg.nx, cfg.ny),
            perturbation=cfg.perturbation,
            backend=cfg.backend,
        )
        ns_cfg = NSConfig(reynolds=cfg.reynolds, refinements=cfg.refinements)
        if cfg.method == "dp":
            return NavierStokesDP(problem, ns_cfg, compile=cfg.compile)
        if cfg.method == "dal":
            return NavierStokesDAL(
                problem,
                ns_cfg,
                adjoint_refinements=cfg.adjoint_refinements,
                compile=cfg.compile,
            )
    raise ValueError(f"unknown tier-0 combination: {cfg.problem}/{cfg.method}")


def run_tier0(
    name_or_config,
    recorder: Optional[TraceRecorder] = None,
    **overrides,
) -> TraceRecorder:
    """Run one tier-0 config under telemetry and return its trace.

    ``overrides`` replace config fields (``run_tier0("laplace_dp_tier0",
    lr=2e-2)``) — the injected-regression tests use this to verify the
    comparator actually catches a changed trajectory.
    """
    from repro.control.loop import optimize

    if isinstance(name_or_config, Tier0Config):
        cfg = name_or_config
    else:
        try:
            cfg = TIER0[name_or_config]
        except KeyError:
            raise KeyError(
                f"unknown tier-0 config {name_or_config!r}; "
                f"available: {sorted(TIER0)}"
            ) from None
    if overrides:
        cfg = replace(cfg, **overrides)

    rec = recorder if recorder is not None else TraceRecorder()
    rec.set_meta(
        config=cfg.name,
        method=cfg.method.upper(),
        problem=cfg.problem,
        backend=cfg.backend,
    )
    oracle = _build_oracle(cfg)
    if hasattr(oracle, "recorder"):
        oracle.recorder = rec
    optimize(oracle, cfg.iterations, cfg.lr, recorder=rec)
    record_oracle_telemetry(rec, oracle)
    return rec

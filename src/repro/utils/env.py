"""One parser for every ``REPRO_*`` boolean environment switch.

Before this module each flag hand-rolled its own falsy set — most
checked ``("0", "", "false", "False")`` — so ``REPRO_FULL=FALSE``,
``REPRO_WATCHDOG=no`` and even ``REPRO_FULL=" 0 "`` silently counted as
*truthy*.  :func:`env_flag` centralises the spelling contract:

- **falsy**:  ``0``, ``false``, ``no``, ``off``
- **truthy**: ``1``, ``true``, ``yes``, ``on``

case-insensitively and with surrounding whitespace stripped; unset or
empty resolves to ``default``.  Any other value raises ``ValueError``
so a typo (``REPRO_FULL=ture``) fails the run loudly instead of
silently selecting a tier the user did not ask for.
"""

from __future__ import annotations

import os

__all__ = ["FALSY", "TRUTHY", "env_flag"]

#: Spellings accepted as "off" (after strip + casefold).
FALSY = frozenset({"0", "false", "no", "off"})

#: Spellings accepted as "on" (after strip + casefold).
TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_flag(name: str, default: bool = False) -> bool:
    """Parse the boolean environment switch ``name``.

    Unset (or set to the empty string after stripping) resolves to
    ``default``; recognised truthy/falsy spellings resolve accordingly;
    anything else raises :class:`ValueError` naming the variable and the
    accepted spellings.
    """
    raw = os.environ.get(name)
    if raw is None:
        return bool(default)
    value = raw.strip().casefold()
    if value == "":
        return bool(default)
    if value in TRUTHY:
        return True
    if value in FALSY:
        return False
    raise ValueError(
        f"${name}={raw!r} is not a recognised boolean: use one of "
        f"{sorted(TRUTHY)} to enable or {sorted(FALSY)} to disable"
    )

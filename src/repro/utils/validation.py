"""Small validation and error-metric helpers used across the library."""

from __future__ import annotations

import numpy as np


def check_finite(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``FloatingPointError`` if ``x`` contains NaN or Inf."""
    x = np.asarray(x)
    if not np.all(np.isfinite(x)):
        bad = int(np.size(x) - np.sum(np.isfinite(x)))
        raise FloatingPointError(f"{name} contains {bad} non-finite entries")
    return x


def relative_l2_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||approx - exact||_2 / ||exact||_2`` (absolute norm if exact≈0)."""
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    denom = np.linalg.norm(exact)
    err = np.linalg.norm(approx - exact)
    return float(err / denom) if denom > 1e-14 else float(err)


def max_abs_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Maximum absolute pointwise error."""
    return float(
        np.max(np.abs(np.asarray(approx, dtype=np.float64) - np.asarray(exact, dtype=np.float64)))
    )


def rms(x: np.ndarray) -> float:
    """Root-mean-square of an array."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.sqrt(np.mean(x * x)))

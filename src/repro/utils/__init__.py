"""Shared numerical utilities: quadrature, timers, validation, env flags."""

from repro.utils.env import env_flag
from repro.utils.quadrature import trapezoid_weights, boundary_integral
from repro.utils.timers import Timer, PeakMemory
from repro.utils.validation import (
    check_finite,
    relative_l2_error,
    max_abs_error,
    rms,
)

__all__ = [
    "env_flag",
    "trapezoid_weights",
    "boundary_integral",
    "Timer",
    "PeakMemory",
    "check_finite",
    "relative_l2_error",
    "max_abs_error",
    "rms",
]

"""Quadrature rules on boundary point sets.

The paper's cost objectives are line integrals along boundary segments
(e.g. the outflow of the channel).  On a mesh-free cloud the boundary nodes
of a segment are scattered along a line; we sort them by arclength and use
composite trapezoid weights, which is second-order accurate and — being a
fixed linear functional of the nodal values — trivially differentiable.
"""

from __future__ import annotations

import numpy as np


def trapezoid_weights(coords: np.ndarray) -> np.ndarray:
    """Composite-trapezoid weights for nodes ordered along a 1-D coordinate.

    Parameters
    ----------
    coords:
        ``(n,)`` sorted arclength coordinates of the boundary nodes.

    Returns
    -------
    ``(n,)`` weights such that ``w @ f`` approximates ``∫ f ds``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.size
    if n < 2:
        raise ValueError("trapezoid rule needs at least two nodes")
    if np.any(np.diff(coords) <= 0):
        raise ValueError("coordinates must be strictly increasing")
    w = np.zeros(n)
    d = np.diff(coords)
    w[:-1] += 0.5 * d
    w[1:] += 0.5 * d
    return w


def boundary_integral(values: np.ndarray, coords: np.ndarray) -> float:
    """Trapezoid approximation of ``∫ f ds`` given unsorted boundary nodes."""
    coords = np.asarray(coords, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(coords)
    w = trapezoid_weights(coords[order])
    return float(w @ values[order])

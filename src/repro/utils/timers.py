"""Wall-time and peak-memory measurement for the Table-3 benchmark.

The paper reports wall-clock hours and peak memory (GB) per method.  We
measure wall time with ``perf_counter`` and peak *Python-allocation* memory
with ``tracemalloc``, which captures the dominant term here (NumPy array
buffers, including retained autodiff tapes).

:class:`PeakMemory` is re-entrant and exception-safe: nested managers
each report their own peak without clobbering the enclosing one (a bare
``tracemalloc.reset_peak`` would), and tracing started by a manager is
always stopped on exit — including when the measured body raises — so a
failing benchmark run cannot poison later measurements.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from types import TracebackType
from typing import Dict, List, Optional, Type

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def _child_peak_rss_bytes() -> int:
    """Peak RSS over all *reaped* child processes of this process, bytes.

    ``getrusage(RUSAGE_CHILDREN)`` reports ``ru_maxrss`` in KiB on Linux
    and bytes on macOS; 0 on platforms without ``resource``.  The value
    is a high-water mark over every child waited on so far — callers
    compare before/after watermarks to attribute growth to their block.
    """
    if resource is None:
        return 0
    rss = int(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return rss if sys.platform == "darwin" else rss * 1024


class Timer:
    """Context manager measuring elapsed wall time in seconds.

    ``elapsed`` is set on exit even when the body raises, so a failed run
    still reports how long it took before failing.

    Phases
    ------
    Loops that want per-phase breakdowns (the telemetry hooks in
    :mod:`repro.control.loop`) use the lap API instead of nesting ad-hoc
    ``perf_counter`` calls: :meth:`mark` resets the lap clock without
    recording, :meth:`lap` accumulates the time since the last
    mark/lap under a name and returns that increment, and :meth:`laps`
    exposes the running totals.  Lap bookkeeping never affects
    ``elapsed``, which always measures the whole managed block.

    Re-entrancy
    -----------
    The same instance may be re-entered while already active (a profiled
    inner region reusing the loop's timer): each ``with`` pushes its own
    frame, so ``mark``/``lap`` inside the nested block act on the inner
    frame and *never reset the outer frame's lap clock*.  On exiting the
    inner block, ``elapsed`` reflects the inner block and the outer
    frame's lap state resumes untouched; the outer exit then overwrites
    ``elapsed`` with the full outer duration.  Lap totals stay shared
    across frames (one ``laps()`` namespace per Timer).
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        # One [t0, lap_clock] frame per active ``with`` on this instance;
        # mark/lap touch only the innermost frame.
        self._frames: List[List[float]] = []
        self._laps: Dict[str, float] = {}

    def __enter__(self) -> "Timer":
        t0 = time.perf_counter()
        self._frames.append([t0, t0])
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        frame = self._frames.pop()
        self.elapsed = time.perf_counter() - frame[0]

    def mark(self) -> None:
        """Reset the innermost frame's lap clock without recording."""
        if not self._frames:
            raise RuntimeError("Timer.mark() before entering the context")
        self._frames[-1][1] = time.perf_counter()

    def lap(self, name: str) -> float:
        """Accumulate time since the last mark/lap under ``name``.

        Returns the increment just recorded (so callers can attach the
        per-iteration value to a trace record while the timer keeps the
        per-phase totals).
        """
        if not self._frames:
            raise RuntimeError("Timer.lap() before entering the context")
        now = time.perf_counter()
        frame = self._frames[-1]
        dt = now - frame[1]
        frame[1] = now
        self._laps[name] = self._laps.get(name, 0.0) + dt
        return dt

    def laps(self) -> Dict[str, float]:
        """Total seconds accumulated per phase name (a copy)."""
        return dict(self._laps)


# Stack of PeakMemory managers currently active in this process.  Needed
# because tracemalloc exposes a single global peak: before an inner
# manager resets it, the value observed so far is folded into every
# enclosing manager's running maximum.
_ACTIVE: List["PeakMemory"] = []


class PeakMemory:
    """Context manager measuring peak traced memory in bytes.

    Nesting is fully supported: an inner manager resets the global
    ``tracemalloc`` peak for its own measurement, but first credits the
    peak observed so far to every enclosing manager, so the outer result
    is the true maximum over its whole body (including the inner block).

    With ``track_children=True`` the manager additionally watches the
    OS-level peak RSS of child processes (``getrusage(RUSAGE_CHILDREN)``)
    so parallel benchmark runs (``--jobs``) report truthful memory:
    :attr:`child_peak_bytes` is the children's high-water mark when it
    rose during the block (0 otherwise — the watermark is cumulative per
    process, so growth is the only attributable signal), and
    :attr:`total_peak_bytes` is the max of the traced parent peak and the
    child peak.
    """

    def __init__(self, track_children: bool = False) -> None:
        self.peak_bytes: int = 0
        self.child_peak_bytes: int = 0
        self.track_children = bool(track_children)
        self._max_seen: int = 0
        self._child0: int = 0
        self._started_here = False

    def __enter__(self) -> "PeakMemory":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        else:
            # Fold the peak accumulated so far into the enclosing
            # managers before resetting the global counter.
            _, peak = tracemalloc.get_traced_memory()
            for outer in _ACTIVE:
                outer._max_seen = max(outer._max_seen, peak)
        tracemalloc.reset_peak()
        self._max_seen = 0
        if self.track_children:
            self._child0 = _child_peak_rss_bytes()
        _ACTIVE.append(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        try:
            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
            else:
                # The measured body stopped tracing itself; report what
                # was folded in rather than crashing.
                peak = 0
            self.peak_bytes = max(self._max_seen, peak)
            if self.track_children:
                after = _child_peak_rss_bytes()
                # The children watermark is cumulative over the process
                # lifetime; only growth during this block is attributable
                # to it (conservative: a smaller child leaves 0).
                self.child_peak_bytes = after if after > self._child0 else 0
        finally:
            if self in _ACTIVE:
                _ACTIVE.remove(self)
            if self._started_here and tracemalloc.is_tracing():
                tracemalloc.stop()

    @property
    def total_peak_bytes(self) -> int:
        """Max of the parent's traced peak and the child-worker peak RSS."""
        return max(self.peak_bytes, self.child_peak_bytes)

    @property
    def peak_mib(self) -> float:
        """Peak memory in MiB."""
        return self.peak_bytes / 2**20

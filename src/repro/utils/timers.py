"""Wall-time and peak-memory measurement for the Table-3 benchmark.

The paper reports wall-clock hours and peak memory (GB) per method.  We
measure wall time with ``perf_counter`` and peak *Python-allocation* memory
with ``tracemalloc``, which captures the dominant term here (NumPy array
buffers, including retained autodiff tapes).
"""

from __future__ import annotations

import time
import tracemalloc
from types import TracebackType
from typing import Optional, Type


class Timer:
    """Context manager measuring elapsed wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.elapsed = time.perf_counter() - self._t0


class PeakMemory:
    """Context manager measuring peak traced memory in bytes.

    Nesting is supported: if ``tracemalloc`` is already tracing, the manager
    snapshots rather than stopping the trace on exit.
    """

    def __init__(self) -> None:
        self.peak_bytes: int = 0
        self._started_here = False

    def __enter__(self) -> "PeakMemory":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _, self.peak_bytes = tracemalloc.get_traced_memory()
        if self._started_here:
            tracemalloc.stop()

    @property
    def peak_mib(self) -> float:
        """Peak memory in MiB."""
        return self.peak_bytes / 2**20

"""Channel cloud for the Navier–Stokes problem (Fig. 4a).

Geometry (adapted from Mowlavi & Nabi, as used by the paper): a channel
``[0, Lx] × [0, Ly]`` with

- ``inflow``  Γi at ``x = 0`` (Dirichlet control on the u-velocity),
- ``outflow`` Γo at ``x = Lx`` (parabolic target profile),
- ``wall_bottom`` / ``wall_top`` no-slip walls,
- ``blowing`` Γb — a segment of the bottom wall injecting fluid upward,
- ``suction`` Γs — the facing segment of the top wall extracting fluid,

which together create the mid-channel cross-flow visible in Fig. 1.

The paper meshed this domain with GMSH "given ... the benefits of mesh
refinement near free surfaces" and extracted 1385 scattered, disconnected
nodes.  GMSH is unavailable offline, so this generator is the documented
substitute: a tensor layout with cosine grading towards the walls
(resolving the boundary layers) and optional interior jitter to make the
cloud genuinely scattered.  Only the scattered node set (plus tags and
normals) feeds the solvers, so the substitution exercises the identical
code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cloud.base import BoundaryKind, Cloud


@dataclass(frozen=True)
class ChannelGeometry:
    """Channel dimensions and the blowing/suction segment.

    Attributes
    ----------
    lx, ly:
        Channel length and height (paper: 1.5 × 1 dimensionless).
    seg_lo, seg_hi:
        x-extent of the blowing (bottom) and suction (top) segments.
    """

    lx: float = 1.5
    ly: float = 1.0
    seg_lo: float = 0.6
    seg_hi: float = 0.9

    def __post_init__(self) -> None:
        if not (0.0 < self.seg_lo < self.seg_hi < self.lx):
            raise ValueError("blowing/suction segment must lie inside (0, lx)")
        if self.lx <= 0 or self.ly <= 0:
            raise ValueError("channel dimensions must be positive")


DEFAULT_KINDS: Dict[str, BoundaryKind] = {
    "internal": BoundaryKind.INTERNAL,
    "inflow": BoundaryKind.DIRICHLET,
    "outflow": BoundaryKind.NEUMANN,
    "wall_bottom": BoundaryKind.DIRICHLET,
    "wall_top": BoundaryKind.DIRICHLET,
    "blowing": BoundaryKind.DIRICHLET,
    "suction": BoundaryKind.DIRICHLET,
}


def _graded(n: int, lo: float, hi: float, strength: float) -> np.ndarray:
    """``n`` points in ``[lo, hi]`` clustered towards both ends.

    Blends a uniform distribution with a Chebyshev-like cosine one;
    ``strength`` in [0, 1] controls the clustering (0 → uniform).
    """
    t = np.linspace(0.0, 1.0, n)
    cheb = 0.5 * (1.0 - np.cos(np.pi * t))
    s = (1.0 - strength) * t + strength * cheb
    return lo + (hi - lo) * s


def ChannelCloud(
    nx: int = 31,
    ny: int = 15,
    geometry: Optional[ChannelGeometry] = None,
    grading: float = 0.5,
    jitter: float = 0.0,
    seed: int = 0,
    kinds: Optional[Dict[str, BoundaryKind]] = None,
) -> Cloud:
    """Build the blowing/suction channel cloud.

    Parameters
    ----------
    nx, ny:
        Nodes along / across the channel; total ≈ ``nx * ny`` (the paper
        uses 1385 nodes ≈ 43 × 32 at full scale).
    geometry:
        Channel dimensions (default: the paper's 1.5 × 1 layout).
    grading:
        Wall-normal clustering strength in [0, 1] (the GMSH-refinement
        substitute).
    jitter:
        Interior scatter amplitude as a fraction of the local spacing.
    seed:
        RNG seed for jitter.
    kinds:
        Boundary-kind override (default suits the velocity system; use
        :meth:`Cloud.with_kinds` to retag for the pressure Poisson solve).
    """
    geo = geometry or ChannelGeometry()
    if nx < 4 or ny < 4:
        raise ValueError("need nx, ny >= 4")
    kinds = dict(DEFAULT_KINDS if kinds is None else kinds)

    xs = np.linspace(0.0, geo.lx, nx)
    ys = _graded(ny, 0.0, geo.ly, grading)

    points, group_of, normals, coords = [], [], [], []

    def add(pt, group, normal=(np.nan, np.nan), coord=np.nan):
        points.append(pt)
        group_of.append(group)
        normals.append(normal)
        coords.append(coord)

    # Interior (optionally jittered; jitter capped so nodes stay interior).
    rng = np.random.default_rng(seed)
    for i, xv in enumerate(xs[1:-1], start=1):
        for j, yv in enumerate(ys[1:-1], start=1):
            if jitter > 0.0:
                dx = min(xs[i + 1] - xv, xv - xs[i - 1])
                dy = min(ys[j + 1] - yv, yv - ys[j - 1])
                xv2 = xv + rng.uniform(-1, 1) * 0.49 * jitter * dx
                yv2 = yv + rng.uniform(-1, 1) * 0.49 * jitter * dy
                add((xv2, yv2), "internal")
            else:
                add((xv, yv), "internal")

    # Vertical boundaries own the corners.
    for yv in ys:
        add((0.0, yv), "inflow", (-1.0, 0.0), yv)
    for yv in ys:
        add((geo.lx, yv), "outflow", (1.0, 0.0), yv)

    # Horizontal walls, split into wall / blowing / suction segments.
    def bottom_group(xv: float) -> str:
        return "blowing" if geo.seg_lo <= xv <= geo.seg_hi else "wall_bottom"

    def top_group(xv: float) -> str:
        return "suction" if geo.seg_lo <= xv <= geo.seg_hi else "wall_top"

    for xv in xs[1:-1]:
        add((xv, 0.0), bottom_group(xv), (0.0, -1.0), xv)
        add((xv, geo.ly), top_group(xv), (0.0, 1.0), xv)

    cloud = Cloud(
        points=np.array(points),
        group_of=np.array(group_of, dtype=object),
        kinds=kinds,
        normals=np.array(normals),
        coords=np.array(coords),
    )
    for seg in ("blowing", "suction"):
        if seg not in cloud.groups:
            raise ValueError(
                f"nx={nx} leaves no wall node inside the {seg} segment; "
                "increase nx or widen the segment"
            )
    return cloud

"""The :class:`Cloud` container: scattered nodes with boundary structure.

The paper (§2.1): "Our implementation accounts for all three major
boundary conditions in the literature by careful (re)ordering of the
nodes: first the N_i internal nodes, then N_d Dirichlet nodes, then N_n
Neumann nodes, and finally N_r Robin nodes."  :class:`Cloud` enforces this
canonical ordering at construction time, so the RBF assembly can address
contiguous row blocks per boundary kind.

A cloud consists of

- ``points`` — ``(N, 2)`` node coordinates,
- named *groups* (e.g. ``"internal"``, ``"top"``, ``"inflow"``) each with a
  :class:`BoundaryKind`,
- outward unit ``normals`` for boundary nodes (NaN on internal nodes),
- per-group arclength ``coords`` used for boundary quadrature and for
  evaluating control profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np


class BoundaryKind(Enum):
    """Node classification used for collocation-row assembly ordering."""

    INTERNAL = 0
    DIRICHLET = 1
    NEUMANN = 2
    ROBIN = 3


KIND_ORDER: Tuple[BoundaryKind, ...] = (
    BoundaryKind.INTERNAL,
    BoundaryKind.DIRICHLET,
    BoundaryKind.NEUMANN,
    BoundaryKind.ROBIN,
)


@dataclass
class Cloud:
    """An ordered mesh-free point cloud.

    Parameters (pre-ordering; the constructor reorders everything)
    ----------
    points:
        ``(N, 2)`` coordinates.
    group_of:
        Length-``N`` sequence of group names, one per node.
    kinds:
        Mapping group name → :class:`BoundaryKind`.  Exactly the groups
        appearing in ``group_of`` must be present.
    normals:
        ``(N, 2)`` outward unit normals (rows for internal nodes ignored).
    coords:
        Optional length-``N`` arclength coordinate of each boundary node
        along its group (used for quadrature / control evaluation).
    """

    points: np.ndarray
    group_of: np.ndarray
    kinds: Dict[str, BoundaryKind]
    normals: np.ndarray
    coords: Optional[np.ndarray] = None
    groups: Dict[str, np.ndarray] = field(init=False)

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must be (N, 2), got {pts.shape}")
        n = pts.shape[0]
        group_of = np.asarray(self.group_of, dtype=object)
        if group_of.shape != (n,):
            raise ValueError("group_of must have one entry per node")
        used = set(group_of.tolist())
        missing = used - set(self.kinds)
        if missing:
            raise ValueError(f"groups without a BoundaryKind: {sorted(missing)}")
        normals = np.asarray(self.normals, dtype=np.float64)
        if normals.shape != (n, 2):
            raise ValueError("normals must be (N, 2)")
        coords = (
            np.full(n, np.nan)
            if self.coords is None
            else np.asarray(self.coords, dtype=np.float64)
        )
        if coords.shape != (n,):
            raise ValueError("coords must have one entry per node")

        # Canonical reordering: by kind, then by group name (stable), then
        # by original index (stable sort keeps generator ordering within a
        # group, which generators use to keep boundary nodes arclength
        # sorted).
        kind_rank = np.array(
            [KIND_ORDER.index(self.kinds[g]) for g in group_of], dtype=np.int64
        )
        group_rank_map = {g: i for i, g in enumerate(sorted(used))}
        group_rank = np.array([group_rank_map[g] for g in group_of], dtype=np.int64)
        order = np.lexsort((np.arange(n), group_rank, kind_rank))

        self.points = pts[order]
        self.group_of = group_of[order]
        self.normals = normals[order]
        self.coords = coords[order]
        self.groups = {
            g: np.flatnonzero(self.group_of == g) for g in sorted(used)
        }

        # Normalise boundary normals defensively.
        for g, idx in self.groups.items():
            if self.kinds[g] is BoundaryKind.INTERNAL:
                continue
            nrm = self.normals[idx]
            lens = np.linalg.norm(nrm, axis=1)
            if np.any(lens < 1e-12):
                raise ValueError(f"zero-length normal in group {g!r}")
            self.normals[idx] = nrm / lens[:, None]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total node count N."""
        return self.points.shape[0]

    @property
    def x(self) -> np.ndarray:
        """x-coordinates of all nodes."""
        return self.points[:, 0]

    @property
    def y(self) -> np.ndarray:
        """y-coordinates of all nodes."""
        return self.points[:, 1]

    def indices_of_kind(self, kind: BoundaryKind) -> np.ndarray:
        """All node indices of the given kind, in canonical order."""
        mask = np.zeros(self.n, dtype=bool)
        for g, idx in self.groups.items():
            if self.kinds[g] is kind:
                mask[idx] = True
        return np.flatnonzero(mask)

    @property
    def internal(self) -> np.ndarray:
        """Indices of internal nodes (always the leading block)."""
        return self.indices_of_kind(BoundaryKind.INTERNAL)

    @property
    def boundary(self) -> np.ndarray:
        """Indices of all boundary nodes."""
        mask = np.ones(self.n, dtype=bool)
        mask[self.internal] = False
        return np.flatnonzero(mask)

    def counts(self) -> Dict[str, int]:
        """Node counts per kind: ``{"internal": Ni, "dirichlet": Nd, ...}``."""
        return {
            kind.name.lower(): self.indices_of_kind(kind).size
            for kind in KIND_ORDER
        }

    def group_points(self, group: str) -> np.ndarray:
        """Coordinates of the nodes of a group."""
        return self.points[self.groups[group]]

    def group_coords(self, group: str) -> np.ndarray:
        """Arclength coordinates of a boundary group (sorted ascending)."""
        c = self.coords[self.groups[group]]
        if np.any(np.isnan(c)):
            raise ValueError(f"group {group!r} has no arclength coordinates")
        return c

    def group_normals(self, group: str) -> np.ndarray:
        """Outward unit normals of a boundary group."""
        return self.normals[self.groups[group]]

    def with_kinds(self, kinds: Mapping[str, BoundaryKind]) -> "Cloud":
        """Return a re-ordered copy with different boundary-kind assignment.

        Lets one geometry serve several PDEs (e.g. velocity components and
        pressure apply *different* BC kinds to the same channel groups).
        """
        new_kinds = dict(self.kinds)
        new_kinds.update(kinds)
        return Cloud(
            points=self.points.copy(),
            group_of=self.group_of.copy(),
            kinds=new_kinds,
            normals=self.normals.copy(),
            coords=self.coords.copy(),
        )

    def validate(self) -> None:
        """Run structural invariants; raises ``ValueError`` on violation."""
        # Kind blocks must be contiguous and in canonical order.
        ranks = np.array(
            [KIND_ORDER.index(self.kinds[g]) for g in self.group_of]
        )
        if np.any(np.diff(ranks) < 0):
            raise ValueError("node ordering violates kind-block invariant")
        # No duplicate points.  The cached tree is shared with the
        # stencil-assembly and spacing-metric queries on the same cloud.
        from repro.cloud.neighbors import kdtree

        tree = kdtree(self.points)
        pairs = tree.query_pairs(1e-12)
        if pairs:
            raise ValueError(f"duplicate points: {sorted(pairs)[:5]} ...")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counts()
        return (
            f"Cloud(N={self.n}, internal={c['internal']}, "
            f"dirichlet={c['dirichlet']}, neumann={c['neumann']}, "
            f"robin={c['robin']}, groups={sorted(self.groups)})"
        )

"""Disk (annulus-capable) point cloud — mesh-free geometric flexibility.

Mesh-free methods are "attractive when the geometry is complex" (§1);
this generator demonstrates the claim beyond rectangles: concentric rings
of nodes in a disk (or annulus), with exact outward normals on the
circular boundaries.  Used by the geometry tests and the disk-Poisson
example of geometric generality.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cloud.base import BoundaryKind, Cloud

DEFAULT_KINDS: Dict[str, BoundaryKind] = {
    "internal": BoundaryKind.INTERNAL,
    "rim": BoundaryKind.DIRICHLET,
    "hub": BoundaryKind.DIRICHLET,
}


def DiskCloud(
    n_rings: int = 8,
    radius: float = 1.0,
    inner_radius: float = 0.0,
    center: tuple = (0.0, 0.0),
    kinds: Optional[Dict[str, BoundaryKind]] = None,
) -> Cloud:
    """Build a disk or annulus cloud from concentric node rings.

    Parameters
    ----------
    n_rings:
        Number of radial rings (ring ``k`` carries ``~6k`` nodes, the
        classic sunflower-free uniform-density layout).
    radius:
        Outer radius (boundary group ``"rim"``).
    inner_radius:
        If positive, an annulus with inner boundary group ``"hub"``.
    center:
        Disk centre.
    """
    if n_rings < 2:
        raise ValueError("need at least 2 rings")
    if not 0.0 <= inner_radius < radius:
        raise ValueError("require 0 <= inner_radius < radius")
    kinds = dict(DEFAULT_KINDS if kinds is None else kinds)
    cx, cy = center

    points, group_of, normals, coords = [], [], [], []

    def add(pt, group, normal=(np.nan, np.nan), coord=np.nan):
        points.append(pt)
        group_of.append(group)
        normals.append(normal)
        coords.append(coord)

    radii = np.linspace(inner_radius, radius, n_rings)
    annulus = inner_radius > 0.0
    for k, r in enumerate(radii):
        if r == 0.0:
            add((cx, cy), "internal")
            continue
        n_theta = max(6 * (k + (1 if not annulus else 3)), 6)
        thetas = np.linspace(0.0, 2 * np.pi, n_theta, endpoint=False)
        # Stagger alternate rings for a quasi-uniform layout.
        thetas = thetas + (np.pi / n_theta) * (k % 2)
        is_rim = k == n_rings - 1
        is_hub = annulus and k == 0
        for th in np.sort(thetas):
            pt = (cx + r * np.cos(th), cy + r * np.sin(th))
            if is_rim:
                add(pt, "rim", (np.cos(th), np.sin(th)), th)
            elif is_hub:
                add(pt, "hub", (-np.cos(th), -np.sin(th)), th)
            else:
                add(pt, "internal")

    if not annulus:
        kinds.pop("hub", None)
    return Cloud(
        points=np.array(points),
        group_of=np.array(group_of, dtype=object),
        kinds=kinds,
        normals=np.array(normals),
        coords=np.array(coords),
    )

"""Unit-square clouds for the Laplace problem (§3.1).

The paper solves on "a regular 100×100 grid, which resulted in better
conditioned collocation matrices compared with a scattered point cloud of
the same size"; the scattered variant is kept for the conditioning
ablation and for PINN training points.

Boundary groups: ``bottom`` (y=0), ``top`` (y=1), ``left`` (x=0),
``right`` (x=1), plus ``internal``.  Corner nodes are assigned to the
*side* walls (left/right), matching the problem's boundary data where the
homogeneous sides take precedence over the control on the top wall.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cloud.base import BoundaryKind, Cloud
from repro.cloud.halton import halton_sequence

DEFAULT_KINDS: Dict[str, BoundaryKind] = {
    "internal": BoundaryKind.INTERNAL,
    "bottom": BoundaryKind.DIRICHLET,
    "top": BoundaryKind.DIRICHLET,
    "left": BoundaryKind.DIRICHLET,
    "right": BoundaryKind.DIRICHLET,
}

_NORMALS = {
    "bottom": np.array([0.0, -1.0]),
    "top": np.array([0.0, 1.0]),
    "left": np.array([-1.0, 0.0]),
    "right": np.array([1.0, 0.0]),
}


def SquareCloud(
    nx: int = 20,
    ny: Optional[int] = None,
    scatter: Optional[str] = None,
    seed: int = 0,
    kinds: Optional[Dict[str, BoundaryKind]] = None,
) -> Cloud:
    """Build a unit-square cloud.

    Parameters
    ----------
    nx, ny:
        Nodes per side (``ny`` defaults to ``nx``).  The total node count
        is ``nx * ny`` for the regular grid.
    scatter:
        ``None`` → regular grid interior (the paper's Laplace default);
        ``"halton"`` → low-discrepancy interior; ``"jitter"`` → regular
        grid perturbed by uniform noise of 30 % of the spacing.  Boundary
        nodes stay equispaced in all modes (needed for trapezoid
        quadrature of the cost integral).
    seed:
        RNG seed for ``"jitter"`` mode.
    kinds:
        Override boundary-kind assignment (default: all-Dirichlet, the
        Laplace problem's configuration).
    """
    if nx < 3:
        raise ValueError("nx must be >= 3 so the interior is non-empty")
    ny = nx if ny is None else ny
    if ny < 3:
        raise ValueError("ny must be >= 3 so the interior is non-empty")
    kinds = dict(DEFAULT_KINDS if kinds is None else kinds)

    xs = np.linspace(0.0, 1.0, nx)
    ys = np.linspace(0.0, 1.0, ny)

    points, group_of, normals, coords = [], [], [], []

    def add(pt, group, normal=(np.nan, np.nan), coord=np.nan):
        points.append(pt)
        group_of.append(group)
        normals.append(normal)
        coords.append(coord)

    # Interior nodes.
    n_int = (nx - 2) * (ny - 2)
    if scatter is None:
        xi, yi = np.meshgrid(xs[1:-1], ys[1:-1], indexing="ij")
        interior = np.stack([xi.ravel(), yi.ravel()], axis=1)
    elif scatter == "halton":
        h = halton_sequence(n_int, 2)
        # Shrink slightly away from the boundary to avoid near-duplicates
        # with boundary nodes.
        margin = 0.5 / max(nx, ny)
        interior = margin + h * (1.0 - 2 * margin)
    elif scatter == "jitter":
        rng = np.random.default_rng(seed)
        xi, yi = np.meshgrid(xs[1:-1], ys[1:-1], indexing="ij")
        interior = np.stack([xi.ravel(), yi.ravel()], axis=1)
        amp = 0.3 * min(1.0 / (nx - 1), 1.0 / (ny - 1))
        interior = interior + rng.uniform(-amp, amp, interior.shape)
    else:
        raise ValueError(f"unknown scatter mode {scatter!r}")
    for pt in interior:
        add(pt, "internal")

    # Boundary nodes: sides own the corners (ascending arclength order).
    for yv in ys:  # left wall, including corners
        add((0.0, yv), "left", _NORMALS["left"], yv)
    for yv in ys:  # right wall, including corners
        add((1.0, yv), "right", _NORMALS["right"], yv)
    for xv in xs[1:-1]:  # bottom, no corners
        add((xv, 0.0), "bottom", _NORMALS["bottom"], xv)
    for xv in xs[1:-1]:  # top, no corners
        add((xv, 1.0), "top", _NORMALS["top"], xv)

    return Cloud(
        points=np.array(points),
        group_of=np.array(group_of, dtype=object),
        kinds=kinds,
        normals=np.array(normals),
        coords=np.array(coords),
    )

"""kd-tree neighbour queries and cloud-quality metrics.

Used by the conditioning diagnostics (separation distance drives the
collocation matrix conditioning) and by the local RBF-FD extension.

Trees are cached: every caller in the hot paths (stencil assembly,
cloud validation, spacing metrics) queries the *same* immutable point
set, so :func:`kdtree` keys a small LRU on point-set identity — checked
first by ``(id, shape)`` of the array object, then by a content digest —
and rebuilds only when the coordinates actually change.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np
from scipy.spatial import cKDTree

_TREE_CACHE: "OrderedDict[Tuple, cKDTree]" = OrderedDict()
# alias (id, shape) -> (digest key, weakref to the keyed array).  A WEAK
# reference: the alias must never extend the array's lifetime — a strong
# reference here used to pin evicted 100k-node clouds in memory until an
# arbitrary purge threshold.  The weakref's callback removes the alias
# the moment the array is collected, so a recycled ``id()`` can never
# resolve through a dead entry (the ``ref() is points`` identity check
# guards the remaining window where the array is alive but different).
_ID_ALIAS: Dict[Tuple[int, Tuple[int, ...]], Tuple] = {}
_CACHE_CAPACITY = 8
cache_stats = {"hits": 0, "misses": 0}


def _drop_aliases_for(key: Tuple) -> None:
    """Remove every identity alias that maps to the tree-cache ``key``."""
    for alias in [a for a, (k, _) in _ID_ALIAS.items() if k == key]:
        del _ID_ALIAS[alias]


def kdtree(points: np.ndarray) -> cKDTree:
    """A (cached) ``cKDTree`` over ``points``.

    The cache key is a SHA-1 digest of the coordinate bytes, so distinct
    array objects holding the same cloud share one tree; an identity
    alias (``id(points)``, shape) skips even the digest for the common
    case of repeated queries against the same array object.  Point
    clouds in this repository are immutable after construction, which is
    what makes identity aliasing sound.  Aliases hold only *weak*
    references and are evicted together with their tree entry, so the
    cache never keeps a point cloud alive on its own.
    """
    points = np.asarray(points, dtype=np.float64)
    alias = (id(points), points.shape)
    hit = _ID_ALIAS.get(alias)
    if hit is not None and hit[1]() is points and hit[0] in _TREE_CACHE:
        key = hit[0]
        cache_stats["hits"] += 1
        _TREE_CACHE.move_to_end(key)
        return _TREE_CACHE[key]
    key = (
        points.shape,
        hashlib.sha1(np.ascontiguousarray(points).tobytes()).hexdigest(),
    )
    tree = _TREE_CACHE.get(key)
    if tree is None:
        cache_stats["misses"] += 1
        tree = cKDTree(points)
        _TREE_CACHE[key] = tree
        while len(_TREE_CACHE) > _CACHE_CAPACITY:
            evicted_key, _ = _TREE_CACHE.popitem(last=False)
            _drop_aliases_for(evicted_key)
    else:
        cache_stats["hits"] += 1
        _TREE_CACHE.move_to_end(key)

    def _on_collect(_ref, alias=alias) -> None:
        _ID_ALIAS.pop(alias, None)

    _ID_ALIAS[alias] = (key, weakref.ref(points, _on_collect))
    return tree


def clear_tree_cache() -> None:
    """Drop all cached trees and reset the hit/miss counters."""
    _TREE_CACHE.clear()
    _ID_ALIAS.clear()
    cache_stats["hits"] = 0
    cache_stats["misses"] = 0


def nearest_neighbors(
    points: np.ndarray, k: int, queries: np.ndarray = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and distances of the ``k`` nearest nodes to each query.

    Queries default to the points themselves (self-matches included, so
    the first neighbour of each point is itself at distance 0).
    """
    points = np.asarray(points, dtype=np.float64)
    if k < 1 or k > points.shape[0]:
        raise ValueError(f"k must be in [1, {points.shape[0]}]")
    tree = kdtree(points)
    q = points if queries is None else np.asarray(queries, dtype=np.float64)
    dists, idx = tree.query(q, k=k)
    if k == 1:
        dists, idx = dists[:, None], idx[:, None]
    return idx, dists


def min_spacing(points: np.ndarray) -> float:
    """Separation distance: the smallest pairwise node distance."""
    _, dists = nearest_neighbors(points, k=2)
    return float(np.min(dists[:, 1]))


def fill_distance(points: np.ndarray, resolution: int = 50) -> float:
    """Fill distance over the bounding box (max hole radius), approximated
    on a ``resolution²`` probe grid."""
    points = np.asarray(points, dtype=np.float64)
    lo, hi = points.min(axis=0), points.max(axis=0)
    gx = np.linspace(lo[0], hi[0], resolution)
    gy = np.linspace(lo[1], hi[1], resolution)
    xx, yy = np.meshgrid(gx, gy, indexing="ij")
    probes = np.stack([xx.ravel(), yy.ravel()], axis=1)
    tree = kdtree(points)
    dists, _ = tree.query(probes, k=1)
    return float(np.max(dists))

"""kd-tree neighbour queries and cloud-quality metrics.

Used by the conditioning diagnostics (separation distance drives the
collocation matrix conditioning) and by the local RBF-FD extension.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.spatial import cKDTree


def nearest_neighbors(
    points: np.ndarray, k: int, queries: np.ndarray = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and distances of the ``k`` nearest nodes to each query.

    Queries default to the points themselves (self-matches included, so
    the first neighbour of each point is itself at distance 0).
    """
    points = np.asarray(points, dtype=np.float64)
    if k < 1 or k > points.shape[0]:
        raise ValueError(f"k must be in [1, {points.shape[0]}]")
    tree = cKDTree(points)
    q = points if queries is None else np.asarray(queries, dtype=np.float64)
    dists, idx = tree.query(q, k=k)
    if k == 1:
        dists, idx = dists[:, None], idx[:, None]
    return idx, dists


def min_spacing(points: np.ndarray) -> float:
    """Separation distance: the smallest pairwise node distance."""
    _, dists = nearest_neighbors(points, k=2)
    return float(np.min(dists[:, 1]))


def fill_distance(points: np.ndarray, resolution: int = 50) -> float:
    """Fill distance over the bounding box (max hole radius), approximated
    on a ``resolution²`` probe grid."""
    points = np.asarray(points, dtype=np.float64)
    lo, hi = points.min(axis=0), points.max(axis=0)
    gx = np.linspace(lo[0], hi[0], resolution)
    gy = np.linspace(lo[1], hi[1], resolution)
    xx, yy = np.meshgrid(gx, gy, indexing="ij")
    probes = np.stack([xx.ravel(), yy.ravel()], axis=1)
    tree = cKDTree(points)
    dists, _ = tree.query(probes, k=1)
    return float(np.max(dists))

"""Low-discrepancy sequences for scattered point clouds.

Halton points fill a rectangle far more evenly than i.i.d. uniforms, which
keeps RBF collocation matrices better conditioned — the mesh-free analogue
of a quality mesh.
"""

from __future__ import annotations

import numpy as np

_FIRST_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)


def van_der_corput(n: int, base: int = 2, start: int = 1) -> np.ndarray:
    """First ``n`` van der Corput radical-inverse values in ``base``.

    ``start`` skips the initial elements (skipping index 0 avoids the
    degenerate point at the origin).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if base < 2:
        raise ValueError("base must be >= 2")
    out = np.empty(n)
    for i in range(n):
        k = start + i
        x, denom = 0.0, 1.0
        while k > 0:
            denom *= base
            k, rem = divmod(k, base)
            x += rem / denom
        out[i] = x
    return out


def halton_sequence(n: int, dim: int = 2, start: int = 1) -> np.ndarray:
    """First ``n`` points of the ``dim``-dimensional Halton sequence.

    Returns an ``(n, dim)`` array in the open unit cube.
    """
    if dim > len(_FIRST_PRIMES):
        raise ValueError(f"dim must be <= {len(_FIRST_PRIMES)}")
    cols = [van_der_corput(n, base=_FIRST_PRIMES[d], start=start) for d in range(dim)]
    return np.stack(cols, axis=1)

"""Mesh-free point clouds.

The paper's methods are all mesh-free: they consume scattered,
disconnected nodes with boundary tags and outward normals.  This package
provides:

- :class:`~repro.cloud.base.Cloud` — nodes + boundary groups + normals,
  with the canonical node ordering the paper's RBF boundary handling
  requires (internal → Dirichlet → Neumann → Robin).
- :class:`~repro.cloud.square.SquareCloud` — the unit square of the
  Laplace problem (regular grid or scattered interior).
- :class:`~repro.cloud.channel.ChannelCloud` — the blowing/suction channel
  of the Navier–Stokes problem (Fig. 4a), with wall grading; this is the
  repository's substitute for the paper's GMSH-extracted 1385-node cloud.
- :mod:`repro.cloud.halton` — low-discrepancy sequences for scattered
  interiors.
- :mod:`repro.cloud.neighbors` — kd-tree neighbour queries.
"""

from repro.cloud.base import Cloud, BoundaryKind, KIND_ORDER
from repro.cloud.halton import halton_sequence, van_der_corput
from repro.cloud.square import SquareCloud
from repro.cloud.channel import ChannelCloud, ChannelGeometry
from repro.cloud.disk import DiskCloud
from repro.cloud.neighbors import nearest_neighbors, min_spacing, fill_distance

__all__ = [
    "Cloud",
    "BoundaryKind",
    "KIND_ORDER",
    "halton_sequence",
    "van_der_corput",
    "SquareCloud",
    "ChannelCloud",
    "ChannelGeometry",
    "DiskCloud",
    "nearest_neighbors",
    "min_spacing",
    "fill_distance",
]

"""repro — reproduction of "A comparison of mesh-free differentiable
programming and data-driven strategies for optimal control under PDE
constraints" (Nzoyem, Barton & Deakin, SC-W 2023).

Subpackages
-----------
``repro.autodiff``
    Pure-NumPy reverse-mode automatic differentiation (JAX substitute).
``repro.nn``
    Neural-network library: MLPs, activations, optimisers, LR schedules and
    analytic input-derivative propagation for PINN residuals.
``repro.cloud``
    Mesh-free point clouds: unit square (regular/scattered) and the
    blowing/suction channel geometry, with boundary tagging, outward
    normals and canonical node ordering.
``repro.rbf``
    Radial-basis-function collocation: kernels, polynomial augmentation,
    global assembly, nodal differentiation matrices and linear PDE solves.
``repro.pde``
    Concrete PDE problems: Laplace, Poisson, advection–diffusion and the
    stationary incompressible Navier–Stokes equations (Chorin-style
    projection with steady-state refinements).
``repro.control``
    The paper's comparison subjects: DAL (direct-adjoint looping), DP
    (differentiable programming through the RBF solver), PINN (with the
    two-step omega line search), and a finite-difference baseline.
``repro.bench``
    Benchmark harness regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"

from repro import autodiff, bench, cloud, control, nn, pde, rbf, utils

__all__ = [
    "autodiff",
    "nn",
    "cloud",
    "rbf",
    "pde",
    "control",
    "bench",
    "utils",
]

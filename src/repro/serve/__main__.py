"""``python -m repro.serve`` — boot the control service.

Runs until SIGTERM/SIGINT, then drains gracefully: the socket closes,
in-flight requests settle, open coalesce buckets flush, workers shut
down.

Usage::

    python -m repro.serve [--host H] [--port P] [--workers N]
                          [--queue-limit N] [--timeout S]
                          [--store-dir DIR] [--coalesce-window S]
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.service import ControlService, ServeConfig


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8787)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--queue-limit", type=int, default=32)
    ap.add_argument("--timeout", type=float, default=60.0,
                    help="per-request worker deadline in seconds")
    ap.add_argument("--store-dir", default=None,
                    help="disk-backed result store (unset: disabled)")
    ap.add_argument("--coalesce-window", type=float, default=0.01,
                    help="evaluate-coalescing window in seconds")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, request_timeout_s=args.timeout,
        store_dir=args.store_dir, coalesce_window_s=args.coalesce_window,
        root_seed=args.seed,
    )

    async def run() -> None:
        service = ControlService(config)
        await service.start()
        service.install_signal_handlers()
        print(f"repro.serve listening on {config.host}:{service.port} "
              f"({config.workers} warm workers)", flush=True)
        await service.serve_forever()
        print("repro.serve drained; bye", flush=True)

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The warm serving worker: one process, long-lived caches, typed replies.

Each worker owns three layers of state that persist *across requests* —
this is the whole point of serving warm instead of forking per request:

- **problems** keyed by ``(family, nx, ny)``: assembled collocation
  systems (and, for Navier–Stokes, the factorised pressure Poisson
  solver);
- **solvers** keyed the same way: one LU/splu factorisation per system,
  shared by every oracle and every coalesced evaluation that touches
  that system — request N pays ``n_factorizations == 1`` and rides the
  multi-solve path;
- **oracles** keyed by ``(family, method, nx, ny, target-digest)``: the
  Laplace DP oracle runs the trace-once replay engine, so the compiled
  program is traced on the first request and *replayed* by every later
  request with the same shape and target (the compiled tape bakes the
  target constant in, hence the target digest in the key).

The worker speaks a tiny framed protocol over a ``multiprocessing``
pipe: one job dict in, exactly one reply dict out.  Replies are always
``{"ok": True, "result": ..., "obs": ...}`` or ``{"ok": False, "error":
{"type": ..., "message": ...}}`` — the worker never lets an exception
escape to the pipe.  ``obs`` piggybacks the worker's cumulative cache
counters on every reply so the service can publish cross-request hit
rates without a separate polling round-trip.
"""

from __future__ import annotations

import copy
import os
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "WorkerState",
    "build_oracle",
    "build_problem",
    "execute_job",
    "serve_worker_main",
]


class WorkerState:
    """Caches that live for the worker's lifetime."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self.problems: Dict[Tuple, Any] = {}
        self.solvers: Dict[Tuple, Any] = {}
        self.oracles: Dict[Tuple, Any] = {}

    # -- problem / solver / oracle caches ------------------------------
    def problem(self, family: str, nx: int, ny: int):
        key = (family, nx, ny)
        prob = self.problems.get(key)
        if prob is None:
            prob = build_problem(family, nx, ny)
            self.problems[key] = prob
        return prob

    def solver(self, family: str, nx: int, ny: int):
        """The shared factorisation for one assembled system (laplace)."""
        from repro.autodiff.sparse import make_linear_solver

        key = (family, nx, ny)
        solver = self.solvers.get(key)
        if solver is None:
            prob = self.problem(family, nx, ny)
            solver = make_linear_solver(
                prob.system,
                method=getattr(prob, "solver", "direct"),
                **(getattr(prob, "solver_opts", None) or {}),
            )
            self.solvers[key] = solver
        return solver

    def oracle(self, request, target_digest: str):
        key = (request.family, request.method, request.nx, request.ny,
               target_digest)
        oracle = self.oracles.get(key)
        if oracle is None:
            prob = self._problem_for(request)
            oracle = build_oracle(request.family, request.method, prob)
            if request.family == "laplace":
                # All Laplace oracles (and the coalesced evaluate path)
                # share ONE factorisation per system — a per-request
                # target only changes the post-solve mismatch, never
                # the matrix.
                oracle.solver = self.solver(request.family, request.nx,
                                            request.ny)
            self.oracles[key] = oracle
        return oracle

    def _problem_for(self, request):
        prob = self.problem(request.family, request.nx, request.ny)
        if request.target is None:
            return prob
        target = np.asarray(request.target, dtype=np.float64)
        if target.shape != prob.target.shape:
            raise _Reject(
                f"'target' must have length {prob.target.shape[0]} for "
                f"nx={request.nx}, got {target.shape[0]}"
            )
        # Shallow copy: the assembled system, quadrature and control
        # grid are shared; only the target profile differs.
        prob = copy.copy(prob)
        prob.target = target
        return prob

    # -- cumulative cache counters (piggybacked on every reply) --------
    def cache_obs(self) -> Dict[str, Dict[str, int]]:
        lu_hits = lu_miss = 0
        for solver in self.solvers.values():
            n_fact = int(getattr(solver, "n_factorizations", 0))
            n_solve = int(getattr(solver, "n_solves", 0))
            lu_hits += max(n_solve - n_fact, 0)
            lu_miss += n_fact
        for prob in self.problems.values():
            ps = getattr(prob, "pressure_solver", None)
            if ps is not None:
                n_fact = int(getattr(ps, "n_factorizations", 0))
                n_solve = int(getattr(ps, "n_solves", 0))
                lu_hits += max(n_solve - n_fact, 0)
                lu_miss += n_fact
        replays = traces = 0
        for oracle in self.oracles.values():
            vg = getattr(oracle, "_vg", None)
            info = vg.cache_info() if hasattr(vg, "cache_info") else None
            if info:
                replays += int(info.get("replays", 0))
                traces += int(info.get("traces", 0)) + int(info.get("eager", 0))
        return {
            "lu-cache": {"hits": lu_hits, "misses": lu_miss},
            "compiled-replay": {"hits": replays, "misses": traces},
        }


class _Reject(ValueError):
    """Raised by job execution for a request that is invalid at worker
    resolution (profile-length mismatch etc.) — maps to HTTP 400."""


# ----------------------------------------------------------------------
# Oracles and problems
# ----------------------------------------------------------------------
def build_problem(family: str, nx: int, ny: int):
    """One assembled problem instance for a request shape."""
    if family == "laplace":
        from repro.cloud.square import SquareCloud
        from repro.pde.laplace import LaplaceControlProblem

        return LaplaceControlProblem(SquareCloud(nx))
    from repro.cloud.channel import ChannelCloud
    from repro.pde.navier_stokes import ChannelFlowProblem

    return ChannelFlowProblem(cloud=ChannelCloud(nx, ny), perturbation=0.3)


#: Pseudo-time refinements used for served Navier–Stokes requests —
#: the DP paper value; bounded so one request cannot run unbounded.
NS_REFINEMENTS = 10


def build_oracle(family: str, method: str, problem):
    """The ``control.*`` oracle a served request runs through.

    Laplace DP runs with ``compile=True`` (trace-once replay): the first
    request traces, every subsequent same-shape request replays the
    compiled program — the cross-request program-cache contract.
    """
    if family == "laplace":
        if method == "dp":
            from repro.control.dp import LaplaceDP

            return LaplaceDP(problem, compile=True)
        if method == "dal":
            from repro.control.dal import LaplaceDAL

            return LaplaceDAL(problem)
    else:
        from repro.pde.navier_stokes import NSConfig

        cfg = NSConfig(refinements=NS_REFINEMENTS)
        if method == "dp":
            from repro.control.dp import NavierStokesDP

            return NavierStokesDP(problem, cfg)
        if method == "dal":
            from repro.control.dal import NavierStokesDAL

            return NavierStokesDAL(problem, cfg)
    raise _Reject(f"method {method!r} is not served for family {family!r}")


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------
def _solve(state: WorkerState, request, digest: str) -> Dict[str, Any]:
    if request.method == "pinn":
        return _solve_pinn(state, request, digest)
    oracle = state.oracle(request, _target_digest(request))
    from repro.control.loop import optimize

    best_c, hist = optimize(oracle, request.iterations, request.lr)
    cost = float(hist.best_cost)
    return {
        "kind": "solve",
        "final_cost": cost,
        "control": [float(v) for v in best_c],
        "iterations": int(request.iterations),
        "converged": (None if request.tolerance is None
                      else bool(cost <= request.tolerance)),
    }


#: Fixed cost weight for served PINN solves (the paper's Laplace ω*).
PINN_OMEGA = 0.1


def _solve_pinn(state: WorkerState, request, digest: str) -> Dict[str, Any]:
    from repro.control.dp import LaplaceDP
    from repro.control.pinn import LaplacePINN, PINNTrainConfig
    from repro.parallel.seeding import derive_seed

    prob = state._problem_for(request)
    cfg = PINNTrainConfig(
        epochs=request.iterations, lr=request.lr,
        n_interior=200, n_boundary=24,
    )
    pinn = LaplacePINN(prob, config=cfg)
    seed = derive_seed(request.seed, digest)
    run = pinn.train_pair(PINN_OMEGA, seed=seed)
    c = pinn.control_values(run.params_c)
    # Price the PINN control under the reference (RBF) physics, through
    # the same shared factorisation every other request uses.
    dp_eval = state.oracle(
        _replace_method(request, "dp"), _target_digest(request)
    )
    cost = float(dp_eval.value(c))
    return {
        "kind": "solve",
        "final_cost": cost,
        "control": [float(v) for v in c],
        "iterations": int(request.iterations),
        "converged": (None if request.tolerance is None
                      else bool(cost <= request.tolerance)),
    }


def _replace_method(request, method: str):
    from dataclasses import replace

    return replace(request, method=method)


def _target_digest(request) -> str:
    from repro.obs.fingerprint import config_digest

    return config_digest(
        None if request.target is None else list(request.target)
    )


def _evaluate_batch(state: WorkerState, requests: List) -> List[Dict[str, Any]]:
    """Price a batch of controls; Laplace batches share ONE multi-RHS solve.

    Every request in the batch shares a coalesce key — same family and
    system shape — which is what makes stacking sound.  For Laplace the
    right-hand sides become the columns of one ``(n, k)`` block pushed
    through a single factorised ``getrs``/``splu`` call; the per-request
    targets enter only in the post-solve mismatch.  Navier–Stokes costs
    are nonlinear in the control, so they run sequentially (still one
    worker round-trip).
    """
    if not requests:
        return []
    family = requests[0].family
    if family != "laplace":
        out = []
        from repro.pde.navier_stokes import NSConfig

        cfg = NSConfig(refinements=NS_REFINEMENTS)
        prob = state.problem(family, requests[0].nx, requests[0].ny)
        for req in requests:
            c = np.asarray(req.control, dtype=np.float64)
            if c.shape[0] != prob.inflow_y.shape[0]:
                out.append(_reject_payload(
                    f"'control' must have length {prob.inflow_y.shape[0]} "
                    f"for nx={req.nx}, ny={req.ny}, got {c.shape[0]}"
                ))
                continue
            st = prob.solve(c, cfg)
            cost = float(prob.cost(st.u, st.v))
            out.append(_evaluate_payload(cost, req))
        return out

    prob = state.problem(family, requests[0].nx, requests[0].ny)
    solver = state.solver(family, requests[0].nx, requests[0].ny)
    n_control = prob.S_top.shape[1]
    columns: List[np.ndarray] = []
    targets: List[Optional[np.ndarray]] = []
    slots: List[int] = []
    out: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    for i, req in enumerate(requests):
        c = np.asarray(req.control, dtype=np.float64)
        if c.shape[0] != n_control:
            out[i] = _reject_payload(
                f"'control' must have length {n_control} for nx={req.nx}, "
                f"got {c.shape[0]}"
            )
            continue
        target = prob.target
        if req.target is not None:
            t = np.asarray(req.target, dtype=np.float64)
            if t.shape != prob.target.shape:
                out[i] = _reject_payload(
                    f"'target' must have length {prob.target.shape[0]} for "
                    f"nx={req.nx}, got {t.shape[0]}"
                )
                continue
            target = t
        columns.append(prob.S_top @ c + prob.b_fixed)
        targets.append(target)
        slots.append(i)
    if columns:
        # The coalesced solve: k right-hand sides, one factorisation.
        rhs_block = np.stack(columns, axis=1)
        u_block = solver.solve_numpy(rhs_block)
        for j, i in enumerate(slots):
            mismatch = prob.flux_rows @ u_block[:, j] - targets[j]
            cost = float(np.sum(prob.quad_w * np.square(mismatch)))
            out[i] = _evaluate_payload(cost, requests[i])
    return out  # type: ignore[return-value]


def _evaluate_payload(cost: float, request) -> Dict[str, Any]:
    return {
        "kind": "evaluate",
        "cost": cost,
        "converged": (None if request.tolerance is None
                      else bool(cost <= request.tolerance)),
    }


def _reject_payload(message: str) -> Dict[str, Any]:
    return {"error": {"type": "RequestError", "message": message}}


def execute_job(state: WorkerState, job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job against the worker caches; never raises."""
    try:
        op = job.get("op")
        if op == "solve":
            result = _solve(state, job["request"], job.get("digest", ""))
            return {"ok": True, "result": result, "obs": state.cache_obs()}
        if op == "evaluate":
            results = _evaluate_batch(state, job["requests"])
            return {"ok": True, "results": results, "obs": state.cache_obs()}
        if op == "ping":
            return {"ok": True, "result": {"pid": os.getpid()},
                    "obs": state.cache_obs()}
        return {"ok": False, "error": {
            "type": "RequestError", "message": f"unknown op {op!r}",
        }}
    except _Reject as exc:
        return {"ok": False, "error": {
            "type": "RequestError", "message": str(exc),
        }}
    except MemoryError:
        return {"ok": False, "error": {
            "type": "InternalError", "message": "worker out of memory",
        }}
    except Exception as exc:  # noqa: BLE001 — typed 500, never a dead pipe
        return {"ok": False, "error": {
            "type": "InternalError",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=8),
        }}


def serve_worker_main(conn, root_seed: int = 0) -> None:
    """Worker process entry point: job loop over a pipe until shutdown."""
    from repro.obs.metrics import MetricsRegistry, set_registry
    from repro.parallel.worker import WORKER_ENV

    # Mark this process as a worker so library code never fans out
    # nested process pools, and isolate its metrics from the parent's.
    os.environ[WORKER_ENV] = "1"
    set_registry(MetricsRegistry())
    state = WorkerState(root_seed)
    while True:
        try:
            job = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = job.get("op")
        if op == "shutdown":
            conn.send({"ok": True, "result": {"shutdown": True}})
            break
        if op == "crash":  # test hook: die without replying
            os._exit(2)
        if op == "sleep":  # test hook: hold the worker busy
            time.sleep(float(job.get("seconds", 1.0)))
            conn.send({"ok": True, "result": {"slept": True}})
            continue
        try:
            conn.send(execute_job(state, job))
        except BrokenPipeError:
            break
    conn.close()

"""Warm worker pool: spawn, dispatch, detect crashes, replace.

A :class:`ServeWorker` wraps one long-lived worker process and its pipe.
Its :meth:`ServeWorker.call` **never raises**: a dead pipe comes back as
a ``{"type": "WorkerCrashed"}`` error payload and an expired deadline as
``{"type": "RequestTimeout"}`` — the service maps those to typed HTTP
errors and decides whether to replace the worker.  The distinction
matters: after a timeout the worker is *still busy* with the stale job,
so it must be killed and replaced, not returned to rotation; after a
crash the process is already gone and only needs replacing.

:class:`WarmPool` owns the worker set.  It is deliberately free of any
scheduling policy — checkout/checkin order lives in the service's
``asyncio.Queue`` — so the pool stays testable with plain blocking
calls.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Any, Dict, List, Optional

from repro.serve.worker import serve_worker_main

__all__ = ["ServeWorker", "WarmPool"]


class ServeWorker:
    """One warm worker process plus the parent end of its pipe."""

    def __init__(self, worker_id: int, root_seed: int = 0) -> None:
        self.worker_id = int(worker_id)
        self.root_seed = int(root_seed)
        ctx = mp.get_context()
        parent, child = ctx.Pipe(duplex=True)
        self.conn = parent
        self.process = ctx.Process(
            target=serve_worker_main,
            args=(child, root_seed),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child.close()
        # One in-flight job per worker; the lock guards the pipe against
        # interleaved sends from concurrent executor threads.
        self._lock = threading.Lock()

    def call(self, job: Dict[str, Any],
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one job, wait for its reply; returns typed errors, never raises."""
        with self._lock:
            try:
                self.conn.send(job)
            except (BrokenPipeError, OSError):
                return _crashed(self)
            try:
                if timeout is not None and not self.conn.poll(timeout):
                    return {"ok": False, "error": {
                        "type": "RequestTimeout",
                        "message": f"worker {self.worker_id} exceeded "
                                   f"{timeout:g}s; killing it",
                    }}
                return self.conn.recv()
            except (EOFError, OSError):
                return _crashed(self)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Terminate without ceremony (timeouts, drain deadline)."""
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except Exception:
            pass

    def shutdown(self, timeout: float = 2.0) -> None:
        """Polite shutdown; falls back to kill."""
        try:
            self.conn.send({"op": "shutdown"})
            if self.conn.poll(timeout):
                self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except Exception:
                pass


def _crashed(worker: ServeWorker) -> Dict[str, Any]:
    exitcode = worker.process.exitcode
    return {"ok": False, "error": {
        "type": "WorkerCrashed",
        "message": f"worker {worker.worker_id} died "
                   f"(exitcode={exitcode})",
    }}


class WarmPool:
    """The worker set: spawn-on-boot, replace-on-death, drain-on-stop."""

    def __init__(self, size: int, root_seed: int = 0) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = int(size)
        self.root_seed = int(root_seed)
        self._next_id = 0
        self.replacements = 0
        self.workers: List[ServeWorker] = [self._spawn() for _ in range(size)]

    def _spawn(self) -> ServeWorker:
        worker = ServeWorker(self._next_id, self.root_seed)
        self._next_id += 1
        return worker

    def replace(self, worker: ServeWorker) -> ServeWorker:
        """Retire ``worker`` (killing it if needed) and spawn a fresh one."""
        worker.kill()
        fresh = self._spawn()
        try:
            idx = self.workers.index(worker)
            self.workers[idx] = fresh
        except ValueError:
            self.workers.append(fresh)
        self.replacements += 1
        return fresh

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.shutdown()
        self.workers.clear()

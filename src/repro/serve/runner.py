"""Run the service on a background thread (for tests and the bench).

The service is ``asyncio``-native; the bench and the test-suite are
synchronous.  :class:`ServiceThread` bridges the two: it boots a
:class:`~repro.serve.service.ControlService` inside its own event loop
on a daemon thread, blocks until the socket is bound, and exposes the
address.  ``close()`` (or the context manager exit) runs the same
graceful drain SIGTERM would.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.service import ControlService, ServeConfig

__all__ = ["ServiceThread"]


class ServiceThread:
    """``with ServiceThread(config) as svc: ...`` — a live service."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 boot_timeout_s: float = 60.0) -> None:
        self.config = config or ServeConfig()
        self.service: Optional[ControlService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(boot_timeout_s):
            raise TimeoutError("service did not boot in time")
        if self._boot_error is not None:
            raise RuntimeError("service failed to boot") from self._boot_error

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self.service.port

    def _run(self) -> None:
        async def main() -> None:
            self.service = ControlService(self.config)
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 — surfaced to caller
                self._boot_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.service.serve_forever()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def close(self) -> None:
        """Graceful drain from the calling thread; idempotent."""
        if self._loop is None or not self._thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop)
        try:
            fut.result(timeout=self.config.drain_timeout_s + 30.0)
        except Exception:
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Disk-backed result store keyed by request content digest.

The store holds the *exact serialised response bytes* of each completed
request, so an idempotent re-submit replays the original payload
byte-for-byte — no re-serialisation, no float round-trip, no field
reordering.  Writes are atomic (tmp + ``os.replace``), so a concurrent
reader sees either nothing or the whole payload; the digest-is-content
property makes last-writer-wins safe (both writers hold the same bytes
for the same computation).
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

__all__ = ["ResultStore"]


class ResultStore:
    """Digest-keyed payload store under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        # digests look like "sha256:0123abcd..."; keep the filename flat
        # and filesystem-safe.
        return os.path.join(self.directory, digest.replace(":", "_") + ".json")

    def get(self, digest: str) -> Optional[bytes]:
        """The stored payload bytes, or ``None`` on a miss."""
        try:
            with open(self._path(digest), "rb") as f:
                payload = f.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        """Atomically store ``payload`` under ``digest``."""
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        os.replace(tmp, self._path(digest))

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def __len__(self) -> int:
        if not os.path.isdir(self.directory):
            return 0
        return sum(1 for n in os.listdir(self.directory) if n.endswith(".json"))

"""The asyncio HTTP front of the control service.

Request lifecycle (DESIGN.md §17):

1. **parse** — minimal HTTP/1.1 read (request line, headers,
   content-length body), JSON decode, :func:`repro.serve.protocol.
   parse_request` validation.  Failures are typed 400s.
2. **admit** — a bounded in-flight counter implements backpressure: at
   ``queue_limit`` concurrent requests the service answers 429
   immediately instead of queueing unboundedly.
3. **store probe** — the request digest is looked up in the disk-backed
   result store; a hit replays the original payload byte-for-byte
   (``X-Repro-Store: hit``) without touching a worker.
4. **dispatch** — solves go straight to a warm worker; evaluations join
   the coalescer and ride a multi-RHS batch.  Worker calls run on
   executor threads with a per-request deadline.
5. **settle** — worker replies map to HTTP statuses (400/500/504); a
   crashed or deadline-blown worker is killed and replaced before the
   next request can check it out.  Completed payloads are written to
   the store.  A client that disconnects mid-flight has its work
   cancelled and its admission slot freed.

Everything observable lands in a service-private
:class:`~repro.obs.metrics.MetricsRegistry` under ``serve.*`` plus the
``cache.*`` gauges aggregated from worker piggyback reports; ``GET
/metrics`` exports the snapshot with p50/p95/p99 latency.
"""

from __future__ import annotations

import asyncio
import collections
import json
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serve.coalesce import Coalescer
from repro.serve.pool import ServeWorker, WarmPool
from repro.serve.protocol import (
    RequestError,
    coalesce_key,
    parse_request,
    request_digest,
)
from repro.serve.store import ResultStore

__all__ = ["ControlService", "ServeConfig"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Worker error type -> HTTP status.
_ERROR_STATUS = {
    "RequestError": 400,
    "RequestTimeout": 504,
    "WorkerCrashed": 500,
    "InternalError": 500,
}

#: Coalesce-width histogram bounds (requests per flushed batch).
WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs; defaults favour tests (ephemeral port, small pool)."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = OS-assigned; read service.port
    workers: int = 2
    queue_limit: int = 32              # concurrent admissions before 429
    request_timeout_s: float = 60.0
    coalesce_window_s: float = 0.01
    coalesce_max: int = 16
    store_dir: Optional[str] = None    # None disables the result store
    root_seed: int = 0
    drain_timeout_s: float = 10.0
    max_body_bytes: int = 8 << 20


class _ServeError(Exception):
    """Internal: a typed failure with an HTTP status."""

    def __init__(self, status: int, etype: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.etype = etype


class ControlService:
    """The long-running control service (see module docstring)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.store = (
            ResultStore(self.config.store_dir)
            if self.config.store_dir else None
        )
        self.pool: Optional[WarmPool] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_queue: "asyncio.Queue[ServeWorker]" = None  # type: ignore
        self._coalescer = Coalescer(
            self._flush_evaluate,
            window_s=self.config.coalesce_window_s,
            max_width=self.config.coalesce_max,
        )
        self._inflight = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._latencies: "collections.deque[float]" = collections.deque(maxlen=4096)
        self._worker_obs: Dict[int, Dict[str, Dict[str, int]]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot the warm pool and bind the listening socket."""
        self.pool = WarmPool(self.config.workers, self.config.root_seed)
        self._worker_queue = asyncio.Queue()
        for worker in self.pool.workers:
            self._worker_queue.put_nowait(worker)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.registry.gauge("serve.workers").set(len(self.pool.workers))

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (SIGTERM drain included)."""
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (stop accepting, finish
        in-flight work, shut the pool down)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.stop())
            )

    async def stop(self) -> None:
        """Graceful drain: refuse new work, settle in-flight requests,
        flush open coalesce buckets, shut workers down."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._coalescer.drain()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_timeout_s
        )
        while self._inflight > 0:
            if asyncio.get_running_loop().time() > deadline:
                break
            await asyncio.sleep(0.02)
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.shutdown
            )
        self._stopped.set()

    # ------------------------------------------------------------------
    # Worker dispatch
    # ------------------------------------------------------------------
    def _settle_worker(self, worker: ServeWorker, reply: Any) -> None:
        """Return ``worker`` to rotation — or replace it if the reply
        says it crashed or blew its deadline (a timed-out worker is
        still busy with the stale job and must not serve again)."""
        etype = None
        if isinstance(reply, dict):
            etype = (reply.get("error") or {}).get("type")
            obs = reply.get("obs")
            if obs:
                self._worker_obs[worker.worker_id] = obs
        if etype in ("WorkerCrashed", "RequestTimeout") or not worker.alive():
            name = ("serve.worker.timeouts" if etype == "RequestTimeout"
                    else "serve.worker.crashes")
            self.registry.counter(name).inc()
            fresh = self.pool.replace(worker)
            self._worker_obs.pop(worker.worker_id, None)
            self._worker_queue.put_nowait(fresh)
        else:
            self._worker_queue.put_nowait(worker)

    async def _worker_call(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Check a worker out, run one job on an executor thread, settle.

        Cancellation-safe: if the awaiting request is cancelled (client
        disconnect), the blocking call finishes on its thread and the
        worker is settled from a done-callback — a disconnect never
        leaks a worker out of rotation.
        """
        loop = asyncio.get_running_loop()
        worker = await self._worker_queue.get()
        fut = loop.run_in_executor(
            None, worker.call, job, self.config.request_timeout_s
        )
        try:
            reply = await asyncio.shield(fut)
        except asyncio.CancelledError:
            fut.add_done_callback(
                lambda f: self._settle_worker(
                    worker, f.result() if not f.cancelled() else None
                )
            )
            raise
        self._settle_worker(worker, reply)
        return reply

    async def _flush_evaluate(self, requests: List[Any]) -> List[Dict[str, Any]]:
        """Coalescer callback: one batched evaluate job per flush."""
        self.registry.counter("serve.coalesce.batches").inc()
        self.registry.counter("serve.coalesce.requests").inc(len(requests))
        self.registry.histogram(
            "serve.coalesce.width", WIDTH_BUCKETS
        ).observe(float(len(requests)))
        reply = await self._worker_call({
            "op": "evaluate",
            "requests": list(requests),
        })
        if not reply.get("ok"):
            err = reply.get("error") or {}
            etype = err.get("type", "InternalError")
            raise _ServeError(
                _ERROR_STATUS.get(etype, 500), etype,
                err.get("message", "worker failure"),
            )
        return reply["results"]

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    async def _process_control(self, body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        """Validate, store-probe, dispatch, settle one control request."""
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return self._error(400, "RequestError", f"invalid JSON body: {exc}")
        try:
            request = parse_request(obj)
        except RequestError as exc:
            return self._error(400, "RequestError", str(exc))
        digest = request_digest(request)

        if self.store is not None:
            cached = self.store.get(digest)
            if cached is not None:
                self.registry.counter("serve.store.hits").inc()
                return 200, cached, {"X-Repro-Store": "hit"}
            self.registry.counter("serve.store.misses").inc()

        try:
            if request.kind == "evaluate":
                result = await self._coalescer.submit(
                    coalesce_key(request), request
                )
                err = result.get("error")
                if err:
                    etype = err.get("type", "InternalError")
                    return self._error(
                        _ERROR_STATUS.get(etype, 500), etype,
                        err.get("message", "evaluation failed"),
                    )
            else:
                reply = await self._worker_call({
                    "op": "solve", "request": request, "digest": digest,
                })
                if not reply.get("ok"):
                    err = reply.get("error") or {}
                    etype = err.get("type", "InternalError")
                    return self._error(
                        _ERROR_STATUS.get(etype, 500), etype,
                        err.get("message", "worker failure"),
                    )
                result = reply["result"]
        except _ServeError as exc:
            return self._error(exc.status, exc.etype, str(exc))

        payload = json.dumps(
            {"digest": digest, "result": result},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        if self.store is not None:
            self.store.put(digest, payload)
        return 200, payload, {"X-Repro-Store": "miss"}

    def _error(self, status: int, etype: str, message: str) -> Tuple[int, bytes, Dict[str, str]]:
        body = json.dumps(
            {"error": {"type": etype, "message": message}},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        return status, body, {}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_http(reader)
            if parsed is None:
                return
            method, path, body = parsed
            if path == "/healthz" and method == "GET":
                await self._write(writer, 200, self._healthz_body(), {})
                return
            if path == "/metrics" and method == "GET":
                await self._write(writer, 200, self._metrics_body(), {})
                return
            if path != "/v1/control":
                await self._write(writer, *self._error(
                    404, "NotFound", f"no route {path!r}"
                ))
                return
            if method != "POST":
                await self._write(writer, *self._error(
                    405, "MethodNotAllowed", "use POST /v1/control"
                ))
                return
            if self._draining:
                await self._write(writer, *self._error(
                    503, "Draining", "service is draining"
                ))
                return
            if self._inflight >= self.config.queue_limit:
                self.registry.counter("serve.rejected").inc()
                await self._write(writer, *self._error(
                    429, "Backpressure",
                    f"queue full ({self.config.queue_limit} in flight); retry",
                ))
                return
            await self._admit(reader, writer, body)
        except _BodyTooLarge as exc:
            await self._write(writer, *self._error(
                413, "PayloadTooLarge", str(exc)
            ))
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _admit(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter, body: bytes) -> None:
        """Run one admitted control request, watching for client
        disconnect; the admission slot is freed on every path."""
        loop = asyncio.get_running_loop()
        self._inflight += 1
        self.registry.gauge("serve.queue_depth").set(self._inflight)
        self.registry.counter("serve.requests.total").inc()
        t0 = loop.time()
        work = asyncio.ensure_future(self._process_control(body))
        # With Connection: close the client sends nothing after the
        # body, so this read resolves only when the peer goes away.
        watch = asyncio.ensure_future(reader.read(1))
        try:
            done, _ = await asyncio.wait(
                {work, watch}, return_when=asyncio.FIRST_COMPLETED
            )
            if work not in done:
                work.cancel()
                try:
                    await work
                except (asyncio.CancelledError, Exception):
                    pass
                self.registry.counter("serve.client.disconnects").inc()
                return
            watch.cancel()
            status, payload, headers = work.result()
            dt = loop.time() - t0
            self._latencies.append(dt)
            self.registry.histogram("serve.latency_s").observe(dt)
            name = "serve.requests.ok" if status == 200 else "serve.requests.error"
            self.registry.counter(name).inc()
            await self._write(writer, status, payload, headers)
        finally:
            self._inflight -= 1
            self.registry.gauge("serve.queue_depth").set(self._inflight)

    async def _read_http(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            key, _, value = h.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise _BodyTooLarge(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body

    async def _write(self, writer: asyncio.StreamWriter, status: int,
                     body: bytes, extra: Dict[str, str]) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head += [f"{k}: {v}" for k, v in extra.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # Introspection bodies
    # ------------------------------------------------------------------
    def _healthz_body(self) -> bytes:
        doc = {
            "status": "draining" if self._draining else "ok",
            "workers": len(self.pool.workers) if self.pool else 0,
            "inflight": self._inflight,
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the rolling latency window (seconds)."""
        lat = sorted(self._latencies)
        if not lat:
            return {"p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "count": 0}

        def pick(q: float) -> float:
            return lat[min(int(q * len(lat)), len(lat) - 1)]

        return {
            "p50_s": pick(0.50), "p95_s": pick(0.95), "p99_s": pick(0.99),
            "count": len(lat),
        }

    def _metrics_body(self) -> bytes:
        # Fold the workers' cumulative cache counters into the service
        # registry so one snapshot shows request AND cache behaviour.
        totals: Dict[str, Dict[str, int]] = {}
        for obs in self._worker_obs.values():
            for cache, hm in obs.items():
                agg = totals.setdefault(cache, {"hits": 0, "misses": 0})
                agg["hits"] += int(hm.get("hits", 0))
                agg["misses"] += int(hm.get("misses", 0))
        for cache, hm in totals.items():
            self.registry.record_cache(cache, hm["hits"], hm["misses"])
        doc = {
            "metrics": self.registry.snapshot(),
            "latency": self.latency_percentiles(),
            "store": {
                "hits": self.store.hits if self.store else 0,
                "misses": self.store.misses if self.store else 0,
            },
            "pool": {
                "workers": len(self.pool.workers) if self.pool else 0,
                "replacements": self.pool.replacements if self.pool else 0,
            },
            "inflight": self._inflight,
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")


class _BodyTooLarge(Exception):
    pass

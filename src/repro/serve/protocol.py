"""The serving wire contract: request schema, validation, content digests.

One request = one JSON object.  Two kinds exist:

- ``kind: "solve"`` — run the requested method's optimisation loop and
  return the best control (the online analogue of one Table-3 run);
- ``kind: "evaluate"`` — price a given control under the problem's
  physical cost ``J(c)``.  Evaluations are method-independent (the cost
  is a property of the PDE problem, not the optimiser) and are the
  requests the service coalesces into multi-RHS solves.

Every field that affects the answer is folded into the request's
**content digest** (:func:`request_digest`, built on
:func:`repro.obs.fingerprint.config_digest`): the digest keys the
disk-backed result store, the per-worker oracle caches, and — combined
with :func:`repro.parallel.derive_seed` — the request's deterministic
seed.  Two requests with equal digests are the *same* computation and
may share one result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.fingerprint import config_digest

__all__ = [
    "FAMILIES",
    "KINDS",
    "METHODS",
    "ControlRequest",
    "RequestError",
    "coalesce_key",
    "parse_request",
    "request_digest",
]

FAMILIES = ("laplace", "ns")
METHODS = ("dp", "dal", "pinn")
KINDS = ("solve", "evaluate")

#: Hard caps keeping one request from occupying a worker indefinitely.
MAX_NX = 80
MAX_ITERATIONS = 2000
MAX_PROFILE_LEN = 4096

_DEFAULT_ITERATIONS = {"solve": 60, "evaluate": 0}
_DEFAULT_LR = {"dp": 1e-2, "dal": 1e-2, "pinn": 2e-3}


class RequestError(ValueError):
    """A request that fails validation (HTTP 400)."""


@dataclass(frozen=True)
class ControlRequest:
    """One validated control request (all defaults resolved)."""

    family: str                      # "laplace" | "ns"
    kind: str                        # "solve" | "evaluate"
    method: str                      # "dp" | "dal" | "pinn"
    nx: int
    ny: int                          # ns only; 0 for laplace
    iterations: int
    lr: float
    tolerance: Optional[float]       # converged iff final_cost <= tolerance
    target: Optional[Tuple[float, ...]]   # custom target profile (laplace)
    control: Optional[Tuple[float, ...]]  # the control to price (evaluate)
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "kind": self.kind,
            "method": self.method,
            "nx": self.nx,
            "ny": self.ny,
            "iterations": self.iterations,
            "lr": self.lr,
            "tolerance": self.tolerance,
            "target": list(self.target) if self.target is not None else None,
            "control": list(self.control) if self.control is not None else None,
            "seed": self.seed,
        }


def _finite_floats(value: Any, name: str, max_len: int) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise RequestError(f"{name!r} must be a non-empty array of numbers")
    if len(value) > max_len:
        raise RequestError(f"{name!r} is too long ({len(value)} > {max_len})")
    out = []
    for i, v in enumerate(value):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise RequestError(f"{name}[{i}] must be a number, got {type(v).__name__}")
        f = float(v)
        if not math.isfinite(f):
            raise RequestError(f"{name}[{i}] must be finite, got {f!r}")
        out.append(f)
    return tuple(out)


def _int_in(value: Any, name: str, lo: int, hi: int, default: int) -> int:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name!r} must be an integer")
    if not lo <= value <= hi:
        raise RequestError(f"{name!r} must be in [{lo}, {hi}], got {value}")
    return value


def parse_request(obj: Any) -> ControlRequest:
    """Validate a decoded JSON body into a :class:`ControlRequest`.

    Raises :class:`RequestError` with a client-facing message on any
    violation; never mutates ``obj``.
    """
    if not isinstance(obj, Mapping):
        raise RequestError(
            f"request body must be a JSON object, got {type(obj).__name__}"
        )
    unknown = set(obj) - {
        "family", "kind", "method", "nx", "ny", "iterations", "lr",
        "tolerance", "target", "control", "seed",
    }
    if unknown:
        raise RequestError(f"unknown request fields: {sorted(unknown)}")

    family = obj.get("family")
    if family not in FAMILIES:
        raise RequestError(f"'family' must be one of {list(FAMILIES)}, got {family!r}")
    kind = obj.get("kind", "solve")
    if kind not in KINDS:
        raise RequestError(f"'kind' must be one of {list(KINDS)}, got {kind!r}")
    # Evaluation is method-independent; default it so evaluate requests
    # that differ only in an irrelevant 'method' share one digest.
    method = obj.get("method", "dp" if kind == "evaluate" else None)
    if method not in METHODS:
        raise RequestError(f"'method' must be one of {list(METHODS)}, got {method!r}")
    if kind == "evaluate":
        method = "dp"
    if family == "ns" and method == "pinn":
        raise RequestError(
            "method 'pinn' is not served for family 'ns' "
            "(training cost is out of the online budget; run it via "
            "python -m repro.bench)"
        )

    nx = _int_in(obj.get("nx"), "nx", 6, MAX_NX, 26 if family == "laplace" else 21)
    ny = 0
    if family == "ns":
        ny = _int_in(obj.get("ny"), "ny", 6, MAX_NX, 11)
    elif obj.get("ny") is not None:
        raise RequestError("'ny' is only valid for family 'ns'")

    iterations = _int_in(
        obj.get("iterations"), "iterations", 0 if kind == "evaluate" else 1,
        MAX_ITERATIONS, _DEFAULT_ITERATIONS[kind] or 60,
    )
    if kind == "evaluate":
        iterations = 0

    lr = obj.get("lr")
    if lr is None:
        lr = _DEFAULT_LR[method]
    elif isinstance(lr, bool) or not isinstance(lr, (int, float)) \
            or not math.isfinite(float(lr)) or float(lr) <= 0.0:
        raise RequestError(f"'lr' must be a positive finite number, got {lr!r}")
    lr = float(lr)

    tolerance = obj.get("tolerance")
    if tolerance is not None:
        if isinstance(tolerance, bool) or not isinstance(tolerance, (int, float)) \
                or not math.isfinite(float(tolerance)) or float(tolerance) <= 0.0:
            raise RequestError(
                f"'tolerance' must be a positive finite number, got {tolerance!r}"
            )
        tolerance = float(tolerance)

    target = obj.get("target")
    if target is not None:
        if family != "laplace":
            raise RequestError("custom 'target' profiles are laplace-only")
        target = _finite_floats(target, "target", MAX_PROFILE_LEN)

    control = obj.get("control")
    if kind == "evaluate":
        if control is None:
            raise RequestError("'control' is required for kind 'evaluate'")
        control = _finite_floats(control, "control", MAX_PROFILE_LEN)
    elif control is not None:
        raise RequestError("'control' is only valid for kind 'evaluate'")

    seed = obj.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise RequestError(f"'seed' must be a non-negative integer, got {seed!r}")

    return ControlRequest(
        family=family, kind=kind, method=method, nx=nx, ny=ny,
        iterations=iterations, lr=lr, tolerance=tolerance,
        target=target, control=control, seed=seed,
    )


def request_digest(request: ControlRequest) -> str:
    """Content digest of everything that affects the answer.

    Defaults are resolved *before* digesting, so ``{"family":
    "laplace"}`` and ``{"family": "laplace", "nx": 26}`` are the same
    request — and the same store entry.
    """
    return config_digest(request.to_dict())


def coalesce_key(request: ControlRequest) -> Tuple:
    """Grouping key for batchable requests.

    Evaluations sharing one key run against the *same* factorised
    system, so their right-hand sides can be stacked into one multi-RHS
    solve.  The target is deliberately **excluded**: the mismatch against
    the target happens after the linear solve, column by column, so
    requests with different targets still share the factorisation.
    """
    return (request.family, request.kind, request.nx, request.ny)

"""Request coalescing: batch compatible evaluations into one solve.

Evaluation requests that share a :func:`repro.serve.protocol.
coalesce_key` — same family and system shape — hit the *same* factorised
operator, so their right-hand sides can ride one multi-RHS
``getrs``/``splu`` call instead of ``k`` separate solves.  The coalescer
implements the classic micro-batch window: the first request of a key opens
a bucket and starts a window timer; compatible requests join until the
window elapses or the bucket reaches ``max_width``, then the whole
bucket flushes as one worker job.

Each joined request holds an ``asyncio.Future`` resolved with *its own*
slice of the batch result.  A request whose client disconnected before
the flush has a cancelled future — the batch still runs for the
remaining members and the cancelled slot is simply dropped.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Tuple

__all__ = ["Coalescer"]


class _Bucket:
    __slots__ = ("items", "timer")

    def __init__(self) -> None:
        self.items: List[Tuple[Any, asyncio.Future]] = []
        self.timer: asyncio.TimerHandle | None = None


class Coalescer:
    """Window/width-bounded batcher over an async flush callback.

    ``flush`` receives the batched requests and must return one result
    dict per request, aligned by position.  If ``flush`` raises, every
    pending future in the bucket receives the exception (clients see a
    typed error, not a hang).
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Awaitable[List[Dict[str, Any]]]],
        window_s: float = 0.01,
        max_width: int = 16,
    ) -> None:
        if max_width < 1:
            raise ValueError("max_width must be >= 1")
        self._flush = flush
        self.window_s = float(window_s)
        self.max_width = int(max_width)
        self._buckets: Dict[Tuple, _Bucket] = {}
        self.batches = 0
        self.widths: List[int] = []

    async def submit(self, key: Tuple, request: Any) -> Dict[str, Any]:
        """Join the bucket for ``key``; resolves with this request's result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
            bucket.timer = loop.call_later(
                self.window_s, lambda: asyncio.ensure_future(self._fire(key))
            )
        bucket.items.append((request, future))
        if len(bucket.items) >= self.max_width:
            await self._fire(key)
        return await future

    async def _fire(self, key: Tuple) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return  # already flushed by the width trigger
        if bucket.timer is not None:
            bucket.timer.cancel()
        # Drop requests whose clients have already gone away.
        live = [(req, fut) for req, fut in bucket.items if not fut.done()]
        if not live:
            return
        requests = [req for req, _ in live]
        self.batches += 1
        self.widths.append(len(live))
        try:
            results = await self._flush(requests)
        except Exception as exc:  # noqa: BLE001 — propagate to every waiter
            for _, fut in live:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_, fut), result in zip(live, results):
            if not fut.done():
                fut.set_result(result)

    async def drain(self) -> None:
        """Flush every open bucket now (graceful shutdown)."""
        for key in list(self._buckets):
            await self._fire(key)

"""A small blocking client for the control service (stdlib http.client).

Used by the load-generator bench, the smoke gate, and the tests; it is
also the reference for how external callers should talk to the service.
One connection per request (the service speaks ``Connection: close``).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(RuntimeError):
    """A non-2xx response, with the parsed error body attached."""

    def __init__(self, status: int, error: Dict[str, Any]) -> None:
        super().__init__(
            f"HTTP {status}: {error.get('type', '?')}: "
            f"{error.get('message', '')}"
        )
        self.status = status
        self.error = error


class ServeClient:
    """Blocking JSON client bound to one service address."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- raw round-trips ----------------------------------------------
    def request_raw(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            return resp.status, {
                k.lower(): v for k, v in resp.getheaders()
            }, payload
        finally:
            conn.close()

    def post_control_raw(self, request: Dict[str, Any]) -> Tuple[int, Dict[str, str], bytes]:
        """POST /v1/control, returning (status, headers, exact body bytes)."""
        body = json.dumps(request, sort_keys=True).encode("utf-8")
        return self.request_raw("POST", "/v1/control", body)

    # -- convenience --------------------------------------------------
    def control(self, **request: Any) -> Dict[str, Any]:
        """Submit a control request; returns the parsed response document.

        The store status rides along as ``response["store"]`` ("hit" or
        "miss"); raises :class:`ServeHTTPError` on any non-200.
        """
        status, headers, payload = self.post_control_raw(request)
        doc = json.loads(payload.decode("utf-8"))
        if status != 200:
            raise ServeHTTPError(status, doc.get("error", {}))
        doc["store"] = headers.get("x-repro-store", "")
        return doc

    def healthz(self) -> Dict[str, Any]:
        status, _, payload = self.request_raw("GET", "/healthz")
        if status != 200:
            raise ServeHTTPError(status, {"type": "Health", "message": ""})
        return json.loads(payload.decode("utf-8"))

    def metrics(self) -> Dict[str, Any]:
        status, _, payload = self.request_raw("GET", "/metrics")
        if status != 200:
            raise ServeHTTPError(status, {"type": "Metrics", "message": ""})
        return json.loads(payload.decode("utf-8"))

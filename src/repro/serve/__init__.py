"""Control-as-a-service: a long-running solve endpoint over the repo's
optimal-control machinery.

The serving layer turns the batch benchmark stack into an online
service: JSON control requests (problem family, method, target profile,
tolerance, scale) arrive over HTTP, are validated and content-digested
(:mod:`repro.serve.protocol`), and routed to a pool of *warm* worker
processes (:mod:`repro.serve.pool`) that keep compiled programs and LU
factorisations alive across requests.  Compatible cost evaluations are
coalesced into one multi-RHS solve (:mod:`repro.serve.coalesce`), and
completed results land in a disk-backed store keyed by request digest
(:mod:`repro.serve.store`) so idempotent re-submits replay byte-for-byte
without touching a worker.

Everything is stdlib: ``asyncio`` for the HTTP front
(:mod:`repro.serve.service`), ``multiprocessing`` pipes for the workers.
``python -m repro.serve`` boots the service;
``python -m repro.bench serve`` load-tests it and writes a ledger entry.
"""

from repro.serve.protocol import (
    ControlRequest,
    RequestError,
    parse_request,
    request_digest,
)
from repro.serve.service import ControlService, ServeConfig
from repro.serve.store import ResultStore
from repro.serve.client import ServeClient
from repro.serve.runner import ServiceThread

__all__ = [
    "ControlRequest",
    "ControlService",
    "RequestError",
    "ResultStore",
    "ServeClient",
    "ServeConfig",
    "ServiceThread",
    "parse_request",
    "request_digest",
]

"""Function transforms: ``grad``, ``value_and_grad``, ``jacobian``.

These mirror the JAX API surface the paper's framework uses.  A function
``f`` written against :mod:`repro.autodiff` primitives (or against plain
operator syntax on tensors) is transformed into one returning exact
gradients of its scalar output.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.tensor import Tensor, asdata, tensor

Argnums = Union[int, Tuple[int, ...]]


def _normalize_argnums(argnums: Argnums) -> Tuple[int, ...]:
    return (argnums,) if isinstance(argnums, int) else tuple(argnums)


def _wrap_args(args: Sequence[Any], argnums: Tuple[int, ...]) -> Tuple[list, list]:
    """Promote differentiated positional args to gradient leaves."""
    wrapped = list(args)
    leaves = []
    for i in argnums:
        leaf = Tensor(asdata(args[i]), requires_grad=True)
        wrapped[i] = leaf
        leaves.append(leaf)
    return wrapped, leaves


def value_and_grad(
    f: Callable[..., Any], argnums: Argnums = 0
) -> Callable[..., Tuple[float, Any]]:
    """Return ``g(*args) -> (f(*args), df/dargs)``.

    The output of ``f`` must be a scalar (tensor or float).  Gradients are
    returned as raw ``numpy`` arrays matching the argument shapes; a single
    array when ``argnums`` is an int, a tuple otherwise.
    """
    nums = _normalize_argnums(argnums)

    def wrapped(*args: Any, **kwargs: Any) -> Tuple[float, Any]:
        call_args, leaves = _wrap_args(args, nums)
        out = f(*call_args, **kwargs)
        out_t = tensor(out)
        if out_t.size != 1:
            raise ValueError(
                f"value_and_grad requires a scalar output, got shape {out_t.shape}"
            )
        out_t.backward()
        grads = tuple(
            leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
            for leaf in leaves
        )
        value = float(out_t.data)
        if isinstance(argnums, int):
            return value, grads[0]
        return value, grads

    return wrapped


def grad(f: Callable[..., Any], argnums: Argnums = 0) -> Callable[..., Any]:
    """Reverse-mode gradient transform (JAX-style ``grad``)."""
    vg = value_and_grad(f, argnums)

    def wrapped(*args: Any, **kwargs: Any) -> Any:
        _, g = vg(*args, **kwargs)
        return g

    return wrapped


def jacobian(f: Callable[..., Any], argnum: int = 0) -> Callable[..., np.ndarray]:
    """Dense Jacobian of a vector-valued function via row-wise reverse mode.

    Runs one backward pass per output component; intended for small outputs
    (verification, adjoint cross-checks), not production hot loops.
    """

    def wrapped(*args: Any, **kwargs: Any) -> np.ndarray:
        call_args = list(args)
        leaf = Tensor(asdata(args[argnum]), requires_grad=True)
        call_args[argnum] = leaf
        out = tensor(f(*call_args, **kwargs))
        out_flat_shape = out.data.size
        jac = np.zeros((out_flat_shape,) + leaf.data.shape)
        for i in range(out_flat_shape):
            leaf.zero_grad()
            seed = np.zeros(out.data.shape)
            seed.flat[i] = 1.0
            out.backward(seed)
            jac[i] = leaf.grad if leaf.grad is not None else 0.0
        return jac.reshape(out.data.shape + leaf.data.shape)

    return wrapped


def stop_gradient(x: Any) -> Tensor:
    """Detach ``x`` from the tape (identity forward, zero backward)."""
    return tensor(x).detach() if isinstance(x, Tensor) else tensor(x)

"""Numerical gradient checking utilities.

Central-difference gradients are the paper's baseline comparator (footnote
11 notes classical finite differences gave accurate Navier–Stokes gradients
at reduced memory cost).  These helpers are used both by the test suite and
by the gradient-accuracy ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


def numerical_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar function.

    ``O(n)`` evaluations of ``f`` per gradient — the cost profile that makes
    finite differences uncompetitive for high-dimensional controls, as the
    paper discusses.
    """
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    flat = x.ravel()
    gflat = g.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = float(f(x))
        flat[i] = orig - eps
        fm = float(f(x))
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return g


def directional_numerical_derivative(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    direction: np.ndarray,
    eps: float = 1e-6,
) -> float:
    """Central-difference directional derivative ``df/dε f(x + ε d)``.

    Cheap (two evaluations) and therefore suitable for validating gradients
    of expensive solves without forming the full numerical gradient.
    """
    x = np.asarray(x, dtype=np.float64)
    d = np.asarray(direction, dtype=np.float64)
    return (float(f(x + eps * d)) - float(f(x - eps * d))) / (2.0 * eps)


def check_gradient(
    f: Callable[[Any], Any],
    analytic: np.ndarray,
    x: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-7,
    n_directions: int = 5,
    seed: int = 0,
) -> float:
    """Validate ``analytic`` against random directional derivatives of ``f``.

    Returns the worst relative error across directions and raises
    ``AssertionError`` when the tolerance is violated.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=np.float64)
    analytic = np.asarray(analytic, dtype=np.float64)
    worst = 0.0
    for _ in range(n_directions):
        d = rng.standard_normal(x.shape)
        d /= np.linalg.norm(d.ravel())
        num = directional_numerical_derivative(f, x, d, eps=eps)
        ana = float(np.sum(analytic * d))
        err = abs(num - ana)
        scale = max(abs(num), abs(ana), atol / max(rtol, 1e-300))
        rel = err / scale
        worst = max(worst, rel)
        if err > atol + rtol * max(abs(num), abs(ana)):
            raise AssertionError(
                f"gradient check failed: analytic={ana:.10e} numerical={num:.10e} "
                f"(abs err {err:.3e})"
            )
    return worst

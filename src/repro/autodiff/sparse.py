"""Differentiable sparse linear algebra — the RBF-FD fast path.

The dense primitives in :mod:`repro.autodiff.linalg` lock the DP and DAL
strategies to ``O(N³)`` factorisations of the global collocation matrix.
Local RBF-FD (:mod:`repro.rbf.local`) assembles operators with a fixed
number of nonzeros per row, so the same *discretise-then-optimise* adjoint
identity

.. math::

    \\bar b = A^{-T} \\bar x, \\qquad \\bar A = -\\bar b \\, x^T

can be evaluated with one sparse ``splu`` factorisation reused for the
forward and the transposed (adjoint) solve.  Three entry points:

- :func:`sparse_solve` — one-shot solve against a *constant* sparse
  matrix, differentiable w.r.t. the right-hand side;
- :class:`SparseLUSolver` — factorise once, solve many (mirrors the dense
  :class:`~repro.autodiff.linalg.LUSolver`), used by the control loops
  where the system matrix never changes;
- :func:`sparse_pattern_solve` — solve with a matrix whose *values* live
  on the tape (fixed sparsity pattern, Tensor-valued entries).  This is
  what lets Navier–Stokes DP differentiate through the dependence of the
  momentum matrix on the previous velocity iterate without densifying:
  the VJP w.r.t. the nonzero values is ``-w[row] · x[col]`` — the sparse
  restriction of the dense ``-w xᵀ``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autodiff.batching import primitive
from repro.autodiff.linalg import LUSolver
from repro.autodiff.tensor import ArrayLike, Tensor, make_node, tensor
from repro.obs.metrics import get_registry


def _splu(A) -> spla.SuperLU:
    """Factorise a sparse matrix (any format) with SuperLU."""
    A = sp.csc_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"sparse solve expects a square matrix, got {A.shape}")
    return spla.splu(A.astype(np.float64))


@primitive("sparse_solve")
def sparse_solve(A, b: ArrayLike) -> Tensor:
    """Differentiable solution of ``A x = b`` for a constant sparse ``A``.

    Parameters
    ----------
    A:
        ``(n, n)`` ``scipy.sparse`` matrix.  Treated as a constant (no
        gradient); use :func:`sparse_pattern_solve` when the matrix values
        themselves depend on tape tensors.
    b:
        ``(n,)`` vector or ``(n, k)`` block of right-hand sides.

    Returns
    -------
    Tensor
        ``x`` with a VJP that solves the transposed (adjoint) system with
        the *same* factorisation.
    """
    if not sp.issparse(A):
        raise TypeError(
            "sparse_solve expects a scipy.sparse matrix; "
            "use autodiff.linalg.solve for dense systems"
        )
    lu = _splu(A)
    tb = tensor(b)
    bd = tb.data
    x = lu.solve(np.ascontiguousarray(bd))

    def vjp_b(g: np.ndarray) -> np.ndarray:
        return lu.solve(np.ascontiguousarray(g), trans="T")

    def fwd(o: np.ndarray) -> None:
        o[...] = lu.solve(np.ascontiguousarray(bd))

    # Operand metadata only; opaque to codegen (SuperLU factors live
    # in the closures, reached via callback).
    return make_node(
        x, [(tb, vjp_b)], "sparse_solve", fwd=fwd, meta=((bd,), None)
    )


@primitive("sparse_matvec")
def sparse_matvec(M, x: ArrayLike) -> Tensor:
    """Differentiable product ``M @ x`` for a constant sparse matrix.

    The sparse counterpart of ``ops.matmul`` with a constant left factor:
    the VJP is ``Mᵀ g``, again a sparse product — nodal differentiation
    matrices stay sparse through the whole reverse pass.
    """
    if not sp.issparse(M):
        raise TypeError("sparse_matvec expects a scipy.sparse matrix")
    tx = tensor(x)
    xd = tx.data
    out = M @ xd
    MT = M.T.tocsr()

    def vjp_x(g: np.ndarray) -> np.ndarray:
        return MT @ g

    def fwd(o: np.ndarray) -> None:
        o[...] = M @ xd

    # Operand metadata only; opaque to codegen (the sparse matrix is
    # not an ndarray the emitter can inline).
    return make_node(
        out, [(tx, vjp_x)], "sparse_matvec", fwd=fwd, meta=((xd,), None)
    )


@primitive("sparse_pattern_solve")
def sparse_pattern_solve(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    data: ArrayLike,
    b: ArrayLike,
) -> Tensor:
    """Differentiable solve where the matrix *values* are on the tape.

    ``A = csr((data, (rows, cols)), shape)`` with a fixed sparsity pattern
    ``(rows, cols)``; ``data`` may be a Tensor (e.g. assembled from the
    frozen-advection velocity), and the VJP scatters the dense adjoint
    formula ``Ā = -w xᵀ`` onto the pattern only:

    .. math::

        \\bar d_k = -w_{r_k} x_{c_k} .

    Duplicate ``(row, col)`` entries are summed by the CSR constructor,
    and each duplicate receives the same (correct) cotangent.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    td, tb = tensor(data), tensor(b)
    if td.data.shape != rows.shape:
        raise ValueError(
            f"data has shape {td.data.shape}, pattern has {rows.shape}"
        )
    dd, bd = td.data, tb.data
    A = sp.csr_matrix((dd, (rows, cols)), shape=shape)
    # One-slot holder: the forward-replay closure re-assembles and
    # re-factorises from the *current* pattern values (they live on the
    # tape and change between replays); the VJPs read through the holder
    # so the adjoint solves always use the matching factorisation.
    holder = [_splu(A)]
    x = np.asarray(holder[0].solve(np.ascontiguousarray(bd)))

    def solve_T(g: np.ndarray) -> np.ndarray:
        return holder[0].solve(np.ascontiguousarray(g), trans="T")

    def vjp_b(g: np.ndarray) -> np.ndarray:
        return solve_T(g)

    def vjp_data(g: np.ndarray) -> np.ndarray:
        w = solve_T(g)
        if x.ndim == 1:
            return -w[rows] * x[cols]
        return -np.sum(w[rows] * x[cols], axis=1)

    def fwd(o: np.ndarray) -> None:
        holder[0] = _splu(sp.csr_matrix((dd, (rows, cols)), shape=shape))
        o[...] = holder[0].solve(np.ascontiguousarray(bd))

    return make_node(
        x, [(td, vjp_data), (tb, vjp_b)], "sparse_pattern_solve", fwd=fwd,
        meta=((dd, bd), {"shape": shape}),
    )


class SparseLUSolver:
    """A differentiable sparse solver with a cached ``splu`` factorisation.

    The sparse sibling of :class:`~repro.autodiff.linalg.LUSolver`: the
    control loops' system matrices are constant across iterations, so the
    symbolic + numeric factorisation happens exactly once and every
    forward *and* transposed (adjoint) solve reuses it — factorise-once,
    solve-many.  ``n_factorizations`` counts numeric factorisations and
    ``n_solves`` counts triangular solves against the cached factors, so
    regression tests (and the telemetry layer's cache records) can assert
    the cache is actually hit.
    """

    solver_name = "sparse-splu"

    def __init__(self, A) -> None:
        if not sp.issparse(A):
            raise TypeError(
                "SparseLUSolver expects a scipy.sparse matrix; "
                "use LUSolver for dense systems"
            )
        A = sp.csc_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(
                f"SparseLUSolver expects a square matrix, got {A.shape}"
            )
        self.n = A.shape[0]
        self.nnz = A.nnz
        self._lu = spla.splu(A.astype(np.float64))
        self.n_factorizations = 1
        self.n_solves = 0
        get_registry().counter("linalg.sparse.factorizations").inc()

    def _solve(self, b: np.ndarray, trans: str = "N") -> np.ndarray:
        self.n_solves += 1
        get_registry().counter("linalg.sparse.solves").inc()
        return self._lu.solve(np.ascontiguousarray(b), trans=trans)

    @primitive("sparse_lu_solve")
    def __call__(self, b: ArrayLike) -> Tensor:
        """Solve ``A x = b`` differentiably w.r.t. ``b``."""
        tb = tensor(b)
        bd = tb.data
        x = self._solve(bd)

        def vjp_b(g: np.ndarray) -> np.ndarray:
            return self._solve(g, trans="T")

        def fwd(o: np.ndarray) -> None:
            o[...] = self._solve(bd)

        return make_node(
            x, [(tb, vjp_b)], "sparse_lu_solve", fwd=fwd, meta=((bd,), None)
        )

    def solve_block(self, b_block: ArrayLike) -> Tensor:
        """Solve an ``(N, n)`` row-block of right-hand sides at once.

        One ``splu`` triangular solve against an ``(n, N)`` column block
        serves all N systems, forward and adjoint (the VJP's transposed
        solve receives the cotangent block in the same layout) — the
        sparse mirror of :meth:`~repro.autodiff.linalg.LUSolver.solve_block`
        and the arrangement the batching solve rule emits.
        """
        from repro.autodiff import ops

        return ops.transpose(self(ops.transpose(b_block)))

    def solve_numpy(self, b: np.ndarray) -> np.ndarray:
        """Plain NumPy solve (no tape)."""
        return self._solve(np.asarray(b, dtype=np.float64))

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` (the adjoint system) without taping."""
        return self._solve(np.asarray(b, dtype=np.float64), trans="T")


def make_linear_solver(A, method: str = "direct", **options):
    """Build the differentiable solver matching ``A``'s storage and ``method``.

    The single dispatch point that lets the DP/DAL oracles run on any
    backend from one flag:

    ==========  ===============  =============================================
    storage     ``method``       solver
    ==========  ===============  =============================================
    dense       ``"direct"``     :class:`~repro.autodiff.linalg.LUSolver`
    sparse      ``"direct"``     :class:`SparseLUSolver`
    sparse      ``"iterative"``  :class:`~repro.autodiff.krylov.KrylovSolver`
    dense       ``"iterative"``  ``TypeError`` — the matrix-free path exists
                                 to *avoid* dense storage; densifying first
                                 would defeat it, so a wrong-backend pick
                                 fails loudly here instead of in a bench run
    ==========  ===============  =============================================

    Sparsity is decided by ``scipy.sparse.issparse`` (true for both the
    legacy ``*_matrix`` and the new ``*_array`` classes, and for every
    format — COO inputs are converted by the solver constructors).
    Objects that merely *duck-type* a sparse matrix (e.g. expose
    ``toarray``) are treated as dense operands, matching the behaviour
    of every other ``scipy.sparse`` consumer in the repository.

    All three solvers expose the same interface (``__call__`` on the
    tape with an implicit/adjoint VJP, ``solve_numpy``,
    ``solve_transposed``, ``solve_block``).  ``options`` are forwarded
    to :class:`~repro.autodiff.krylov.KrylovSolver` (tolerances,
    ``maxiter``, ``preconditioner``, ``fallback``, ``recorder``, ...)
    and must be empty for the direct backends.
    """
    if method not in ("direct", "iterative"):
        raise ValueError(
            f"method must be 'direct' or 'iterative', got {method!r}"
        )
    if method == "iterative":
        if not sp.issparse(A):
            raise TypeError(
                "the iterative (Krylov) backend requires a scipy.sparse "
                "operator; got a dense system — use method='direct' or "
                "assemble with the local RBF-FD backend"
            )
        from repro.autodiff.krylov import KrylovSolver

        return KrylovSolver(A, **options)
    if options:
        raise TypeError(
            f"unexpected options for the direct backend: {sorted(options)}"
        )
    if sp.issparse(A):
        return SparseLUSolver(A)
    return LUSolver(A)

"""The :class:`Tensor` node of the reverse-mode autodiff tape.

A :class:`Tensor` wraps a ``numpy.ndarray`` together with the bookkeeping
needed to replay the chain rule backwards: the list of parent tensors and,
for each parent, a *vector-Jacobian product* (VJP) closure mapping the
cotangent of this node to the cotangent contribution of that parent.

The tape is built dynamically as operations execute (define-by-run, like
JAX's tracing of a single evaluation or PyTorch's eager autograd).  Calling
:meth:`Tensor.backward` on a scalar output topologically sorts the graph and
accumulates cotangents into ``.grad`` fields of leaf tensors created with
``requires_grad=True``.

Design notes
------------
* ``float64`` everywhere — PDE collocation matrices are ill-conditioned and
  the paper's headline DP result (final cost ~1e-9) needs full precision.
* VJP closures capture only the arrays they need, so memory behaves like the
  paper describes for DP: the *entire* computational graph of a solve is
  retained until backward, which is exactly the memory-vs-accuracy trade-off
  Table 3 reports.
* Broadcasting is handled generically by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED: bool = True


class _ViewFwd:
    """Sentinel marking a node whose data aliases its parent's buffer.

    Replay engines skip these nodes in the forward pass: when the parent
    buffer is updated in place, the view reflects the new values for free
    (reshape/transpose of contiguous arrays, basic-index views).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "VIEW_FWD"


VIEW_FWD = _ViewFwd()


class no_grad:
    """Context manager that disables tape construction.

    Useful for optimiser updates and metric evaluation where gradients are
    not needed; mirrors ``torch.no_grad`` / running outside a JAX trace.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def grad_enabled() -> bool:
    """Return True when new operations should be recorded on the tape."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``.

    NumPy broadcasting implicitly tiles operands; its transpose (the VJP)
    therefore *sums* over the broadcast axes.  This helper sums out leading
    added axes and any axis that was expanded from size one.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the reverse-mode autodiff graph.

    Parameters
    ----------
    data:
        Array payload; coerced to a ``float64`` ``numpy.ndarray``.
    requires_grad:
        Mark this tensor as a differentiation *leaf*: after
        :meth:`backward`, its accumulated cotangent is available in
        ``.grad``.
    parents:
        Internal — ``(parent, vjp)`` pairs recorded by primitive ops.
    op:
        Internal — primitive name, for debugging and graph inspection.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_op", "_fwd", "_meta")

    # Make NumPy defer ``ndarray <op> Tensor`` to the Tensor's reflected
    # operators instead of trying elementwise object coercion.
    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Optional[List[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]]] = None,
        op: str = "leaf",
        fwd: Optional[Callable[[np.ndarray], None]] = None,
        meta: Optional[Tuple] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = parents or []
        self._op = op
        # Forward-replay closure: recomputes this node's value *in place*
        # into the buffer passed to it (always ``self.data``), reading the
        # parent buffers it captured by reference at trace time.  ``None``
        # means the op cannot replay; ``VIEW_FWD`` means the data aliases a
        # parent buffer and needs no recomputation.  Only consulted by the
        # compiled replay engine (:mod:`repro.autodiff.compile`).
        self._fwd = fwd
        # Lowering metadata: ``(operands, params)`` where ``operands`` is
        # the tuple of raw ndarray inputs in the op's canonical argument
        # order (the *same* array objects the fwd/VJP closures captured)
        # and ``params`` is a dict of static parameters (axis, index,
        # masks, ...).  ``None`` marks the op opaque to the codegen
        # backend (:mod:`repro.autodiff.lowering`), which then falls back
        # to the recorded closures for this node.
        self._meta = meta

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Data type (always float64 in this engine)."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Matrix transpose (differentiable)."""
        from repro.autodiff import ops

        return ops.transpose(self)

    def needs_tape(self) -> bool:
        """True when this node participates in some gradient computation."""
        return self.requires_grad or bool(self._parents)

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the raw array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, cotangent: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this node.

        Parameters
        ----------
        cotangent:
            Seed cotangent; defaults to ``1.0`` which requires this tensor
            to be scalar (the usual ``grad``-of-a-loss case).
        """
        if cotangent is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit cotangent requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            cotangent = np.ones_like(self.data)
        cotangent = np.asarray(cotangent, dtype=np.float64)
        if cotangent.shape != self.data.shape:
            cotangent = np.broadcast_to(cotangent, self.data.shape).copy()

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): cotangent}
        for node in order:
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad:
                node.grad = g if node.grad is None else node.grad + g
            for parent, vjp in node._parents:
                if not parent.needs_tape():
                    continue
                contrib = vjp(g)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contrib
                else:
                    grads[key] = contrib

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Operator overloads — defined lazily to avoid import cycles
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.div(other, self)

    def __pow__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.power(self, other)

    def __rpow__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.power(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.neg(self)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.matmul(self, other)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.matmul(other, self)

    def __getitem__(self, index) -> "Tensor":
        from repro.autodiff import ops

        return ops.getitem(self, index)

    # Convenience method forms of common primitives -------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable sum reduction."""
        from repro.autodiff import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean reduction."""
        from repro.autodiff import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        """Differentiable reshape."""
        from repro.autodiff import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def ravel(self) -> "Tensor":
        """Differentiable flatten to one dimension."""
        return self.reshape((-1,))

    # Comparisons operate on data and return plain boolean arrays; they
    # are non-differentiable by nature.
    def __lt__(self, other: ArrayLike):
        return self.data < asdata(other)

    def __le__(self, other: ArrayLike):
        return self.data <= asdata(other)

    def __gt__(self, other: ArrayLike):
        return self.data > asdata(other)

    def __ge__(self, other: ArrayLike):
        return self.data >= asdata(other)


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return nodes reachable from ``root`` in reverse topological order.

    Iterative DFS (PDE solves create graphs deep enough to overflow Python's
    recursion limit).
    """
    order: List[Tensor] = []
    visited: set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent, _ in node._parents:
            if id(parent) not in visited and parent.needs_tape():
                stack.append((parent, False))
    order.reverse()
    return order


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a leaf :class:`Tensor` (idempotent on existing tensors).

    If ``data`` is already a Tensor it is returned unchanged unless a
    gradient flag upgrade is requested, in which case a detached copy is
    created.
    """
    if isinstance(data, Tensor):
        if requires_grad and not data.requires_grad:
            return Tensor(data.data, requires_grad=True)
        return data
    return Tensor(data, requires_grad=requires_grad)


def is_tensor(x: object) -> bool:
    """True if ``x`` is a :class:`Tensor`."""
    return isinstance(x, Tensor)


def asdata(x: ArrayLike) -> np.ndarray:
    """Extract the raw float64 ndarray from a tensor or array-like."""
    if isinstance(x, Tensor):
        return x.data
    return np.asarray(x, dtype=np.float64)


def make_node(
    data: np.ndarray,
    parents: Iterable[Tuple[Tensor, Callable[[np.ndarray], np.ndarray]]],
    op: str,
    fwd: Optional[Callable[[np.ndarray], None]] = None,
    meta: Optional[Tuple] = None,
) -> Tensor:
    """Create an interior tape node, respecting the global no-grad switch.

    Primitive implementations call this after computing forward values; when
    gradients are globally disabled, or no parent participates in a gradient
    computation, the result is a detached leaf (the tape is pruned eagerly,
    keeping forward-only solves as cheap as plain NumPy).

    ``fwd`` is the op's forward-replay closure (see :class:`Tensor`): it
    re-executes the forward computation into a caller-supplied output
    buffer, so a recorded tape can be replayed without rebuilding any
    Tensor or closure objects.  ``meta`` is the op's lowering metadata
    (operand arrays + static params) consumed by the codegen backend; ops
    that omit it stay opaque to lowering and replay through closures.
    """
    parents = [(p, v) for (p, v) in parents if p.needs_tape()]
    if not grad_enabled() or not parents:
        return Tensor(data)
    return Tensor(data, parents=parents, op=op, fwd=fwd, meta=meta)

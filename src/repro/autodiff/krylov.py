"""Matrix-free differentiable Krylov solves — the 100k-node backend.

The direct sparse path (:class:`~repro.autodiff.sparse.SparseLUSolver`)
already removes the dense ``O(N³)`` ceiling, but a SuperLU factorisation
of a 100k-node RBF-FD operator still pays superlinear fill-in in both
time and memory.  This module adds the standard scalable alternative: a
preconditioned Krylov iteration (BiCGSTAB or restarted GMRES) that only
ever touches the operator through matrix–vector products, wrapped as a
differentiable primitive.

The differentiable-solve contract is the same *implicit/adjoint* identity
the direct solvers use, and deliberately **never differentiates through
the iteration**:

.. math::

    x = A^{-1} b \\;\\Rightarrow\\;
    \\bar b = A^{-T} \\bar x, \\qquad \\bar A = -\\bar b\\, x^T ,

so the VJP is *one more Krylov solve* — against the transposed operator
with the transposed preconditioner — and the gradient is bitwise
independent of how many iterations either solve took.  (Unrolling the
iteration would tie gradient accuracy to iterate history and multiply
memory by ``maxiter``; the adjoint solve costs the same as the forward
one and is exact at the solves' tolerance.)

Failure policy: an iteration that has not met its tolerance by
``maxiter`` **never returns silently**.  It either raises
:class:`KrylovConvergenceError` (default) or, with ``fallback=True``,
completes the solve with a direct sparse factorisation — and emits a
``repro.obs`` solver event (``"failure"`` / ``"fallback"``) either way.

Preconditioning: ``"ilu"`` (a drop-tolerance incomplete LU of the sparse
RBF-FD operator, nnz-bounded by its fill-factor cap) or ``"jacobi"``
(inverse diagonal), or ``None``.  The transposed preconditioner for the
adjoint solve comes for free: ``ilu`` factors solve with ``trans="T"``,
Jacobi is symmetric.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autodiff.batching import primitive
from repro.autodiff.tensor import ArrayLike, Tensor, make_node, tensor
from repro.obs.health import current_watchdog
from repro.obs.metrics import get_registry
from repro.obs.profile import span as _span

__all__ = [
    "KrylovConvergenceError",
    "KrylovResult",
    "KrylovSolver",
    "bicgstab",
    "gmres",
    "krylov_pattern_solve",
]


class KrylovConvergenceError(RuntimeError):
    """An iterative solve failed to reach its tolerance by ``maxiter``.

    Carries the full diagnosis so callers (and tests) can assert on the
    failure instead of parsing a message: the method name, system size,
    iterations spent, the final relative residual, and the tolerance it
    missed.
    """

    def __init__(
        self,
        method: str,
        n: int,
        iterations: int,
        residual: float,
        tol: float,
    ) -> None:
        self.method = method
        self.n = int(n)
        self.iterations = int(iterations)
        self.residual = float(residual)
        self.tol = float(tol)
        super().__init__(
            f"{method} did not converge on the {n}×{n} system: relative "
            f"residual {residual:.3e} after {iterations} iterations "
            f"(tol={tol:.1e}); raise maxiter, strengthen the "
            f"preconditioner, or pass fallback=True to complete with a "
            f"direct sparse solve"
        )


class KrylovResult:
    """Outcome of one Krylov iteration (solution + convergence trace)."""

    __slots__ = ("x", "converged", "iterations", "residuals")

    def __init__(
        self,
        x: np.ndarray,
        converged: bool,
        iterations: int,
        residuals: List[float],
    ) -> None:
        self.x = x
        self.converged = converged
        self.iterations = iterations
        #: Relative residual-norm history, one entry per iteration
        #: (BiCGSTAB: true residual; GMRES: recurrence residual).
        self.residuals = residuals


def _stop_threshold(b_norm: float, tol: float, atol: float) -> float:
    """Absolute 2-norm stopping threshold ``max(tol·‖b‖, atol)``."""
    return max(tol * b_norm, atol)


def bicgstab(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
) -> KrylovResult:
    """Right-preconditioned BiCGSTAB (van der Vorst 1992).

    Implemented here (rather than via ``scipy.sparse.linalg.bicgstab``)
    so the iteration is deterministic across SciPy versions, reports
    exact iteration counts and a true-residual history for the telemetry
    layer, and costs nothing extra for that history — the recurrence
    already carries ``r``.  Right preconditioning keeps the convergence
    test on the *true* residual ``‖b − Ax‖``, so "converged" always
    means the unpreconditioned system was actually solved.
    """
    n = b.shape[0]
    maxiter = 10 * n if maxiter is None else int(maxiter)
    M = precond if precond is not None else (lambda v: v)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x) if x.any() else b.astype(np.float64, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return KrylovResult(np.zeros_like(b), True, 0, [0.0])
    threshold = _stop_threshold(b_norm, tol, atol)
    residuals: List[float] = []
    r_norm = float(np.linalg.norm(r))
    if r_norm <= threshold:
        return KrylovResult(x, True, 0, [r_norm / b_norm])

    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    for k in range(maxiter):
        rho_new = float(r_hat @ r)
        if rho_new == 0.0 or omega == 0.0:
            # Breakdown: the shadow vector has become orthogonal to the
            # residual.  This is *structural* for boundary-supported
            # right-hand sides (collocation RHS live on Dirichlet rows,
            # which a good preconditioner solves exactly in one step, so
            # the remaining residual has disjoint support from
            # ``r_hat = b``).  Restart the recurrence with the current
            # residual as the fresh shadow vector — ``r̂·r = ‖r‖² > 0``
            # whenever we have not converged — at the cost of this
            # iteration slot, so the ``maxiter`` budget still bounds the
            # total work.
            r_hat = r.copy()
            rho = alpha = omega = 1.0
            v = np.zeros_like(b)
            p = np.zeros_like(b)
            rho_new = float(r_hat @ r)
            if rho_new == 0.0:
                return KrylovResult(
                    x, False, k, residuals or [r_norm / b_norm]
                )
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        p_hat = M(p)
        v = matvec(p_hat)
        denom = float(r_hat @ v)
        if denom == 0.0:
            return KrylovResult(x, False, k, residuals or [r_norm / b_norm])
        alpha = rho / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm <= threshold:
            x = x + alpha * p_hat
            residuals.append(s_norm / b_norm)
            return KrylovResult(x, True, k + 1, residuals)
        s_hat = M(s)
        t = matvec(s_hat)
        tt = float(t @ t)
        if tt == 0.0:
            return KrylovResult(x, False, k, residuals or [r_norm / b_norm])
        omega = float(t @ s) / tt
        x = x + alpha * p_hat + omega * s_hat
        r = s - omega * t
        r_norm = float(np.linalg.norm(r))
        residuals.append(r_norm / b_norm)
        if r_norm <= threshold:
            return KrylovResult(x, True, k + 1, residuals)
    return KrylovResult(x, False, maxiter, residuals)


def gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
    restart: int = 50,
) -> KrylovResult:
    """Right-preconditioned restarted GMRES with Givens rotations.

    ``maxiter`` counts *inner* iterations (matvecs), not restart cycles,
    so iteration ceilings mean the same thing for both methods.  The
    residual history is the recurrence estimate (exact in exact
    arithmetic); the final true residual is re-checked by the caller.
    """
    n = b.shape[0]
    maxiter = 10 * n if maxiter is None else int(maxiter)
    restart = max(1, min(int(restart), n, maxiter))
    M = precond if precond is not None else (lambda v: v)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return KrylovResult(np.zeros_like(b), True, 0, [0.0])
    threshold = _stop_threshold(b_norm, tol, atol)
    residuals: List[float] = []
    total = 0

    while total < maxiter:
        r = b - matvec(x)
        beta = float(np.linalg.norm(r))
        if beta <= threshold:
            return KrylovResult(x, True, total, residuals or [beta / b_norm])
        m = min(restart, maxiter - total)
        # Arnoldi basis (preconditioned directions kept for the update).
        V = np.zeros((m + 1, n))
        Z = np.zeros((m, n))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        V[0] = r / beta
        j_done = 0
        for j in range(m):
            Z[j] = M(V[j])
            w = matvec(Z[j])
            for i in range(j + 1):
                H[i, j] = float(w @ V[i])
                w -= H[i, j] * V[i]
            h_next = float(np.linalg.norm(w))  # pre-rotation H[j+1, j]
            # Apply the accumulated Givens rotations to the new column.
            for i in range(j):
                hi, hj = H[i, j], H[i + 1, j]
                H[i, j] = cs[i] * hi + sn[i] * hj
                H[i + 1, j] = -sn[i] * hi + cs[i] * hj
            denom = float(np.hypot(H[j, j], h_next))
            if denom == 0.0:
                break  # total stagnation; use the columns built so far
            cs[j] = H[j, j] / denom
            sn[j] = h_next / denom
            H[j, j] = denom
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            j_done = j + 1
            total += 1
            residuals.append(abs(float(g[j + 1])) / b_norm)
            if abs(float(g[j + 1])) <= threshold or h_next == 0.0:
                break  # converged, or happy breakdown (exact solution)
            V[j + 1] = w / h_next
        if j_done == 0:
            return KrylovResult(x, False, total, residuals or [beta / b_norm])
        # Back-substitution on the j_done×j_done triangular system.
        y = np.zeros(j_done)
        for i in range(j_done - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1:j_done] @ y[i + 1:j_done]) / H[i, i]
        x = x + y @ Z[:j_done]
        if abs(float(g[j_done])) <= threshold:
            return KrylovResult(x, True, total, residuals)
    return KrylovResult(x, False, total, residuals)


_METHODS = {"bicgstab": bicgstab, "gmres": gmres}
_PRECONDITIONERS = ("ilu", "jacobi", None)


class KrylovSolver:
    """A differentiable matrix-free iterative solver for sparse systems.

    Joins :class:`~repro.autodiff.linalg.LUSolver` and
    :class:`~repro.autodiff.sparse.SparseLUSolver` behind
    :func:`~repro.autodiff.sparse.make_linear_solver`: the same interface
    (``__call__`` on the tape, ``solve_numpy``, ``solve_transposed``,
    ``solve_block``), but the forward solve is a preconditioned Krylov
    iteration and the adjoint solve runs the *transposed* preconditioned
    iteration — never the dense or factored inverse.  Only the operator
    (CSR + its transpose) and the nnz-bounded preconditioner are stored,
    so memory stays ``O(nnz)`` at any cloud size.

    Parameters
    ----------
    A:
        Square ``scipy.sparse`` matrix.
    method:
        ``"bicgstab"`` (default — short recurrence, two matvecs per
        iteration) or ``"gmres"`` (restarted; monotone residuals).
    preconditioner:
        ``"ilu"`` (default), ``"jacobi"``, or ``None``.
    tol, atol:
        Relative/absolute residual tolerances (2-norm); convergence means
        ``‖b − Ax‖ ≤ max(tol·‖b‖, atol)``.
    maxiter:
        Inner-iteration ceiling; defaults to ``10·n``.
    restart:
        GMRES restart length (ignored by BiCGSTAB).
    fallback:
        On non-convergence, complete the solve with a direct sparse
        factorisation (built lazily, once) instead of raising.
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder`; every solve
        emits a ``solve`` event with its iteration count and final
        relative residual, the preconditioner build emits ``factorize``,
        and failures emit ``"failure"``/``"fallback"``.
    """

    solver_name = "sparse-krylov"

    def __init__(
        self,
        A,
        *,
        method: str = "bicgstab",
        preconditioner: Optional[str] = "ilu",
        tol: float = 1e-10,
        atol: float = 0.0,
        maxiter: Optional[int] = None,
        restart: int = 50,
        fallback: bool = False,
        recorder=None,
        ilu_drop_tol: float = 1e-4,
        ilu_fill_factor: float = 10.0,
    ) -> None:
        if not sp.issparse(A):
            raise TypeError(
                "KrylovSolver expects a scipy.sparse matrix; dense systems "
                "take the LUSolver path"
            )
        if A.shape[0] != A.shape[1]:
            raise ValueError(
                f"KrylovSolver expects a square matrix, got {A.shape}"
            )
        if method not in _METHODS:
            raise ValueError(
                f"unknown Krylov method {method!r}; expected one of "
                f"{sorted(_METHODS)}"
            )
        if preconditioner not in _PRECONDITIONERS:
            raise ValueError(
                f"unknown preconditioner {preconditioner!r}; expected "
                f"'ilu', 'jacobi' or None"
            )
        self.A = sp.csr_matrix(A).astype(np.float64)
        self.AT = self.A.T.tocsr()
        self.n = self.A.shape[0]
        self.nnz = int(self.A.nnz)
        self.method = method
        self.preconditioner = preconditioner
        self.tol = float(tol)
        self.atol = float(atol)
        self.maxiter = 10 * self.n if maxiter is None else int(maxiter)
        self.restart = int(restart)
        self.fallback = bool(fallback)
        self.recorder = recorder
        self.ilu_drop_tol = float(ilu_drop_tol)
        self.ilu_fill_factor = float(ilu_fill_factor)

        self.n_factorizations = 0  # preconditioner (+ lazy fallback) builds
        self.n_solves = 0
        self.n_fallbacks = 0
        self.last_iterations = 0
        self.last_residuals: List[float] = []
        self._direct = None  # lazy splu, built on first fallback

        t0 = time.perf_counter()
        with _span(
            "krylov.precond_build", "solver",
            {"n": self.n, "kind": str(preconditioner)},
        ):
            self._build_preconditioner()
        self.n_factorizations += 1
        get_registry().counter("krylov.precond_builds").inc()
        if self.recorder:
            self.recorder.solver_event(
                self.solver_name,
                "factorize",
                n=self.n,
                seconds=time.perf_counter() - t0,
                nnz=self.nnz,
            )

    # -- preconditioner ------------------------------------------------
    def _build_preconditioner(self) -> None:
        if self.preconditioner == "jacobi":
            d = self.A.diagonal().copy()
            d[d == 0.0] = 1.0
            inv_d = 1.0 / d
            self._M = lambda v: inv_d * v
            self._MT = self._M  # diagonal: self-transposed
        elif self.preconditioner == "ilu":
            # Incomplete LU of the sparse RBF-FD operator: drop tolerance
            # and fill-factor cap keep the factor nnz-bounded (a small
            # multiple of the stencil pattern), unlike the exact splu
            # factorisation whose fill-in grows superlinearly with N.
            # The factorisation runs on the *row-equilibrated* matrix
            # ``D⁻¹A`` (D = per-row max magnitude): collocation systems
            # mix unit Dirichlet rows with ``O(h⁻²)`` stencil rows, and
            # that scale spread makes ILUTP's relative dropping produce
            # exactly singular pivots from a few thousand nodes.  The
            # preconditioner application folds ``D⁻¹`` back in
            # (``M⁻¹ = ILU⁻¹D⁻¹``, ``M⁻ᵀ = D⁻¹ILU⁻ᵀ``), so the operator
            # — and therefore every residual and the adjoint identity —
            # is untouched.  A modified-ILU retry (SuperLU's SMILU-2,
            # shifting dropped mass onto the diagonal) backstops any
            # remaining singular pivot at the same nnz budget.
            rownorm = np.ones(self.n)
            nz = np.diff(self.A.indptr) > 0
            if self.A.nnz:
                # reduceat over the non-empty rows' start offsets: each
                # segment spans exactly one row's stored entries.
                rownorm[nz] = np.maximum.reduceat(
                    np.abs(self.A.data), self.A.indptr[:-1][nz]
                )
            inv_d = 1.0 / np.maximum(rownorm, 1e-300)
            Ac = sp.csc_matrix(sp.diags(inv_d) @ self.A)
            try:
                ilu = spla.spilu(
                    Ac,
                    drop_tol=self.ilu_drop_tol,
                    fill_factor=self.ilu_fill_factor,
                )
            except RuntimeError:
                get_registry().counter("krylov.precond_retries").inc()
                ilu = spla.spilu(
                    Ac,
                    drop_tol=self.ilu_drop_tol,
                    fill_factor=self.ilu_fill_factor,
                    options={"ILU_MILU": "SMILU_2"},
                )
            self._M = lambda v: ilu.solve(np.ascontiguousarray(inv_d * v))
            self._MT = lambda v: inv_d * ilu.solve(
                np.ascontiguousarray(v), trans="T"
            )
        else:
            self._M = None
            self._MT = None

    def _precond(self, trans: bool) -> Optional[Callable]:
        if self._M is None:
            return None
        apply_ = self._MT if trans else self._M
        counter = get_registry().counter("krylov.precond_applies")

        def wrapped(v: np.ndarray) -> np.ndarray:
            counter.inc()
            return apply_(v)

        return wrapped

    # -- direct fallback -----------------------------------------------
    def _direct_solve(self, b: np.ndarray, trans: bool) -> np.ndarray:
        if self._direct is None:
            with _span("krylov.fallback_factorize", "solver", {"n": self.n}):
                self._direct = spla.splu(sp.csc_matrix(self.A))
            self.n_factorizations += 1
            get_registry().counter("krylov.fallback_factorizations").inc()
        return self._direct.solve(
            np.ascontiguousarray(b), trans="T" if trans else "N"
        )

    # -- the core iterative solve (NumPy vectors, no tape) -------------
    def _solve_vec(self, b: np.ndarray, trans: bool) -> np.ndarray:
        op = self.AT if trans else self.A
        matvec = op.__matmul__
        run = _METHODS[self.method]
        kwargs = {"restart": self.restart} if self.method == "gmres" else {}
        t0 = time.perf_counter()
        with _span(
            "krylov.solve", "solver",
            {"n": self.n, "method": self.method, "adjoint": bool(trans)},
        ):
            res = run(
                matvec,
                np.ascontiguousarray(b, dtype=np.float64),
                precond=self._precond(trans),
                tol=self.tol,
                atol=self.atol,
                maxiter=self.maxiter,
                **kwargs,
            )
        seconds = time.perf_counter() - t0
        self.last_iterations = res.iterations
        self.last_residuals = res.residuals
        reg = get_registry()
        reg.counter("krylov.solves").inc()
        reg.counter("krylov.iterations").inc(res.iterations)
        final = res.residuals[-1] if res.residuals else np.inf
        converged = res.converged
        if converged:
            # Trust but verify: one extra matvec confirms the method's
            # claim on the *true* residual, so a drifted GMRES recurrence
            # estimate can never produce a silently-unconverged solution.
            b_norm = float(np.linalg.norm(b))
            if b_norm > 0.0:
                true_r = float(np.linalg.norm(b - op @ res.x))
                final = true_r / b_norm
                if true_r > 10.0 * _stop_threshold(b_norm, self.tol, self.atol):
                    converged = False
        wd = current_watchdog()
        if wd is not None:
            for ev in wd.observe_krylov(self.n, res.iterations, converged=converged):
                if self.recorder:
                    self.recorder.health_event(
                        ev.check, ev.severity, ev.iteration, ev.value, ev.message
                    )
        if not converged:
            reg.counter("krylov.failures").inc()
            if self.recorder:
                self.recorder.solver_event(
                    self.solver_name,
                    "fallback" if self.fallback else "failure",
                    n=self.n,
                    seconds=seconds,
                    residual=final,
                    nnz=self.nnz,
                    iterations=res.iterations,
                )
            if not self.fallback:
                raise KrylovConvergenceError(
                    self.method, self.n, res.iterations, final, self.tol
                )
            self.n_fallbacks += 1
            reg.counter("krylov.fallbacks").inc()
            return self._direct_solve(b, trans)
        if self.recorder:
            self.recorder.solver_event(
                self.solver_name,
                "adjoint" if trans else "solve",
                n=self.n,
                seconds=seconds,
                residual=final,
                nnz=self.nnz,
                iterations=res.iterations,
            )
        return res.x

    def _solve(self, b: np.ndarray, trans: bool = False) -> np.ndarray:
        """Solve for one vector or a column block, counting one solve."""
        self.n_solves += 1
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            return self._solve_vec(b, trans)
        # Column block (n, k): one independent iteration per column —
        # the iterative analogue of a multi-RHS triangular solve.  Each
        # column runs exactly the code path a 1-D solve would, so block
        # and per-vector results are bitwise identical.
        out = np.empty_like(b)
        for j in range(b.shape[1]):
            out[:, j] = self._solve_vec(np.ascontiguousarray(b[:, j]), trans)
        return out

    # -- differentiable interface (mirrors SparseLUSolver) -------------
    @primitive("krylov_solve")
    def __call__(self, b: ArrayLike) -> Tensor:
        """Solve ``A x = b`` differentiably w.r.t. ``b``.

        The VJP solves the transposed preconditioned system — implicit
        differentiation, independent of the forward iteration count.
        """
        tb = tensor(b)
        bd = tb.data
        x = self._solve(bd)

        def vjp_b(g: np.ndarray) -> np.ndarray:
            return self._solve(g, trans=True)

        def fwd(o: np.ndarray) -> None:
            o[...] = self._solve(bd)

        # Operand metadata only; opaque to codegen (the operator and
        # preconditioner live in closures, reached via callback).
        return make_node(
            x, [(tb, vjp_b)], "krylov_solve", fwd=fwd, meta=((bd,), None)
        )

    def solve_block(self, b_block: ArrayLike) -> Tensor:
        """Solve an ``(N, n)`` row-block of right-hand sides at once.

        Mirrors :meth:`SparseLUSolver.solve_block`: the block is
        transposed into columns, solved per column (bitwise equal to N
        independent solves), and transposed back — forward and adjoint.
        """
        from repro.autodiff import ops

        return ops.transpose(self(ops.transpose(b_block)))

    def solve_numpy(self, b: np.ndarray) -> np.ndarray:
        """Plain NumPy solve (no tape)."""
        return self._solve(np.asarray(b, dtype=np.float64))

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` (the adjoint system) without taping."""
        return self._solve(np.asarray(b, dtype=np.float64), trans=True)


@primitive("krylov_pattern_solve")
def krylov_pattern_solve(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    data: ArrayLike,
    b: ArrayLike,
    **options,
) -> Tensor:
    """Iterative solve where the matrix *values* live on the tape.

    The Krylov sibling of
    :func:`~repro.autodiff.sparse.sparse_pattern_solve`: ``A = csr((data,
    (rows, cols)), shape)`` with a fixed pattern and Tensor-valued
    entries.  The VJP w.r.t. ``b`` is the transposed iterative solve; the
    VJP w.r.t. the pattern values is its sparse restriction

    .. math::

        \\bar d_k = -w_{r_k} x_{c_k}, \\qquad A^T w = \\bar x ,

    evaluated as a gather — never a dense outer product.  ``options``
    are forwarded to :class:`KrylovSolver` (method, tolerance, maxiter,
    preconditioner, fallback, recorder).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    td, tb = tensor(data), tensor(b)
    if td.data.shape != rows.shape:
        raise ValueError(
            f"data has shape {td.data.shape}, pattern has {rows.shape}"
        )
    dd, bd = td.data, tb.data

    def build() -> KrylovSolver:
        A = sp.csr_matrix((dd, (rows, cols)), shape=shape)
        return KrylovSolver(A, **options)

    # One-slot holder: the forward-replay closure rebuilds the operator
    # (and its preconditioner) from the *current* pattern values; the
    # VJPs read through the holder so the adjoint iteration always runs
    # against the matching operator.
    holder = [build()]
    x = np.asarray(holder[0]._solve(bd))

    def solve_T(g: np.ndarray) -> np.ndarray:
        return holder[0]._solve(g, trans=True)

    def vjp_b(g: np.ndarray) -> np.ndarray:
        return solve_T(g)

    def vjp_data(g: np.ndarray) -> np.ndarray:
        w = solve_T(g)
        if x.ndim == 1:
            return -w[rows] * x[cols]
        return -np.sum(w[rows] * x[cols], axis=1)

    def fwd(o: np.ndarray) -> None:
        holder[0] = build()
        o[...] = holder[0]._solve(bd)

    return make_node(
        x, [(td, vjp_data), (tb, vjp_b)], "krylov_pattern_solve", fwd=fwd,
        meta=((dd, bd), {"shape": shape}),
    )

"""Differentiable dense linear algebra.

:func:`solve` is the primitive that makes the *discretise-then-optimise*
strategy possible: differentiating ``x = A^{-1} b`` does **not** retain the
elementary operations of the factorisation.  Instead the adjoint system
``A^T w = g`` is solved in the backward pass, giving

.. math::

    \\bar b = A^{-T} \\bar x, \\qquad \\bar A = -\\bar b \\, x^T .

This is mathematically identical to the discrete adjoint method (and to
what JAX's ``jax.numpy.linalg.solve`` records), so the DP method obtains
*exact* discrete gradients at the cost of one extra triangular solve per
linear system — the property the paper calls the "gold standard".

The LU factorisation computed in the forward pass is cached on the tape
node and reused in the backward pass, halving the factorisation cost.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.linalg as sla

from repro.autodiff.batching import composite, primitive
from repro.autodiff.tensor import ArrayLike, Tensor, make_node, tensor
from repro.autodiff import ops
from repro.obs.metrics import get_registry


@primitive("solve")
def solve(A: ArrayLike, b: ArrayLike, assume_a: str = "gen") -> Tensor:
    """Differentiable solution of the linear system ``A x = b``.

    Parameters
    ----------
    A:
        ``(n, n)`` matrix, dense.  May require gradients (needed for the
        Navier–Stokes DP path where the advection operator depends on the
        previous velocity iterate).
    b:
        ``(n,)`` vector or ``(n, k)`` block of right-hand sides.
    assume_a:
        Passed to ``scipy.linalg.lu_factor`` selection; only ``"gen"``
        (general LU) and ``"pos"`` (Cholesky) are supported.

    Returns
    -------
    Tensor
        ``x`` with a VJP that solves the adjoint (transposed) system.
    """
    tA, tb = tensor(A), tensor(b)
    Ad, bd = tA.data, tb.data
    if Ad.ndim != 2 or Ad.shape[0] != Ad.shape[1]:
        raise ValueError(f"solve expects a square matrix, got {Ad.shape}")

    # The factorisation lives in a one-slot holder so the replay closure
    # can refresh it when the matrix values change between replays (the
    # NS momentum matrix depends on the previous velocity iterate); the
    # VJPs read through the holder and always see the current factors.
    if assume_a == "pos":
        holder = [sla.cho_factor(Ad, check_finite=False)]
        x = np.asarray(sla.cho_solve(holder[0], bd, check_finite=False))

        def refactor() -> None:
            holder[0] = sla.cho_factor(Ad, check_finite=False)

        def solve_T(g: np.ndarray) -> np.ndarray:
            return sla.cho_solve(holder[0], g, check_finite=False)  # symmetric

        def fwd(o: np.ndarray) -> None:
            if a_on_tape:
                refactor()
            o[...] = sla.cho_solve(holder[0], bd, check_finite=False)

    else:
        holder = [sla.lu_factor(Ad, check_finite=False)]
        x = np.asarray(sla.lu_solve(holder[0], bd, check_finite=False))

        def refactor() -> None:
            holder[0] = sla.lu_factor(Ad, check_finite=False)

        def solve_T(g: np.ndarray) -> np.ndarray:
            return sla.lu_solve(holder[0], g, trans=1, check_finite=False)

        def fwd(o: np.ndarray) -> None:
            if a_on_tape:
                refactor()
            o[...] = sla.lu_solve(holder[0], bd, check_finite=False)

    a_on_tape = tA.needs_tape()

    def vjp_b(g: np.ndarray) -> np.ndarray:
        return solve_T(g)

    def vjp_A(g: np.ndarray) -> np.ndarray:
        w = solve_T(g)
        if x.ndim == 1:
            return -np.outer(w, x)
        return -(w @ x.T)

    # Lowering metadata documents the operands (useful for IR dumps and
    # buffer-liveness analysis); the op itself stays opaque to codegen —
    # the factorisation lives in the closures, so codegen calls back into
    # them (F/V callbacks) rather than emitting symbolic source.
    return make_node(
        x, [(tA, vjp_A), (tb, vjp_b)], "solve", fwd=fwd,
        meta=((Ad, bd), {"assume_a": assume_a}),
    )


class LUSolver:
    """A differentiable solver with a *cached* LU factorisation.

    For optimal-control loops the system matrix is constant across
    iterations (Laplace: the collocation matrix never changes; NS: the
    pressure-Poisson matrix is fixed).  Factorising once and reusing the
    factors for every forward *and* backward (transposed) solve turns the
    per-iteration cost from O(n³) to O(n²) — this is what makes the scaled
    benchmark runs tractable and mirrors ``jax.scipy.linalg.lu_solve``
    composition under ``jit``.

    ``n_factorizations``/``n_solves`` mirror the counters on
    :class:`~repro.autodiff.sparse.SparseLUSolver`, so the telemetry
    layer reports factorise-once/solve-many behaviour uniformly across
    backends.
    """

    solver_name = "dense-lu"
    nnz = None  # dense storage: no sparsity to report

    def __init__(self, A: np.ndarray) -> None:
        A = np.asarray(A, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"LUSolver expects a square matrix, got {A.shape}")
        self.n = A.shape[0]
        self._lu = sla.lu_factor(A, check_finite=False)
        self.n_factorizations = 1
        self.n_solves = 0
        get_registry().counter("linalg.dense.factorizations").inc()
        # Bind LAPACK ``getrs`` once: ``scipy.linalg.lu_solve`` dispatches
        # to the same routine but re-validates inputs on every call, which
        # dominates small solves in the replay hot loop.  Results are
        # bit-identical — it is literally the same LAPACK call.
        lu_mat, self._piv = self._lu
        self._lu_f = np.asfortranarray(lu_mat)
        (self._getrs,) = sla.get_lapack_funcs(("getrs",), (self._lu_f,))

    def _solve(self, b: np.ndarray, trans: int = 0) -> np.ndarray:
        self.n_solves += 1
        get_registry().counter("linalg.dense.solves").inc()
        x, info = self._getrs(self._lu_f, self._piv, b, trans=trans)
        if info != 0:
            raise np.linalg.LinAlgError(f"getrs failed with info={info}")
        return x

    @primitive("lu_solve")
    def __call__(self, b: ArrayLike) -> Tensor:
        """Solve ``A x = b`` differentiably w.r.t. ``b``."""
        tb = tensor(b)
        bd = tb.data
        x = self._solve(bd)

        def vjp_b(g: np.ndarray) -> np.ndarray:
            return self._solve(g, trans=1)

        # Constant matrix: replay re-solves with the cached factors.
        def fwd(o: np.ndarray, bd=bd) -> None:
            o[...] = self._solve(bd)

        # Operand metadata only; stays opaque to codegen (cached factors
        # live in the solver object, reached via closure callbacks).
        return make_node(
            x, [(tb, vjp_b)], "lu_solve", fwd=fwd, meta=((bd,), None)
        )

    def solve_block(self, b_block: ArrayLike) -> Tensor:
        """Solve an ``(N, n)`` row-block of right-hand sides at once.

        The block is transposed into LAPACK's native ``(n, N)`` column
        layout so ONE ``getrs`` call against the cached factors serves
        all N systems — and the adjoint pass mirrors it: the transposed
        solve in the VJP receives the cotangent block in the same layout
        and batches through a single ``getrs(trans=1)``.  This is the
        arrangement the :mod:`~repro.autodiff.batching` solve rule emits.
        """
        return ops.transpose(self(ops.transpose(b_block)))

    def solve_numpy(self, b: np.ndarray) -> np.ndarray:
        """Plain NumPy solve (no tape)."""
        return self._solve(np.asarray(b, dtype=np.float64))

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` (the adjoint system) without taping."""
        return self._solve(np.asarray(b, dtype=np.float64), trans=1)


@primitive("lstsq")
def lstsq(A: ArrayLike, b: ArrayLike, rcond: Optional[float] = None) -> Tensor:
    """Differentiable least-squares solution ``argmin_x ||A x - b||``.

    Only the right-hand side ``b`` is differentiated (sufficient for the
    solver paths in this repository where collocation matrices are constant
    w.r.t. the control); the VJP solves the normal-equation adjoint
    ``(A^T A) w = g`` and maps back via ``A w``.
    """
    tA, tb = tensor(A), tensor(b)
    Ad, bd = tA.data, tb.data
    x, *_ = np.linalg.lstsq(Ad, bd, rcond=rcond)
    gram = Ad.T @ Ad

    def vjp_b(g: np.ndarray) -> np.ndarray:
        w = np.linalg.solve(gram, g)
        return Ad @ w

    def fwd(o: np.ndarray) -> None:
        o[...] = np.linalg.lstsq(Ad, bd, rcond=rcond)[0]

    # Operand metadata only; opaque to codegen (normal-equation adjoint
    # runs through the recorded closures).
    return make_node(
        x, [(tb, vjp_b)], "lstsq", fwd=fwd,
        meta=((Ad, bd), {"rcond": rcond}),
    )


@composite
def norm(a: ArrayLike, ord: Union[int, float] = 2) -> Tensor:
    """Differentiable vector norm (2-norm or 1-norm)."""
    if ord == 2:
        return ops.sqrt(ops.sum_(ops.square(a)))
    if ord == 1:
        return ops.sum_(ops.abs_(a))
    raise ValueError(f"unsupported norm order {ord!r}")

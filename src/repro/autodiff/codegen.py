"""Source-emitting codegen backend for compiled programs.

Takes the lowered IR from :mod:`repro.autodiff.lowering` and emits one
Python source string of straight-line NumPy — forward sweep then
backward sweep — with every kernel written in place (``out=`` /
``where=``) into the program's persistent buffers or into arena slots.
The source is ``compile()``d once per program and bound into a function
whose *keyword defaults* are the buffers, constants, masks, and recorded
closures (CPython resolves defaults as locals — no global/dict lookups
in the hot loop).  Replaying the program is then a single function call:
no per-op dispatch, no VJP closure calls, no backward temporaries beyond
the planned arena.

Numerics are kept bit-compatible with the replay tier wherever the
emitted expression can preserve eager's evaluation order (same ufunc,
same operand order, same unbroadcast reduction sequence); the few ops
where exact order cannot be reproduced in place fall back to emitting
the eager expression verbatim (allocating, like replay does).  Every
generated program is additionally validated against the eager trace
before it is cached — see :func:`repro.autodiff.compile.compiled_value_and_grad`.

Non-fusible ops (``solve`` and friends, sparse products, stacked
matmuls, ``concatenate``/``stack``, ``amax``) are called through the
closures the trace recorded — ``F{i}`` forward, ``V{i}_{j}`` VJP — so a
program containing them still compiles end to end.

The profiled variant of the source carries one ``perf_counter`` pair per
fusion group (forward and backward segments separately), feeding the
per-fused-kernel table in :class:`~repro.autodiff.compile.ReplayProfile`.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.lowering import (
    ArenaPlanner,
    BwdStep,
    IRNode,
    LoweredProgram,
    LoweringError,
    lower,
    unbroadcast_plan,
)

__all__ = ["CodegenProgram", "codegen_program"]


_UNARY = {
    "neg": "negative",
    "sqrt": "sqrt",
    "abs": "abs",
    "exp": "exp",
    "log": "log",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "sinh": "sinh",
    "cosh": "cosh",
    "arctan": "arctan",
}
_BINARY = {
    "add": "add",
    "sub": "subtract",
    "mul": "multiply",
    "div": "divide",
    "power": "power",
}


class _Segment:
    __slots__ = ("name", "phase", "flops", "bytes_moved")

    def __init__(self, name: str, phase: str, flops: float = 0.0, bytes_moved: float = 0.0):
        self.name = name
        self.phase = phase
        self.flops = flops
        self.bytes_moved = bytes_moved


class _Emitter:
    """Walks the lowered IR once, producing tagged source lines.

    Buffer/closure objects are collected into ``params`` (name → object)
    and become the generated function's keyword defaults.  Arena slots
    are requested from the planner in step order as the walk reaches
    them, so the planner's sorted-start precondition holds by
    construction.
    """

    def __init__(self, lowered: LoweredProgram) -> None:
        self.lw = lowered
        self.nodes = lowered.nodes
        self.planner = ArenaPlanner()
        self.params: Dict[str, Any] = {"np": np, "_perf": time.perf_counter}
        self.body: List[Tuple[int, str]] = []
        self.segments: List[_Segment] = []
        self._seg = -1
        self.step = 0
        self._const_names: Dict[int, str] = {}
        self.valname: Dict[int, str] = {}
        self.cotname: Dict[int, str] = {}
        self._notmask: Dict[int, str] = {}

        prog = lowered.program
        for ir in self.nodes:
            if not ir.value_transient:
                name = f"b{ir.idx}"
                self.params[name] = ir.node.data
                self.valname[ir.idx] = name
            if not ir.cot_transient:
                name = f"g{ir.idx}"
                self.params[name] = prog._gradbufs[ir.idx]
                self.cotname[ir.idx] = name

        # Copy-propagation pre-scan: a cotangent written by exactly one
        # push that merely *forwards* another cotangent (identity add/sub,
        # reshape/transpose views) never needs its own buffer — readers
        # use the source cotangent (through a zero-copy view for the view
        # ops) and the copy disappears.  The source's arena interval must
        # then cover the alias's reads, so extended endpoints are fixed
        # here, before any slot is allocated.
        self._push_count: Dict[int, int] = {}
        for st in lowered.bwd_steps:
            self._push_count[st.dst] = self._push_count.get(st.dst, 0) + 1
        alias_parent: Dict[int, int] = {}
        self._alias_steps: set = set()
        for st in lowered.bwd_steps:
            if self._push_count[st.dst] != 1:
                continue
            d = self.nodes[st.dst]
            if not d.cot_transient:
                continue
            s = self.nodes[st.src]
            if not s.symbolic_bwd:
                continue
            p = s.arg_pos[st.slot] if s.arg_pos else 0
            if s.op == "add" or (s.op == "sub" and p == 0):
                ok = unbroadcast_plan(s.shape, d.shape) is None
            else:
                ok = s.op in ("reshape", "transpose")
            if ok:
                alias_parent[st.dst] = st.src
                self._alias_steps.add(st.step)
        self._cot_end: Dict[int, int] = {}
        for dst in alias_parent:
            root = dst
            while root in alias_parent:
                root = alias_parent[root]
            end = max(
                self._cot_end.get(root, lowered.last_read.get(root, -1)),
                lowered.last_read[dst],
            )
            self._cot_end[root] = end

    # -- infrastructure ------------------------------------------------
    def seg(self, name: str, phase: str, flops: float = 0.0, moved: float = 0.0) -> None:
        self.segments.append(_Segment(name, phase, flops, moved))
        self._seg = len(self.segments) - 1

    def line(self, code: str) -> None:
        self.body.append((self._seg, code))

    def const(self, obj: Any) -> str:
        name = self._const_names.get(id(obj))
        if name is None:
            name = f"c{len(self._const_names)}"
            self._const_names[id(obj)] = name
            self.params[name] = obj
        return name

    def literal(self, v: Any) -> str:
        if isinstance(v, bool) or v is None:
            return repr(v)
        if isinstance(v, (int, float)) and math.isfinite(v):
            return repr(v)
        return self.const(v)

    def _slot_name(self, slot: int) -> str:
        name = f"s{slot}"
        if name not in self.params:
            shape, dt = self.planner.slots[slot]
            self.params[name] = np.empty(shape, dtype=np.dtype(dt))
        return name

    def scratch(self, shape: Tuple[int, ...], dtype: Any) -> str:
        slot = self.planner.alloc(tuple(shape), dtype, self.step, self.step)
        return self._slot_name(slot)

    def def_val(self, ir: IRNode) -> str:
        """Destination name for a node's forward value (allocates if transient)."""
        if not ir.value_transient:
            return self.valname[ir.idx]
        slot = self.planner.alloc(ir.shape, ir.dtype, ir.fwd_step, ir.last_value_use)
        name = self._slot_name(slot)
        self.valname[ir.idx] = name
        return name

    def val(self, idx: int) -> str:
        return self.valname[idx]

    def bval(self, idx: int) -> str:
        """A node value referenced by *backward* code: must be pinned."""
        if self.nodes[idx].value_transient:
            raise LoweringError(
                f"backward reads value of node {idx} ({self.nodes[idx].op}) "
                "but dead-buffer elimination dropped it"
            )
        return self.valname[idx]

    def ref(self, ir: IRNode, k: int, bwd: bool = False) -> str:
        kind, r = ir.args[k]
        if kind == "node":
            return self.bval(r) if bwd else self.val(r)
        return self.const(self.lw.consts[r][1])

    def cot_target(self, st: BwdStep) -> str:
        idx = st.dst
        name = self.cotname.get(idx)
        if name is None:
            ir = self.nodes[idx]
            slot = self.planner.alloc(
                ir.shape,
                ir.dtype,
                self.lw.first_write[idx],
                # Alias classes extend the root slot's life to cover every
                # member's reads (see the pre-scan in ``__init__``).
                self._cot_end.get(idx, self.lw.last_read[idx]),
            )
            name = self._slot_name(slot)
            self.cotname[idx] = name
        return name

    def _sole_transient(self, idx: int) -> bool:
        """True when ``idx``'s cotangent has exactly one writer and no
        external reader — its sole push may rebind a local instead of
        copying into an arena slot."""
        return self._push_count.get(idx) == 1 and self.nodes[idx].cot_transient

    # -- forward -------------------------------------------------------
    def emit(self) -> None:
        lw = self.lw
        nodes = self.nodes
        for g in lw.groups:
            self.seg(g.name(nodes), "fwd", g.flops, g.bytes_moved)
            for idx in g.members:
                ir = nodes[idx]
                self.step = ir.fwd_step
                self.emit_fwd(ir)

        self.seg("seed", "bwd")
        self.line("g0[...] = 1.0")
        last_key: Any = object()
        for st in lw.bwd_steps:
            src = nodes[st.src]
            self.step = st.step
            key = src.group if src.group >= 0 else f"view:{src.op}"
            if key != last_key:
                name = (
                    lw.groups[src.group].name(nodes)
                    if src.group >= 0
                    else src.op
                )
                self.seg(name, "bwd")
                last_key = key
            self.emit_push(st)

    def emit_fwd(self, ir: IRNode) -> None:
        op = ir.op
        if not ir.symbolic_fwd:  # opaque: recorded closure, in place
            name = f"F{ir.idx}"
            self.params[name] = ir.node._fwd
            self.line(f"{name}({self.val(ir.idx)})")
            return
        o = self.def_val(ir)
        a = [self.ref(ir, k) for k in range(len(ir.args))]
        if op in _BINARY:
            self.line(f"np.{_BINARY[op]}({a[0]}, {a[1]}, out={o})")
        elif op in _UNARY:
            self.line(f"np.{_UNARY[op]}({a[0]}, out={o})")
        elif op == "square":
            self.line(f"np.multiply({a[0]}, {a[0]}, out={o})")
        elif op == "sigmoid":
            self.line(f"np.negative({a[0]}, out={o})")
            self.line(f"np.exp({o}, out={o})")
            self.line(f"{o} += 1.0")
            self.line(f"np.divide(1.0, {o}, out={o})")
        elif op in ("maximum", "minimum"):
            m = self.const(ir.params["mask"])
            nm = self._notmask.setdefault(
                ir.idx, self.const(np.empty_like(ir.params["mask"]))
            )
            uf = "maximum" if op == "maximum" else "minimum"
            cmp = "greater_equal" if op == "maximum" else "less_equal"
            self.line(f"np.{uf}({a[0]}, {a[1]}, out={o})")
            self.line(f"np.{cmp}({a[0]}, {a[1]}, out={m})")
            self.line(f"np.logical_not({m}, out={nm})")
        elif op == "where":
            m = self.const(ir.params["mask"])
            nm = self._notmask.setdefault(
                ir.idx, self.const(np.logical_not(ir.params["mask"]))
            )
            self.line(f"np.copyto({o}, {a[0]}, where={m})")
            self.line(f"np.copyto({o}, {a[1]}, where={nm})")
        elif op == "clip":
            m = self.const(ir.params["mask"])
            lo = self.literal(ir.params["lo"])
            hi = self.literal(ir.params["hi"])
            self.line(f"np.clip({a[0]}, {lo}, {hi}, out={o})")
            self.line(f"np.greater_equal({a[0]}, {lo}, out={m})")
            self.line(f"np.logical_and({m}, {a[0]} <= {hi}, out={m})")
        elif op in ("sum", "mean"):
            axis = ir.params["axis"]
            kd = ir.params["keepdims"]
            self.line(f"{a[0]}.{op}(axis={axis!r}, keepdims={kd!r}, out={o})")
        elif op == "matmul":
            self.line(f"np.matmul({a[0]}, {a[1]}, out={o})")
        else:  # pragma: no cover - classification guarantees coverage
            raise LoweringError(f"no forward emitter for op {op!r}")

    # -- backward ------------------------------------------------------
    def _plan_expr(self, e: str, plan, S: Tuple[int, ...]) -> str:
        lead, keep = plan
        if lead:
            e = f"{e}.sum(axis={lead})"
        if keep:
            e = f"{e}.sum(axis={keep}, keepdims=True)"
        return f"{e}.reshape({S})"

    def _accumulate(self, st: BwdStep, t: str, e: str) -> None:
        if st.first:
            self.line(f"np.copyto({t}, {e})")
        else:
            self.line(f"{t} += {e}")

    def push_identity(self, st: BwdStep, src: str, O, S, negate: bool = False) -> None:
        plan = unbroadcast_plan(O, S)
        t = self.cot_target(st)
        if plan is None:
            if negate:
                self.line(f"np.negative({src}, out={t})" if st.first else f"{t} -= {src}")
            elif st.first:
                self.line(f"np.copyto({t}, {src})")
            else:
                self.line(f"{t} += {src}")
        else:
            e = f"(-{src})" if negate else src
            self._accumulate(st, t, self._plan_expr(e, plan, S))

    def push_ufunc(self, st: BwdStep, uf: str, args: Sequence[str], O, S, dtype) -> None:
        plan = unbroadcast_plan(O, S)
        t = self.cot_target(st)
        call = ", ".join(args)
        if plan is None and st.first:
            self.line(f"np.{uf}({call}, out={t})")
            return
        s = self.scratch(O, dtype)
        self.line(f"np.{uf}({call}, out={s})")
        if plan is None:
            self.line(f"{t} += {s}")
        else:
            self._accumulate(st, t, self._plan_expr(s, plan, S))

    def push_chain(self, st: BwdStep, steps, O, S, dtype) -> None:
        plan = unbroadcast_plan(O, S)
        t = self.cot_target(st)
        direct = plan is None and st.first

        def emit_step(uf, ops, out, s):
            ops2 = ", ".join(s if o == "__" else o for o in ops)
            self.line(f"np.{uf}({ops2}, out={out})")

        if direct and len(steps) == 1:
            uf, ops = steps[0]
            emit_step(uf, ops, t, "")
            return
        s = self.scratch(O, dtype)
        last = len(steps) - 1
        for i, (uf, ops) in enumerate(steps):
            out = t if (direct and i == last) else s
            emit_step(uf, ops, out, s)
        if direct:
            return
        if plan is None:
            self.line(f"{t} += {s}")
        else:
            self._accumulate(st, t, self._plan_expr(s, plan, S))

    def push_expr(self, st: BwdStep, expr: str, O, S) -> None:
        plan = unbroadcast_plan(O, S)
        e = expr if plan is None else self._plan_expr(f"({expr})", plan, S)
        if st.first and self._sole_transient(st.dst):
            # The expression allocates its result (eager does too); a sole
            # writer can bind it directly instead of copying into a slot.
            t = f"a{st.dst}"
            self.cotname[st.dst] = t
            self.line(f"{t} = {e}")
            return
        t = self.cot_target(st)
        self._accumulate(st, t, e)

    def emit_push(self, st: BwdStep) -> None:
        s = self.nodes[st.src]
        d = self.nodes[st.dst]
        g = self.cotname[st.src]
        O, S = s.shape, d.shape
        dt = s.dtype

        if st.step in self._alias_steps:
            # Copy propagation: the destination cotangent IS the source
            # cotangent (through a zero-copy view for reshape/transpose).
            if s.op == "reshape":
                self.cotname[st.dst] = f"{g}.reshape({S})"
            elif s.op == "transpose":
                self.cotname[st.dst] = f"np.transpose({g}, {s.params['inv']!r})"
            else:
                self.cotname[st.dst] = g
            return

        if not s.symbolic_bwd:  # recorded VJP closure
            name = f"V{st.src}_{st.slot}"
            self.params[name] = s.node._parents[st.slot][1]
            if self._sole_transient(st.dst):
                # The closure allocates its result anyway; with a single
                # writer and only downstream reads, bind it directly
                # instead of copying into an arena slot.
                t = f"a{st.dst}"
                self.cotname[st.dst] = t
                self.line(f"{t} = {name}({g})")
                return
            t = self.cot_target(st)
            if st.first:
                self.line(f"np.copyto({t}, {name}({g}))")
            else:
                self.line(f"{t} += {name}({g})")
            return

        op = s.op
        p = s.arg_pos[st.slot] if s.arg_pos else 0

        if op == "add":
            self.push_identity(st, g, O, S)
        elif op == "sub":
            self.push_identity(st, g, O, S, negate=(p == 1))
        elif op == "neg":
            self.push_identity(st, g, O, S, negate=True)
        elif op == "mul":
            other = self.ref(s, 1 - p, bwd=True)
            self.push_ufunc(st, "multiply", [g, other], O, S, dt)
        elif op == "div":
            x, y = self.ref(s, 0, bwd=True), self.ref(s, 1, bwd=True)
            if p == 0:
                self.push_ufunc(st, "divide", [g, y], O, S, dt)
            else:
                self.push_chain(
                    st,
                    [
                        ("negative", [g]),
                        ("multiply", ["__", x]),
                        ("divide", ["__", f"({y} * {y})"]),
                    ],
                    O, S, dt,
                )
        elif op == "power":
            x, y = self.ref(s, 0, bwd=True), self.ref(s, 1, bwd=True)
            self.push_expr(st, f"{g} * {y} * {x} ** ({y} - 1.0)", O, S)
        elif op == "square":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(
                st, [("multiply", ["2.0", g]), ("multiply", ["__", x])], O, S, dt
            )
        elif op == "sqrt":
            o = self.bval(st.src)
            self.push_expr(st, f"{g} * 0.5 / np.where({o} > 0, {o}, np.inf)", O, S)
        elif op == "abs":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(st, [("sign", [x]), ("multiply", [g, "__"])], O, S, dt)
        elif op == "exp":
            self.push_ufunc(st, "multiply", [g, self.bval(st.src)], O, S, dt)
        elif op == "log":
            self.push_ufunc(st, "divide", [g, self.ref(s, 0, bwd=True)], O, S, dt)
        elif op == "sin":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(st, [("cos", [x]), ("multiply", [g, "__"])], O, S, dt)
        elif op == "cos":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(
                st,
                [("sin", [x]), ("multiply", [g, "__"]), ("negative", ["__"])],
                O, S, dt,
            )
        elif op == "tanh":
            cse = self.lw.cse_tanh.get(st.src)
            if cse is not None:
                # The forward taped ``1 - tanh^2`` (derivative
                # propagation); reuse it — one multiply instead of the
                # three-kernel recomputation, bitwise-identical.
                self.push_ufunc(st, "multiply", [g, self.bval(cse)], O, S, dt)
            else:
                o = self.bval(st.src)
                self.push_chain(
                    st,
                    [
                        ("multiply", [o, o]),
                        ("subtract", ["1.0", "__"]),
                        ("multiply", [g, "__"]),
                    ],
                    O, S, dt,
                )
        elif op == "sinh":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(st, [("cosh", [x]), ("multiply", [g, "__"])], O, S, dt)
        elif op == "cosh":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(st, [("sinh", [x]), ("multiply", [g, "__"])], O, S, dt)
        elif op == "arctan":
            x = self.ref(s, 0, bwd=True)
            self.push_chain(
                st,
                [("multiply", [x, x]), ("add", ["1.0", "__"]), ("divide", [g, "__"])],
                O, S, dt,
            )
        elif op == "sigmoid":
            o = self.bval(st.src)
            self.push_expr(st, f"{g} * {o} * (1.0 - {o})", O, S)
        elif op in ("maximum", "minimum"):
            m = self.const(s.params["mask"])
            mask = m if p == 0 else self._notmask[st.src]
            self.push_ufunc(st, "multiply", [g, mask], O, S, dt)
        elif op == "where":
            m = self.const(s.params["mask"])
            e = f"np.where({m}, {g}, 0.0)" if p == 0 else f"np.where({m}, 0.0, {g})"
            self.push_expr(st, e, O, S)
        elif op == "clip":
            m = self.const(s.params["mask"])
            self.push_ufunc(st, "multiply", [g, m], O, S, dt)
        elif op in ("sum", "mean"):
            self._push_reduction(st, s, g, S)
        elif op == "matmul":
            self._push_matmul(st, s, g, p, S, dt)
        elif op == "reshape":
            self.push_identity(st, f"{g}.reshape({S})", S, S)
        elif op == "transpose":
            inv = s.params["inv"]
            self.push_identity(st, f"np.transpose({g}, {inv!r})", S, S)
        elif op == "getitem":
            self._push_scatter(st, s, g, S, d.dtype)
        else:  # pragma: no cover
            raise LoweringError(f"no backward emitter for op {op!r}")

    def _push_reduction(self, st: BwdStep, s: IRNode, g: str, S) -> None:
        axis = s.params["axis"]
        kd = s.params["keepdims"]
        if axis is None or kd:
            e = g
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            norm = sorted(a % len(S) for a in axes)
            exp = tuple(1 if i in norm else S[i] for i in range(len(S)))
            e = f"{g}.reshape({exp})"
        if s.op == "mean":
            e = f"({e} / {s.params['denom']!r})"
        t = self.cot_target(st)
        self._accumulate(st, t, e)  # copyto/+= broadcast against the target

    def _push_matmul(self, st: BwdStep, s: IRNode, g: str, p: int, S, dt) -> None:
        A = self.ref(s, 0, bwd=True)
        B = self.ref(s, 1, bwd=True)
        # operand ranks come from the recorded arrays, not tape nodes
        meta_a, meta_b = s.node._meta[0]
        na, nb = meta_a.ndim, meta_b.ndim
        if (na, nb) == (2, 2):
            args = [g, f"{B}.T"] if p == 0 else [f"{A}.T", g]
            self.push_ufunc(st, "matmul", args, S, S, dt)
        elif (na, nb) == (2, 1):
            if p == 0:  # np.outer(g, B)
                self.push_ufunc(st, "multiply", [f"{g}[:, None]", B], S, S, dt)
            else:
                self.push_ufunc(st, "matmul", [f"{A}.T", g], S, S, dt)
        elif (na, nb) == (1, 2):
            if p == 0:
                self.push_ufunc(st, "matmul", [B, g], S, S, dt)
            else:  # np.outer(A, g)
                self.push_ufunc(st, "multiply", [f"{A}[:, None]", g], S, S, dt)
        elif na >= 2 and nb >= 2:
            # Stacked operands: eager's general formulas
            #   dA = unbroadcast(g @ swapaxes(B, -1, -2), A.shape)
            #   dB = unbroadcast(swapaxes(A, -1, -2) @ g, B.shape)
            # — the matmul result shape is the cotangent's batch dims plus
            # the operand's matrix dims, and the unbroadcast plan reduces
            # any stacked axes the operand broadcast over.
            batch = s.shape[:-2]

            def swapT(name: str, nd: int) -> str:
                return f"{name}.T" if nd == 2 else f"np.swapaxes({name}, -1, -2)"

            if p == 0:
                O2 = batch + (meta_a.shape[-2], meta_a.shape[-1])
                self.push_ufunc(st, "matmul", [g, swapT(B, nb)], O2, S, dt)
            else:
                O2 = batch + (meta_b.shape[-2], meta_b.shape[-1])
                self.push_ufunc(st, "matmul", [swapT(A, na), g], O2, S, dt)
        else:  # pragma: no cover - classification keeps other combos opaque
            raise LoweringError(f"matmul combo ({na}, {nb}) is not symbolic")

    def _push_scatter(self, st: BwdStep, s: IRNode, g: str, S, dtype) -> None:
        idx = self.const(s.params["index"])
        unique = s.params["unique"]
        t = self.cot_target(st)
        if st.first:
            self.line(f"{t}[...] = 0.0")
            if unique:
                self.line(f"{t}[{idx}] = {g}")
            else:
                self.line(f"np.add.at({t}, {idx}, {g})")
        elif unique:
            self.line(f"{t}[{idx}] += {g}")
        else:
            sc = self.scratch(S, dtype)
            self.line(f"{sc}[...] = 0.0")
            self.line(f"np.add.at({sc}, {idx}, {g})")
            self.line(f"{t} += {sc}")

    # -- rendering -----------------------------------------------------
    def render(self, profiled: bool) -> str:
        sig = ", ".join(f"{n}={n}" for n in self.params)
        out: List[str] = []
        if profiled:
            out.append(f"def _kernel_profiled(_acc, {sig}):")
            out.append("    _t = _perf()")
            cur = self.body[0][0] if self.body else -1
            for seg_id, code in self.body:
                if seg_id != cur:
                    out.append(
                        f"    _n = _perf(); _acc[{cur}] += _n - _t; _t = _n"
                    )
                    cur = seg_id
                out.append(f"    {code}")
            if self.body:
                out.append(f"    _acc[{cur}] += _perf() - _t")
        else:
            out.append(f"def _kernel({sig}):")
            for _, code in self.body:
                out.append(f"    {code}")
        out.append("")
        return "\n".join(out)


class CodegenProgram:
    """A compiled-source execution tier over a recorded program's buffers.

    Drop-in replacement for :class:`~repro.autodiff.compile.CompiledProgram`
    in the program cache: same ``replay(inputs, profile)`` contract, same
    gradient collection (it shares the underlying program's leaf buffers
    and cotangent buffers for pinned nodes).
    """

    is_codegen = True
    replayable = True
    unreplayable_op = None

    def __init__(self, program, lowered: LoweredProgram) -> None:
        em = _Emitter(lowered)
        em.emit()
        em.planner.verify()  # cheap invariant check at build time

        stats = lowered.stats
        stats.arena_bytes = em.planner.total_bytes
        stats.arena_slots = len(em.planner.slots)

        self.source = em.render(profiled=False)
        self._profiled_source = em.render(profiled=True)
        ns = dict(em.params)
        exec(compile(self.source, "<repro-codegen>", "exec"), ns)
        self._fn = ns["_kernel"]
        ns_p = dict(em.params)
        exec(compile(self._profiled_source, "<repro-codegen-profiled>", "exec"), ns_p)
        self._pfn = ns_p["_kernel_profiled"]

        self._segments = em.segments
        self._program = program
        self.stats = stats
        self.n_ops = program.n_ops
        self._transient_cots = [
            ir.idx for ir in lowered.nodes if ir.cot_transient
        ]
        freed = sum(
            program._gradbufs[i].nbytes for i in self._transient_cots
        )
        self.buffer_bytes = program.buffer_bytes - freed + stats.arena_bytes

    def commit(self) -> None:
        """Release buffers the arena replaced (call after validation).

        The replay tier's per-node cotangent buffers for interior nodes
        are dead once this program owns the cache slot — backward writes
        land in arena slots instead.  Leaf and root cotangents stay (the
        gradient collection reads them).
        """
        bufs = self._program._gradbufs
        for i in self._transient_cots:
            bufs[i] = None

    def replay(
        self, inputs: Sequence[np.ndarray], profile=None
    ) -> Tuple[float, List[np.ndarray]]:
        prog = self._program
        for buf, arr in zip(prog._leaf_bufs, inputs):
            if buf.shape != arr.shape:
                from repro.autodiff.compile import CompileError

                raise CompileError(
                    f"input shape {arr.shape} does not match traced shape "
                    f"{buf.shape}; re-trace required"
                )
            np.copyto(buf, arr)
        if profile is None:
            self._fn()
            return float(prog._root_data), prog._collect_grads()
        return self._replay_profiled(profile)

    def _replay_profiled(self, profile) -> Tuple[float, List[np.ndarray]]:
        perf = time.perf_counter
        t0 = perf()
        acc = [0.0] * len(self._segments)
        self._pfn(acc)
        for seg, dt in zip(self._segments, acc):
            k = profile.kernel(seg.name)
            if seg.phase == "fwd":
                k.calls += 1
                k.fwd_seconds += dt
                k.flops += seg.flops
                k.bytes_moved += seg.bytes_moved
            else:
                k.bwd_seconds += dt
        grads = self._program._collect_grads()
        profile.n_replays += 1
        profile.n_codegen_replays += 1
        profile.replay_seconds += perf() - t0
        return float(self._program._root_data), grads


def codegen_program(program) -> CodegenProgram:
    """Lower ``program`` and compile it to a straight-line source kernel.

    Raises :class:`~repro.autodiff.lowering.LoweringError` (or any build
    error) on programs the backend cannot express — callers catch and
    fall back to the replay tier.  Fusion/arena statistics are surfaced
    through the ``repro.obs`` metrics registry on every successful build.
    """
    lowered = lower(program)
    cg = CodegenProgram(program, lowered)

    from repro.obs.metrics import get_registry

    reg = get_registry()
    st = cg.stats
    reg.counter("codegen.programs").inc()
    reg.counter("codegen.fused_ops").inc(st.n_fused)
    reg.counter("codegen.fusion_groups").inc(st.n_fused_groups)
    reg.counter("codegen.buffers_dropped").inc(
        st.values_dropped + st.cotangents_dropped
    )
    reg.gauge("codegen.arena_bytes").set(st.arena_bytes)
    reg.gauge("codegen.fused_fraction").set(st.fused_fraction)
    return cg

"""Trace-once compiled replay for the reverse-mode tape.

The eager engine rebuilds the whole computation graph — Tensor objects,
VJP closures, fresh ndarray buffers — on *every* call, even though the DP
and PINN hot loops evaluate the same graph topology hundreds of times
with only the input values changing.  JAX (the paper's substrate)
amortises this with trace-once ``jit`` compilation; this module brings the
same execution model to the NumPy tape:

1. **Trace** — the first call runs eagerly, producing an ordinary tape.
   The graph is linearised into a topologically sorted op list whose VJP
   wiring (parent slots + closures) is recorded once.
2. **Replay** — subsequent calls with same-shaped inputs never touch
   ``Tensor`` or closure construction.  New input values are copied into
   the recorded leaf buffers, each op's forward-replay closure recomputes
   its value *in place* into the node's persistent buffer, and the
   backward pass accumulates cotangents into a matching set of persistent
   gradient buffers.  Every node therefore owns a **double buffer**: a
   value half written by the forward sweep and read by the backward sweep,
   and a cotangent half written by the backward sweep — no allocation for
   either across iterations (VJP closures may still create small
   temporaries; the profiler reports both sides).
3. **Safety** — programs are keyed on the shapes/dtypes of the
   differentiated inputs (and a content digest of any baked-in constant
   arguments), so a shape or dtype change triggers a fresh trace rather
   than stale-buffer reuse.  Each new program is validated against the
   eager result before it is cached; ops without a replay closure, or a
   validation mismatch, fall back to the eager path permanently for that
   key.

The replayed backward visits nodes in exactly the order the eager
``Tensor.backward`` would, and the forward closures invoke the same NumPy
kernels, so compiled results match the eager tape bit-for-bit on the
problems in this repository (the test suite asserts ``rtol=1e-12``).

Functions whose *structure* depends on input values (data-dependent
branching on tensor values) must not be compiled — like ``jax.jit``, the
trace freezes one execution path.  The control-loop cost functions here
are all structurally static.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.functional import Argnums, _normalize_argnums, _wrap_args
from repro.obs.metrics import get_registry
from repro.autodiff.tensor import (
    Tensor,
    VIEW_FWD,
    _topological_order,
    asdata,
    tensor,
)

__all__ = [
    "CompileError",
    "CompiledProgram",
    "ReplayProfile",
    "compiled_value_and_grad",
    "compiled_value_and_grad_tree",
    "resolve_compile_mode",
]


class CompileError(RuntimeError):
    """Raised when a recorded program cannot be replayed safely."""


def resolve_compile_mode(flag: Any) -> Optional[str]:
    """Map a user-facing ``compile`` flag to an execution mode.

    ``False``/``None``/``"0"``/``"eager"`` → ``None`` (eager tape);
    ``True``/``"1"``/``"replay"`` → ``"replay"`` (the compiled closure
    replay tier); ``"codegen"`` → ``"codegen"`` (fused-source backend,
    which itself falls back to replay for programs it cannot lower).
    Oracle constructors and :func:`repro.bench.configs.compile_mode`
    both funnel through this so ``compile="codegen"`` and
    ``REPRO_COMPILE=codegen`` mean the same thing everywhere.
    """
    if flag is None or flag is False:
        return None
    if flag is True:
        return "replay"
    s = str(flag).strip().lower()
    if s in ("", "0", "false", "no", "off", "none", "eager"):
        return None
    if s in ("1", "true", "yes", "on", "replay"):
        return "replay"
    if s == "codegen":
        return "codegen"
    raise ValueError(f"unknown compile mode {flag!r} (use False, True, or 'codegen')")


def _bump(counters: Dict[str, int], event: str) -> None:
    """Advance a wrapper-local counter and its registry twin together.

    The per-wrapper dict stays authoritative for ``cache_info()`` (tests
    pin it); the ``compile.<event>`` registry counters aggregate across
    every compiled function in the process for metrics exports.
    """
    counters[event] += 1
    get_registry().counter(f"compile.{event}").inc()


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
class OpStats:
    """Per-primitive replay statistics (one row of the profile report).

    ``flops`` and ``bytes_moved`` are *estimates* derived from the traced
    shapes (see :func:`_estimate_cost`): good enough to rank ops and to
    check arithmetic-intensity claims, not a hardware counter.
    """

    __slots__ = (
        "calls",
        "fwd_seconds",
        "bwd_seconds",
        "bytes_reused",
        "bytes_allocated",
        "flops",
        "bytes_moved",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.fwd_seconds = 0.0
        self.bwd_seconds = 0.0
        self.bytes_reused = 0
        self.bytes_allocated = 0
        self.flops = 0.0
        self.bytes_moved = 0.0


def _estimate_cost(op: str, out: np.ndarray, parents: Sequence[Any]) -> Tuple[float, float]:
    """Estimated (FLOPs, bytes moved) for one forward execution of ``op``.

    Shape-derived at trace time, so the replay hot loop only adds two
    float adds per profiled step.  Conventions: a dense matmul costs
    ``2·m·k·n``; a triangular-solve pair against an ``n×n`` factorisation
    costs ``2·n²``; everything else is counted as one FLOP per output
    element.  Bytes moved = output bytes + every parent operand's bytes
    (one read of each input, one write of the output).
    """
    shapes = [np.shape(getattr(p, "data", p)) for p in parents]
    bytes_moved = float(out.nbytes) + 8.0 * sum(
        float(np.prod(s)) if s else 1.0 for s in shapes
    )
    if op == "matmul" and len(shapes) >= 2:
        a, b = shapes[0], shapes[1]
        m = float(a[0]) if len(a) > 1 else 1.0
        k = float(a[-1]) if a else 1.0
        n = float(b[-1]) if len(b) > 1 else 1.0
        flops = 2.0 * m * k * n
    elif "solve" in op:
        n = float(out.shape[0]) if out.ndim else 1.0
        flops = 2.0 * n * n
    else:
        flops = float(out.size)
    return flops, bytes_moved


class ReplayProfile:
    """Aggregated op-level statistics across every trace and replay.

    ``bytes_reused`` counts writes that landed in persistent buffers
    (forward values, cotangent accumulators); ``bytes_allocated`` counts
    fresh ndarrays the replay still creates (VJP temporaries, gradient
    copies handed to the caller).  The ratio is the allocation saving the
    compiled engine delivers over the eager tape, which allocates *every*
    forward and backward array anew.
    """

    def __init__(self) -> None:
        self.ops: Dict[str, OpStats] = {}
        self.n_traces = 0
        self.n_replays = 0
        self.n_eager_calls = 0
        self.persistent_bytes = 0
        self.trace_seconds = 0.0
        self.replay_seconds = 0.0
        # Codegen tier: per-fused-kernel rows plus fusion/arena summary,
        # populated only when programs run under ``mode="codegen"``.
        self.kernels: Dict[str, OpStats] = {}
        self.n_codegen_replays = 0
        self.fusion_groups = 0
        self.fused_ops = 0
        self.arena_bytes = 0
        self.arena_slots = 0
        self.buffers_dropped = 0

    def op(self, name: str) -> OpStats:
        """The (auto-created) stats row for primitive ``name``."""
        s = self.ops.get(name)
        if s is None:
            s = self.ops[name] = OpStats()
        return s

    def kernel(self, name: str) -> OpStats:
        """The (auto-created) stats row for one generated fused kernel."""
        s = self.kernels.get(name)
        if s is None:
            s = self.kernels[name] = OpStats()
        return s

    @property
    def bytes_reused(self) -> int:
        """Total bytes written into persistent buffers."""
        return sum(s.bytes_reused for s in self.ops.values())

    @property
    def bytes_allocated(self) -> int:
        """Total bytes freshly allocated during replays."""
        return sum(s.bytes_allocated for s in self.ops.values())

    def report(self) -> str:
        """Human-readable per-op table plus reuse summary."""
        header = (
            f"{'op':<22}{'calls':>9}{'fwd ms':>10}{'bwd ms':>10}"
            f"{'MB reused':>12}{'MB alloc':>11}{'MFLOP':>10}{'MB moved':>11}"
        )

        def row(name: str, s: OpStats, width: int = 22) -> str:
            return (
                f"{name:<{width}}{s.calls:>9d}{s.fwd_seconds * 1e3:>10.3f}"
                f"{s.bwd_seconds * 1e3:>10.3f}"
                f"{s.bytes_reused / 1e6:>12.3f}{s.bytes_allocated / 1e6:>11.3f}"
                f"{s.flops / 1e6:>10.3f}{s.bytes_moved / 1e6:>11.3f}"
            )

        # Rows widen past the header when an op name overflows its column;
        # size the rule to the widest emitted line, not a literal.
        body = [
            row(name, s)
            for name, s in sorted(
                self.ops.items(),
                key=lambda kv: kv[1].fwd_seconds + kv[1].bwd_seconds,
                reverse=True,
            )
        ]
        rule = "-" * max(len(header), *(len(r) for r in body)) if body else "-" * len(header)
        lines = [header, rule, *body]
        if self.kernels:
            kwidth = max(22, max(len(n) for n in self.kernels) + 1)
            klines = [
                row(name, s, kwidth)
                for name, s in sorted(
                    self.kernels.items(),
                    key=lambda kv: kv[1].fwd_seconds + kv[1].bwd_seconds,
                    reverse=True,
                )
            ]
            rule = "-" * max(len(rule), *(len(r) for r in klines))
            lines += [
                rule,
                f"generated kernels ({self.n_codegen_replays} codegen replays):",
                *klines,
                f"fusion groups: {self.fusion_groups}   fused ops: {self.fused_ops}   "
                f"arena: {self.arena_bytes / 1e6:.3f} MB in {self.arena_slots} slots   "
                f"buffers dropped: {self.buffers_dropped}",
            ]
        reused, alloc = self.bytes_reused, self.bytes_allocated
        denom = reused + alloc
        ratio = reused / denom if denom else 0.0
        lines += [
            rule,
            f"traces: {self.n_traces}   replays: {self.n_replays} "
            f"({self.n_codegen_replays} codegen)   "
            f"eager fallbacks: {self.n_eager_calls}",
            f"persistent buffer pool: {self.persistent_bytes / 1e6:.3f} MB "
            f"(value + cotangent double buffers)",
            f"bytes reused: {reused / 1e6:.3f} MB   "
            f"bytes allocated: {alloc / 1e6:.3f} MB   "
            f"reuse fraction: {ratio:.3f}",
            f"trace time: {self.trace_seconds * 1e3:.2f} ms   "
            f"replay time: {self.replay_seconds * 1e3:.2f} ms",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The recorded program
# ----------------------------------------------------------------------
class CompiledProgram:
    """A linearised tape: topologically sorted ops with static VJP wiring.

    Holds the trace's node buffers (forward values) plus one preallocated
    cotangent buffer per node.  ``replay`` re-executes forward + backward
    over these buffers without constructing any graph objects.
    """

    def __init__(self, root: Tensor, leaves: Sequence[Tensor]) -> None:
        order = _topological_order(root)  # root first, leaves last
        pos = {id(n): i for i, n in enumerate(order)}
        self._order = order
        self._ops: List[str] = [n._op for n in order]
        self._root_data = root.data

        self.replayable = True
        self.unreplayable_op: Optional[str] = None
        fwd_steps: List[Tuple[np.ndarray, Callable, str]] = []
        fwd_costs: List[Tuple[float, float]] = []
        for node in reversed(order):  # leaves first = forward schedule
            if not node._parents:
                continue  # leaves/constants: values arrive via input copy
            f = node._fwd
            if f is None:
                self.replayable = False
                self.unreplayable_op = node._op
                break
            if f is VIEW_FWD:
                continue  # aliases a parent buffer; updates for free
            fwd_steps.append((node.data, f, node._op))
            fwd_costs.append(
                _estimate_cost(node._op, node.data, [p for p, _ in node._parents])
            )
        self._fwd_steps = fwd_steps
        # Parallel to ``_fwd_steps`` so the unprofiled replay loop stays a
        # bare 3-tuple unpack; only ``_replay_profiled`` reads these.
        self._fwd_costs = fwd_costs

        # Cotangent half of each node's double buffer.
        self._gradbufs: List[np.ndarray] = [np.empty_like(n.data) for n in order]

        # Backward schedule, flattened at build time.  Every node in
        # ``order`` is reachable from the root through parent edges, so
        # every node receives at least one cotangent contribution — which
        # write is the *first* (buffer initialisation via copy) versus an
        # accumulation (+=) is therefore static, and the runtime loop
        # needs no touched-flag bookkeeping at all.  Steps run in exactly
        # the order the eager backward would visit them, so accumulation
        # order — and hence floating-point bits — match eager.
        bwd_steps: List[Tuple[np.ndarray, Callable, np.ndarray, bool, str]] = []
        initialised = {0}  # root buffer is seeded directly
        for i, node in enumerate(order):
            g = self._gradbufs[i]
            for p, vjp in node._parents:
                pi = pos[id(p)]
                first = pi not in initialised
                initialised.add(pi)
                bwd_steps.append((g, vjp, self._gradbufs[pi], first, node._op))
        self._bwd_steps = bwd_steps
        self._root_grad = self._gradbufs[0]

        self._leaf_pos = [pos.get(id(l), -1) for l in leaves]
        self._leaf_bufs = [l.data for l in leaves]
        self._leaf_shapes = [l.data.shape for l in leaves]
        self.n_ops = sum(1 for n in order if n._parents)
        self.buffer_bytes = sum(n.data.nbytes for n in order) + sum(
            b.nbytes for b in self._gradbufs
        )

    # ------------------------------------------------------------------
    def replay(
        self, inputs: Sequence[np.ndarray], profile: Optional[ReplayProfile] = None
    ) -> Tuple[float, List[np.ndarray]]:
        """Run forward + backward over the recorded buffers.

        Parameters
        ----------
        inputs:
            New values for the differentiated leaves, in trace order;
            shapes must match the trace (enforced).
        profile:
            Optional stats sink; adds per-op timing overhead.

        Returns
        -------
        (value, grads)
            Scalar output value and one gradient array per input leaf
            (fresh copies — safe to hand to optimisers).
        """
        if not self.replayable:
            raise CompileError(
                f"program is not replayable (op {self.unreplayable_op!r} "
                "records no forward-replay closure)"
            )
        for buf, arr in zip(self._leaf_bufs, inputs):
            if buf.shape != arr.shape:
                raise CompileError(
                    f"input shape {arr.shape} does not match traced shape "
                    f"{buf.shape}; re-trace required"
                )
            np.copyto(buf, arr)

        if profile is not None:
            return self._replay_profiled(profile)

        for buf, f, _ in self._fwd_steps:
            f(buf)

        self._root_grad[...] = 1.0
        for g, vjp, b, first, _ in self._bwd_steps:
            if first:
                np.copyto(b, vjp(g))
            else:
                b += vjp(g)
        return float(self._root_data), self._collect_grads()

    def _collect_grads(self) -> List[np.ndarray]:
        grads = []
        for p, shape in zip(self._leaf_pos, self._leaf_shapes):
            if p >= 0:
                grads.append(self._gradbufs[p].copy())
            else:
                grads.append(np.zeros(shape))
        return grads

    def _replay_profiled(self, profile: ReplayProfile) -> Tuple[float, List[np.ndarray]]:
        from repro.obs.metrics import FLOP_BUCKETS, BYTE_BUCKETS, get_registry

        reg = get_registry()
        h_flops = reg.histogram("compile.op.flops", FLOP_BUCKETS)
        h_bytes = reg.histogram("compile.op.bytes_moved", BYTE_BUCKETS)
        perf = time.perf_counter
        t_start = perf()
        for (buf, f, name), (flops, moved) in zip(self._fwd_steps, self._fwd_costs):
            t0 = perf()
            f(buf)
            s = profile.op(name)
            s.fwd_seconds += perf() - t0
            s.calls += 1
            s.bytes_reused += buf.nbytes
            s.flops += flops
            s.bytes_moved += moved
            h_flops.observe(flops)
            h_bytes.observe(moved)

        self._root_grad[...] = 1.0
        for g, vjp, b, first, op in self._bwd_steps:
            t0 = perf()
            contrib = vjp(g)
            if first:
                np.copyto(b, contrib)
            else:
                b += contrib
            s = profile.op(op)
            s.bwd_seconds += perf() - t0
            s.bytes_reused += b.nbytes
            # Views (broadcast VJPs, slices of g) are not allocations.
            if isinstance(contrib, np.ndarray) and contrib.flags.owndata:
                s.bytes_allocated += contrib.nbytes

        grads = self._collect_grads()
        for arr in grads:
            profile.op("<output-grads>").bytes_allocated += arr.nbytes
        profile.n_replays += 1
        profile.replay_seconds += perf() - t_start
        return float(self._root_data), grads


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def _const_key(x: Any) -> Any:
    """A hashable key component for a *baked* (non-differentiated) arg.

    Arrays are digested by content: a compiled program freezes constant
    operands at trace time, so changing them must trigger a re-trace.
    """
    if isinstance(x, Tensor):
        x = x.data
    if isinstance(x, np.ndarray):
        return ("arr", x.shape, str(x.dtype), hashlib.sha1(np.ascontiguousarray(x).tobytes()).hexdigest())
    if isinstance(x, (int, float, bool, str, bytes, type(None))):
        return ("lit", x)
    return ("obj", type(x).__qualname__, repr(x))


def _diff_key(x: Any) -> Tuple:
    arr = asdata(x)
    return (arr.shape, arr.dtype)  # dtype objects hash fast; str() does not


# ----------------------------------------------------------------------
# Function transforms
# ----------------------------------------------------------------------
def _validate(
    program: CompiledProgram,
    inputs: Sequence[np.ndarray],
    value: float,
    grads: Sequence[np.ndarray],
) -> bool:
    """Cross-check one replay against the eager trace results."""
    try:
        v2, g2 = program.replay(list(inputs))
    except Exception:
        return False
    if not np.allclose(v2, value, rtol=1e-12, atol=1e-300, equal_nan=True):
        return False
    for a, b in zip(grads, g2):
        if not np.allclose(a, b, rtol=1e-12, atol=1e-300, equal_nan=True):
            return False
    return True


def _is_program(entry: Any) -> bool:
    """True for a cached executable program (replay or codegen tier)."""
    return entry is not None and entry is not _MISSING


def _build_entry(
    out_t: Tensor,
    leaves: Sequence[Tensor],
    inputs: Sequence[np.ndarray],
    value: float,
    grads: Sequence[np.ndarray],
    mode: str,
    prof: Optional[ReplayProfile],
    counters: Dict[str, int],
) -> Optional[Any]:
    """Build the cache entry for a fresh trace: replay program, then
    (under ``mode="codegen"``) the fused-source kernel on top of it.

    Each tier is validated against the eager results before promotion;
    a codegen build or validation failure falls back to the replay tier
    for this signature (counted in ``codegen_fallbacks``), and a replay
    validation failure falls back to permanent eager (``None`` entry).
    """
    prog = CompiledProgram(out_t, leaves)
    if not prog.replayable:
        return None
    if not _validate(prog, inputs, value, grads):
        warnings.warn(
            "compiled replay failed validation; falling back to "
            "the eager tape for this signature",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    entry: Any = prog
    if mode == "codegen":
        try:
            from repro.autodiff.codegen import codegen_program

            cg = codegen_program(prog)
            if not _validate(cg, inputs, value, grads):
                raise CompileError("generated kernel failed validation against eager")
            cg.commit()
            entry = cg
        except Exception as exc:
            _bump(counters, "codegen_fallbacks")
            warnings.warn(
                f"codegen lowering failed ({exc}); falling back to the "
                "replay tier for this signature",
                RuntimeWarning,
                stacklevel=3,
            )
    if prof is not None:
        prof.persistent_bytes += entry.buffer_bytes
        if getattr(entry, "is_codegen", False):
            st = entry.stats
            prof.fusion_groups += st.n_fused_groups
            prof.fused_ops += st.n_fused
            prof.arena_bytes += st.arena_bytes
            prof.arena_slots += st.arena_slots
            prof.buffers_dropped += st.values_dropped + st.cotangents_dropped
    return entry


def compiled_value_and_grad(
    f: Callable[..., Any],
    argnums: Argnums = 0,
    profile: bool = False,
    mode: str = "replay",
) -> Callable[..., Tuple[float, Any]]:
    """Trace-once counterpart of :func:`repro.autodiff.functional.value_and_grad`.

    Returns ``g(*args) -> (f(*args), df/dargs)`` with identical semantics;
    the first call per input-shape signature traces eagerly and records a
    replay program, later calls replay it over reused buffers.  Functions
    containing ops without replay support, or failing the post-trace
    validation, silently run eagerly (correctness first).

    The returned callable exposes ``.profile`` (a :class:`ReplayProfile`
    when ``profile=True``, else ``None``) and ``.cache_info()``.

    ``mode`` selects the execution tier for newly traced programs:
    ``"replay"`` (default) walks the recorded closures over persistent
    buffers; ``"codegen"`` additionally lowers the program to fused
    straight-line source (see :mod:`repro.autodiff.codegen`), falling
    back to replay for programs it cannot express.
    """
    mode = resolve_compile_mode(mode) or "replay"
    nums = _normalize_argnums(argnums)
    cache: Dict[Any, Optional[Any]] = {}
    prof = ReplayProfile() if profile else None
    counters = {"traces": 0, "replays": 0, "eager": 0, "codegen_fallbacks": 0}

    def _eager(args, kwargs) -> Tuple[float, Tuple[np.ndarray, ...], Tensor, list]:
        call_args, leaves = _wrap_args(args, nums)
        out = f(*call_args, **kwargs)
        out_t = tensor(out)
        if out_t.size != 1:
            raise ValueError(
                f"compiled_value_and_grad requires a scalar output, got shape {out_t.shape}"
            )
        out_t.backward()
        grads = tuple(
            leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
            for leaf in leaves
        )
        return float(out_t.data), grads, out_t, leaves

    # The DP hot loop calls ``wrapped(control)`` — one positional diff arg,
    # no kwargs.  Precompute the dispatch shape so the per-call key is two
    # attribute reads and a dict hit.
    single_diff = isinstance(argnums, int) and nums == (argnums,)

    def wrapped(*args: Any, **kwargs: Any) -> Tuple[float, Any]:
        if single_diff and len(args) == 1 and not kwargs:
            arr = asdata(args[0])
            key = ((arr.shape, arr.dtype),)
            program = cache.get(key, _MISSING)
            if _is_program(program):
                _bump(counters, "replays")
                value, grad_list = program.replay(
                    (np.asarray(arr, dtype=np.float64),), prof
                )
                return value, grad_list[0]
        else:
            key = tuple(
                _diff_key(a) if i in nums else _const_key(a)
                for i, a in enumerate(args)
            ) + tuple((k, _const_key(v)) for k, v in sorted(kwargs.items()))
            program = cache.get(key, _MISSING)
        if _is_program(program):
            inputs = [np.asarray(asdata(args[i]), dtype=np.float64) for i in nums]
            value, grad_list = program.replay(inputs, prof)
            _bump(counters, "replays")
            grads = tuple(grad_list)
            return (value, grads[0]) if isinstance(argnums, int) else (value, grads)

        t0 = time.perf_counter()
        value, grads, out_t, leaves = _eager(args, kwargs)
        if program is _MISSING:  # first sighting of this signature
            _bump(counters, "traces")
            cache[key] = _build_entry(
                out_t,
                leaves,
                [l.data.copy() for l in leaves],
                value,
                grads,
                mode,
                prof,
                counters,
            )
            if prof is not None:
                prof.n_traces += 1
                prof.trace_seconds += time.perf_counter() - t0
        else:
            _bump(counters, "eager")
            if prof is not None:
                prof.n_eager_calls += 1
        return (value, grads[0]) if isinstance(argnums, int) else (value, grads)

    wrapped.profile = prof
    wrapped.cache_info = lambda: {
        **counters,
        "programs": sum(1 for v in cache.values() if v is not None),
        "codegen_programs": sum(
            1 for v in cache.values() if getattr(v, "is_codegen", False)
        ),
        "hit_rate": counters["replays"]
        / max(counters["replays"] + counters["traces"] + counters["eager"], 1),
    }
    wrapped._cache = cache
    return wrapped


def compiled_value_and_grad_tree(
    f: Callable[..., Any], profile: bool = False, mode: str = "replay"
) -> Callable[..., Tuple[float, Any]]:
    """Trace-once counterpart of :func:`repro.nn.pytree.value_and_grad_tree`.

    ``f(params, *rest)`` takes a parameter pytree; the wrapper differentiates
    every leaf.  Used by the PINN training loops, where the loss graph
    topology is identical across all epochs.
    """
    from repro.nn.pytree import tree_flatten, tree_unflatten

    mode = resolve_compile_mode(mode) or "replay"
    cache: Dict[Any, Optional[Any]] = {}
    prof = ReplayProfile() if profile else None
    counters = {"traces": 0, "replays": 0, "eager": 0, "codegen_fallbacks": 0}

    def _eager(params, args, kwargs):
        leaves, treedef = tree_flatten(params)
        leaf_tensors = [Tensor(asdata(x), requires_grad=True) for x in leaves]
        out = f(tree_unflatten(treedef, leaf_tensors), *args, **kwargs)
        out_t = out if isinstance(out, Tensor) else Tensor(out)
        if out_t.size != 1:
            raise ValueError("compiled_value_and_grad_tree requires a scalar output")
        out_t.backward()
        grads = [
            t.grad if t.grad is not None else np.zeros_like(t.data)
            for t in leaf_tensors
        ]
        return float(out_t.data), grads, out_t, leaf_tensors, treedef

    def wrapped(params: Any, *args: Any, **kwargs: Any) -> Tuple[float, Any]:
        leaves, treedef = tree_flatten(params)
        key = (
            repr(treedef),
            tuple(_diff_key(l) for l in leaves),
            tuple(_const_key(a) for a in args),
            tuple((k, _const_key(v)) for k, v in sorted(kwargs.items())),
        )

        program = cache.get(key, _MISSING)
        if _is_program(program):
            inputs = [np.asarray(asdata(l), dtype=np.float64) for l in leaves]
            value, grad_list = program.replay(inputs, prof)
            _bump(counters, "replays")
            return value, tree_unflatten(treedef, grad_list)

        t0 = time.perf_counter()
        value, grads, out_t, leaf_tensors, treedef = _eager(params, args, kwargs)
        if program is _MISSING:
            _bump(counters, "traces")
            cache[key] = _build_entry(
                out_t,
                leaf_tensors,
                [t.data.copy() for t in leaf_tensors],
                value,
                grads,
                mode,
                prof,
                counters,
            )
            if prof is not None:
                prof.n_traces += 1
                prof.trace_seconds += time.perf_counter() - t0
        else:
            _bump(counters, "eager")
            if prof is not None:
                prof.n_eager_calls += 1
        return value, tree_unflatten(treedef, grads)

    wrapped.profile = prof
    wrapped.cache_info = lambda: {
        **counters,
        "programs": sum(1 for v in cache.values() if v is not None),
        "codegen_programs": sum(
            1 for v in cache.values() if getattr(v, "is_codegen", False)
        ),
        "hit_rate": counters["replays"]
        / max(counters["replays"] + counters["traces"] + counters["eager"], 1),
    }
    wrapped._cache = cache
    return wrapped


_MISSING = object()

"""Differentiable primitive operations.

Each primitive computes its forward value with plain NumPy (vectorised, no
Python loops over elements — see the HPC guides) and records one VJP closure
per differentiable input.  The VJPs are standard; where broadcasting is
possible the cotangent is reduced with :func:`~repro.autodiff.tensor.unbroadcast`.

Primitives accept raw arrays or :class:`~repro.autodiff.tensor.Tensor`
inputs interchangeably.

Replay contract
---------------
Every primitive also records a *forward-replay closure* ``fwd(out)`` on its
tape node: called with the node's own data buffer, it recomputes the forward
value **in place** from the parent buffers it captured by reference at trace
time.  Because the VJP closures capture those same arrays by reference, a
recorded tape can be re-executed for new input values without rebuilding a
single Tensor or closure — this is what powers the compiled replay engine in
:mod:`repro.autodiff.compile`.  Three rules keep replay sound:

1. ``fwd`` writes only into the supplied buffer (plus any value-dependent
   auxiliaries such as the ``maximum`` tie mask, which it refreshes in
   place so the captured VJP closures stay current);
2. an op whose output *aliases* a parent buffer (reshape/transpose views,
   basic-index views) records the :data:`~repro.autodiff.tensor.VIEW_FWD`
   sentinel instead — the view updates for free when the parent does;
3. VJPs never capture value-dependent temporaries that ``fwd`` does not
   refresh (e.g. ``power``'s exponent branch recomputes from parent data).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.batching import composite, primitive
from repro.autodiff.tensor import (
    ArrayLike,
    Tensor,
    VIEW_FWD,
    asdata,
    make_node,
    tensor,
    unbroadcast,
)

Axis = Union[None, int, Tuple[int, ...]]


def _broadcast_view(
    g: np.ndarray, shape: Tuple[int, ...], cache: Optional[list] = None
) -> np.ndarray:
    """Broadcast ``g`` to ``shape`` without copying.

    The result is a read-only stride-0 view: reduction VJPs return it
    directly instead of materialising a full-size copy, and every consumer
    (cotangent accumulation, ``np.copyto`` into replay buffers) only reads
    it.  Callers holding a returned gradient must not mutate it in place —
    NumPy enforces this (the view is non-writeable).

    ``cache`` is an optional two-slot list pinned by a reduction VJP
    closure.  Under compiled replay the cotangent arriving at a node is
    the *same* preallocated buffer on every call, so the stride-0 view of
    it is constructed once and then returned by identity lookup (~50 ns
    instead of ~3 µs for ``np.broadcast_to``).  The pinned reference in
    slot 0 keeps the array alive, so the ``is`` check can never collide
    with a recycled ``id``; eager backwards pass fresh cotangents and
    simply miss.
    """
    if cache is not None:
        if cache[0] is g:
            return cache[1]
        view = np.broadcast_to(g, shape)
        cache[0] = g
        cache[1] = view
        return view
    return np.broadcast_to(g, shape)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
@primitive("add")
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a + b`` with NumPy broadcasting."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = x + y
    return make_node(
        out,
        [
            (ta, lambda g, s=x.shape: unbroadcast(g, s)),
            (tb, lambda g, s=y.shape: unbroadcast(g, s)),
        ],
        "add",
        fwd=lambda o, x=x, y=y: np.add(x, y, out=o),
        meta=((x, y), None),
    )


@primitive("sub")
def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a - b``."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = x - y
    return make_node(
        out,
        [
            (ta, lambda g, s=x.shape: unbroadcast(g, s)),
            (tb, lambda g, s=y.shape: unbroadcast(-g, s)),
        ],
        "sub",
        fwd=lambda o, x=x, y=y: np.subtract(x, y, out=o),
        meta=((x, y), None),
    )


@primitive("mul")
def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a * b``."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = x * y
    return make_node(
        out,
        [
            (ta, lambda g, o=y, s=x.shape: unbroadcast(g * o, s)),
            (tb, lambda g, o=x, s=y.shape: unbroadcast(g * o, s)),
        ],
        "mul",
        fwd=lambda o, x=x, y=y: np.multiply(x, y, out=o),
        meta=((x, y), None),
    )


@primitive("div")
def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a / b``."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = x / y
    return make_node(
        out,
        [
            (ta, lambda g, d=y, s=x.shape: unbroadcast(g / d, s)),
            (
                tb,
                lambda g, n=x, d=y, s=y.shape: unbroadcast(
                    -g * n / (d * d), s
                ),
            ),
        ],
        "div",
        fwd=lambda o, x=x, y=y: np.divide(x, y, out=o),
        meta=((x, y), None),
    )


@primitive("neg")
def neg(a: ArrayLike) -> Tensor:
    """Elementwise negation."""
    ta = tensor(a)
    return make_node(
        -ta.data,
        [(ta, lambda g: -g)],
        "neg",
        fwd=lambda o, x=ta.data: np.negative(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("power")
def power(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a ** b`` differentiable in both arguments.

    The exponent VJP uses ``log(a)`` and is therefore only valid for
    positive bases when the exponent requires gradients; for the common
    constant-exponent case (e.g. the cubic polyharmonic kernel ``r**3``)
    only the base branch is recorded.
    """
    ta, tb = tensor(a), tensor(b)
    out = ta.data ** tb.data

    def vjp_base(g: np.ndarray) -> np.ndarray:
        return unbroadcast(g * tb.data * ta.data ** (tb.data - 1.0), ta.data.shape)

    parents = [(ta, vjp_base)]
    if tb.needs_tape():

        def vjp_exp(g: np.ndarray) -> np.ndarray:
            x, y = ta.data, tb.data
            with np.errstate(divide="ignore", invalid="ignore"):
                loga = np.where(x > 0, np.log(np.where(x > 0, x, 1.0)), 0.0)
            return unbroadcast(g * (x ** y) * loga, y.shape)

        parents.append((tb, vjp_exp))
    return make_node(
        out,
        parents,
        "power",
        fwd=lambda o, x=ta.data, y=tb.data: np.power(x, y, out=o),
        meta=((ta.data, tb.data), None),
    )


@primitive("square")
def square(a: ArrayLike) -> Tensor:
    """Elementwise square (faster than ``power(a, 2)``)."""
    ta = tensor(a)
    x = ta.data
    return make_node(
        x * x,
        [(ta, lambda g, x=x: 2.0 * g * x)],
        "square",
        fwd=lambda o, x=x: np.multiply(x, x, out=o),
        meta=((x,), None),
    )


@primitive("sqrt")
def sqrt(a: ArrayLike) -> Tensor:
    """Elementwise square root."""
    ta = tensor(a)
    out = np.asarray(np.sqrt(ta.data))

    def vjp(g: np.ndarray, o: np.ndarray = out) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return g * 0.5 / np.where(o > 0, o, np.inf)

    return make_node(
        out,
        [(ta, vjp)],
        "sqrt",
        fwd=lambda o, x=ta.data: np.sqrt(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("abs")
def abs_(a: ArrayLike) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the kink)."""
    ta = tensor(a)
    return make_node(
        np.abs(ta.data),
        [(ta, lambda g, x=ta.data: g * np.sign(x))],
        "abs",
        fwd=lambda o, x=ta.data: np.abs(x, out=o),
        meta=((ta.data,), None),
    )


# ----------------------------------------------------------------------
# Elementwise transcendentals
# ----------------------------------------------------------------------
@primitive("exp")
def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    ta = tensor(a)
    out = np.asarray(np.exp(ta.data))
    return make_node(
        out,
        [(ta, lambda g, o=out: g * o)],
        "exp",
        fwd=lambda o, x=ta.data: np.exp(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("log")
def log(a: ArrayLike) -> Tensor:
    """Elementwise natural logarithm."""
    ta = tensor(a)
    return make_node(
        np.log(ta.data),
        [(ta, lambda g, x=ta.data: g / x)],
        "log",
        fwd=lambda o, x=ta.data: np.log(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("sin")
def sin(a: ArrayLike) -> Tensor:
    """Elementwise sine."""
    ta = tensor(a)
    return make_node(
        np.sin(ta.data),
        [(ta, lambda g, x=ta.data: g * np.cos(x))],
        "sin",
        fwd=lambda o, x=ta.data: np.sin(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("cos")
def cos(a: ArrayLike) -> Tensor:
    """Elementwise cosine."""
    ta = tensor(a)
    return make_node(
        np.cos(ta.data),
        [(ta, lambda g, x=ta.data: -g * np.sin(x))],
        "cos",
        fwd=lambda o, x=ta.data: np.cos(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("tanh")
def tanh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic tangent (the paper's PINN activation)."""
    ta = tensor(a)
    out = np.asarray(np.tanh(ta.data))
    return make_node(
        out,
        [(ta, lambda g, o=out: g * (1.0 - o * o))],
        "tanh",
        fwd=lambda o, x=ta.data: np.tanh(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("sinh")
def sinh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic sine."""
    ta = tensor(a)
    return make_node(
        np.sinh(ta.data),
        [(ta, lambda g, x=ta.data: g * np.cosh(x))],
        "sinh",
        fwd=lambda o, x=ta.data: np.sinh(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("cosh")
def cosh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic cosine."""
    ta = tensor(a)
    return make_node(
        np.cosh(ta.data),
        [(ta, lambda g, x=ta.data: g * np.sinh(x))],
        "cosh",
        fwd=lambda o, x=ta.data: np.cosh(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("arctan")
def arctan(a: ArrayLike) -> Tensor:
    """Elementwise inverse tangent."""
    ta = tensor(a)
    return make_node(
        np.arctan(ta.data),
        [(ta, lambda g, x=ta.data: g / (1.0 + x * x))],
        "arctan",
        fwd=lambda o, x=ta.data: np.arctan(x, out=o),
        meta=((ta.data,), None),
    )


@primitive("sigmoid")
def sigmoid(a: ArrayLike) -> Tensor:
    """Elementwise logistic sigmoid."""
    ta = tensor(a)
    out = np.asarray(1.0 / (1.0 + np.exp(-ta.data)))

    def fwd(o: np.ndarray, x: np.ndarray = ta.data) -> None:
        np.negative(x, out=o)
        np.exp(o, out=o)
        o += 1.0
        np.divide(1.0, o, out=o)

    return make_node(
        out,
        [(ta, lambda g, o=out: g * o * (1.0 - o))],
        "sigmoid",
        fwd=fwd,
        meta=((ta.data,), None),
    )


# ----------------------------------------------------------------------
# Selection / clipping
# ----------------------------------------------------------------------
@primitive("maximum")
def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first input."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = np.maximum(x, y)
    mask = x >= y

    # fwd refreshes the tie mask in place so the VJP closures (which
    # capture it by reference) stay valid when input values change.
    def fwd(o: np.ndarray, x=x, y=y, m=mask) -> None:
        np.maximum(x, y, out=o)
        np.greater_equal(x, y, out=m)

    return make_node(
        out,
        [
            (ta, lambda g, m=mask, s=x.shape: unbroadcast(g * m, s)),
            (tb, lambda g, m=mask, s=y.shape: unbroadcast(g * ~m, s)),
        ],
        "maximum",
        fwd=fwd,
        meta=((x, y), {"mask": mask}),
    )


@primitive("minimum")
def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; ties route the gradient to the first input."""
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = np.minimum(x, y)
    mask = x <= y

    def fwd(o: np.ndarray, x=x, y=y, m=mask) -> None:
        np.minimum(x, y, out=o)
        np.less_equal(x, y, out=m)

    return make_node(
        out,
        [
            (ta, lambda g, m=mask, s=x.shape: unbroadcast(g * m, s)),
            (tb, lambda g, m=mask, s=y.shape: unbroadcast(g * ~m, s)),
        ],
        "minimum",
        fwd=fwd,
        meta=((x, y), {"mask": mask}),
    )


@primitive("where")
def where(cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` (the condition itself is constant)."""
    c = asdata(cond).astype(bool)
    ta, tb = tensor(a), tensor(b)
    x, y = ta.data, tb.data
    out = np.where(c, x, y)
    return make_node(
        out,
        [
            (ta, lambda g, m=c, s=x.shape: unbroadcast(np.where(m, g, 0.0), s)),
            (tb, lambda g, m=c, s=y.shape: unbroadcast(np.where(m, 0.0, g), s)),
        ],
        "where",
        fwd=lambda o, m=c, x=x, y=y: np.copyto(o, np.where(m, x, y)),
        meta=((x, y), {"mask": c}),
    )


@primitive("clip")
def clip(a: ArrayLike, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the interval."""
    ta = tensor(a)
    x = ta.data
    out = np.clip(x, lo, hi)
    mask = (x >= lo) & (x <= hi)

    def fwd(o: np.ndarray, x=x, m=mask) -> None:
        np.clip(x, lo, hi, out=o)
        np.greater_equal(x, lo, out=m)
        np.logical_and(m, x <= hi, out=m)

    return make_node(
        out,
        [(ta, lambda g, m=mask: g * m)],
        "clip",
        fwd=fwd,
        meta=((x,), {"lo": lo, "hi": hi, "mask": mask}),
    )


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
@primitive("sum")
def sum_(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Sum reduction."""
    ta = tensor(a)
    x = ta.data
    out = x.sum(axis=axis, keepdims=keepdims)

    view_cache = [None, None]

    def vjp(g: np.ndarray) -> np.ndarray:
        if axis is None:
            return _broadcast_view(g, x.shape, view_cache)
        g2 = g
        if not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(a % x.ndim for a in axes):
                g2 = np.expand_dims(g2, ax)
        return _broadcast_view(g2, x.shape)

    return make_node(
        out,
        [(ta, vjp)],
        "sum",
        # Bound ndarray method: skips np.sum's Python dispatch layer.
        fwd=lambda o, x=x: x.sum(axis=axis, keepdims=keepdims, out=o),
        meta=((x,), {"axis": axis, "keepdims": keepdims}),
    )


@primitive("mean")
def mean(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    ta = tensor(a)
    x = ta.data
    out = x.mean(axis=axis, keepdims=keepdims)
    denom = x.size if axis is None else np.prod(
        [x.shape[ax] for ax in ((axis,) if isinstance(axis, int) else axis)]
    )

    def vjp(g: np.ndarray) -> np.ndarray:
        if axis is None:
            return _broadcast_view(g / denom, x.shape)
        g2 = g
        if not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(a % x.ndim for a in axes):
                g2 = np.expand_dims(g2, ax)
        return _broadcast_view(g2 / denom, x.shape)

    return make_node(
        out,
        [(ta, vjp)],
        "mean",
        fwd=lambda o, x=x: x.mean(axis=axis, keepdims=keepdims, out=o),
        meta=((x,), {"axis": axis, "keepdims": keepdims, "denom": float(denom)}),
    )


@primitive("amax")
def amax(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Max reduction.

    At ties the cotangent is routed to *every* maximal element (a valid
    subgradient, and the symmetric choice — no dependence on memory
    order).  The tie mask is recomputed inside the VJP from the parent
    data and the node's output buffer, so compiled replay stays sound
    without a refreshable auxiliary.
    """
    ta = tensor(a)
    x = ta.data
    out = np.asarray(x.max(axis=axis, keepdims=keepdims))

    def _expand(g: np.ndarray) -> np.ndarray:
        if axis is None or keepdims:
            return g
        g2 = g
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        for ax in sorted(a % x.ndim for a in axes):
            g2 = np.expand_dims(g2, ax)
        return g2

    def vjp(g: np.ndarray) -> np.ndarray:
        if axis is None:
            mask = x == out
            return np.where(mask, np.asarray(g), 0.0)
        mask = x == _expand(out)
        return np.where(mask, _expand(g), 0.0)

    def fwd(o: np.ndarray, x=x) -> None:
        if o.ndim == 0:
            np.copyto(o, x.max(axis=axis, keepdims=keepdims))
        else:
            x.max(axis=axis, keepdims=keepdims, out=o)

    return make_node(out, [(ta, vjp)], "amax", fwd=fwd)


# ----------------------------------------------------------------------
# Linear algebra (dense) — the workhorses of DP through the RBF solver
# ----------------------------------------------------------------------
@primitive("matmul")
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product with the standard VJPs.

    Supports the 1-D/2-D combinations used by the solver (matrix@vector,
    matrix@matrix, vector@matrix, vector@vector) plus *stacked* operands
    on either side — e.g. ``(s, m, k) @ (k, n)`` from the batched PINN
    derivative propagation, or the fully batched combinations emitted by
    the :mod:`~repro.autodiff.batching` rules.  Cotangents into operands
    that broadcast over stacked axes are reduced with ``unbroadcast``
    (a no-op returning the same array when shapes already match, so the
    historical 1-D/2-D paths are bit-identical to before).
    """
    ta, tb = tensor(a), tensor(b)
    A, B = ta.data, tb.data
    out = A @ B

    def vjp_a(g: np.ndarray) -> np.ndarray:
        if A.ndim == 1 and B.ndim == 1:  # inner product
            return g * B
        if A.ndim == 1:
            if B.ndim == 2:  # (k,) @ (k,n) -> (n,)
                return B @ g
            # (k,) @ (..., k, n): contract g against B's last axis.
            r = np.matmul(B, g[..., :, None])[..., 0]
            return unbroadcast(r, A.shape)
        if B.ndim == 1:
            if A.ndim == 2:  # (m,k) @ (k,) -> (m,)
                return np.outer(g, B)
            return unbroadcast(g[..., :, None] * B, A.shape)
        return unbroadcast(g @ np.swapaxes(B, -1, -2), A.shape)

    def vjp_b(g: np.ndarray) -> np.ndarray:
        if A.ndim == 1 and B.ndim == 1:
            return g * A
        if A.ndim == 1:
            if B.ndim == 2:
                return np.outer(A, g)
            return unbroadcast(A[:, None] * g[..., None, :], B.shape)
        if B.ndim == 1:
            if A.ndim == 2:
                return A.T @ g
            r = np.matmul(np.swapaxes(A, -1, -2), g[..., :, None])[..., 0]
            return unbroadcast(r, B.shape)
        if A.ndim == 2 and B.ndim == 2:
            return A.T @ g
        return unbroadcast(np.swapaxes(A, -1, -2) @ g, B.shape)

    if np.ndim(out) == 0:  # 1-D @ 1-D: scalar result, no ufunc out=
        fwd = lambda o, A=A, B=B: np.copyto(o, A @ B)
    else:
        fwd = lambda o, A=A, B=B: np.matmul(A, B, out=o)
    return make_node(
        out, [(ta, vjp_a), (tb, vjp_b)], "matmul", fwd=fwd, meta=((A, B), None)
    )


@composite
def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """1-D inner product ``sum(a * b)``."""
    return sum_(mul(a, b))


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
@primitive("reshape")
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Differentiable reshape."""
    ta = tensor(a)
    x = ta.data
    out = x.reshape(shape)
    fwd = (
        VIEW_FWD
        if np.may_share_memory(out, x)
        else (lambda o, x=x: np.copyto(o, x.reshape(shape)))
    )
    return make_node(
        out,
        [(ta, lambda g, s=x.shape: g.reshape(s))],
        "reshape",
        fwd=fwd,
        meta=((x,), {"shape": tuple(out.shape)}),
    )


@primitive("transpose")
def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    """Differentiable transpose / axis permutation."""
    ta = tensor(a)
    out = np.transpose(ta.data, axes)
    inv = None if axes is None else tuple(np.argsort(axes))
    # np.transpose always returns a view: nothing to recompute on replay.
    return make_node(
        out,
        [(ta, lambda g: np.transpose(g, inv))],
        "transpose",
        fwd=VIEW_FWD,
        meta=((ta.data,), {"axes": axes, "inv": inv}),
    )


def _is_unique_index(index) -> bool:
    """True when ``index`` can never address the same element twice.

    Basic indexing (ints, slices, Ellipsis, None) and boolean masks select
    each element at most once, so the VJP may scatter with direct
    assignment; integer fancy indexing can repeat positions and needs the
    accumulating ``np.add.at``.
    """
    if isinstance(index, tuple):
        return all(_is_unique_index(i) for i in index)
    if isinstance(index, (int, np.integer, slice)) or index is None or index is Ellipsis:
        return True
    if isinstance(index, np.ndarray) and index.dtype == bool:
        return True
    return False


@primitive("getitem")
def getitem(a: ArrayLike, index) -> Tensor:
    """Differentiable indexing/slicing.

    Basic indices keep a *view* of the parent data (no forward copy) and
    scatter the cotangent with direct assignment; integer fancy indices
    copy forward and scatter with ``np.add.at`` (duplicates accumulate).
    """
    ta = tensor(a)
    x = ta.data
    out = x[index]
    unique = _is_unique_index(index)

    def vjp(g: np.ndarray) -> np.ndarray:
        full = np.zeros_like(x)
        if unique:
            full[index] = g
        else:
            np.add.at(full, index, g)
        return full

    if isinstance(out, np.ndarray) and np.may_share_memory(out, x):
        fwd = VIEW_FWD
    else:
        fwd = lambda o, x=x: np.copyto(o, x[index])
    return make_node(
        out,
        [(ta, vjp)],
        "getitem",
        fwd=fwd,
        meta=((x,), {"index": index, "unique": unique}),
    )


@primitive("concatenate")
def concatenate(parts: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    ts = [tensor(p) for p in parts]
    arrays = [t.data for t in ts]
    out = np.concatenate(arrays, axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    parents = []
    spans = []
    for i, t in enumerate(ts):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        spans.append((lo, hi))

        def vjp(g: np.ndarray, lo=lo, hi=hi) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            return g[tuple(slicer)]

        parents.append((t, vjp))

    def fwd(o: np.ndarray, arrays=arrays, spans=spans) -> None:
        slicer = [slice(None)] * o.ndim
        for arr, (lo, hi) in zip(arrays, spans):
            slicer[axis] = slice(lo, hi)
            o[tuple(slicer)] = arr

    return make_node(out, parents, "concatenate", fwd=fwd)


@primitive("stack")
def stack(parts: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new axis."""
    ts = [tensor(p) for p in parts]
    arrays = [t.data for t in ts]
    out = np.stack(arrays, axis=axis)

    parents = []
    for i, t in enumerate(ts):

        def vjp(g: np.ndarray, i=i) -> np.ndarray:
            return np.take(g, i, axis=axis)

        parents.append((t, vjp))

    def fwd(o: np.ndarray, arrays=arrays) -> None:
        mv = np.moveaxis(o, axis, 0)
        for i, arr in enumerate(arrays):
            mv[i] = arr

    return make_node(out, parents, "stack", fwd=fwd)

"""Differentiable primitive operations.

Each primitive computes its forward value with plain NumPy (vectorised, no
Python loops over elements — see the HPC guides) and records one VJP closure
per differentiable input.  The VJPs are standard; where broadcasting is
possible the cotangent is reduced with :func:`~repro.autodiff.tensor.unbroadcast`.

Primitives accept raw arrays or :class:`~repro.autodiff.tensor.Tensor`
inputs interchangeably.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.tensor import (
    ArrayLike,
    Tensor,
    asdata,
    make_node,
    tensor,
    unbroadcast,
)

Axis = Union[None, int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a + b`` with NumPy broadcasting."""
    ta, tb = tensor(a), tensor(b)
    out = ta.data + tb.data
    return make_node(
        out,
        [
            (ta, lambda g, s=ta.data.shape: unbroadcast(g, s)),
            (tb, lambda g, s=tb.data.shape: unbroadcast(g, s)),
        ],
        "add",
    )


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a - b``."""
    ta, tb = tensor(a), tensor(b)
    out = ta.data - tb.data
    return make_node(
        out,
        [
            (ta, lambda g, s=ta.data.shape: unbroadcast(g, s)),
            (tb, lambda g, s=tb.data.shape: unbroadcast(-g, s)),
        ],
        "sub",
    )


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a * b``."""
    ta, tb = tensor(a), tensor(b)
    out = ta.data * tb.data
    return make_node(
        out,
        [
            (ta, lambda g, o=tb.data, s=ta.data.shape: unbroadcast(g * o, s)),
            (tb, lambda g, o=ta.data, s=tb.data.shape: unbroadcast(g * o, s)),
        ],
        "mul",
    )


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a / b``."""
    ta, tb = tensor(a), tensor(b)
    out = ta.data / tb.data
    return make_node(
        out,
        [
            (ta, lambda g, d=tb.data, s=ta.data.shape: unbroadcast(g / d, s)),
            (
                tb,
                lambda g, n=ta.data, d=tb.data, s=tb.data.shape: unbroadcast(
                    -g * n / (d * d), s
                ),
            ),
        ],
        "div",
    )


def neg(a: ArrayLike) -> Tensor:
    """Elementwise negation."""
    ta = tensor(a)
    return make_node(-ta.data, [(ta, lambda g: -g)], "neg")


def power(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a ** b`` differentiable in both arguments.

    The exponent VJP uses ``log(a)`` and is therefore only valid for
    positive bases when the exponent requires gradients; for the common
    constant-exponent case (e.g. the cubic polyharmonic kernel ``r**3``)
    only the base branch is recorded.
    """
    ta, tb = tensor(a), tensor(b)
    out = ta.data ** tb.data

    def vjp_base(g: np.ndarray) -> np.ndarray:
        return unbroadcast(g * tb.data * ta.data ** (tb.data - 1.0), ta.data.shape)

    parents = [(ta, vjp_base)]
    if tb.needs_tape():

        def vjp_exp(g: np.ndarray) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                loga = np.where(ta.data > 0, np.log(np.where(ta.data > 0, ta.data, 1.0)), 0.0)
            return unbroadcast(g * out * loga, tb.data.shape)

        parents.append((tb, vjp_exp))
    return make_node(out, parents, "power")


def square(a: ArrayLike) -> Tensor:
    """Elementwise square (faster than ``power(a, 2)``)."""
    ta = tensor(a)
    return make_node(
        ta.data * ta.data, [(ta, lambda g, x=ta.data: 2.0 * g * x)], "square"
    )


def sqrt(a: ArrayLike) -> Tensor:
    """Elementwise square root."""
    ta = tensor(a)
    out = np.sqrt(ta.data)

    def vjp(g: np.ndarray, o: np.ndarray = out) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return g * 0.5 / np.where(o > 0, o, np.inf)

    return make_node(out, [(ta, vjp)], "sqrt")


def abs_(a: ArrayLike) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the kink)."""
    ta = tensor(a)
    return make_node(
        np.abs(ta.data), [(ta, lambda g, x=ta.data: g * np.sign(x))], "abs"
    )


# ----------------------------------------------------------------------
# Elementwise transcendentals
# ----------------------------------------------------------------------
def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    ta = tensor(a)
    out = np.exp(ta.data)
    return make_node(out, [(ta, lambda g, o=out: g * o)], "exp")


def log(a: ArrayLike) -> Tensor:
    """Elementwise natural logarithm."""
    ta = tensor(a)
    return make_node(np.log(ta.data), [(ta, lambda g, x=ta.data: g / x)], "log")


def sin(a: ArrayLike) -> Tensor:
    """Elementwise sine."""
    ta = tensor(a)
    return make_node(np.sin(ta.data), [(ta, lambda g, x=ta.data: g * np.cos(x))], "sin")


def cos(a: ArrayLike) -> Tensor:
    """Elementwise cosine."""
    ta = tensor(a)
    return make_node(
        np.cos(ta.data), [(ta, lambda g, x=ta.data: -g * np.sin(x))], "cos"
    )


def tanh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic tangent (the paper's PINN activation)."""
    ta = tensor(a)
    out = np.tanh(ta.data)
    return make_node(out, [(ta, lambda g, o=out: g * (1.0 - o * o))], "tanh")


def sinh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic sine."""
    ta = tensor(a)
    return make_node(
        np.sinh(ta.data), [(ta, lambda g, x=ta.data: g * np.cosh(x))], "sinh"
    )


def cosh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic cosine."""
    ta = tensor(a)
    return make_node(
        np.cosh(ta.data), [(ta, lambda g, x=ta.data: g * np.sinh(x))], "cosh"
    )


def arctan(a: ArrayLike) -> Tensor:
    """Elementwise inverse tangent."""
    ta = tensor(a)
    return make_node(
        np.arctan(ta.data),
        [(ta, lambda g, x=ta.data: g / (1.0 + x * x))],
        "arctan",
    )


def sigmoid(a: ArrayLike) -> Tensor:
    """Elementwise logistic sigmoid."""
    ta = tensor(a)
    out = 1.0 / (1.0 + np.exp(-ta.data))
    return make_node(out, [(ta, lambda g, o=out: g * o * (1.0 - o))], "sigmoid")


# ----------------------------------------------------------------------
# Selection / clipping
# ----------------------------------------------------------------------
def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first input."""
    ta, tb = tensor(a), tensor(b)
    out = np.maximum(ta.data, tb.data)
    mask = ta.data >= tb.data
    return make_node(
        out,
        [
            (ta, lambda g, m=mask, s=ta.data.shape: unbroadcast(g * m, s)),
            (tb, lambda g, m=~mask, s=tb.data.shape: unbroadcast(g * m, s)),
        ],
        "maximum",
    )


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; ties route the gradient to the first input."""
    ta, tb = tensor(a), tensor(b)
    out = np.minimum(ta.data, tb.data)
    mask = ta.data <= tb.data
    return make_node(
        out,
        [
            (ta, lambda g, m=mask, s=ta.data.shape: unbroadcast(g * m, s)),
            (tb, lambda g, m=~mask, s=tb.data.shape: unbroadcast(g * m, s)),
        ],
        "minimum",
    )


def where(cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` (the condition itself is constant)."""
    c = asdata(cond).astype(bool)
    ta, tb = tensor(a), tensor(b)
    out = np.where(c, ta.data, tb.data)
    return make_node(
        out,
        [
            (ta, lambda g, m=c, s=ta.data.shape: unbroadcast(np.where(m, g, 0.0), s)),
            (tb, lambda g, m=c, s=tb.data.shape: unbroadcast(np.where(m, 0.0, g), s)),
        ],
        "where",
    )


def clip(a: ArrayLike, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the interval."""
    ta = tensor(a)
    out = np.clip(ta.data, lo, hi)
    mask = (ta.data >= lo) & (ta.data <= hi)
    return make_node(out, [(ta, lambda g, m=mask: g * m)], "clip")


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum_(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Sum reduction."""
    ta = tensor(a)
    out = ta.data.sum(axis=axis, keepdims=keepdims)

    def vjp(g: np.ndarray) -> np.ndarray:
        if axis is None:
            return np.broadcast_to(g, ta.data.shape).copy()
        g2 = g
        if not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(a % ta.data.ndim for a in axes):
                g2 = np.expand_dims(g2, ax)
        return np.broadcast_to(g2, ta.data.shape).copy()

    return make_node(out, [(ta, vjp)], "sum")


def mean(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    ta = tensor(a)
    out = ta.data.mean(axis=axis, keepdims=keepdims)
    denom = ta.data.size if axis is None else np.prod(
        [ta.data.shape[ax] for ax in ((axis,) if isinstance(axis, int) else axis)]
    )

    def vjp(g: np.ndarray) -> np.ndarray:
        if axis is None:
            return np.broadcast_to(g / denom, ta.data.shape).copy()
        g2 = g
        if not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(a % ta.data.ndim for a in axes):
                g2 = np.expand_dims(g2, ax)
        return np.broadcast_to(g2 / denom, ta.data.shape).copy()

    return make_node(out, [(ta, vjp)], "mean")


# ----------------------------------------------------------------------
# Linear algebra (dense) — the workhorses of DP through the RBF solver
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product with the standard VJPs.

    Supports the 1-D/2-D combinations used by the solver (matrix@vector,
    matrix@matrix, vector@matrix, vector@vector).
    """
    ta, tb = tensor(a), tensor(b)
    A, B = ta.data, tb.data
    out = A @ B

    def vjp_a(g: np.ndarray) -> np.ndarray:
        if A.ndim == 1 and B.ndim == 1:  # inner product
            return g * B
        if A.ndim == 1:  # (k,) @ (k,n) -> (n,)
            return B @ g
        if B.ndim == 1:  # (m,k) @ (k,) -> (m,)
            return np.outer(g, B)
        return g @ B.T

    def vjp_b(g: np.ndarray) -> np.ndarray:
        if A.ndim == 1 and B.ndim == 1:
            return g * A
        if A.ndim == 1:
            return np.outer(A, g)
        if B.ndim == 1:
            return A.T @ g
        return A.T @ g

    return make_node(out, [(ta, vjp_a), (tb, vjp_b)], "matmul")


def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """1-D inner product ``sum(a * b)``."""
    return sum_(mul(a, b))


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Differentiable reshape."""
    ta = tensor(a)
    return make_node(
        ta.data.reshape(shape),
        [(ta, lambda g, s=ta.data.shape: g.reshape(s))],
        "reshape",
    )


def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    """Differentiable transpose / axis permutation."""
    ta = tensor(a)
    out = np.transpose(ta.data, axes)
    inv = None if axes is None else tuple(np.argsort(axes))
    return make_node(out, [(ta, lambda g: np.transpose(g, inv))], "transpose")


def getitem(a: ArrayLike, index) -> Tensor:
    """Differentiable indexing/slicing (``np.add.at`` scatter in the VJP)."""
    ta = tensor(a)
    out = ta.data[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        full = np.zeros_like(ta.data)
        np.add.at(full, index, g)
        return full

    return make_node(np.array(out, copy=True), [(ta, vjp)], "getitem")


def concatenate(parts: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    ts = [tensor(p) for p in parts]
    out = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    parents = []
    for i, t in enumerate(ts):
        lo, hi = int(offsets[i]), int(offsets[i + 1])

        def vjp(g: np.ndarray, lo=lo, hi=hi) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            return g[tuple(slicer)]

        parents.append((t, vjp))
    return make_node(out, parents, "concatenate")


def stack(parts: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new axis."""
    ts = [tensor(p) for p in parts]
    out = np.stack([t.data for t in ts], axis=axis)

    parents = []
    for i, t in enumerate(ts):

        def vjp(g: np.ndarray, i=i) -> np.ndarray:
            return np.take(g, i, axis=axis)

        parents.append((t, vjp))
    return make_node(out, parents, "stack")

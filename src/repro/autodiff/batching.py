"""``vbatch`` — a vmap-style batch transform over the autodiff tape.

DESIGN §13.  The ω line search, seed ensembles, and bench sweeps all
evaluate the *same* tensor program at N inputs; running N separate tapes
pays the Python dispatch cost N times and forgoes stacked BLAS calls.
``vbatch(fn, in_axes, out_axes)`` re-executes ``fn`` once with a
batch-dimension-carrying tracer (:class:`BatchTracer`) flowing through
the existing primitives, lowering the N evaluations to a single stacked
NumPy program whose tape is an ordinary tape — gradients, ``no_grad``
and the compiled replay engine all work unchanged.

Architecture
------------
Every primitive in :mod:`~repro.autodiff.ops`,
:mod:`~repro.autodiff.linalg` and :mod:`~repro.autodiff.sparse` is
decorated with :func:`primitive`, which registers it by name and wraps
it with a dispatcher.  Outside a ``vbatch`` trace the wrapper costs one
attribute read; inside, any :class:`BatchTracer` argument routes the
call to the primitive's *batching rule*.  Rules rewrite the call into
stacked primitive calls on the tracer's underlying
:class:`~repro.autodiff.tensor.Tensor` (batch axis always at position
0), so the result is again on the tape with correct VJPs for free:

- **elementwise** ops broadcast after aligning item ranks (singleton
  axes inserted right after the batch axis);
- **reductions** shift the reduced axes by one (``axis=None`` becomes
  "all item axes", keeping the batch axis);
- **views** (reshape/transpose/getitem) prepend the batch axis to the
  shape, permutation, or index;
- **matmul** maps each batched/unbatched × item-rank combination to a
  single stacked ``np.matmul`` whose per-slice GEMM shapes match the
  per-item program exactly (1-D operands become row/column matrices,
  extra leading axes are broadcast, never flattened), so the forward
  *and* the reverse-pass GEMMs are bitwise identical per item;
- **solve-family** primitives (``solve``/``lu_solve``/``lstsq``/
  ``sparse_solve``/``sparse_lu_solve``/``sparse_matvec``/
  ``sparse_pattern_solve``/``krylov_solve``/``krylov_pattern_solve``)
  transpose the batched right-hand side into
  an ``(n, N)`` column block and perform ONE factorisation + ONE
  multi-RHS triangular solve (``getrs``/``spsolve``) — forward and
  adjoint: the transposed solve in the implicit VJP receives the same
  column block and batches identically;
- anything a rule cannot express (a batched system matrix, exotic
  ``matmul`` ranks) *punts* to the :func:`_fallback_loop` rule, which
  loops ``getitem → primitive → stack`` — slower, still differentiable,
  never an error.  Primitives may also opt out of rule coverage wholesale
  with ``primitive(name, fallback=True)``.

The conformance contract (``tests/autodiff/test_batching.py``) pins for
every registered primitive: batched == stacked-loop forward, batched ==
looped VJPs, eager == compiled replay, and a registry-completeness check
that fails when a primitive lands without a rule or a declared fallback.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.autodiff.tensor import Tensor, asdata, no_grad, tensor

__all__ = [
    "BatchTracer",
    "BatchedMask",
    "primitive",
    "composite",
    "register_rule",
    "registered_primitives",
    "declared_fallbacks",
    "has_batch_rule",
    "vbatch",
    "batch_size",
    "is_batching",
]


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
_PRIMITIVES: Dict[str, Callable] = {}  # name -> raw (unwrapped) primitive
_BATCH_RULES: Dict[str, Callable] = {}  # name -> batching rule
_FALLBACK_DECLARED: Set[str] = set()  # names opting into the loop rule


class _BatchState:
    """Per-process trace state (one ``vbatch`` trace active at a time)."""

    __slots__ = ("active", "size")

    def __init__(self) -> None:
        self.active = False
        self.size = 0


_STATE = _BatchState()


def is_batching() -> bool:
    """True while a ``vbatch`` trace is executing."""
    return _STATE.active


def batch_size() -> int:
    """The active trace's batch size N (0 outside a trace)."""
    return _STATE.size


def registered_primitives() -> Dict[str, Callable]:
    """Snapshot of the primitive registry (name -> raw implementation)."""
    return dict(_PRIMITIVES)


def declared_fallbacks() -> frozenset:
    """Primitives that declared the loop fallback instead of a rule."""
    return frozenset(_FALLBACK_DECLARED)


def has_batch_rule(name: str) -> bool:
    """True when ``name`` has a registered (non-fallback) batching rule."""
    return name in _BATCH_RULES


class _Punt(Exception):
    """Raised by a rule to hand an unsupported combination to the loop."""


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class BatchTracer:
    """A batch of N values flowing through the primitives as one Tensor.

    Wraps a :class:`~repro.autodiff.tensor.Tensor` whose axis 0 is the
    batch axis; ``shape``/``ndim`` report the *item* view so traced code
    written for a single example keeps working.  Operator overloads call
    the wrapped primitives, which dispatch back into the rule table.
    """

    __slots__ = ("t",)

    # NumPy must defer ``ndarray <op> tracer`` to the reflected operators.
    __array_ufunc__ = None
    __array_priority__ = 2000

    def __init__(self, t: Tensor) -> None:
        if not isinstance(t, Tensor):
            t = tensor(t)
        if t.ndim < 1:
            raise ValueError("BatchTracer needs a leading batch axis")
        self.t = t

    # Item-view introspection ------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of one item (batch axis hidden)."""
        return self.t.shape[1:]

    @property
    def ndim(self) -> int:
        """Rank of one item."""
        return self.t.ndim - 1

    @property
    def size(self) -> int:
        """Elements per item."""
        return int(np.prod(self.t.shape[1:], dtype=np.int64))

    @property
    def batch_size(self) -> int:
        """Number of items in the batch."""
        return self.t.shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self.t.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchTracer(n={self.t.shape[0]}, item_shape={self.shape})"

    def __array__(self, *a, **k):
        raise TypeError(
            "BatchTracer cannot be coerced to an ndarray; it only exists "
            "inside a vbatch trace — keep computations in primitive ops"
        )

    def __len__(self) -> int:
        if self.t.ndim < 2:
            raise TypeError("len() of a scalar batch item")
        return self.t.shape[1]

    def __hash__(self) -> int:
        return id(self)

    # Operators (route through the wrapped primitives) -----------------
    def __add__(self, o):
        return _op("add")(self, o)

    def __radd__(self, o):
        return _op("add")(o, self)

    def __sub__(self, o):
        return _op("sub")(self, o)

    def __rsub__(self, o):
        return _op("sub")(o, self)

    def __mul__(self, o):
        return _op("mul")(self, o)

    def __rmul__(self, o):
        return _op("mul")(o, self)

    def __truediv__(self, o):
        return _op("div")(self, o)

    def __rtruediv__(self, o):
        return _op("div")(o, self)

    def __pow__(self, o):
        return _op("power")(self, o)

    def __rpow__(self, o):
        return _op("power")(o, self)

    def __neg__(self):
        return _op("neg")(self)

    def __matmul__(self, o):
        return _op("matmul")(self, o)

    def __rmatmul__(self, o):
        return _op("matmul")(o, self)

    def __getitem__(self, index):
        return _op("getitem")(self, index)

    @property
    def T(self):
        return _op("transpose")(self)

    def sum(self, axis=None, keepdims: bool = False):
        return _op("sum")(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return _op("mean")(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        return _op("amax")(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _op("reshape")(self, shape)

    def ravel(self):
        return self.reshape((-1,))

    # Comparisons yield a batch-tagged boolean mask so the ``where``
    # rule can tell a batched condition from an item-shaped constant.
    def __lt__(self, o):
        return BatchedMask(self.t.data < _cmp_data(o, self))

    def __le__(self, o):
        return BatchedMask(self.t.data <= _cmp_data(o, self))

    def __gt__(self, o):
        return BatchedMask(self.t.data > _cmp_data(o, self))

    def __ge__(self, o):
        return BatchedMask(self.t.data >= _cmp_data(o, self))


class BatchedMask:
    """A boolean array with a leading batch axis (comparison result)."""

    __slots__ = ("data",)

    __array_ufunc__ = None
    __array_priority__ = 2000

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=bool)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape[1:]

    def __invert__(self) -> "BatchedMask":
        return BatchedMask(~self.data)

    def __and__(self, o) -> "BatchedMask":
        return BatchedMask(self.data & (o.data if isinstance(o, BatchedMask) else o))

    def __or__(self, o) -> "BatchedMask":
        return BatchedMask(self.data | (o.data if isinstance(o, BatchedMask) else o))


def _cmp_data(o: Any, tracer: BatchTracer) -> np.ndarray:
    """Comparison operand aligned against a tracer's stacked data."""
    if isinstance(o, BatchTracer):
        a, b = _align_item_ranks([tracer, o])
        return b if a is not None else o.t.data  # pragma: no cover
    return asdata(o)


def _op(name: str) -> Callable:
    """The *wrapped* primitive (dispatches on tracers)."""
    return _WRAPPERS[name]


_WRAPPERS: Dict[str, Callable] = {}


# ----------------------------------------------------------------------
# Decorators
# ----------------------------------------------------------------------
def primitive(name: str, fallback: bool = False) -> Callable:
    """Register ``fn`` as a batchable primitive and wrap its dispatch.

    ``fallback=True`` declares that the primitive has no vectorised rule
    and should always take the ``getitem → op → stack`` loop under
    ``vbatch`` — a graceful-degradation opt-out that the conformance
    suite's completeness check accepts in lieu of a rule.
    """

    def deco(fn: Callable) -> Callable:
        _PRIMITIVES[name] = fn
        if fallback:
            _FALLBACK_DECLARED.add(name)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _STATE.active and (
                _contains_tracer(args) or _contains_tracer(tuple(kwargs.values()))
            ):
                return _dispatch(name, fn, args, kwargs)
            return fn(*args, **kwargs)

        wrapper._primitive_name = name
        wrapper._raw = fn
        _WRAPPERS[name] = wrapper
        return wrapper

    return deco


def composite(fn: Callable) -> Callable:
    """Mark a function as a *composite* of primitives (no rule needed).

    Composites (``ops.dot``, ``linalg.norm``) batch automatically because
    every primitive they call dispatches; the marker lets the conformance
    suite's completeness scan tell them apart from unregistered primitives.
    """
    fn._composite = True
    return fn


def register_rule(name: str) -> Callable:
    """Decorator registering a batching rule for primitive ``name``."""

    def deco(rule: Callable) -> Callable:
        _BATCH_RULES[name] = rule
        return rule

    return deco


def _contains_tracer(seq: Tuple) -> bool:
    for x in seq:
        if isinstance(x, (BatchTracer, BatchedMask)):
            return True
        if isinstance(x, (list, tuple)):
            for y in x:
                if isinstance(y, (BatchTracer, BatchedMask)):
                    return True
    return False


def _dispatch(name: str, raw: Callable, args: Tuple, kwargs: Dict) -> Any:
    rule = _BATCH_RULES.get(name)
    if rule is not None and name not in _FALLBACK_DECLARED:
        try:
            return rule(raw, *args, **kwargs)
        except _Punt:
            pass
    return _fallback_loop(name, raw, args, kwargs)


# ----------------------------------------------------------------------
# Shared rule helpers
# ----------------------------------------------------------------------
def _raw(name: str) -> Callable:
    return _PRIMITIVES[name]


def _tile(x: Any, n: int) -> Tensor:
    """Broadcast an unbatched value to a ``(n, *shape)`` stacked Tensor.

    Implemented as a differentiable multiply by ones so the cotangent of
    the stacked result sums over the batch axis — exactly the gradient a
    loop over N identical uses would accumulate.
    """
    t = x if isinstance(x, Tensor) else tensor(x)
    ones = np.ones((n,) + (1,) * t.ndim)
    return _raw("mul")(t, ones)


def _align_item_ranks(parts: Sequence[Any]) -> List[Any]:
    """Insert singleton axes after the batch axis so item ranks match.

    NumPy broadcasting aligns *trailing* axes; with the batch axis pinned
    at position 0, a batched ``(N, 3)`` meeting a batched ``(N, 2, 3)``
    must first become ``(N, 1, 3)``.  Unbatched operands broadcast
    against the trailing item axes untouched.
    """
    item_ndim = 0
    for p in parts:
        if isinstance(p, BatchTracer):
            item_ndim = max(item_ndim, p.t.ndim - 1)
        elif isinstance(p, BatchedMask):
            item_ndim = max(item_ndim, p.data.ndim - 1)
        else:
            item_ndim = max(item_ndim, np.ndim(asdata(p)))
    out: List[Any] = []
    for p in parts:
        if isinstance(p, BatchTracer):
            t = p.t
            pad = item_ndim - (t.ndim - 1)
            if pad > 0:
                t = _raw("reshape")(t, (t.shape[0],) + (1,) * pad + t.shape[1:])
            out.append(t)
        elif isinstance(p, BatchedMask):
            d = p.data
            pad = item_ndim - (d.ndim - 1)
            if pad > 0:
                d = d.reshape((d.shape[0],) + (1,) * pad + d.shape[1:])
            out.append(d)
        else:
            out.append(p)
    return out


def _norm_axes(axis, item_ndim: int) -> Tuple[int, ...]:
    axes = (axis,) if isinstance(axis, (int, np.integer)) else tuple(axis)
    return tuple(sorted(int(a) % item_ndim + 1 for a in axes))


# ----------------------------------------------------------------------
# Rules: elementwise
# ----------------------------------------------------------------------
def _unary_rule(raw: Callable, a: BatchTracer, *rest, **kwargs) -> BatchTracer:
    return BatchTracer(raw(a.t, *rest, **kwargs))


def _binary_rule(raw: Callable, a, b, **kwargs) -> BatchTracer:
    ia, ib = _align_item_ranks([a, b])
    return BatchTracer(raw(ia, ib, **kwargs))


_UNARY_NAMES = (
    "neg",
    "square",
    "sqrt",
    "abs",
    "exp",
    "log",
    "sin",
    "cos",
    "tanh",
    "sinh",
    "cosh",
    "arctan",
    "sigmoid",
    "clip",
)
_BINARY_NAMES = ("add", "sub", "mul", "div", "power", "maximum", "minimum")

for _n in _UNARY_NAMES:
    _BATCH_RULES[_n] = _unary_rule
for _n in _BINARY_NAMES:
    _BATCH_RULES[_n] = _binary_rule


@register_rule("where")
def _where_rule(raw, cond, a, b):
    c, x, y = _align_item_ranks([cond, a, b])
    if isinstance(cond, BatchTracer):  # a traced condition is just data
        c = c.data
    return BatchTracer(raw(c, x, y))


# ----------------------------------------------------------------------
# Rules: reductions
# ----------------------------------------------------------------------
def _reduction_rule(raw, a: BatchTracer, axis=None, keepdims: bool = False):
    t = a.t
    item_ndim = t.ndim - 1
    if item_ndim == 0:
        # Reducing a scalar item is the identity.
        return BatchTracer(t)
    if axis is None:
        new_axis: Union[int, Tuple[int, ...]] = tuple(range(1, t.ndim))
    else:
        new_axis = _norm_axes(axis, item_ndim)
    return BatchTracer(raw(t, axis=new_axis, keepdims=keepdims))


for _n in ("sum", "mean", "amax"):
    _BATCH_RULES[_n] = _reduction_rule


# ----------------------------------------------------------------------
# Rules: views
# ----------------------------------------------------------------------
@register_rule("reshape")
def _reshape_rule(raw, a: BatchTracer, shape):
    t = a.t
    shape = tuple(int(s) for s in shape)
    if -1 in shape:
        # Resolve -1 against the ITEM size before prepending the batch
        # axis: NumPy cannot infer it once a zero-length batch axis
        # makes the total size 0.
        item_size = int(np.prod(t.shape[1:], dtype=np.int64))
        known = int(-np.prod(shape, dtype=np.int64))
        shape = tuple(item_size // known if s == -1 else s for s in shape)
    return BatchTracer(raw(t, (t.shape[0],) + shape))


@register_rule("transpose")
def _transpose_rule(raw, a: BatchTracer, axes=None):
    t = a.t
    item_ndim = t.ndim - 1
    if axes is None:
        perm = (0,) + tuple(range(t.ndim - 1, 0, -1))
    else:
        perm = (0,) + tuple(int(ax) % item_ndim + 1 for ax in axes)
    return BatchTracer(raw(t, perm))


@register_rule("getitem")
def _getitem_rule(raw, a: BatchTracer, index):
    if _contains_tracer((index,)):
        raise _Punt  # batched index arrays: loop
    new_index = (slice(None),) + (index if isinstance(index, tuple) else (index,))
    return BatchTracer(raw(a.t, new_index))


# ----------------------------------------------------------------------
# Rules: concatenate / stack
# ----------------------------------------------------------------------
def _stacked_parts(parts: Sequence[Any]) -> Tuple[List[Any], int]:
    n = _STATE.size
    inner = [p.t if isinstance(p, BatchTracer) else _tile(p, n) for p in parts]
    item_ndim = inner[0].ndim - 1
    return inner, item_ndim


@register_rule("concatenate")
def _concatenate_rule(raw, parts, axis: int = 0):
    inner, item_ndim = _stacked_parts(parts)
    return BatchTracer(raw(inner, axis=int(axis) % item_ndim + 1))


@register_rule("stack")
def _stack_rule(raw, parts, axis: int = 0):
    inner, item_ndim = _stacked_parts(parts)
    return BatchTracer(raw(inner, axis=int(axis) % (item_ndim + 1) + 1))


# ----------------------------------------------------------------------
# Rule: matmul
# ----------------------------------------------------------------------
@register_rule("matmul")
def _matmul_rule(raw, a, b):
    """Stacked matrix products, case by (batchedness, item rank).

    Arrangements are chosen for bitwise parity with the per-item program
    wherever NumPy/BLAS guarantees it (verified empirically, pinned by
    the conformance suite): a 3-D stacked GEMM equals its 2-D slices, and
    flattening constant stacked operands to 2-D (``(d·b, i)``) keeps one
    GEMM whose reverse pass matches the serial ``tensordot`` GEMM.
    """
    R, n = _raw("reshape"), _STATE.size
    ab, bb = isinstance(a, BatchTracer), isinstance(b, BatchTracer)

    if ab and bb:
        ta, tb = a.t, b.t
        ia, ib = ta.ndim - 1, tb.ndim - 1
        if ia == 0 or ib == 0:
            raise _Punt
        if ia == 1 and ib == 1:  # per-item inner product
            k = ta.shape[1]
            out = raw(R(ta, (n, 1, k)), R(tb, (n, k, 1)))
            return BatchTracer(R(out, (n,)))
        if ia == 1 and ib == 2:
            out = raw(R(ta, (n, 1, ta.shape[1])), tb)
            return BatchTracer(R(out, (n, tb.shape[2])))
        if ia == 2 and ib == 1:
            out = raw(ta, R(tb, (n, tb.shape[1], 1)))
            return BatchTracer(R(out, (n, ta.shape[1])))
        if ia == 2 and ib == 2:
            return BatchTracer(raw(ta, tb))
        if ia > 2 and ib == 2:
            # (N, *lead, m, k) @ (N, 1…, k, p): broadcast B over the
            # item's extra leading axes so every slice runs the same
            # (m,k)@(k,p) GEMM the per-item program does — bitwise.
            # (Flattening the lead axes into GEMM rows changes the row
            # count and can switch BLAS kernels, e.g. when p == 1.)
            tb2 = R(tb, (n,) + (1,) * (ia - 2) + (tb.shape[1], tb.shape[2]))
            return BatchTracer(raw(ta, tb2))
        if ia > 2 and ib == 1:
            # (N, *lead, m, k) @ (N, 1…, k, 1): broadcasting the column
            # over the lead axes keeps each slice the same (m,k)@(k,1)
            # product as the serial broadcast GEMV — bitwise; flattening
            # the lead axes into GEMM rows is not.
            lead = ta.shape[1:-1]
            tb2 = R(tb, (n,) + (1,) * (ia - 2) + (tb.shape[1], 1))
            out = raw(ta, tb2)
            return BatchTracer(R(out, (n,) + lead))
        raise _Punt

    if ab:  # batched A, constant B
        ta = a.t
        ia = ta.ndim - 1
        cb = np.ndim(asdata(b))
        if ia == 0:
            raise _Punt
        if ia == 1:
            k = ta.shape[1]
            if cb == 1:
                # Per-item dot: (N,1,k) @ (N,k,1).  A flat (N,k)@(k,)
                # GEMV reorders the accumulation and is NOT bitwise
                # against the per-item dot (verified empirically); the
                # row-matrix arrangement is.
                b2 = R(_expand_const(b, n), (n, k, 1))
                out = raw(R(ta, (n, 1, k)), b2)
                return BatchTracer(R(out, (n,)))
            if cb == 2:  # (N,1,k) @ (k,p): bitwise vs per-item vecmat
                out = raw(R(ta, (n, 1, k)), b)
                return BatchTracer(R(out, (n, np.shape(asdata(b))[1])))
            raise _Punt
        if cb in (1, 2):
            # (N, *lead, m, k) @ (k[, p]) broadcasts directly; NumPy runs
            # the same per-slice GEMM/GEMV the loop would.
            return BatchTracer(raw(ta, b))
        raise _Punt

    # constant A, batched B
    tb = b.t
    ib = tb.ndim - 1
    ca = np.ndim(asdata(a))
    if ib == 0:
        raise _Punt
    if ib == 1:
        k = tb.shape[1]
        if ca == 1:  # per-item dot: row/column arrangement (see above)
            a2 = R(_expand_const(a, n), (n, 1, k))
            out = raw(a2, R(tb, (n, k, 1)))
            return BatchTracer(R(out, (n,)))
        if ca == 2:
            lead = np.shape(asdata(a))[:-1]
            out = raw(a, R(tb, (n, k, 1)))  # (N, m, 1)
            return BatchTracer(R(out, (n,) + lead))
        if ca > 2:
            # (*lead, m, k) @ (N, 1…, k, 1): broadcast the column block
            # over the constant's lead axes (bitwise; see batched case).
            lead = np.shape(asdata(a))[:-1]
            tb2 = R(tb, (n,) + (1,) * (ca - 2) + (k, 1))
            out = raw(a, tb2)
            return BatchTracer(R(out, (n,) + lead))
        raise _Punt
    if ib == 2:
        if ca == 1:  # (k,) @ (N,k,p) -> (N,p)
            return BatchTracer(raw(a, tb))
        if ca == 2:  # (m,k) @ (N,k,p) -> (N,m,p)
            return BatchTracer(raw(a, tb))
        if ca > 2:
            # Constant stacked seeds: (d, b, i) @ (N, 1, i, o).  As in
            # the batched≥3-D case, broadcasting B over the constant's
            # extra leading axes keeps every slice the exact per-item
            # (b,i)@(i,o) GEMM — bitwise; flattening the lead axes into
            # GEMM rows is not (kernel switch when o == 1).
            tb2 = R(tb, (n,) + (1,) * (ca - 2) + (tb.shape[1], tb.shape[2]))
            return BatchTracer(raw(a, tb2))
        raise _Punt
    raise _Punt


def _expand_const(v: Any, n: int):
    """Stack an unbatched operand to ``(n, *shape)`` for a stacked call.

    Differentiable (via :func:`_tile`'s multiply-by-ones, whose forward is
    bitwise the identity per slice) when the operand is on the tape; a
    free stride-0 broadcast view otherwise.
    """
    if isinstance(v, Tensor) and v.needs_tape():
        return _tile(v, n)
    d = asdata(v)
    return np.broadcast_to(d, (n,) + d.shape)


# ----------------------------------------------------------------------
# Rules: solve family (multi-RHS factorisation reuse)
# ----------------------------------------------------------------------
def _register_rhs_rule(name: str, rhs_pos: int) -> None:
    """Batch a linear-solve-like primitive over its right-hand side.

    The batched RHS ``(N, n)`` is transposed into an ``(n, N)`` column
    block and handed to the primitive unchanged: LAPACK ``getrs`` and
    SuperLU ``solve`` accept RHS blocks, so one cached factorisation
    serves all N solves in a single call — and because the implicit VJP
    solves the *transposed* system with the cotangent block of the same
    shape, the adjoint batches identically.  Anything else batched (the
    matrix, pattern values) punts to the loop.
    """

    @register_rule(name)
    def rule(raw, *args, **kwargs):
        args = list(args)
        for i, arg in enumerate(args):
            if i != rhs_pos and _contains_tracer((arg,)):
                raise _Punt
        if _contains_tracer(tuple(kwargs.values())):
            raise _Punt
        rhs = args[rhs_pos]
        if not isinstance(rhs, BatchTracer):
            raise _Punt
        t, n = rhs.t, _STATE.size
        if n == 0:
            # Output shape can differ from the RHS shape (rectangular
            # lstsq): let the fallback loop's zero-item probe find it.
            raise _Punt
        T, R = _raw("transpose"), _raw("reshape")
        if t.ndim == 2:  # item (n_dof,)
            args[rhs_pos] = T(t)
            return BatchTracer(T(raw(*args, **kwargs)))
        if t.ndim == 3:  # item (n_dof, k): fold (N, k) into one block
            _, nd, k = t.shape
            args[rhs_pos] = R(T(t, (1, 0, 2)), (nd, n * k))
            out = R(raw(*args, **kwargs), (nd, n, k))
            return BatchTracer(T(out, (1, 0, 2)))
        raise _Punt


for _name, _pos in (
    ("solve", 1),
    ("lstsq", 1),
    ("lu_solve", 1),  # LUSolver.__call__: (self, b)
    ("sparse_solve", 1),
    ("sparse_lu_solve", 1),  # SparseLUSolver.__call__: (self, b)
    ("sparse_matvec", 1),
    ("sparse_pattern_solve", 4),  # (rows, cols, shape, data, b)
    ("krylov_solve", 1),  # KrylovSolver.__call__: (self, b)
    ("krylov_pattern_solve", 4),  # (rows, cols, shape, data, b)
):
    _register_rhs_rule(_name, _pos)


# ----------------------------------------------------------------------
# Fallback loop rule
# ----------------------------------------------------------------------
def _fallback_loop(name: str, raw: Callable, args: Tuple, kwargs: Dict) -> Any:
    """Degrade gracefully: run the primitive per item and re-stack.

    ``getitem`` extracts each item differentiably and ``stack`` rebuilds
    the batch, so gradients still flow — the cost is N primitive calls
    instead of one.  A zero-length batch probes the output shape with a
    zero dummy item under ``no_grad`` (no real work, correct shape).
    """
    n = _STATE.size
    G, S = _raw("getitem"), _raw("stack")

    def extract(x: Any, i: int) -> Any:
        if isinstance(x, BatchTracer):
            return G(x.t, i)
        if isinstance(x, BatchedMask):
            return x.data[i]
        if isinstance(x, (list, tuple)):
            return type(x)(extract(e, i) for e in x)
        return x

    if n == 0:
        def dummy(x: Any) -> Any:
            if isinstance(x, BatchTracer):
                return np.zeros(x.t.shape[1:])
            if isinstance(x, BatchedMask):
                return np.zeros(x.data.shape[1:], dtype=bool)
            if isinstance(x, (list, tuple)):
                return type(x)(dummy(e) for e in x)
            return x

        with no_grad():
            probe = raw(
                *[dummy(a) for a in args],
                **{k: dummy(v) for k, v in kwargs.items()},
            )
        shape = probe.shape if isinstance(probe, Tensor) else np.shape(probe)
        return BatchTracer(tensor(np.zeros((0,) + tuple(shape))))

    outs = [
        raw(
            *[extract(a, i) for a in args],
            **{k: extract(v, i) for k, v in kwargs.items()},
        )
        for i in range(n)
    ]
    return BatchTracer(S(outs, 0))


# ----------------------------------------------------------------------
# The transform
# ----------------------------------------------------------------------
def _moved_to_front(t: Tensor, axis: int) -> Tensor:
    if axis == 0:
        return t
    ax = axis % t.ndim
    perm = (ax,) + tuple(i for i in range(t.ndim) if i != ax)
    return _raw("transpose")(t, perm)


def _moved_from_front(t: Tensor, axis: int) -> Tensor:
    if axis == 0:
        return t
    ax = axis % t.ndim
    perm = tuple(range(1, ax + 1)) + (0,) + tuple(range(ax + 1, t.ndim))
    return _raw("transpose")(t, perm)


def _wrap_in(spec: Any, val: Any, sizes: List[int]) -> Any:
    if spec is None:
        return val
    if isinstance(val, dict):
        if isinstance(spec, dict):
            return {k: _wrap_in(spec[k], v, sizes) for k, v in val.items()}
        return {k: _wrap_in(spec, v, sizes) for k, v in val.items()}
    if isinstance(val, (list, tuple)):
        if isinstance(spec, (list, tuple)):
            if len(spec) != len(val):
                raise ValueError(
                    f"in_axes spec of length {len(spec)} does not match "
                    f"a container of length {len(val)}"
                )
            return type(val)(_wrap_in(s, v, sizes) for s, v in zip(spec, val))
        return type(val)(_wrap_in(spec, v, sizes) for v in val)
    t = val if isinstance(val, Tensor) else tensor(val)
    ax = int(spec)
    if t.ndim < 1:
        raise ValueError("cannot batch a scalar argument along an axis")
    moved = _moved_to_front(t, ax)
    sizes.append(moved.shape[0])
    return BatchTracer(moved)


def _unwrap_out(spec: Any, val: Any, n: int) -> Any:
    if isinstance(val, dict):
        if isinstance(spec, dict):
            return {k: _unwrap_out(spec[k], v, n) for k, v in val.items()}
        return {k: _unwrap_out(spec, v, n) for k, v in val.items()}
    if isinstance(val, (list, tuple)):
        if isinstance(spec, (list, tuple)):
            if len(spec) != len(val):
                raise ValueError("out_axes spec does not match output structure")
            return type(val)(_unwrap_out(s, v, n) for s, v in zip(spec, val))
        return type(val)(_unwrap_out(spec, v, n) for v in val)
    if isinstance(val, BatchTracer):
        t = val.t
    elif isinstance(val, BatchedMask):
        return val.data  # boolean outputs: plain stacked array
    else:
        t = _tile(val if isinstance(val, Tensor) else tensor(val), n)
    ax = 0 if spec is None else int(spec)
    return _moved_from_front(t, ax)


def vbatch(
    fn: Callable,
    in_axes: Any = 0,
    out_axes: Any = 0,
) -> Callable:
    """Vectorise ``fn`` over a batch axis (the ``jax.vmap`` analogue).

    Parameters
    ----------
    fn:
        A function of tensors/arrays built from the registered
        primitives.  It is re-traced on every call (define-by-run, like
        the rest of the tape); wrap the *batched* function in
        :func:`~repro.autodiff.compile.compiled_value_and_grad` to
        amortise the trace.
    in_axes:
        An int (batch axis for every positional argument), ``None``
        (argument is closed over, not batched), or a tuple with one such
        entry per positional argument.  Entries may themselves be
        containers mirroring a pytree argument; an int/None entry
        broadcasts over all leaves of its argument.
    out_axes:
        Where to place the batch axis in each output (int, or a
        structure mirroring the output).  Unbatched outputs are
        broadcast to the batch size with a summed-cotangent VJP, exactly
        as a loop over N identical uses would accumulate.

    Returns
    -------
    A function with the same signature whose batched arguments carry an
    extra leading (or ``in_axes``-specified) axis of common length N,
    returning outputs with the batch axis at ``out_axes``.  The result
    is an ordinary tape Tensor: ``backward``/``grad`` see one stacked
    program.  Keyword arguments pass through unbatched.
    """

    def batched(*args, **kwargs):
        if _STATE.active:
            raise RuntimeError("nested vbatch traces are not supported")
        specs = (
            tuple(in_axes)
            if isinstance(in_axes, (tuple, list))
            else (in_axes,) * len(args)
        )
        if len(specs) != len(args):
            raise ValueError(
                f"in_axes has {len(specs)} entries for {len(args)} arguments"
            )
        sizes: List[int] = []
        wrapped = [_wrap_in(s, a, sizes) for s, a in zip(specs, args)]
        if not sizes:
            raise ValueError("in_axes selected no argument to batch")
        n = sizes[0]
        if any(s != n for s in sizes):
            raise ValueError(f"inconsistent batch sizes {sorted(set(sizes))}")
        _STATE.active, _STATE.size = True, n
        try:
            out = fn(*wrapped, **kwargs)
        finally:
            _STATE.active, _STATE.size = False, 0
        return _unwrap_out(out_axes, out, n)

    batched.__name__ = f"vbatch({getattr(fn, '__name__', 'fn')})"
    return batched

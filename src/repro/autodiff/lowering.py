"""Lowering pass: a traced :class:`~repro.autodiff.compile.CompiledProgram`
to a small SSA-style IR, plus the optimisation passes the codegen backend
(:mod:`repro.autodiff.codegen`) consumes.

The compiled replay engine (PR 2) removed per-iteration tracing but still
walks a Python list of closures op-by-op: every elementwise node pays an
interpreter dispatch on the forward sweep and a closure call **plus a
fresh temporary** on the backward sweep.  This module converts the
recorded tape into explicit IR nodes — one per recorded op, forward and
backward both — and runs three passes over it:

1. **Elementwise-chain fusion** — maximal runs of shape-compatible
   elementwise ops in the forward schedule become one *fusion group*,
   emitted by the codegen backend as a single straight-line block of
   in-place NumPy kernels (and profiled as one unit).  A change of
   output shape (broadcast mismatch) splits a chain; views and opaque
   ops are fusion barriers.
2. **Dead-buffer elimination** — a node's persistent value buffer is
   dropped when no retained computation reads it after the forward sweep
   (its own VJP does not reference the output, no consumer's VJP
   references it as an operand, and every consumer is lowered
   symbolically).  Cotangent buffers of all interior (non-leaf,
   non-root) nodes are likewise dropped — the backward sweep writes them
   into arena slots instead of one persistent buffer per node.
3. **Arena planning** — every dropped buffer, and every scratch
   temporary the backward emitter needs, becomes a liveness interval on
   a global (forward + backward) step timeline; :class:`ArenaPlanner`
   assigns intervals to a small pool of reusable slots (greedy
   interval-graph colouring per ``(shape, dtype)`` class), so the
   persistent pool shrinks instead of holding one double buffer per
   node.

Anything the IR cannot express symbolically — ``solve``, ``matmul`` in
stacked layouts, sparse ops, ``concatenate``/``stack``, fancy masks —
stays **opaque**: the emitted source calls straight back into the
closures the trace recorded, so a program containing non-fusible ops
still lowers (those nodes and their operands are simply pinned to their
persistent buffers).  When lowering itself is impossible the caller
falls back to the replay tier; correctness never depends on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.autodiff.compile import CompiledProgram, _estimate_cost
from repro.autodiff.tensor import Tensor, VIEW_FWD

__all__ = [
    "ArenaPlanner",
    "FusionGroup",
    "IRNode",
    "LoweredProgram",
    "LoweringError",
    "OpSpec",
    "ELEMWISE_SPECS",
    "REDUCTION_OPS",
    "lower",
    "unbroadcast_plan",
]


class LoweringError(RuntimeError):
    """Raised when a program cannot be lowered (caller falls back)."""


# ----------------------------------------------------------------------
# Op specs: what the symbolic backward of each elementwise op reads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """Static lowering facts for one elementwise primitive.

    ``reads_out`` — some emitted VJP references the node's own output
    buffer (``exp``, ``tanh``, ...), which pins the value buffer across
    the forward→backward boundary.  ``reads_args[j]`` — the set of
    operand positions whose *values* the VJP for parent-arg ``j`` reads;
    any node sitting in one of those positions must keep its value alive
    into the backward sweep.  ``masks`` names the auxiliary mask buffers
    the forward refreshes for the backward (``maximum``/``clip``).
    """

    name: str
    nargs: int
    reads_out: bool = False
    reads_args: Tuple[Tuple[int, ...], ...] = ()
    masks: Tuple[str, ...] = ()


def _spec(name, nargs, reads_out=False, reads_args=None, masks=()):
    if reads_args is None:
        reads_args = tuple(() for _ in range(nargs))
    return OpSpec(name, nargs, reads_out, tuple(tuple(r) for r in reads_args), masks)


#: Elementwise primitives the codegen backend lowers symbolically.
ELEMWISE_SPECS: Dict[str, OpSpec] = {
    s.name: s
    for s in [
        _spec("add", 2),
        _spec("sub", 2),
        _spec("mul", 2, reads_args=((1,), (0,))),
        _spec("div", 2, reads_args=((1,), (0, 1))),
        _spec("neg", 1),
        # base-branch only; an exponent on the tape makes the node opaque
        _spec("power", 2, reads_args=((0, 1), (0, 1))),
        _spec("square", 1, reads_args=((0,),)),
        _spec("sqrt", 1, reads_out=True),
        _spec("abs", 1, reads_args=((0,),)),
        _spec("exp", 1, reads_out=True),
        _spec("log", 1, reads_args=((0,),)),
        _spec("sin", 1, reads_args=((0,),)),
        _spec("cos", 1, reads_args=((0,),)),
        _spec("tanh", 1, reads_out=True),
        _spec("sinh", 1, reads_args=((0,),)),
        _spec("cosh", 1, reads_args=((0,),)),
        _spec("arctan", 1, reads_args=((0,),)),
        _spec("sigmoid", 1, reads_out=True),
        _spec("maximum", 2, masks=("mask", "notmask")),
        _spec("minimum", 2, masks=("mask", "notmask")),
        _spec("where", 2),
        _spec("clip", 1, masks=("mask", "mask2")),
    ]
}

#: Reductions with symbolic forward + backward (single-node groups).
REDUCTION_OPS = ("sum", "mean")

#: matmul (ndim_a, ndim_b) combinations the emitter handles in-place:
#: the 1-D/2-D solver paths plus every ``ndim >= 2`` stacked combination
#: (eager's general VJP ``unbroadcast(g @ swapaxes(B, -1, -2))`` maps
#: onto the emitter's unbroadcast plans directly).  Inner products
#: (scalar output) and 1-D-against-stacked stay opaque.
MATMUL_COMBOS = {(2, 2), (2, 1), (1, 2)}


def matmul_symbolic(na: int, nb: int) -> bool:
    """True when the emitter has an in-place kernel for this rank combo."""
    return (na, nb) in MATMUL_COMBOS or (na >= 2 and nb >= 2)


# ----------------------------------------------------------------------
# IR
# ----------------------------------------------------------------------
@dataclass
class IRNode:
    """One recorded op (or leaf) of the program, in trace order.

    ``idx`` is the node's position in the program's root-first
    topological order; ``args`` resolves each canonical operand to
    ``("node", idx)`` or ``("const", key)``; ``arg_pos[j]`` is the
    operand position parent slot ``j`` claimed.
    """

    idx: int
    op: str
    kind: str  # "leaf" | "view" | "elemwise" | "reduction" | "matmul" | "opaque"
    node: Tensor
    parents: List[int] = field(default_factory=list)
    arg_pos: List[int] = field(default_factory=list)
    args: List[Tuple[str, Any]] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    children: List[int] = field(default_factory=list)
    symbolic_fwd: bool = False
    symbolic_bwd: bool = False
    # storage decisions (filled by the DBE pass)
    value_transient: bool = False
    cot_transient: bool = False
    fwd_step: int = -1
    last_value_use: int = -1
    group: int = -1

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.node.data.shape

    @property
    def dtype(self):
        return self.node.data.dtype


@dataclass
class FusionGroup:
    """A contiguous run of the forward schedule emitted as one kernel."""

    gid: int
    kind: str  # "fused" | "reduction" | "matmul" | "opaque"
    members: List[int] = field(default_factory=list)
    shape: Tuple[int, ...] = ()
    flops: float = 0.0
    bytes_moved: float = 0.0

    def name(self, nodes: Sequence[IRNode]) -> str:
        ops = "+".join(nodes[i].op for i in self.members[:6])
        if len(self.members) > 6:
            ops += f"+{len(self.members) - 6}more"
        return f"k{self.gid}[{ops}]"


@dataclass
class BwdStep:
    """One flattened backward push: node ``src`` → parent ``dst``."""

    step: int
    src: int
    slot: int
    dst: int
    first: bool


@dataclass
class LoweredStats:
    """Summary the profiler/metrics layer surfaces."""

    n_ops: int = 0
    n_symbolic: int = 0
    n_fused: int = 0
    n_opaque: int = 0
    n_groups: int = 0
    n_fused_groups: int = 0
    values_dropped: int = 0
    cotangents_dropped: int = 0
    dropped_bytes: int = 0
    arena_bytes: int = 0
    arena_slots: int = 0
    cse_hits: int = 0

    @property
    def fused_fraction(self) -> float:
        return self.n_symbolic / self.n_ops if self.n_ops else 0.0


@dataclass
class LoweredProgram:
    """The IR + pass results handed to the codegen emitter."""

    program: CompiledProgram
    nodes: List[IRNode]
    fwd_schedule: List[int]
    bwd_steps: List[BwdStep]
    groups: List[FusionGroup]
    consts: Dict[int, Tuple[str, Any]]  # id(obj) -> (name, obj)
    stats: LoweredStats
    n_fwd_steps: int = 0
    # Cotangent liveness endpoints on the global step timeline.
    first_write: Dict[int, int] = field(default_factory=dict)
    last_read: Dict[int, int] = field(default_factory=dict)
    # tanh node idx -> idx of a taped ``1 - tanh^2`` the VJP can reuse.
    cse_tanh: Dict[int, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Arena planning
# ----------------------------------------------------------------------
class ArenaPlanner:
    """Liveness-interval slot allocator for transient buffers.

    Requests must arrive sorted by ``start`` (the emitter walks the step
    timeline monotonically, so this holds by construction).  A slot is
    reused once the interval occupying it has ended *strictly before*
    the new interval starts; two live intervals therefore never share a
    slot — the property test in ``tests/property`` asserts exactly this
    invariant over random interval streams.
    """

    def __init__(self) -> None:
        self._free: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
        self._busy_until: Dict[int, int] = {}
        self._slot_key: Dict[int, Tuple[Tuple[int, ...], str]] = {}
        self.slots: List[Tuple[Tuple[int, ...], str]] = []
        self.intervals: List[Tuple[int, int, int]] = []  # (slot, start, end)
        self._last_start = -1

    def alloc(self, shape: Tuple[int, ...], dtype: Any, start: int, end: int) -> int:
        """Return a slot id for an interval ``[start, end]`` (inclusive)."""
        if start < self._last_start:
            raise LoweringError(
                f"arena requests must be start-sorted ({start} < {self._last_start})"
            )
        if end < start:
            raise LoweringError(f"empty liveness interval [{start}, {end}]")
        self._last_start = start
        key = (tuple(shape), str(dtype))
        # Release every slot whose interval ended before this start.
        for slot, until in list(self._busy_until.items()):
            if until < start:
                del self._busy_until[slot]
                self._free.setdefault(self._slot_key[slot], []).append(slot)
        pool = self._free.get(key)
        if pool:
            slot = pool.pop()
        else:
            slot = len(self.slots)
            self.slots.append(key)
            self._slot_key[slot] = key
        self._busy_until[slot] = end
        self.intervals.append((slot, start, end))
        return slot

    @property
    def total_bytes(self) -> int:
        return sum(
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dt).itemsize
            if shape
            else np.dtype(dt).itemsize
            for shape, dt in self.slots
        )

    def verify(self) -> None:
        """Assert no two intervals assigned to one slot overlap."""
        per_slot: Dict[int, List[Tuple[int, int]]] = {}
        for slot, start, end in self.intervals:
            per_slot.setdefault(slot, []).append((start, end))
        for slot, ivals in per_slot.items():
            ivals.sort()
            for (s0, e0), (s1, e1) in zip(ivals, ivals[1:]):
                if s1 <= e0:
                    raise AssertionError(
                        f"arena slot {slot}: intervals [{s0},{e0}] and "
                        f"[{s1},{e1}] overlap"
                    )


def unbroadcast_plan(
    out_shape: Tuple[int, ...], target_shape: Tuple[int, ...]
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Static sum-axes plan mirroring :func:`~repro.autodiff.tensor.unbroadcast`.

    Returns ``None`` when shapes already match (no reduction needed);
    otherwise ``(lead_axes, keep_axes)``: the leading axes broadcasting
    prepended (summed first, without keepdims) and the axes expanded
    from size one (summed second, with ``keepdims=True``), after which a
    ``reshape(target_shape)`` lands the exact target — the same three
    steps, in the same order, as the eager helper, so the reduction
    order (and hence the floating-point bits) match.
    """
    if tuple(out_shape) == tuple(target_shape):
        return None
    extra = len(out_shape) - len(target_shape)
    lead = tuple(range(extra)) if extra > 0 else ()
    mid = out_shape[extra:] if extra > 0 else out_shape
    keep = tuple(
        i for i, s in enumerate(target_shape) if s == 1 and mid[i] != 1
    )
    return lead, keep


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
def _classify(ir: IRNode) -> None:
    """Fill ``kind`` / ``symbolic_fwd`` / ``symbolic_bwd`` for one node."""
    node = ir.node
    if not node._parents:
        ir.kind = "leaf"
        return
    meta = node._meta
    if node._fwd is VIEW_FWD:
        ir.kind = "view"
        ir.symbolic_bwd = meta is not None and node._op in (
            "reshape",
            "transpose",
            "getitem",
        )
        return
    op = node._op
    if meta is None:
        ir.kind = "opaque"
        return
    if op in ELEMWISE_SPECS:
        ir.kind = "elemwise"
        ir.symbolic_fwd = True
        ir.symbolic_bwd = True
        return
    if op in REDUCTION_OPS:
        ir.kind = "reduction"
        ir.symbolic_fwd = True
        ir.symbolic_bwd = True
        return
    if op == "matmul":
        a, b = meta[0]
        if matmul_symbolic(a.ndim, b.ndim) and ir.node.data.ndim > 0:
            ir.kind = "matmul"
            ir.symbolic_fwd = True
            ir.symbolic_bwd = True
            return
        ir.kind = "opaque"
        return
    if op == "getitem":
        # Copying getitem: closure forward, symbolic scatter backward.
        ir.kind = "opaque"
        ir.symbolic_bwd = True
        return
    ir.kind = "opaque"


def _resolve_args(ir: IRNode, nodes: List[IRNode], pos: Dict[int, int], consts) -> bool:
    """Map parents/constants onto the op's canonical operand positions.

    Returns False (→ opaque) when a parent's buffer cannot be identified
    among the recorded operands, or a differentiated operand sits in a
    position the emitter has no VJP for (``power`` exponents).
    """
    meta = ir.node._meta
    operands = meta[0] if meta else ()
    ir.params = dict(meta[1]) if meta and meta[1] else {}
    parent_data = [nodes[p].node.data for p in ir.parents]
    claimed: List[Optional[int]] = [None] * len(operands)
    ir.arg_pos = []
    for j, pdata in enumerate(parent_data):
        hit = -1
        for k, arg in enumerate(operands):
            if claimed[k] is None and arg is pdata:
                hit = k
                break
        if hit < 0:
            return False
        claimed[hit] = j
        ir.arg_pos.append(hit)
    ir.args = []
    for k, arg in enumerate(operands):
        if claimed[k] is not None:
            ir.args.append(("node", ir.parents[claimed[k]]))
        else:
            key = id(arg)
            if key not in consts:
                consts[key] = (f"c{len(consts)}", arg)
            ir.args.append(("const", key))
    if ir.op == "power" and any(p == 1 for p in ir.arg_pos):
        return False  # exponent on the tape: no symbolic VJP
    return True


def lower(program: CompiledProgram) -> LoweredProgram:
    """Build the IR, run fusion + DBE, and compute liveness intervals.

    Arena *slot assignment* happens in the emitter (requests must be
    step-sorted and include backward scratch temporaries); this pass
    decides *which* buffers are transient and their liveness endpoints.
    """
    if not program.replayable:
        raise LoweringError(
            f"program is not replayable (op {program.unreplayable_op!r})"
        )
    order = program._order
    pos = {id(n): i for i, n in enumerate(order)}
    consts: Dict[int, Tuple[str, Any]] = {}

    nodes: List[IRNode] = []
    for i, n in enumerate(order):
        ir = IRNode(idx=i, op=n._op, kind="opaque", node=n)
        ir.parents = [pos[id(p)] for p, _ in n._parents]
        _classify(ir)
        nodes.append(ir)
    for ir in nodes:
        for p in ir.parents:
            nodes[p].children.append(ir.idx)

    # Resolve operands; demote to opaque when identification fails.
    for ir in nodes:
        if ir.kind in ("elemwise", "reduction", "matmul") or (
            ir.kind in ("view", "opaque") and ir.symbolic_bwd
        ):
            if not _resolve_args(ir, nodes, pos, consts):
                ir.kind = "opaque" if ir.kind != "view" else "view"
                ir.symbolic_fwd = False
                ir.symbolic_bwd = False

    # ------------------------------------------------------------------
    # Forward schedule + elementwise-chain fusion (views are barriers)
    # ------------------------------------------------------------------
    fwd_schedule: List[int] = []
    groups: List[FusionGroup] = []
    open_group: Optional[FusionGroup] = None
    step = 0

    def close():
        nonlocal open_group
        open_group = None

    for n in reversed(order):  # leaves first = execution order
        ir = nodes[pos[id(n)]]
        if ir.kind == "leaf":
            continue
        if ir.kind == "view":
            close()  # views are fusion barriers (alias, no kernel)
            continue
        flops, moved = _estimate_cost(
            ir.op, ir.node.data, [p for p, _ in n._parents]
        )
        if ir.kind == "elemwise":
            if open_group is None or open_group.shape != ir.shape:
                close()
                open_group = FusionGroup(
                    gid=len(groups), kind="fused", shape=ir.shape
                )
                groups.append(open_group)
            g = open_group
        else:
            close()
            g = FusionGroup(gid=len(groups), kind=ir.kind, shape=ir.shape)
            groups.append(g)
        g.members.append(ir.idx)
        g.flops += flops
        g.bytes_moved += moved
        ir.group = g.gid
        ir.fwd_step = step
        fwd_schedule.append(ir.idx)
        step += 1
    n_fwd = step

    # ------------------------------------------------------------------
    # Backward schedule (identical order + first-write flags as replay)
    # ------------------------------------------------------------------
    bwd_steps: List[BwdStep] = []
    initialised: Set[int] = {0}
    for i, n in enumerate(order):
        for slot, (p, _) in enumerate(n._parents):
            pi = pos[id(p)]
            first = pi not in initialised
            initialised.add(pi)
            bwd_steps.append(
                BwdStep(step=n_fwd + len(bwd_steps), src=i, slot=slot, dst=pi, first=first)
            )

    # ------------------------------------------------------------------
    # Dead-buffer elimination
    # ------------------------------------------------------------------
    # Value buffers: drop when nothing after the forward sweep reads them.
    needed_in_bwd: Set[int] = set()
    for ir in nodes:
        if not ir.symbolic_bwd:
            continue
        spec = ELEMWISE_SPECS.get(ir.op)
        if spec is not None and spec.reads_out and ir.parents:
            needed_in_bwd.add(ir.idx)
        read_positions: Set[int] = set()
        if ir.kind == "matmul":
            read_positions = {0, 1}
        elif spec is not None:
            for j in range(len(ir.parents)):
                read_positions.update(spec.reads_args[ir.arg_pos[j]])
        for k in read_positions:
            kind, ref = ir.args[k]
            if kind == "node":
                needed_in_bwd.add(ref)

    # Forward→backward CSE: the tanh VJP recomputes ``1 - o*o``, but the
    # PINN derivative propagation already tapes exactly that chain
    # (``sub(1.0, square(tanh))``) in the forward pass.  Reusing the
    # stored value is bitwise-identical — the forward ran the same ufuncs
    # on the same inputs the VJP would (``np.multiply(o, o)`` then
    # ``np.subtract(1.0, .)``) — and turns a three-kernel backward chain
    # into a single multiply.  The reused buffer is pinned so DBE keeps it.
    cse_tanh: Dict[int, int] = {}
    for ir in nodes:
        if ir.op != "sub" or ir.kind != "elemwise" or not ir.symbolic_fwd:
            continue
        if len(ir.args) != 2 or ir.args[0][0] != "const" or ir.args[1][0] != "node":
            continue
        cval = consts[ir.args[0][1]][1]
        if np.ndim(cval) != 0 or not isinstance(
            cval, (int, float, np.floating, np.integer, np.ndarray)
        ) or float(cval) != 1.0:
            continue
        q = nodes[ir.args[1][1]]
        if (
            q.op != "square"
            or q.kind != "elemwise"
            or not q.args
            or q.args[0][0] != "node"
        ):
            continue
        t = q.args[0][1]
        if (
            nodes[t].op == "tanh"
            and nodes[t].symbolic_bwd
            and ir.shape == nodes[t].shape
        ):
            cse_tanh.setdefault(t, ir.idx)
            needed_in_bwd.add(ir.idx)

    leafset = {i for i, ir in enumerate(nodes) if ir.kind == "leaf"}
    for ir in nodes:
        if (
            ir.kind == "elemwise"
            and ir.idx != 0
            and ir.idx not in needed_in_bwd
            and ir.children
            and all(
                nodes[c].symbolic_fwd and nodes[c].kind != "view"
                for c in ir.children
            )
        ):
            ir.value_transient = True
            ir.last_value_use = max(nodes[c].fwd_step for c in ir.children)

    # Cotangent buffers: every interior node's cotangent lives only
    # between its first backward write and its last backward read.
    first_write: Dict[int, int] = {}
    last_read: Dict[int, int] = {}
    for s in bwd_steps:
        first_write.setdefault(s.dst, s.step)
        last_read[s.src] = s.step
    for ir in nodes:
        if ir.idx == 0 or ir.idx in leafset:
            continue
        if ir.idx in first_write and ir.idx in last_read:
            ir.cot_transient = True

    stats = LoweredStats()
    stats.n_ops = len(fwd_schedule)
    stats.n_symbolic = sum(1 for i in fwd_schedule if nodes[i].symbolic_fwd)
    stats.n_opaque = stats.n_ops - stats.n_symbolic
    stats.n_groups = len(groups)
    stats.n_fused_groups = sum(1 for g in groups if g.kind == "fused")
    stats.n_fused = sum(len(g.members) for g in groups if g.kind == "fused")
    stats.values_dropped = sum(1 for ir in nodes if ir.value_transient)
    stats.cotangents_dropped = sum(1 for ir in nodes if ir.cot_transient)
    stats.dropped_bytes = sum(
        ir.node.data.nbytes
        for ir in nodes
        if ir.value_transient
    ) + sum(ir.node.data.nbytes for ir in nodes if ir.cot_transient)
    stats.cse_hits = len(cse_tanh)

    return LoweredProgram(
        program=program,
        nodes=nodes,
        fwd_schedule=fwd_schedule,
        bwd_steps=bwd_steps,
        groups=groups,
        consts=consts,
        stats=stats,
        n_fwd_steps=n_fwd,
        first_write=first_write,
        last_read=last_read,
        cse_tanh=cse_tanh,
    )

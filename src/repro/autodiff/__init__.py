"""Reverse-mode automatic differentiation engine (pure NumPy).

This subpackage is the repository's substitute for JAX (which the paper's
``Updec`` framework builds on, and which is unavailable offline).  It
provides:

- :class:`~repro.autodiff.tensor.Tensor` — a NumPy array wrapped with a
  dynamically built computation tape.
- A complete set of differentiable primitives in
  :mod:`repro.autodiff.ops` (arithmetic, reductions, indexing,
  concatenation, elementwise transcendentals, ``matmul``).
- Differentiable linear algebra in :mod:`repro.autodiff.linalg`
  (``solve`` with the adjoint-system VJP, the key primitive enabling
  *discretise-then-optimise* differentiable programming through an implicit
  PDE solver).
- Function transforms in :mod:`repro.autodiff.functional` —
  :func:`grad`, :func:`value_and_grad`, :func:`jacobian` — mirroring the JAX
  API used by the paper.
- A trace-once compiled replay engine in :mod:`repro.autodiff.compile` —
  :func:`compiled_value_and_grad` records the tape on the first call and
  replays forward + backward over reused buffers thereafter, the NumPy
  analogue of ``jax.jit`` around a loss (used by the DP and PINN hot
  loops via their ``compile=True`` options).
- A fused-source codegen backend in :mod:`repro.autodiff.lowering` /
  :mod:`repro.autodiff.codegen` — ``compile="codegen"`` lowers the trace
  to an SSA-style IR, fuses elementwise chains, drops dead buffers, plans
  an arena of reusable scratch slots, and emits one straight-line NumPy
  kernel per program; non-lowerable programs fall back to replay.
- Numerical gradient checking in :mod:`repro.autodiff.check`.

Gradients are exact (to floating point) wherever defined: the engine applies
the chain rule over primitive vector-Jacobian products, exactly as JAX's
``grad`` would, which is what makes the DP method's gradients the "gold
standard" the paper describes.
"""

from repro.autodiff.tensor import Tensor, tensor, is_tensor, asdata
from repro.autodiff import ops
from repro.autodiff.batching import (
    BatchTracer,
    BatchedMask,
    batch_size,
    declared_fallbacks,
    has_batch_rule,
    is_batching,
    registered_primitives,
    vbatch,
)
from repro.autodiff.ops import (
    abs_,
    add,
    amax,
    arctan,
    clip,
    concatenate,
    cos,
    cosh,
    div,
    dot,
    exp,
    getitem,
    log,
    matmul,
    maximum,
    mean,
    minimum,
    mul,
    neg,
    power,
    reshape,
    sigmoid,
    sin,
    sinh,
    sqrt,
    square,
    stack,
    sub,
    sum_,
    tanh,
    transpose,
    where,
)
from repro.autodiff.linalg import solve, lstsq, norm, LUSolver
from repro.autodiff.sparse import (
    SparseLUSolver,
    make_linear_solver,
    sparse_matvec,
    sparse_pattern_solve,
    sparse_solve,
)
from repro.autodiff.functional import (
    grad,
    value_and_grad,
    jacobian,
    stop_gradient,
)
from repro.autodiff.compile import (
    CompiledProgram,
    CompileError,
    ReplayProfile,
    compiled_value_and_grad,
    compiled_value_and_grad_tree,
    resolve_compile_mode,
)
from repro.autodiff.lowering import (
    ArenaPlanner,
    LoweredProgram,
    LoweredStats,
    LoweringError,
    lower,
    unbroadcast_plan,
)
from repro.autodiff.codegen import CodegenProgram, codegen_program
from repro.autodiff.check import (
    numerical_gradient,
    check_gradient,
    directional_numerical_derivative,
)

__all__ = [
    "Tensor",
    "tensor",
    "is_tensor",
    "asdata",
    "ops",
    "BatchTracer",
    "BatchedMask",
    "batch_size",
    "declared_fallbacks",
    "has_batch_rule",
    "is_batching",
    "registered_primitives",
    "vbatch",
    "abs_",
    "add",
    "amax",
    "arctan",
    "clip",
    "concatenate",
    "cos",
    "cosh",
    "div",
    "dot",
    "exp",
    "getitem",
    "log",
    "matmul",
    "maximum",
    "mean",
    "minimum",
    "mul",
    "neg",
    "power",
    "reshape",
    "sigmoid",
    "sin",
    "sinh",
    "sqrt",
    "square",
    "stack",
    "sub",
    "sum_",
    "tanh",
    "transpose",
    "where",
    "solve",
    "LUSolver",
    "SparseLUSolver",
    "make_linear_solver",
    "sparse_solve",
    "sparse_matvec",
    "sparse_pattern_solve",
    "lstsq",
    "norm",
    "grad",
    "value_and_grad",
    "jacobian",
    "stop_gradient",
    "CompiledProgram",
    "CompileError",
    "ReplayProfile",
    "compiled_value_and_grad",
    "compiled_value_and_grad_tree",
    "resolve_compile_mode",
    "ArenaPlanner",
    "LoweredProgram",
    "LoweredStats",
    "LoweringError",
    "lower",
    "unbroadcast_plan",
    "CodegenProgram",
    "codegen_program",
    "numerical_gradient",
    "check_gradient",
    "directional_numerical_derivative",
]

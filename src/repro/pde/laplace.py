"""The Laplace optimal-control problem of §3.1.

.. math::

    \\Delta u = 0 \\;\\text{in}\\; \\Omega = (0,1)^2, \\quad
    u(x, 1) = c(x), \\quad u(x, 0) = \\sin \\pi x, \\quad
    u(0, y) = u(1, y) = 0,

with the convex cost

.. math::

    \\mathcal J(c) = \\int_0^1
        \\Big| \\frac{\\partial u}{\\partial y}(x, 1) - \\cos \\pi x \\Big|^2
        \\, dx .

The problem has the analytic minimiser (paper, §3.1)

.. math::

    c^*(x) = \\operatorname{sech}(2\\pi) \\sin(2\\pi x)
           + \\tfrac{1}{2\\pi} \\tanh(2\\pi) \\cos(2\\pi x),

used throughout the tests and figures as ground truth.

.. note:: **Reconciliation of a paper typo.**  The boundary data printed
   in the paper's eq. (7) — bottom ``sin πx``, target ``cos πx``, zero
   lateral walls — is *inconsistent with the analytic minimiser the same
   section states*: the given ``(c*, u*)`` pair satisfies bottom data
   ``sin 2πx``, target flux ``cos 2πx`` and lateral traces
   ``(1/2π) sech(2π) sinh(2πy)`` (one can check ``u*(x,0) = sin 2πx``
   exactly).  This matches the source problem in Mowlavi & Nabi (2023).
   We implement the *consistent* version so the analytic optimum really
   is the ground truth the figures compare against; the structure of the
   control problem (Dirichlet control on the top wall, flux-tracking
   cost) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.cloud.base import Cloud
from repro.cloud.square import SquareCloud
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.local import build_local_operators
from repro.rbf.operators import NodalOperators, build_nodal_operators
from repro.pde.discrete import (
    FieldBCs,
    assemble_field_system,
    interior_mask,
    selection_matrix,
)
from repro.utils.quadrature import trapezoid_weights


def laplace_optimal_control(x: np.ndarray) -> np.ndarray:
    """The analytic minimiser ``c*(x)`` of the Laplace control problem."""
    x = np.asarray(x, dtype=np.float64)
    sech = 1.0 / np.cosh(2 * np.pi)
    return sech * np.sin(2 * np.pi * x) + (np.tanh(2 * np.pi) / (2 * np.pi)) * np.cos(
        2 * np.pi * x
    )


def laplace_optimal_state(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The state ``u*(x, y)`` corresponding to the analytic minimiser."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    sech = 1.0 / np.cosh(2 * np.pi)
    term1 = (
        0.5
        * sech
        * np.sin(2 * np.pi * x)
        * (np.exp(2 * np.pi * (y - 1)) + np.exp(2 * np.pi * (1 - y)))
    )
    term2 = (
        (1.0 / (4 * np.pi))
        * sech
        * np.cos(2 * np.pi * x)
        * (np.exp(2 * np.pi * y) - np.exp(-2 * np.pi * y))
    )
    return term1 + term2


def laplace_target_flux(x: np.ndarray) -> np.ndarray:
    """The target normal flux ``cos 2πx`` on the top wall.

    (The flux of the stated analytic optimum; see the module note on the
    paper's eq. (7) typo.)
    """
    return np.cos(2 * np.pi * np.asarray(x, dtype=np.float64))


def laplace_bottom_data(x: np.ndarray) -> np.ndarray:
    """The fixed Dirichlet data ``sin 2πx`` on the bottom wall."""
    return np.sin(2 * np.pi * np.asarray(x, dtype=np.float64))


def laplace_side_data(y: np.ndarray) -> np.ndarray:
    """Lateral-wall Dirichlet data ``(1/2π) sech(2π) sinh(2πy)``.

    The trace of the analytic optimal state on ``x = 0`` and ``x = 1``
    (identical on both by periodicity of the x-dependence).
    """
    y = np.asarray(y, dtype=np.float64)
    return (1.0 / (2 * np.pi)) * (1.0 / np.cosh(2 * np.pi)) * np.sinh(2 * np.pi * y)


@dataclass
class LaplaceControlProblem:
    """Discretised Laplace control problem on a square cloud.

    Precomputes everything the DAL/DP/FD oracles share: the (constant)
    collocation system, the top-wall flux rows, the quadrature weights,
    and the control scatter matrix.

    Attributes
    ----------
    cloud:
        The unit-square cloud (all-Dirichlet boundary).
    nodal:
        The operator bundle: dense :class:`NodalOperators` for
        ``backend="dense"`` (the paper's global collocation), sparse
        :class:`~repro.rbf.local.LocalOperators` for ``backend="local"``
        (RBF-FD stencils).  Both expose ``dx``/``dy``/``lap``/``normal``.
    system:
        The collocation matrix in the backend's storage format — dense
        ``ndarray`` or ``scipy.sparse`` CSR.  The DP/DAL oracles pick the
        matching solver from it via
        :func:`~repro.autodiff.sparse.make_linear_solver` using the
        problem's ``solver``/``solver_opts`` fields.
    solver:
        ``"direct"`` (cached LU, the default) or ``"iterative"`` (the
        matrix-free Krylov backend — requires ``backend="local"``, since
        the whole point is never materialising a dense system).
    solver_opts:
        Keyword options forwarded to
        :class:`~repro.autodiff.krylov.KrylovSolver` (``tol``,
        ``maxiter``, ``preconditioner``, ``fallback``, ...).  Must be
        ``None``/empty for the direct solver.
    control_x:
        Top-wall node abscissae (control parameterisation: one value per
        top node, i.e. the control is discretised on the boundary nodes,
        exactly as in the paper's RBF framework).
    """

    cloud: Cloud
    kernel: Optional[Kernel] = None
    degree: int = 1
    backend: str = "dense"
    stencil_size: Optional[int] = None
    solver: str = "direct"
    solver_opts: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.backend not in ("dense", "local"):
            raise ValueError(
                f"backend must be 'dense' or 'local', got {self.backend!r}"
            )
        if self.solver not in ("direct", "iterative"):
            raise ValueError(
                f"solver must be 'direct' or 'iterative', got {self.solver!r}"
            )
        if self.solver == "iterative" and self.backend != "local":
            raise ValueError(
                "solver='iterative' requires backend='local' (the Krylov "
                "backend operates on the sparse RBF-FD system)"
            )
        if self.solver == "direct" and self.solver_opts:
            raise TypeError(
                "solver_opts are only meaningful with solver='iterative'; "
                f"got {sorted(self.solver_opts)}"
            )
        self.kernel = self.kernel or polyharmonic(3)
        if self.backend == "dense":
            self.nodal = build_nodal_operators(
                self.cloud, self.kernel, self.degree
            )
        else:
            self.nodal = build_local_operators(
                self.cloud, self.kernel, self.degree, self.stencil_size
            )
        cloud = self.cloud
        self.top = cloud.groups["top"]
        self.bottom = cloud.groups["bottom"]
        self.left = cloud.groups["left"]
        self.right = cloud.groups["right"]

        # Top nodes sorted by x (generator emits them sorted; assert).
        self.control_x = cloud.points[self.top, 0]
        if np.any(np.diff(self.control_x) <= 0):
            raise ValueError("top-wall nodes must be sorted by x")
        self.n_control = self.top.size

        # Quadrature for J over x ∈ (0, 1): top nodes exclude the corners,
        # so extend weights to the full interval ends for consistency.
        xq = np.concatenate([[0.0], self.control_x, [1.0]])
        wq = trapezoid_weights(xq)
        self.quad_w = wq[1:-1]  # integrand vanishes is *not* assumed; the
        # endpoint contributions use the nearest interior value, a second-
        # order-consistent closure on a uniform grid.
        self.quad_w[0] += wq[0]
        self.quad_w[-1] += wq[-1]

        # Constant system matrix: Laplacian interior rows + unit boundary
        # rows (all four walls Dirichlet).
        bcs = FieldBCs(
            kinds={g: "dirichlet" for g in ("top", "bottom", "left", "right")}
        )
        self.system = assemble_field_system(cloud, self.nodal, self.nodal.lap, bcs)

        # RHS decomposition: b = b_fixed + S_top @ c.
        self.S_top = selection_matrix(cloud.n, self.top)
        b_fixed = np.zeros(cloud.n)
        b_fixed[self.bottom] = laplace_bottom_data(cloud.points[self.bottom, 0])
        b_fixed[self.left] = laplace_side_data(cloud.points[self.left, 1])
        b_fixed[self.right] = laplace_side_data(cloud.points[self.right, 1])
        self.b_fixed = b_fixed

        # Flux rows: ∂u/∂y at the top nodes.  Kept dense on both backends:
        # there are only O(√N) of them and the DP cost quadrature consumes
        # them through the dense-matmul tape primitive.
        flux = self.nodal.dy[self.top]
        self.flux_rows = flux.toarray() if sp.issparse(flux) else flux
        self.target = laplace_target_flux(self.control_x)

    # ------------------------------------------------------------------
    def rhs(self, c: np.ndarray) -> np.ndarray:
        """Right-hand side for control values ``c`` (NumPy path)."""
        c = np.asarray(c, dtype=np.float64)
        if c.shape != (self.n_control,):
            raise ValueError(
                f"control must have shape ({self.n_control},), got {c.shape}"
            )
        return self.b_fixed + self.S_top @ c

    def cost_from_state(self, u: np.ndarray) -> float:
        """Evaluate J from a nodal state (NumPy path)."""
        mismatch = self.flux_rows @ u - self.target
        return float(self.quad_w @ (mismatch * mismatch))

    def zero_control(self) -> np.ndarray:
        """The paper's initial control (identically zero)."""
        return np.zeros(self.n_control)

    def optimal_control(self) -> np.ndarray:
        """Analytic ``c*`` sampled at the control nodes."""
        return laplace_optimal_control(self.control_x)

    def optimal_state(self) -> np.ndarray:
        """Analytic ``u*`` sampled at all cloud nodes."""
        return laplace_optimal_state(self.cloud.x, self.cloud.y)


def default_laplace_problem(nx: int = 26, **kwargs) -> LaplaceControlProblem:
    """Convenience constructor on a regular ``nx × nx`` grid."""
    return LaplaceControlProblem(SquareCloud(nx), **kwargs)

"""Steady advection–diffusion operator builder.

``(b · ∇)u − κ Δu + σ u = q`` — the linear prototype of the Navier–Stokes
momentum operator (frozen advection), used to stress-test the solver at
high Péclet number and in the extension benchmarks.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.rbf.assembly import LinearOperator2D

Coefficient = Union[float, np.ndarray]


def advection_diffusion_operator(
    bx: Coefficient,
    by: Coefficient,
    kappa: Coefficient = 1.0,
    sigma: Coefficient = 0.0,
) -> LinearOperator2D:
    """Build ``(b·∇) − κΔ + σI`` as a :class:`LinearOperator2D`.

    Coefficients may be scalars or per-evaluation-point arrays (the frozen
    velocity field in a Picard iteration).
    """

    def negate(c: Coefficient) -> Coefficient:
        return -np.asarray(c, dtype=np.float64) if not np.isscalar(c) else -float(c)

    return LinearOperator2D(lap=negate(kappa), dx=bx, dy=by, identity=sigma)

"""Concrete PDE problems built on the RBF substrate.

- :mod:`repro.pde.discrete` — nodal system assembly helpers shared by the
  plain-NumPy and autodiff solver paths (interior-row masks, boundary
  rows, differentiable scatter via selection matrices).
- :mod:`repro.pde.laplace` — the Laplace control problem of §3.1 with its
  analytic optimal control/state pair.
- :mod:`repro.pde.poisson` — manufactured-solution Poisson problems for
  verification.
- :mod:`repro.pde.advection_diffusion` — steady advection–diffusion
  (solver stress test + extension experiments).
- :mod:`repro.pde.navier_stokes` — the stationary incompressible
  Navier–Stokes channel of §3.2, solved with a Chorin-inspired projection
  scheme iterated to steady state, in both NumPy (DAL) and autodiff (DP)
  variants.
"""

from repro.pde.discrete import (
    FieldBCs,
    selection_matrix,
    interior_mask,
    assemble_field_system,
    scatter_boundary_values,
)
from repro.pde.laplace import (
    LaplaceControlProblem,
    laplace_optimal_control,
    laplace_optimal_state,
    laplace_target_flux,
)
from repro.pde.poisson import manufactured_poisson, PoissonCase
from repro.pde.advection_diffusion import advection_diffusion_operator
from repro.pde.navier_stokes import (
    ChannelFlowProblem,
    NSConfig,
    NSState,
    poiseuille_profile,
)
from repro.pde.heat import (
    HeatConfig,
    HeatEquationProblem,
    heat_series_solution,
)

__all__ = [
    "FieldBCs",
    "selection_matrix",
    "interior_mask",
    "assemble_field_system",
    "scatter_boundary_values",
    "LaplaceControlProblem",
    "laplace_optimal_control",
    "laplace_optimal_state",
    "laplace_target_flux",
    "manufactured_poisson",
    "PoissonCase",
    "advection_diffusion_operator",
    "ChannelFlowProblem",
    "NSConfig",
    "NSState",
    "poiseuille_profile",
    "HeatConfig",
    "HeatEquationProblem",
    "heat_series_solution",
]

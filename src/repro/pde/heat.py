"""Unsteady heat equation — the paper's "incorporate time" extension.

The paper's conclusion lists time dependence ("to tackle turbulent
flows") as future work.  This module adds the simplest time-dependent
substrate on the same RBF machinery: the heat equation

.. math::

    \\partial_t u = \\kappa \\Delta u + q \\quad \\text{in } \\Omega,
    \\qquad u = g \\text{ on } \\partial\\Omega,

discretised with the θ-scheme (implicit Euler θ=1, Crank–Nicolson θ=½)
on the nodal RBF operators.  The time-step system matrix is constant, so
a single cached LU factorisation drives the whole trajectory — and since
:class:`~repro.autodiff.linalg.LUSolver` is differentiable, DP through
time (the backpropagation-through-time analogue for PDEs) costs one
factorisation plus one triangular solve per step, forward and backward.

The optimal-control demo: recover an initial condition whose evolved
state matches a target at time ``T`` — a classic severely ill-posed
inverse problem that DP regularises naturally through early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.autodiff import ops
from repro.autodiff.linalg import LUSolver
from repro.autodiff.functional import value_and_grad
from repro.autodiff.tensor import Tensor, tensor
from repro.cloud.base import Cloud
from repro.pde.discrete import boundary_rows, FieldBCs, interior_mask
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.operators import build_nodal_operators


@dataclass
class HeatConfig:
    """Time-integration parameters for the θ-scheme."""

    kappa: float = 1.0
    dt: float = 1e-3
    n_steps: int = 50
    theta: float = 1.0  # 1 → implicit Euler, 0.5 → Crank–Nicolson

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError("theta must lie in [0, 1]")
        if self.dt <= 0 or self.n_steps < 1 or self.kappa <= 0:
            raise ValueError("dt, n_steps, kappa must be positive")


class HeatEquationProblem:
    """Dirichlet heat equation on a cloud, with a differentiable stepper.

    The θ-scheme step reads

    .. math::

        (I - \\theta \\, \\kappa \\, dt \\, \\Delta_h) u^{n+1}
        = (I + (1-\\theta) \\kappa \\, dt \\, \\Delta_h) u^n + dt\\, q

    on interior rows, with unit rows holding the (time-constant) boundary
    data.  Both sides use the same nodal Laplacian; the left system is
    factorised once.
    """

    def __init__(
        self,
        cloud: Cloud,
        config: Optional[HeatConfig] = None,
        kernel: Optional[Kernel] = None,
        degree: int = 1,
        boundary_value: float = 0.0,
    ) -> None:
        self.cloud = cloud
        self.config = config or HeatConfig()
        self.kernel = kernel or polyharmonic(3)
        self.nodal = build_nodal_operators(cloud, self.kernel, degree)
        cfg = self.config

        mask = interior_mask(cloud)[:, None]
        bcs = FieldBCs(
            kinds={
                g: "dirichlet"
                for g in cloud.groups
                if g != "internal"
            }
        )
        brows = boundary_rows(cloud, self.nodal, bcs)
        eye = np.eye(cloud.n)
        lhs = mask * (eye - cfg.theta * cfg.kappa * cfg.dt * self.nodal.lap) + brows
        self.rhs_matrix = mask[:, 0][:, None] * (
            eye + (1 - cfg.theta) * cfg.kappa * cfg.dt * self.nodal.lap
        )
        self.stepper = LUSolver(lhs)
        self.mask_int = interior_mask(cloud)
        b_bc = np.zeros(cloud.n)
        b_bc[cloud.boundary] = boundary_value
        self.b_bc = b_bc

    # ------------------------------------------------------------------
    def step(self, u) -> Tensor:
        """Advance one θ-scheme step (works on arrays or tape tensors)."""
        rhs = ops.matmul(self.rhs_matrix, u) + self.b_bc
        return self.stepper(rhs)

    def evolve(self, u0, n_steps: Optional[int] = None, record: bool = False):
        """Evolve ``u0`` for ``n_steps``; optionally record the trajectory.

        Returns the final state (and the list of states when ``record``).
        Passing a tape tensor makes the whole trajectory differentiable.
        """
        n = n_steps if n_steps is not None else self.config.n_steps
        u = tensor(u0)
        # Project the initial condition onto the boundary data so the
        # trajectory is consistent from step zero.
        u = ops.mul(u, self.mask_int) + self.b_bc
        states: List[Tensor] = [u]
        for _ in range(n):
            u = self.step(u)
            if record:
                states.append(u)
        return (u, states) if record else u

    # ------------------------------------------------------------------
    # Initial-condition inverse problem (DP through time)
    # ------------------------------------------------------------------
    def terminal_misfit(self, u0, target: np.ndarray):
        """``½ Σ (u(T) − target)²`` over interior nodes, differentiable."""
        uT = self.evolve(u0)
        diff = ops.mul(uT - target, self.mask_int)
        return 0.5 * ops.sum_(ops.square(diff))

    def misfit_value_and_grad(
        self, u0: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """DP-through-time gradient of the terminal misfit w.r.t. ``u0``."""
        return value_and_grad(lambda c: self.terminal_misfit(c, target))(
            np.asarray(u0, dtype=np.float64)
        )


def heat_series_solution(
    x: np.ndarray, y: np.ndarray, t: float, kappa: float = 1.0,
    kx: int = 1, ky: int = 1,
) -> np.ndarray:
    """Separable decay mode ``sin(kπx) sin(kπy) e^{−κ(kx²+ky²)π²t}``.

    An exact solution of the homogeneous-Dirichlet heat equation on the
    unit square, used for verification.
    """
    lam = kappa * (kx**2 + ky**2) * np.pi**2
    return (
        np.sin(kx * np.pi * np.asarray(x))
        * np.sin(ky * np.pi * np.asarray(y))
        * np.exp(-lam * t)
    )

"""Manufactured-solution Poisson problems for verification.

Method of manufactured solutions: pick ``u_exact``, compute
``q = Δ u_exact`` analytically, solve ``Δu = q`` with exact Dirichlet data
and compare.  Used by the convergence tests that establish the RBF
discretisation's accuracy before any control experiments run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.cloud.base import Cloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem


@dataclass(frozen=True)
class PoissonCase:
    """A manufactured case: exact solution and matching source."""

    name: str
    exact: Callable[[np.ndarray], np.ndarray]
    source: Callable[[np.ndarray], np.ndarray]


def _trig_exact(p: np.ndarray) -> np.ndarray:
    return np.sin(np.pi * p[:, 0]) * np.sin(2 * np.pi * p[:, 1])


def _trig_source(p: np.ndarray) -> np.ndarray:
    return -5 * np.pi**2 * _trig_exact(p)


def _poly_exact(p: np.ndarray) -> np.ndarray:
    x, y = p[:, 0], p[:, 1]
    return x**3 * y + x * y**2 - 2 * x + 3 * y


def _poly_source(p: np.ndarray) -> np.ndarray:
    x, y = p[:, 0], p[:, 1]
    return 6 * x * y + 2 * x


def _exp_exact(p: np.ndarray) -> np.ndarray:
    return np.exp(p[:, 0] + 0.5 * p[:, 1])


def _exp_source(p: np.ndarray) -> np.ndarray:
    return 1.25 * _exp_exact(p)


CASES: Dict[str, PoissonCase] = {
    "trig": PoissonCase("trig", _trig_exact, _trig_source),
    "poly": PoissonCase("poly", _poly_exact, _poly_source),
    "exp": PoissonCase("exp", _exp_exact, _exp_source),
}


def manufactured_poisson(cloud: Cloud, case: str = "trig") -> LinearPDEProblem:
    """Build ``Δu = q`` with exact Dirichlet data for a named case.

    The cloud must have all-Dirichlet boundary groups (a
    :func:`~repro.cloud.square.SquareCloud` default).
    """
    pc = CASES[case]
    bcs = {
        g: BoundaryCondition("dirichlet", value=pc.exact)
        for g, idx in cloud.groups.items()
        if g != "internal"
    }
    return LinearPDEProblem(
        operator=LinearOperator2D(lap=1.0), source=pc.source, bcs=bcs
    )

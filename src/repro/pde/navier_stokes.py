"""The stationary incompressible Navier–Stokes channel problem (§3.2).

.. math::

    (\\mathbf u \\cdot \\nabla)\\mathbf u = -\\nabla p
        + \\tfrac{1}{Re} \\nabla^2 \\mathbf u, \\qquad
    \\nabla \\cdot \\mathbf u = 0

in the blowing/suction channel, with boundary conditions

- inflow Γi:  ``u = c(y)`` (the control), ``v = 0``;
- walls:      no-slip ``u = v = 0``;
- blowing Γb: ``u = 0``, ``v = v_b(x) > 0`` (into the domain);
- suction Γs: ``u = 0``, ``v = v_s(x) > 0`` (out through the top);
- outflow Γo: ``∂u/∂n = ∂v/∂n = 0``, ``p = 0``.

Cost (eq. 11): track a parabolic outflow,

.. math::

    \\mathcal J(c) = \\tfrac12 \\int_0^{L_y}
        \\big( |u(L_x, y) - u_t(y)|^2 + |v(L_x, y)|^2 \\big)\\, dy,
    \\qquad u_t(y) = \\tfrac{4}{L_y^2}\\, y (L_y - y).

Solution scheme — the paper's "Chorin-inspired projection approach ...
to iteratively bring the fields to steady states" with ``k`` refinements:

1. **momentum** with frozen advection (Picard linearisation) and lagged
   pressure gradient:
   ``(uⁿ·∇)u* − (1/Re)Δu* = −∇pⁿ`` (componentwise, with each field's BCs);
2. **pressure correction**: ``Δφ = (∇·u*) / dt`` with ``∂φ/∂n = 0``
   except ``φ = 0`` at the outflow;
3. **projection**: ``uⁿ⁺¹ = u* − dt ∇φ`` away from Dirichlet nodes,
   ``pⁿ⁺¹ = pⁿ + φ``.

The same assembly runs in two modes: plain NumPy (used by DAL and for
forward evaluation) and on the autodiff tape (used by DP — gradients flow
through *all* ``k`` refinements, which is why DP's memory grows with ``k``
as the paper's Table 3 reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autodiff import ops
from repro.autodiff.linalg import solve as ad_solve
from repro.autodiff.sparse import (
    make_linear_solver,
    sparse_matvec,
    sparse_pattern_solve,
)
from repro.autodiff.tensor import Tensor, asdata, tensor
from repro.cloud.base import Cloud
from repro.cloud.channel import ChannelCloud, ChannelGeometry
from repro.obs.profile import span as _span
from repro.pde.discrete import (
    FieldBCs,
    boundary_rows,
    boundary_rows_sparse,
    interior_mask,
    selection_matrix,
)
from repro.rbf.kernels import Kernel, polyharmonic
from repro.rbf.local import build_local_operators
from repro.rbf.operators import NodalOperators, build_nodal_operators
from repro.utils.quadrature import trapezoid_weights
from repro.utils.validation import check_finite


def poiseuille_profile(y: np.ndarray, ly: float = 1.0) -> np.ndarray:
    """The parabolic profile ``4 y (L_y − y) / L_y²`` (target & initial guess)."""
    y = np.asarray(y, dtype=np.float64)
    return 4.0 * y * (ly - y) / ly**2


def _segment_bump(x: np.ndarray, lo: float, hi: float, amp: float) -> np.ndarray:
    """Parabolic bump on ``[lo, hi]`` vanishing at the ends (C⁰ wall match)."""
    x = np.asarray(x, dtype=np.float64)
    return amp * 4.0 * (x - lo) * (hi - x) / (hi - lo) ** 2


@dataclass
class NSConfig:
    """Solver configuration.

    ``refinements`` is the paper's ``k`` (DAL used 3, DP used 10);
    ``pseudo_dt`` the projection pseudo-timestep; ``relax`` optional
    velocity under-relaxation.
    """

    reynolds: float = 100.0
    refinements: int = 10
    pseudo_dt: float = 0.5
    relax: float = 1.0
    check: bool = True


@dataclass
class NSState:
    """A flow state with convergence history."""

    u: np.ndarray
    v: np.ndarray
    p: np.ndarray
    div_history: List[float] = field(default_factory=list)
    update_history: List[float] = field(default_factory=list)


class ChannelFlowProblem:
    """Discretised channel-flow control problem.

    Precomputes the nodal operators, per-field boundary rows, the constant
    pressure-Poisson factorisation, quadrature for the outflow cost, and
    the blowing/suction data.  Both solver paths and all three control
    methods (DAL/PINN/DP) consume one instance.
    """

    def __init__(
        self,
        cloud: Optional[Cloud] = None,
        kernel: Optional[Kernel] = None,
        degree: int = 1,
        geometry: Optional[ChannelGeometry] = None,
        perturbation: float = 0.3,
        backend: str = "dense",
        stencil_size: Optional[int] = None,
        solver: str = "direct",
        solver_opts: Optional[dict] = None,
    ) -> None:
        if backend not in ("dense", "local"):
            raise ValueError(
                f"backend must be 'dense' or 'local', got {backend!r}"
            )
        if solver not in ("direct", "iterative"):
            raise ValueError(
                f"solver must be 'direct' or 'iterative', got {solver!r}"
            )
        if solver == "iterative" and backend != "local":
            raise ValueError(
                "solver='iterative' requires backend='local' (the Krylov "
                "backend operates on the sparse RBF-FD system)"
            )
        if solver == "direct" and solver_opts:
            raise TypeError(
                "solver_opts are only meaningful with solver='iterative'; "
                f"got {sorted(solver_opts)}"
            )
        self.solver = solver
        self.solver_opts = dict(solver_opts or {})
        self.geometry = geometry or ChannelGeometry()
        self.perturbation = float(perturbation)
        self.cloud = cloud if cloud is not None else ChannelCloud(geometry=self.geometry)
        self.kernel = kernel or polyharmonic(3)
        self.degree = degree
        self.backend = backend
        if backend == "dense":
            self.nodal = build_nodal_operators(self.cloud, self.kernel, degree)
        else:
            self.nodal = build_local_operators(
                self.cloud, self.kernel, degree, stencil_size
            )
        cloud_ = self.cloud
        geo = self.geometry

        self.inflow = cloud_.groups["inflow"]
        self.outflow = cloud_.groups["outflow"]
        self.blowing = cloud_.groups["blowing"]
        self.suction = cloud_.groups["suction"]
        self.walls = np.concatenate(
            [cloud_.groups["wall_bottom"], cloud_.groups["wall_top"]]
        )

        self.inflow_y = cloud_.points[self.inflow, 1]
        self.outflow_y = cloud_.points[self.outflow, 1]
        if np.any(np.diff(self.inflow_y) <= 0) or np.any(np.diff(self.outflow_y) <= 0):
            raise ValueError("inflow/outflow nodes must be sorted by y")
        self.n_control = self.inflow.size

        # Per-field BC kinds.
        wall_groups = ("wall_bottom", "wall_top", "blowing", "suction")
        self.bcs_u = FieldBCs(
            kinds={"inflow": "dirichlet", "outflow": "neumann",
                   **{g: "dirichlet" for g in wall_groups}}
        )
        self.bcs_v = self.bcs_u
        self.bcs_p = FieldBCs(
            kinds={"inflow": "neumann", "outflow": "dirichlet",
                   **{g: "neumann" for g in wall_groups}}
        )

        nd = self.nodal
        self.mask_int = interior_mask(cloud_)
        if backend == "local":
            self.rows_u = boundary_rows_sparse(cloud_, nd, self.bcs_u)
            self.rows_p = boundary_rows_sparse(cloud_, nd, self.bcs_p)
        else:
            self.rows_u = boundary_rows(cloud_, nd, self.bcs_u)
            self.rows_p = boundary_rows(cloud_, nd, self.bcs_p)

        # "Free" masks: nodes where the projection correction applies
        # (everywhere except the field's Dirichlet nodes).
        free = np.ones(cloud_.n)
        for g, k in self.bcs_u.kinds.items():
            if k == "dirichlet":
                free[cloud_.groups[g]] = 0.0
        self.free_uv = free

        # Constant pressure system, set up once (dense LU, sparse splu,
        # or the preconditioned Krylov backend, per ``solver``).
        if backend == "local":
            A_p = sp.diags(self.mask_int) @ nd.lap + self.rows_p
        else:
            A_p = self.mask_int[:, None] * nd.lap + self.rows_p
        self.pressure_solver = make_linear_solver(
            A_p, method=solver, **self.solver_opts
        )

        # Fixed sparsity pattern of the momentum system (local backend):
        # the union of the masked advection/diffusion stencils and the
        # u-field boundary rows.  Momentum matrices for *any* frozen
        # velocity live on this pattern, so both the NumPy and the tape
        # path assemble a value vector and never touch the structure —
        # which is what makes the VJP w.r.t. the values a cheap gather.
        if backend == "local":
            def _absval(M) -> sp.csr_matrix:
                M = sp.csr_matrix(M).copy()
                M.data = np.abs(M.data)
                return M

            Mint = sp.diags(self.mask_int)
            pattern = (
                _absval(Mint @ nd.dx)
                + _absval(Mint @ nd.dy)
                + _absval(Mint @ nd.lap)
                + _absval(self.rows_u)
            ).tocsr()
            pattern.eliminate_zeros()
            rows, cols = pattern.nonzero()
            self._mom_rows = rows.astype(np.int64)
            self._mom_cols = cols.astype(np.int64)

            def _on_pattern(M) -> np.ndarray:
                return np.asarray(sp.csr_matrix(M)[rows, cols]).ravel()

            mask_row = self.mask_int[rows]
            self._mom_dx = mask_row * _on_pattern(nd.dx)
            self._mom_dy = mask_row * _on_pattern(nd.dy)
            self._mom_lap = mask_row * _on_pattern(nd.lap)
            self._mom_bc = _on_pattern(self.rows_u)

        # Boundary data: blowing/suction bumps, fixed v-BC vector.
        bx = cloud_.points[self.blowing, 0]
        sx = cloud_.points[self.suction, 0]
        self.v_blow = _segment_bump(bx, geo.seg_lo, geo.seg_hi, perturbation)
        self.v_suck = _segment_bump(sx, geo.seg_lo, geo.seg_hi, perturbation)
        b_v = np.zeros(cloud_.n)
        b_v[self.blowing] = self.v_blow
        b_v[self.suction] = self.v_suck
        self.b_v_fixed = b_v

        # Control scatter: inflow u-values into the u RHS.
        self.S_in = selection_matrix(cloud_.n, self.inflow)

        # Outflow cost pieces.
        self.quad_w = trapezoid_weights(self.outflow_y)
        self.u_target = poiseuille_profile(self.outflow_y, geo.ly)
        self.S_out = selection_matrix(cloud_.n, self.outflow).T  # (n_out, N)

        # Initial guess (paper): parabolic inflow everywhere + matching
        # Poiseuille pressure.
        self.u_init = poiseuille_profile(cloud_.y, geo.ly)
        self.v_init = np.zeros(cloud_.n)

    # ------------------------------------------------------------------
    # Shared assembly pieces
    # ------------------------------------------------------------------
    def default_control(self) -> np.ndarray:
        """The paper's initial inflow guess: the parabolic profile."""
        return poiseuille_profile(self.inflow_y, self.geometry.ly)

    def initial_pressure(self, reynolds: float) -> np.ndarray:
        """Poiseuille-consistent initial pressure ``8 (L_x − x) / (Re L_y²)``."""
        geo = self.geometry
        return 8.0 * (geo.lx - self.cloud.x) / (reynolds * geo.ly**2)

    def momentum_data_numpy(
        self, u: np.ndarray, v: np.ndarray, reynolds: float
    ) -> np.ndarray:
        """Momentum-system values on the fixed sparsity pattern (local)."""
        r = self._mom_rows
        return (
            u[r] * self._mom_dx
            + v[r] * self._mom_dy
            - self._mom_lap / reynolds
            + self._mom_bc
        )

    def momentum_data_ad(self, u, v, reynolds: float):
        """Momentum-system values on the pattern, on the tape (local).

        The gather ``u[rows]`` records a scatter-add VJP, so gradients
        flow from the matrix values back into the frozen velocity — the
        sparse equivalent of differentiating through dense assembly.
        """
        ur = ops.getitem(u, self._mom_rows)
        vr = ops.getitem(v, self._mom_rows)
        return (
            ur * self._mom_dx
            + vr * self._mom_dy
            + (self._mom_bc - self._mom_lap / reynolds)
        )

    def momentum_matrix_numpy(self, u: np.ndarray, v: np.ndarray, reynolds: float):
        """Frozen-advection momentum system (NumPy path, either backend)."""
        nd = self.nodal
        if self.backend == "local":
            return sp.csr_matrix(
                (
                    self.momentum_data_numpy(u, v, reynolds),
                    (self._mom_rows, self._mom_cols),
                ),
                shape=(self.cloud.n, self.cloud.n),
            )
        op = (
            u[:, None] * nd.dx + v[:, None] * nd.dy - (1.0 / reynolds) * nd.lap
        )
        return self.mask_int[:, None] * op + self.rows_u

    def momentum_matrix_ad(self, u, v, reynolds: float):
        """Frozen-advection momentum system (dense autodiff path)."""
        nd = self.nodal
        op = (
            ops.mul(ops.reshape(u, (-1, 1)), nd.dx)
            + ops.mul(ops.reshape(v, (-1, 1)), nd.dy)
            - (1.0 / reynolds) * nd.lap
        )
        return self.mask_int[:, None] * op + self.rows_u

    # ------------------------------------------------------------------
    # NumPy solve (DAL / forward evaluation)
    # ------------------------------------------------------------------
    def solve(self, control: np.ndarray, config: NSConfig) -> NSState:
        """Iterate the projection scheme for ``config.refinements`` steps."""
        control = np.asarray(control, dtype=np.float64)
        if control.shape != (self.n_control,):
            raise ValueError(
                f"control must have shape ({self.n_control},), got {control.shape}"
            )
        nd, mask, dt = self.nodal, self.mask_int, config.pseudo_dt
        u, v = self.u_init.copy(), self.v_init.copy()
        p = self.initial_pressure(config.reynolds)
        b_u_bc = self.S_in @ control
        state = NSState(u=u, v=v, p=p)

        for _ in range(config.refinements):
            with _span("ns.momentum", "pde"):
                A = self.momentum_matrix_numpy(u, v, config.reynolds)
                bu = mask * (-(nd.dx @ p)) + b_u_bc
                bv = mask * (-(nd.dy @ p)) + self.b_v_fixed
                if self.backend == "local" and self.solver == "iterative":
                    from repro.autodiff.krylov import KrylovSolver

                    ks = KrylovSolver(A, **self.solver_opts)
                    u_star = ks.solve_numpy(bu)
                    v_star = ks.solve_numpy(bv)
                elif self.backend == "local":
                    lu = spla.splu(sp.csc_matrix(A))
                    u_star = lu.solve(bu)
                    v_star = lu.solve(bv)
                else:
                    lu = sla.lu_factor(A, check_finite=False)
                    u_star = sla.lu_solve(lu, bu, check_finite=False)
                    v_star = sla.lu_solve(lu, bv, check_finite=False)

            with _span("ns.pressure", "pde"):
                div = nd.dx @ u_star + nd.dy @ v_star
                phi = self.pressure_solver.solve_numpy(mask * div / dt)

            with _span("ns.projection", "pde"):
                u_new = u_star - dt * self.free_uv * (nd.dx @ phi)
                v_new = v_star - dt * self.free_uv * (nd.dy @ phi)
                if config.relax != 1.0:
                    a = config.relax
                    u_new = (1 - a) * u + a * u_new
                    v_new = (1 - a) * v + a * v_new
                p = p + phi

            state.update_history.append(
                float(max(np.max(np.abs(u_new - u)), np.max(np.abs(v_new - v))))
            )
            u, v = u_new, v_new
            state.div_history.append(
                float(np.max(np.abs((nd.dx @ u + nd.dy @ v)[self.cloud.internal])))
            )
            if config.check:
                check_finite(u, "u")
                check_finite(v, "v")

        state.u, state.v, state.p = u, v, p
        return state

    # ------------------------------------------------------------------
    # Autodiff solve (DP)
    # ------------------------------------------------------------------
    def solve_ad(
        self, control, config: NSConfig
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Projection iterations on the tape; differentiable w.r.t. control.

        The momentum matrix depends on the previous velocity iterate, so
        gradients propagate through assembly *and* solve of every
        refinement — the full discretise-then-optimise gradient.
        """
        nd, mask, dt = self.nodal, self.mask_int, config.pseudo_dt
        c = tensor(control)
        u = tensor(self.u_init)
        v = tensor(self.v_init)
        p = tensor(self.initial_pressure(config.reynolds))
        b_u_bc = ops.matmul(self.S_in, c)

        n = self.cloud.n
        local = self.backend == "local"
        if local:
            # Constant sparse operators enter the tape through the
            # dedicated sparse mat-vec primitive (VJP: transposed product).
            def dxm(t):
                return sparse_matvec(nd.dx, t)

            def dym(t):
                return sparse_matvec(nd.dy, t)

        else:
            def dxm(t):
                return ops.matmul(nd.dx, t)

            def dym(t):
                return ops.matmul(nd.dy, t)

        for _ in range(config.refinements):
            with _span("ns.momentum", "pde"):
                bu = mask * (-dxm(p)) + b_u_bc
                bv = mask * (-dym(p)) + self.b_v_fixed
                if local and self.solver == "iterative":
                    from repro.autodiff.krylov import krylov_pattern_solve

                    data = self.momentum_data_ad(u, v, config.reynolds)
                    u_star = krylov_pattern_solve(
                        self._mom_rows, self._mom_cols, (n, n), data, bu,
                        **self.solver_opts,
                    )
                    v_star = krylov_pattern_solve(
                        self._mom_rows, self._mom_cols, (n, n), data, bv,
                        **self.solver_opts,
                    )
                elif local:
                    data = self.momentum_data_ad(u, v, config.reynolds)
                    u_star = sparse_pattern_solve(
                        self._mom_rows, self._mom_cols, (n, n), data, bu
                    )
                    v_star = sparse_pattern_solve(
                        self._mom_rows, self._mom_cols, (n, n), data, bv
                    )
                else:
                    A = self.momentum_matrix_ad(u, v, config.reynolds)
                    u_star = ad_solve(A, bu)
                    v_star = ad_solve(A, bv)

            with _span("ns.pressure", "pde"):
                div = dxm(u_star) + dym(v_star)
                phi = self.pressure_solver(mask * div * (1.0 / dt))

            with _span("ns.projection", "pde"):
                u_new = u_star - dt * (self.free_uv * dxm(phi))
                v_new = v_star - dt * (self.free_uv * dym(phi))
                if config.relax != 1.0:
                    a = config.relax
                    u_new = (1 - a) * u + a * u_new
                    v_new = (1 - a) * v + a * v_new
                p = p + phi
                u, v = u_new, v_new

        return u, v, p

    # ------------------------------------------------------------------
    # Cost functional
    # ------------------------------------------------------------------
    def cost(self, u: np.ndarray, v: np.ndarray) -> float:
        """J from nodal fields (NumPy path)."""
        du = u[self.outflow] - self.u_target
        dv = v[self.outflow]
        return float(0.5 * (self.quad_w @ (du * du + dv * dv)))

    def cost_ad(self, u, v):
        """J on the tape (DP path)."""
        du = ops.matmul(self.S_out, u) - self.u_target
        dv = ops.matmul(self.S_out, v)
        return 0.5 * ops.sum_(
            self.quad_w * (ops.square(du) + ops.square(dv))
        )

    def outflow_profiles(self, state: NSState) -> Dict[str, np.ndarray]:
        """Outflow ``y``, computed ``(u, v)`` and the target profile."""
        return {
            "y": self.outflow_y,
            "u": state.u[self.outflow],
            "v": state.v[self.outflow],
            "target": self.u_target,
        }

"""Nodal-space assembly helpers shared by the NumPy and autodiff paths.

A field's discrete system is assembled from three ingredients:

- the *interior operator matrix* (rows of ``a·Δ + b·∂x + c·∂y + d·I`` from
  the nodal differentiation matrices), masked to interior rows;
- *boundary rows* — unit rows for Dirichlet nodes, outward-normal
  derivative rows for Neumann nodes, ``normal + β·I`` for Robin nodes;
- a right-hand side with the source on interior rows and boundary data on
  boundary rows.

Unlike :class:`repro.rbf.solver.RBFSolver`, these helpers do **not**
require the cloud's ordering kinds to match the imposed conditions: the
Navier–Stokes problem applies *different* BC kinds per field (u, v, p) on
the same cloud, so rows are taken per group index directly.

Everything here is written so Tensors flow through unchanged: masks,
boundary rows and selection matrices are constant arrays; multiplying or
adding them to tape tensors records the proper VJPs.  The *same* assembly
code therefore serves the DAL (NumPy) and DP (autodiff) solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.cloud.base import BoundaryKind, Cloud
from repro.rbf.operators import NodalOperators


@dataclass(frozen=True)
class FieldBCs:
    """Per-group boundary-kind assignment for one scalar field.

    ``kinds`` maps group name → ``"dirichlet" | "neumann" | "robin"``;
    every non-internal group of the cloud must appear.  ``robin_beta``
    holds β per Robin group (scalar or per-node array in group order).
    """

    kinds: Mapping[str, str]
    robin_beta: Mapping[str, Union[float, np.ndarray]] = field(default_factory=dict)

    def validate(self, cloud: Cloud) -> None:
        """Check every boundary group is covered with a known kind."""
        for g, k in cloud.kinds.items():
            if k is BoundaryKind.INTERNAL:
                continue
            got = self.kinds.get(g)
            if got not in ("dirichlet", "neumann", "robin"):
                raise ValueError(
                    f"group {g!r} needs a BC kind in "
                    f"('dirichlet','neumann','robin'), got {got!r}"
                )


def interior_mask(cloud: Cloud) -> np.ndarray:
    """0/1 float vector selecting interior nodes."""
    m = np.zeros(cloud.n)
    m[cloud.internal] = 1.0
    return m


def selection_matrix(n: int, idx: np.ndarray) -> np.ndarray:
    """``(n, len(idx))`` matrix scattering per-group values into a field.

    ``S @ values`` places ``values[k]`` at node ``idx[k]`` — a constant
    linear map, hence differentiable scatter for tape tensors.
    """
    idx = np.asarray(idx, dtype=np.int64)
    S = np.zeros((n, idx.size))
    S[idx, np.arange(idx.size)] = 1.0
    return S


def boundary_rows(cloud: Cloud, nodal: NodalOperators, bcs: FieldBCs) -> np.ndarray:
    """``(N, N)`` matrix holding only the boundary-condition rows."""
    bcs.validate(cloud)
    n = cloud.n
    rows = np.zeros((n, n))
    for g, idx in cloud.groups.items():
        if cloud.kinds[g] is BoundaryKind.INTERNAL:
            continue
        kind = bcs.kinds[g]
        if kind == "dirichlet":
            rows[idx, idx] = 1.0
        elif kind == "neumann":
            rows[idx] = nodal.normal[idx]
        else:  # robin
            rows[idx] = nodal.normal[idx]
            beta = np.broadcast_to(
                np.asarray(bcs.robin_beta.get(g, 0.0), dtype=np.float64),
                idx.shape,
            )
            rows[idx, idx] += beta
    return rows


def row_selector(n: int, idx: np.ndarray) -> sp.csr_matrix:
    """Sparse ``(n, n)`` diagonal selector: 1 at ``(i, i)`` for ``i ∈ idx``.

    ``row_selector(n, idx) @ M`` keeps only the ``idx`` rows of ``M`` —
    the sparse replacement for the dense ``rows[idx] = M[idx]`` pattern.
    """
    idx = np.asarray(idx, dtype=np.int64)
    return sp.csr_matrix(
        (np.ones(idx.size), (idx, idx)), shape=(n, n)
    )


def boundary_rows_sparse(cloud: Cloud, operators, bcs: FieldBCs) -> sp.csr_matrix:
    """Sparse ``(N, N)`` matrix holding only the boundary-condition rows.

    The RBF-FD counterpart of :func:`boundary_rows`: ``operators`` is any
    bundle exposing a ``normal`` matrix (``LocalOperators`` or
    ``NodalOperators``); the result has unit rows on Dirichlet nodes,
    stencil-sparse normal rows on Neumann nodes and ``normal + β·I`` rows
    on Robin nodes.
    """
    bcs.validate(cloud)
    n = cloud.n
    normal = sp.csr_matrix(operators.normal)
    rows = sp.csr_matrix((n, n))
    for g, idx in cloud.groups.items():
        if cloud.kinds[g] is BoundaryKind.INTERNAL:
            continue
        kind = bcs.kinds[g]
        if kind == "dirichlet":
            rows = rows + row_selector(n, idx)
        elif kind == "neumann":
            rows = rows + row_selector(n, idx) @ normal
        else:  # robin
            beta = np.broadcast_to(
                np.asarray(bcs.robin_beta.get(g, 0.0), dtype=np.float64),
                idx.shape,
            )
            rows = (
                rows
                + row_selector(n, idx) @ normal
                + sp.csr_matrix((beta, (idx, idx)), shape=(n, n))
            )
    return rows.tocsr()


def assemble_field_system(
    cloud: Cloud,
    nodal,
    interior_operator,  # (N, N) array, sparse matrix, or Tensor
    bcs: FieldBCs,
):
    """Full system matrix: interior operator rows + boundary rows.

    ``interior_operator`` may be a tape tensor (NS momentum operator,
    which depends on the frozen advection velocity); the mask/boundary
    parts are constants.  A ``scipy.sparse`` interior operator (the
    RBF-FD backend) yields a sparse system assembled without densifying.
    """
    if sp.issparse(interior_operator):
        return (
            sp.diags(interior_mask(cloud)) @ interior_operator
            + boundary_rows_sparse(cloud, nodal, bcs)
        ).tocsr()
    mask = interior_mask(cloud)[:, None]
    return mask * interior_operator + boundary_rows(cloud, nodal, bcs)


def scatter_boundary_values(
    cloud: Cloud,
    values_by_group: Dict[str, Union[np.ndarray, object]],
):
    """Sum of ``S_g @ v_g`` over groups — a boundary RHS vector.

    Values may be NumPy arrays or tape tensors (the inflow control);
    tensors propagate through the constant selection matmul.
    """
    from repro.autodiff import ops

    out = None
    for g, v in values_by_group.items():
        S = selection_matrix(cloud.n, cloud.groups[g])
        term = ops.matmul(S, v)
        out = term if out is None else out + term
    if out is None:
        return np.zeros(cloud.n)
    return out

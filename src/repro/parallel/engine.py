"""The process-pool task engine.

One process per task *attempt*: perfect fault isolation (a SIGKILLed or
hung worker takes down nothing but its own attempt) at a per-task cost of
one ``fork``/``spawn`` — negligible against the seconds-to-hours tasks
this repo fans out (PINN trainings, benchmark runs).  The scheduler keeps
at most ``jobs`` workers alive, enforces per-task deadlines, retries
failures with exponential backoff, and returns structured
:class:`~repro.parallel.task.TaskResult` records in submission order.

Determinism: every attempt of task ``key`` is seeded with
``derive_seed(root_seed, key)`` — results never depend on scheduling
order, worker count, or which attempt finally succeeded.

Observability: workers run with a fresh per-process metrics registry
(and, when the parent has a profiler installed, a fresh span profiler),
export both as artifact shards, and the engine merges the shards back
into the parent's registry/profiler after each task completes — spans
keep the worker's real pid, registry snapshots are summed.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.seeding import derive_seed, seed_everything
from repro.parallel.task import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskResult,
    exception_payload,
    record_task_metrics,
)
from repro.parallel.worker import WORKER_ENV, heartbeat_path, worker_main

__all__ = ["ParallelEngine", "resolve_jobs", "run_tasks"]


def resolve_jobs(cli_value: Optional[int] = None, env_var: str = "REPRO_JOBS") -> int:
    """Resolve a worker count from CLI flag and environment.

    Precedence mirrors the artifact-dir helpers: an explicit CLI value
    wins, else ``$REPRO_JOBS``, else 1 (serial).  Inside an engine worker
    the environment resolves to 1 regardless, so nested fan-outs (a PINN
    line search inside a bench-matrix worker) do not oversubscribe —
    only an explicit ``cli_value`` can override that.
    """
    if cli_value is not None:
        return max(1, int(cli_value))
    if os.environ.get(WORKER_ENV):
        return 1
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"${env_var} must be an integer, got {raw!r}") from None


def _sanitize(key: str) -> str:
    """A filesystem-safe shard stem for a task key."""
    return "".join(c if (c.isalnum() or c in "-_.") else "-" for c in key)


@dataclass
class _Running:
    index: int
    attempt: int
    proc: Any
    conn: Any
    t0: float
    deadline: Optional[float]
    #: Heartbeat file this attempt's worker touches (None = disabled).
    hb_path: Optional[str] = None
    #: Wall-clock launch time (heartbeat mtimes are wall-clock).
    wall0: float = 0.0
    #: Set once when the heartbeat goes stale; sticky for the attempt.
    stalled: bool = False


class ParallelEngine:
    """Schedules tasks over a bounded pool of single-task worker processes.

    Parameters
    ----------
    jobs:
        Maximum concurrent workers.  ``None`` resolves via
        :func:`resolve_jobs`; ``jobs <= 1`` executes inline (same
        seeding, same result records, no subprocesses — timeouts are not
        enforced inline).
    timeout:
        Default per-attempt deadline in seconds (``None`` = unbounded).
        A task past its deadline is killed and reported ``timeout``.
    retries:
        Default extra attempts after a failed one (error/timeout/crash).
    backoff:
        Base of the exponential retry backoff: attempt ``k`` is delayed
        ``backoff * 2**(k-1)`` seconds.  The delay never blocks sibling
        tasks — the scheduler keeps the pool busy while one task waits.
    root_seed:
        Root of the per-task seed derivation.
    shard_dir:
        Where workers write their obs shards.  ``None`` uses a temporary
        directory that is merged and removed; an explicit directory is
        kept (one ``<key>.metrics.json`` / ``<key>.trace.json`` pair per
        task) for artifact upload.
    mp_start:
        Multiprocessing start method (default ``$REPRO_MP_START``, else
        ``fork`` where available — task functions then need not be
        picklable — else the platform default).
    heartbeat:
        Interval (seconds) at which workers touch their heartbeat file;
        ``0`` disables heartbeats entirely.
    heartbeat_stall:
        Age (seconds) past which a worker's heartbeat counts as stale.
        ``None`` defaults to ``max(5 * heartbeat, 5.0)``.  A stale task
        is flagged once — stderr warning, ``parallel.heartbeat_stalls``
        counter, ``TaskResult.stalled`` — but only the hard ``timeout``
        kills it: the heartbeat is an early-warning channel, not a
        second executioner.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        root_seed: int = 0,
        shard_dir: Optional[str] = None,
        mp_start: Optional[str] = None,
        heartbeat: float = 1.0,
        heartbeat_stall: Optional[float] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.root_seed = int(root_seed)
        self.shard_dir = shard_dir
        self.heartbeat = max(0.0, float(heartbeat))
        if heartbeat_stall is None:
            heartbeat_stall = max(5.0 * self.heartbeat, 5.0)
        self.heartbeat_stall = float(heartbeat_stall)
        if mp_start is None:
            mp_start = os.environ.get("REPRO_MP_START") or None
        if mp_start is None:
            mp_start = "fork" if "fork" in mp.get_all_start_methods() else None
        self._ctx = mp.get_context(mp_start)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[TaskResult]:
        """Execute ``tasks``; return one result per task, in input order."""
        tasks = list(tasks)
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"task keys must be unique; duplicated: {dupes}")
        seeds = [derive_seed(self.root_seed, t.key) for t in tasks]
        if not tasks:
            return []
        if self.jobs <= 1:
            return [self._run_inline(t, s) for t, s in zip(tasks, seeds)]
        return self._run_pool(tasks, seeds)

    # -- serial fallback ----------------------------------------------
    def _run_inline(self, task: Task, seed: int) -> TaskResult:
        """Run one task in-process (identical seeding, no isolation)."""
        max_attempts = 1 + (self.retries if task.retries is None else task.retries)
        attempt = 0
        while True:
            attempt += 1
            seed_everything(seed)
            t0 = time.perf_counter()
            try:
                value = task.fn(*task.args, **task.kwargs)
                result = TaskResult(
                    key=task.key,
                    status=STATUS_OK,
                    value=value,
                    attempts=attempt,
                    duration_s=time.perf_counter() - t0,
                    worker_pid=os.getpid(),
                    seed=seed,
                )
            except Exception as exc:
                result = TaskResult(
                    key=task.key,
                    status=STATUS_ERROR,
                    error=exception_payload(exc),
                    attempts=attempt,
                    duration_s=time.perf_counter() - t0,
                    worker_pid=os.getpid(),
                    seed=seed,
                )
            if result.ok or attempt >= max_attempts:
                record_task_metrics(result)
                return result
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    # -- pool ----------------------------------------------------------
    def _run_pool(self, tasks: List[Task], seeds: List[int]) -> List[TaskResult]:
        from repro.obs.profile import current_profiler

        want_trace = current_profiler() is not None
        shard_dir = self.shard_dir
        shard_tmp = shard_dir is None
        if shard_tmp:
            shard_dir = tempfile.mkdtemp(prefix="repro-parallel-obs-")

        from collections import deque

        n = len(tasks)
        results: List[Optional[TaskResult]] = [None] * n
        ready = deque((i, 1) for i in range(n))  # (index, attempt) FIFO
        sleeping: List[tuple] = []  # (not_before, index, attempt)
        running: Dict[Any, _Running] = {}

        def launch(index: int, attempt: int) -> None:
            task = tasks[index]
            stem = _sanitize(task.key)
            shard = {
                "dir": shard_dir,
                "stem": stem,
                "trace": want_trace,
                "heartbeat": self.heartbeat,
            }
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=worker_main,
                args=(
                    child_conn,
                    task.fn,
                    task.args,
                    task.kwargs,
                    task.key,
                    seeds[index],
                    shard,
                ),
                name=f"repro-parallel:{task.key}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            t0 = time.monotonic()
            timeout = self.timeout if task.timeout is None else task.timeout
            running[parent_conn] = _Running(
                index=index,
                attempt=attempt,
                proc=proc,
                conn=parent_conn,
                t0=t0,
                deadline=None if timeout is None else t0 + timeout,
                hb_path=(
                    heartbeat_path(shard_dir, stem) if self.heartbeat else None
                ),
                wall0=time.time(),
            )

        def settle(info: _Running, status: str, payload=None, error=None) -> None:
            """Classify one finished attempt: finalize, or schedule a retry."""
            task = tasks[info.index]
            duration = time.monotonic() - info.t0
            shards = (payload or {}).get("shards")
            max_attempts = 1 + (
                self.retries if task.retries is None else task.retries
            )
            if status != STATUS_OK and info.attempt < max_attempts:
                self._discard_shards(shards)
                delay = self.backoff * (2 ** (info.attempt - 1))
                sleeping.append((time.monotonic() + delay, info.index, info.attempt + 1))
                return
            result = TaskResult(
                key=task.key,
                status=status,
                value=(payload or {}).get("value"),
                error=error,
                attempts=info.attempt,
                duration_s=duration,
                worker_pid=(payload or {}).get("pid", info.proc.pid),
                seed=seeds[info.index],
                stalled=info.stalled,
            )
            results[info.index] = result
            record_task_metrics(result)
            self._absorb_shards(shards, keep=not shard_tmp)

        try:
            while ready or sleeping or running:
                now = time.monotonic()
                # Wake retries whose backoff has elapsed.
                due = [s for s in sleeping if s[0] <= now]
                if due:
                    sleeping[:] = [s for s in sleeping if s[0] > now]
                    for _, index, attempt in sorted(due):
                        ready.append((index, attempt))
                while ready and len(running) < self.jobs:
                    index, attempt = ready.popleft()
                    launch(index, attempt)
                if not running:
                    # Pool idle but retries pending: sleep until the next one.
                    if sleeping:
                        time.sleep(max(0.0, min(s[0] for s in sleeping) - now))
                    continue
                # Wait for a result, a death, or the nearest deadline.
                wait_until = [
                    r.deadline for r in running.values() if r.deadline is not None
                ] + [s[0] for s in sleeping]
                timeout = 0.5
                if wait_until:
                    timeout = max(0.0, min(min(wait_until) - time.monotonic(), 0.5))
                done = mp_connection.wait(list(running), timeout=timeout)
                for conn in done:
                    info = running.pop(conn)
                    try:
                        payload = conn.recv()
                    except (EOFError, OSError):
                        payload = None  # died before reporting (e.g. SIGKILL)
                    conn.close()
                    info.proc.join(timeout=5.0)
                    if payload is None:
                        settle(
                            info,
                            STATUS_CRASHED,
                            error={
                                "type": "WorkerCrashed",
                                "message": (
                                    f"worker pid {info.proc.pid} exited with code "
                                    f"{info.proc.exitcode} before returning a result"
                                ),
                                "traceback": "",
                            },
                        )
                    elif payload.get("status") == "ok":
                        settle(info, STATUS_OK, payload=payload)
                    else:
                        settle(
                            info, STATUS_ERROR, payload=payload,
                            error=payload.get("error"),
                        )
                # Heartbeat staleness: flag (once) workers whose beat
                # stopped — an early warning channel, never a kill.
                if self.heartbeat:
                    wall_now = time.time()
                    for info in running.values():
                        if info.stalled or info.hb_path is None:
                            continue
                        try:
                            age = wall_now - os.path.getmtime(info.hb_path)
                        except OSError:
                            # No file yet: allow worker startup (imports,
                            # fork latency) one extra interval of grace.
                            age = wall_now - info.wall0 - self.heartbeat
                        if age > self.heartbeat_stall:
                            info.stalled = True
                            from repro.obs.metrics import get_registry

                            get_registry().counter(
                                "parallel.heartbeat_stalls"
                            ).inc()
                            print(
                                f"[repro.parallel] task "
                                f"{tasks[info.index].key!r} (pid "
                                f"{info.proc.pid}) heartbeat stale for "
                                f"{age:.1f}s — worker may be hung",
                                file=sys.stderr,
                            )
                # Deadline enforcement for still-running workers.
                now = time.monotonic()
                for conn in [
                    c for c, r in running.items()
                    if r.deadline is not None and now >= r.deadline
                ]:
                    info = running.pop(conn)
                    self._kill(info.proc)
                    conn.close()
                    settle(
                        info,
                        STATUS_TIMEOUT,
                        error={
                            "type": "TaskTimeout",
                            "message": (
                                f"task {tasks[info.index].key!r} exceeded its "
                                f"{info.deadline - info.t0:.3g}s deadline and was killed"
                            ),
                            "traceback": "",
                        },
                    )
        finally:
            for info in running.values():
                self._kill(info.proc)
                info.conn.close()
            if shard_tmp:
                shutil.rmtree(shard_dir, ignore_errors=True)

        missing = [tasks[i].key for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - scheduler invariant
            raise RuntimeError(f"tasks never settled: {missing}")
        return results  # type: ignore[return-value]

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _kill(proc) -> None:
        """Terminate, then SIGKILL, a worker; never raises."""
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except Exception:
            pass

    @staticmethod
    def _discard_shards(shards: Optional[Dict[str, str]]) -> None:
        """Drop the shards of a *retried* attempt (never double-merged)."""
        for path in (shards or {}).values():
            try:
                os.unlink(path)
            except OSError:
                pass

    @staticmethod
    def _absorb_shards(shards: Optional[Dict[str, str]], keep: bool) -> None:
        """Merge one task's obs shards into the parent registry/profiler."""
        if not shards:
            return
        from repro.obs.metrics import get_registry
        from repro.obs.profile import current_profiler

        metrics_path = shards.get("metrics")
        if metrics_path and os.path.exists(metrics_path):
            try:
                with open(metrics_path, "r", encoding="utf-8") as f:
                    doc = json.load(f)
                get_registry().merge_snapshot(doc.get("metrics", {}))
            except (OSError, ValueError):
                pass
        trace_path = shards.get("trace")
        prof = current_profiler()
        if prof is not None and trace_path and os.path.exists(trace_path):
            try:
                with open(trace_path, "r", encoding="utf-8") as f:
                    prof.absorb_chrome_trace(json.load(f))
            except (OSError, ValueError):
                pass
        if not keep:
            ParallelEngine._discard_shards(shards)


def run_tasks(
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    root_seed: int = 0,
    shard_dir: Optional[str] = None,
    heartbeat: float = 1.0,
    heartbeat_stall: Optional[float] = None,
) -> List[TaskResult]:
    """One-shot convenience: build a :class:`ParallelEngine` and run."""
    return ParallelEngine(
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        root_seed=root_seed,
        shard_dir=shard_dir,
        heartbeat=heartbeat,
        heartbeat_stall=heartbeat_stall,
    ).run(tasks)

"""Worker-process entry point for the parallel engine.

Runs exactly one task attempt: seed the process, install per-process
observability, call the function, ship a picklable payload back through
the pipe.  Everything defensive lives here — a task may raise anything,
return anything, or die outright, and the parent must still get (at
worst) an EOF it can classify.

Heartbeats: when the shard spec carries a ``heartbeat`` interval, a
daemon thread touches ``<stem>.heartbeat`` in the shard directory every
interval.  The engine watches the file's mtime and flags a task whose
heartbeat goes stale long before the hard timeout kills it — a hung
worker (deadlock, SIGSTOP, livelocked solve) stops touching the file,
while a merely slow one keeps beating.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional

from repro.parallel.seeding import seed_everything
from repro.parallel.task import exception_payload

#: Set in every worker process; ``resolve_jobs`` reads it to keep nested
#: fan-outs (a PINN line search inside a bench-matrix worker) serial.
WORKER_ENV = "REPRO_PARALLEL_WORKER"


def _write_shards(shard: Dict[str, Any], profiler, task_key: str) -> Dict[str, str]:
    """Export this worker's obs state as artifact shards; return the paths."""
    from repro.obs.profile import NULL_PROFILER, metrics_payload

    os.makedirs(shard["dir"], exist_ok=True)
    stem = os.path.join(shard["dir"], shard["stem"])
    meta = {"task": task_key, "pid": os.getpid()}
    paths: Dict[str, str] = {}

    metrics_path = f"{stem}.metrics.json"
    payload = metrics_payload(
        profiler if profiler is not None else NULL_PROFILER, meta=meta
    )
    with open(metrics_path, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    paths["metrics"] = metrics_path

    if profiler is not None:
        trace_path = f"{stem}.trace.json"
        profiler.save_chrome_trace(trace_path, meta=meta)
        paths["trace"] = trace_path
    return paths


def heartbeat_path(shard_dir: str, stem: str) -> str:
    """Where one task's heartbeat file lives (shared with the engine)."""
    return os.path.join(shard_dir, f"{stem}.heartbeat")


def _heartbeat_loop(path: str, interval: float, stop: threading.Event) -> None:
    """Touch ``path`` every ``interval`` seconds until ``stop`` is set.

    The loop freezes with the process (SIGSTOP, deadlocked GIL holder,
    hard livelock under a C extension never releasing the GIL) — exactly
    the conditions the parent wants an early signal for.
    """
    while True:
        try:
            with open(path, "w", encoding="utf-8") as f:
                f.write(f"{os.getpid()} {time.time():.6f}\n")
        except OSError:
            pass  # a missed beat is a false stall at worst, never a crash
        if stop.wait(interval):
            return


def worker_main(
    conn,
    fn,
    args,
    kwargs,
    key: str,
    seed: int,
    shard: Optional[Dict[str, Any]] = None,
) -> None:
    """Execute one task attempt and send the outcome through ``conn``.

    The payload is always a plain dict of picklable values.  If the
    task's *return value* fails to pickle, a structured error payload is
    sent instead — the parent never hangs on a poisoned channel.
    """
    os.environ[WORKER_ENV] = "1"
    seed_everything(seed)

    from repro.obs.metrics import MetricsRegistry, set_registry
    from repro.obs.profile import SpanProfiler, set_profiler

    # Fresh per-process obs state: under the fork start method the child
    # inherits the parent's registry/profiler objects, and writing into
    # those copies would silently drop data (nothing flows back through
    # fork).  Install clean instances and ship their contents as shards.
    set_registry(MetricsRegistry())
    profiler = SpanProfiler() if shard and shard.get("trace") else None
    if profiler is not None:
        set_profiler(profiler)

    hb_stop: Optional[threading.Event] = None
    hb_file: Optional[str] = None
    if shard and shard.get("heartbeat"):
        try:
            os.makedirs(shard["dir"], exist_ok=True)
            hb_file = heartbeat_path(shard["dir"], shard["stem"])
            hb_stop = threading.Event()
            threading.Thread(
                target=_heartbeat_loop,
                args=(hb_file, float(shard["heartbeat"]), hb_stop),
                name="repro-heartbeat",
                daemon=True,
            ).start()
        except Exception:
            hb_stop, hb_file = None, None  # heartbeats are best-effort

    out: Dict[str, Any] = {"pid": os.getpid(), "shards": None}
    try:
        value = fn(*args, **kwargs)
        out["status"] = "ok"
        out["value"] = value
    except BaseException as exc:  # report *everything*; isolation is the point
        out["status"] = "error"
        out["error"] = exception_payload(exc)
    finally:
        if hb_stop is not None:
            hb_stop.set()
            try:
                os.unlink(hb_file)
            except OSError:
                pass
        if shard is not None:
            try:
                out["shards"] = _write_shards(shard, profiler, key)
            except Exception:
                pass  # shard export must never mask the task outcome

    try:
        conn.send(out)
    except Exception as exc:  # unpicklable return value
        conn.send(
            {
                "pid": out["pid"],
                "shards": out["shards"],
                "status": "error",
                "error": {
                    "type": "UnpicklableResultError",
                    "message": (
                        f"task {key!r} returned a value that could not be "
                        f"pickled back to the parent: {exc}"
                    ),
                    "traceback": "",
                },
            }
        )
    finally:
        conn.close()

"""Task and result records for the parallel engine.

A :class:`Task` is a picklable unit of work with a stable ``key`` (the
identity that drives seeding and artifact naming); a :class:`TaskResult`
is the structured outcome record — status, attempts, duration, worker
pid, exception payload — that the engine returns in input order and
feeds into the metrics registry.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

#: Task finished and returned a value.
STATUS_OK = "ok"
#: Task raised; ``error`` carries the exception payload.
STATUS_ERROR = "error"
#: Task exceeded its deadline and its worker was killed.
STATUS_TIMEOUT = "timeout"
#: Worker died (segfault, SIGKILL, OOM) before reporting a result.
STATUS_CRASHED = "crashed"


class TaskError(RuntimeError):
    """Raised by :meth:`TaskResult.unwrap` when a task did not succeed."""


@dataclass
class Task:
    """One unit of work: a picklable callable plus arguments.

    ``key`` must be unique within a submission and stable across runs —
    it determines the task's derived seed and its obs shard names.
    ``timeout``/``retries`` override the engine defaults when not None.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None
    retries: Optional[int] = None


@dataclass
class TaskResult:
    """Structured outcome of one task (after all retry attempts).

    ``status`` is one of :data:`STATUS_OK` / :data:`STATUS_ERROR` /
    :data:`STATUS_TIMEOUT` / :data:`STATUS_CRASHED`.  ``error`` is a
    plain-string payload ``{"type", "message", "traceback"}`` — built in
    the worker from the live exception, so it survives the pipe even
    when the exception object itself does not pickle.  ``duration_s``
    covers the final attempt only; ``attempts`` counts every attempt.
    ``stalled`` is the engine's heartbeat verdict: the worker's
    heartbeat file went stale while it ran (a hung-task early warning —
    the status still reflects how the attempt ultimately ended).
    """

    key: str
    status: str
    value: Any = None
    error: Optional[Dict[str, str]] = None
    attempts: int = 1
    duration_s: float = 0.0
    worker_pid: Optional[int] = None
    seed: Optional[int] = None
    stalled: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def unwrap(self) -> Any:
        """The task's value, or :class:`TaskError` describing the failure."""
        if self.ok:
            return self.value
        detail = ""
        if self.error:
            detail = f": {self.error.get('type', '')}: {self.error.get('message', '')}"
        raise TaskError(
            f"task {self.key!r} {self.status} after {self.attempts} attempt(s)"
            f"{detail}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the value itself is not serialised)."""
        return {
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "worker_pid": self.worker_pid,
            "seed": self.seed,
            "stalled": self.stalled,
            "error": dict(self.error) if self.error else None,
        }


def exception_payload(exc: BaseException) -> Dict[str, str]:
    """Reduce a live exception to a picklable ``{type, message, traceback}``.

    Built at the raise site (worker side): only strings cross the pipe,
    so exotic exceptions — unpicklable attributes, broken ``__reduce__``
    — still produce a faithful report instead of poisoning the channel.
    """
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def record_task_metrics(result: TaskResult) -> None:
    """Feed one final :class:`TaskResult` into the active metrics registry.

    Counters ``parallel.tasks.<status>`` and ``parallel.attempts`` plus
    the ``parallel.task_seconds`` histogram — the same registry the rest
    of the instrumentation writes to, so ``--profile-dir`` artifacts pick
    the engine's behaviour up for free.
    """
    from repro.obs.metrics import TIME_BUCKETS, get_registry

    reg = get_registry()
    reg.counter(f"parallel.tasks.{result.status}").inc()
    reg.counter("parallel.attempts").inc(result.attempts)
    if result.attempts > 1:
        reg.counter("parallel.retries").inc(result.attempts - 1)
    reg.histogram("parallel.task_seconds", TIME_BUCKETS).observe(result.duration_s)

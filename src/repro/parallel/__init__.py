"""Parallel task execution for the embarrassingly parallel fan-outs.

The paper's PINN strategy trains one independent ``(u_θ, c_θ)`` pair per
ω of the line search, and the benchmark harness runs a method × problem
matrix of mutually independent experiments — both were executed one task
at a time.  This package provides the process-pool engine that fans such
work out across workers while preserving three properties the serial
code had for free:

determinism
    Every task derives its seed from ``(root_seed, task_key)`` via
    :func:`~repro.parallel.seeding.derive_seed` — never from a shared RNG
    stream — so results are bitwise independent of scheduling order,
    worker count, and retry history.

fault isolation
    Each task attempt runs in its own process.  A raising, crashed
    (even SIGKILLed), or hung worker fails *only its task*; the pool and
    its siblings keep running.  Failures are reported as structured
    :class:`~repro.parallel.task.TaskResult` records, optionally retried
    with exponential backoff.

observability
    Workers write their own metrics / Chrome-trace shards
    (:mod:`repro.obs` runs per-process); the engine merges them back
    into the parent's registry and profiler so artifacts look like one
    run (spans keep their real worker pid/tid).

Entry points: :class:`~repro.parallel.engine.ParallelEngine` (or the
:func:`~repro.parallel.engine.run_tasks` convenience) plus
:func:`~repro.parallel.engine.resolve_jobs` for the ``--jobs`` /
``$REPRO_JOBS`` convention.
"""

from repro.parallel.engine import ParallelEngine, resolve_jobs, run_tasks
from repro.parallel.seeding import derive_seed, seed_everything
from repro.parallel.task import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskError,
    TaskResult,
)

__all__ = [
    "ParallelEngine",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "Task",
    "TaskError",
    "TaskResult",
    "derive_seed",
    "resolve_jobs",
    "run_tasks",
    "seed_everything",
]

"""Deterministic per-task seeding.

A parallel run must produce *bitwise* the results of the serial run, in
any scheduling order, at any worker count, across retries.  That rules
out every form of shared-stream seeding (``seed + i`` counters handed
out as tasks are scheduled, global-RNG advancement between tasks): the
seed of a task may depend only on stable identity, never on when or
where it runs.

:func:`derive_seed` therefore hashes ``(root_seed, task_key)`` through
SHA-256 and folds the digest to a non-negative 63-bit integer.  The
mapping is pure, stable across processes and Python versions (unlike
``hash()``, which is salted), and well-mixed — nearby root seeds or keys
yield unrelated streams, so ω = 1.0 and ω = 10.0 do not train from
correlated initialisations.
"""

from __future__ import annotations

import hashlib
import random

_MASK63 = (1 << 63) - 1


def derive_seed(root_seed: int, task_key: str) -> int:
    """A deterministic seed for one task: ``SHA256(root_seed | key)``.

    Returns a non-negative integer < 2**63, accepted by both
    ``np.random.default_rng`` and ``random.seed``, identical wherever and
    whenever the task runs.
    """
    payload = f"{int(root_seed)}|{task_key}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _MASK63


def seed_everything(seed: int) -> None:
    """Seed the process-global RNGs (``random``, ``np.random``) to ``seed``.

    The repo's own code threads explicit ``np.random.default_rng(seed)``
    generators everywhere, but workers seed the globals too as a safety
    net: any library (or future code) that falls back to the global
    stream still sees a per-task deterministic state instead of whatever
    the forked parent happened to hold.
    """
    random.seed(seed)
    import numpy as np

    np.random.seed(seed % (1 << 32))

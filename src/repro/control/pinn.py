"""Physics-informed neural networks for optimal control (§2.3, §3).

Following Mowlavi & Nabi (2023), which the paper reproduces, a *pair* of
networks is trained: a state network ``u_θ`` (the PDE solution surrogate)
and a control network ``c_θ``.  The loss is the multi-objective

.. math::

    \\mathcal L = \\mathcal L_{\\mathcal F}
                + \\mathcal L_{\\mathcal B}(u_\\theta, c_\\theta)
                + \\omega \\, \\mathcal J(u_\\theta),

where the PDE residual and boundary penalties are evaluated at scattered
collocation points (mesh-free, like the RBF methods) and the cost
objective ``J`` is weighted by a coefficient ω found by the **two-step
line search**:

1. for each ω in a log-spaced range, train a fresh ``(u_θ, c_θ)`` pair by
   *alternating* Adam updates on the full loss;
2. since fitting the PDE is imperative, retrain a fresh state network
   ``u'_θ`` for each ω with the step-1 control frozen and *no* ``ωJ``
   term; the pair whose retrained state yields the lowest ``J`` wins.

Spatial derivatives inside the residuals come from
:func:`repro.nn.derivatives.mlp_with_derivatives` (analytic propagation),
so one reverse pass per step yields exact weight gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff import ops
from repro.cloud.halton import halton_sequence
from repro.nn.derivatives import mlp_with_derivatives
from repro.nn.mlp import MLP
from repro.nn.optimizers import Adam
from repro.nn.pytree import value_and_grad_tree
from repro.nn.schedules import paper_schedule
from repro.obs.health import current_watchdog
from repro.obs.hooks import record_compile_cache
from repro.obs.profile import span as _span
from repro.utils.timers import Timer
from repro.pde.laplace import (
    LaplaceControlProblem,
    laplace_bottom_data,
    laplace_side_data,
    laplace_target_flux,
)
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig, poiseuille_profile
from repro.utils.quadrature import trapezoid_weights


@dataclass
class PINNTrainConfig:
    """Training hyperparameters (Table 1/2 rows, scaled).

    ``epochs`` follows the paper's piecewise-constant LR schedule; the
    alternating flag switches between joint and alternating updates of the
    two networks.  ``compile`` routes the loss through the trace-once
    replay engine (:mod:`repro.autodiff.compile`): the loss graph is
    recorded at the first epoch and each subsequent epoch replays it over
    reused buffers — the epoch loop skips all Tensor/closure rebuilds.
    ``compile="codegen"`` further lowers the trace to fused straight-line
    NumPy source (:mod:`repro.autodiff.codegen`, automatic fallback to
    replay when the program is not fully lowerable).
    """

    epochs: int = 2000
    lr: float = 1e-3
    seed: int = 0
    n_interior: int = 400
    n_boundary: int = 40
    alternating: bool = True
    log_every: int = 0
    compile: Union[bool, str, None] = False


@dataclass
class PINNRunResult:
    """Trained pair for one ω plus per-epoch histories."""

    omega: float
    params_u: Any
    params_c: Any
    loss_history: List[float] = field(default_factory=list)
    cost_history: List[float] = field(default_factory=list)
    residual_history: List[float] = field(default_factory=list)


@dataclass
class LineSearchResult:
    """Outcome of the two-step ω line search.

    ``omegas`` lists the ω values that completed, aligned with ``step1``
    and ``step2_costs``.  Under parallel execution a crashed or failed ω
    task is excluded from the candidate set instead of aborting the
    search; its structured :class:`~repro.parallel.task.TaskResult` is
    kept in ``failures``.
    """

    best_omega: float
    best_cost: float
    step1: List[PINNRunResult]
    step2_costs: List[float]
    params_u_retrained: Any
    params_c: Any
    omegas: List[float] = field(default_factory=list)
    failures: List[Any] = field(default_factory=list)


def _train(
    loss_fn,
    params: Dict[str, Any],
    config: PINNTrainConfig,
    alternating_keys: Optional[Sequence[str]] = None,
    trackers=(),
    recorder=None,
) -> Tuple[Dict[str, Any], List[float], Dict[str, List[float]]]:
    """Generic Adam training loop over a dict-of-pytrees parameter set.

    When ``alternating_keys`` is given, epoch ``t`` only applies the
    update to key ``alternating_keys[t % len]`` (the Mowlavi & Nabi
    alternating scheme); gradients for the frozen parts are discarded.

    ``recorder`` (a :class:`~repro.obs.recorder.TraceRecorder`, optional)
    receives one iteration record per epoch — loss as the cost, the
    global norm of the *applied* gradient (after alternating masking),
    the scheduled step size, and grad/update phase seconds.  Falsy
    recorders cost one truth test per epoch.
    """
    if config.compile:
        from repro.autodiff.compile import (
            compiled_value_and_grad_tree,
            resolve_compile_mode,
        )

        vg = compiled_value_and_grad_tree(
            loss_fn, mode=resolve_compile_mode(config.compile) or "replay"
        )
    else:
        vg = value_and_grad_tree(loss_fn)
    opt = Adam(lr=config.lr)
    state = opt.init(params)
    schedule = paper_schedule(config.lr)
    history: List[float] = []
    tracked: Dict[str, List[float]] = {name: [] for name, _ in trackers}
    trace = recorder if recorder else None
    wd = current_watchdog()
    with Timer() as timer:
        for epoch in range(config.epochs):
            if trace is not None:
                timer.mark()
            with _span("grad", "phase"):
                val, grads = vg(params)
            if trace is not None:
                t_grad = timer.lap("grad")
            history.append(val)
            with _span("eval", "phase"):
                for name, fn in trackers:
                    tracked[name].append(fn(params))
            lr = schedule(epoch, config.epochs)
            with _span("update", "phase"):
                if alternating_keys:
                    active = alternating_keys[epoch % len(alternating_keys)]
                    for k in params:
                        if k != active:
                            grads[k] = _zeros_like_tree(grads[k])
                params, state = opt.step(params, grads, state, lr=lr)
            if wd is not None or trace is not None:
                gnorm = _tree_grad_norm(grads)
            if wd is not None:
                for ev in wd.observe_iteration(epoch, float(val), gnorm):
                    if trace is not None:
                        trace.health_event(
                            ev.check, ev.severity, ev.iteration,
                            ev.value, ev.message,
                        )
            if trace is not None:
                trace.iteration(
                    epoch, float(val), gnorm, lr,
                    phases={"grad": t_grad, "update": timer.lap("update")},
                )
    if trace is not None:
        trace.set_meta(epochs_run=config.epochs, train_wall_time_s=timer.elapsed)
        if config.compile:
            record_compile_cache(trace, vg)
    return params, history, tracked


def _train_batched(
    loss_fn,
    extras: Tuple[Any, ...],
    params_stack: Dict[str, Any],
    n: int,
    config: PINNTrainConfig,
    alternating_keys: Optional[Sequence[str]] = None,
    trackers=(),
) -> Tuple[Dict[str, Any], List[List[float]], Dict[str, List[List[float]]]]:
    """Adam loop over N stacked parameter sets via one ``vbatch`` trace.

    The batched counterpart of :func:`_train`: every leaf of
    ``params_stack`` carries a leading axis of length ``n`` and the whole
    fleet trains in one stacked tensor program per epoch —
    ``backward(ones(n))`` seeds each slice with the same cotangent 1.0
    that N independent scalar backwards would, the Adam update and the
    LR schedule are elementwise, and the alternating mask zeroes the same
    keys in every slice, so slice ``i`` of every epoch is bitwise the
    serial run for candidate ``i`` (the batching rules guarantee bitwise
    per-slice forwards and parameter-side VJPs).

    ``extras`` are additional *batched* positional arguments for
    ``loss_fn`` (stacked along axis 0, not differentiated): the per-ω
    weight vector in step 1, the frozen per-ω control parameters in
    step 2.  ``trackers`` map the stacked params to an ``(n,)`` float
    array per epoch.  ``config.compile`` is ignored here — the batched
    trace is re-recorded each epoch (one stacked program is already far
    fewer Python dispatches than N eager tapes).
    """
    from repro.autodiff.batching import vbatch
    from repro.autodiff.tensor import Tensor, asdata
    from repro.nn.pytree import tree_flatten, tree_unflatten

    bfn = vbatch(loss_fn, in_axes=(0,) * (1 + len(extras)))
    ones = np.ones(n)

    def vg(ps):
        leaves, treedef = tree_flatten(ps)
        lts = [Tensor(asdata(x), requires_grad=True) for x in leaves]
        out = bfn(tree_unflatten(treedef, lts), *extras)
        out.backward(ones)
        grads = tree_unflatten(
            treedef,
            [
                t.grad if t.grad is not None else np.zeros_like(t.data)
                for t in lts
            ],
        )
        return np.asarray(out.data, dtype=np.float64).copy(), grads

    opt = Adam(lr=config.lr)
    state = opt.init(params_stack)
    schedule = paper_schedule(config.lr)
    histories: List[List[float]] = [[] for _ in range(n)]
    tracked: Dict[str, List[List[float]]] = {
        name: [[] for _ in range(n)] for name, _ in trackers
    }
    for epoch in range(config.epochs):
        with _span("grad", "phase"):
            vals, grads = vg(params_stack)
        for i in range(n):
            histories[i].append(float(vals[i]))
        with _span("eval", "phase"):
            for name, fn in trackers:
                tv = fn(params_stack)
                for i in range(n):
                    tracked[name][i].append(float(tv[i]))
        lr = schedule(epoch, config.epochs)
        with _span("update", "phase"):
            if alternating_keys:
                active = alternating_keys[epoch % len(alternating_keys)]
                for k in params_stack:
                    if k != active:
                        grads[k] = _zeros_like_tree(grads[k])
            params_stack, state = opt.step(params_stack, grads, state, lr=lr)
    return params_stack, histories, tracked


def _zeros_like_tree(tree):
    from repro.nn.pytree import tree_map

    return tree_map(lambda x: np.zeros_like(np.asarray(x)), tree)


def _tree_grad_norm(tree) -> float:
    """Global 2-norm across every leaf of a gradient pytree."""
    from repro.nn.pytree import tree_flatten

    leaves, _ = tree_flatten(tree)
    total = 0.0
    for leaf in leaves:
        a = np.asarray(leaf, dtype=np.float64).ravel()
        total += float(a @ a)
    return float(np.sqrt(total))


# ======================================================================
# Laplace
# ======================================================================
class LaplacePINN:
    """PINN for the Laplace control problem.

    The paper's architecture: a 3×30 tanh MLP for the state and a small
    MLP for the 1-D control; training points are a scattered (Halton)
    interior cloud plus equispaced boundary points, while evaluation runs
    on the RBF problem's regular grid ("this regularised the PINN and
    improved generalisation").
    """

    def __init__(
        self,
        problem: LaplaceControlProblem,
        state_hidden: Sequence[int] = (30, 30, 30),
        control_hidden: Sequence[int] = (20, 20),
        config: Optional[PINNTrainConfig] = None,
    ) -> None:
        self.problem = problem
        self.config = config or PINNTrainConfig()
        self.net_u = MLP(2, state_hidden, 1)
        self.net_c = MLP(1, control_hidden, 1)
        cfg = self.config

        # Collocation sets.
        self.x_int = halton_sequence(cfg.n_interior, 2)
        nb = cfg.n_boundary
        t = np.linspace(0.0, 1.0, nb)
        self.x_bottom = np.stack([t, np.zeros(nb)], axis=1)
        self.x_left = np.stack([np.zeros(nb), t], axis=1)
        self.x_right = np.stack([np.ones(nb), t], axis=1)
        tt = np.linspace(0.0, 1.0, nb)
        self.x_top = np.stack([tt, np.ones(nb)], axis=1)
        self.top_quad = trapezoid_weights(tt)
        self.bottom_data = laplace_bottom_data(t)
        self.side_data = laplace_side_data(t)
        self.top_target = laplace_target_flux(tt)

    # ------------------------------------------------------------------
    def init_params(self, seed: Optional[int] = None) -> Dict[str, Any]:
        """Fresh parameter pair ``{"u": ..., "c": ...}``."""
        seed = self.config.seed if seed is None else seed
        return {
            "u": self.net_u.init_params(seed),
            "c": self.net_c.init_params(seed + 1),
        }

    def residual_loss(self, pu) -> Any:
        """Mean-square Laplace residual at interior collocation points."""
        _, _, d2 = mlp_with_derivatives(self.net_u, pu, self.x_int)
        lap = d2[0] + d2[1]
        return ops.mean(ops.square(lap))

    def boundary_loss(self, pu, pc) -> Any:
        """Dirichlet penalties on all four walls (top links to ``c_θ``)."""
        u_b = self.net_u.apply(pu, self.x_bottom)[:, 0]
        u_l = self.net_u.apply(pu, self.x_left)[:, 0]
        u_r = self.net_u.apply(pu, self.x_right)[:, 0]
        u_t = self.net_u.apply(pu, self.x_top)[:, 0]
        c_t = self.net_c.apply(pc, self.x_top[:, 0:1])[:, 0]
        return (
            ops.mean(ops.square(u_b - self.bottom_data))
            + ops.mean(ops.square(u_l - self.side_data))
            + ops.mean(ops.square(u_r - self.side_data))
            + ops.mean(ops.square(u_t - c_t))
        )

    def cost_objective(self, pu) -> Any:
        """``J = ∫ |∂u_θ/∂y(x,1) − cos πx|² dx`` by trapezoid quadrature."""
        _, du, _ = mlp_with_derivatives(self.net_u, pu, self.x_top, need_second=False)
        flux = du[1][:, 0]
        return ops.sum_(self.top_quad * ops.square(flux - self.top_target))

    def loss(self, params: Dict[str, Any], omega: float) -> Any:
        """Full multi-objective loss ``L_F + L_B + ω J``."""
        return (
            self.residual_loss(params["u"])
            + self.boundary_loss(params["u"], params["c"])
            + omega * self.cost_objective(params["u"])
        )

    # ------------------------------------------------------------------
    def train_pair(
        self,
        omega: float,
        config: Optional[PINNTrainConfig] = None,
        seed=None,
        recorder=None,
    ) -> PINNRunResult:
        """Line-search step 1: alternating training of ``(u_θ, c_θ)``."""
        cfg = config or self.config
        params = self.init_params(seed)
        trackers = (
            ("cost", lambda p: float(self.cost_objective(p["u"]).data)),
            ("residual", lambda p: float(self.residual_loss(p["u"]).data)),
        )
        if recorder:
            recorder.set_meta(omega=omega)
        params, hist, tracked = _train(
            lambda p: self.loss(p, omega),
            params,
            cfg,
            alternating_keys=("u", "c") if cfg.alternating else None,
            trackers=trackers,
            recorder=recorder,
        )
        return PINNRunResult(
            omega=omega,
            params_u=params["u"],
            params_c=params["c"],
            loss_history=hist,
            cost_history=tracked["cost"],
            residual_history=tracked["residual"],
        )

    def retrain_state(
        self,
        params_c,
        config: Optional[PINNTrainConfig] = None,
        seed=None,
        recorder=None,
    ):
        """Line-search step 2: fresh state net, frozen control, no ωJ."""
        cfg = config or self.config
        # ``seed=0`` must mean seed 0, not "fall back to the config seed"
        # — the parallel line search derives per-task seeds that can
        # legitimately be any integer.
        base_seed = cfg.seed if seed is None else seed
        params = {"u": self.net_u.init_params(base_seed + 7)}

        def forward_loss(p):
            return self.residual_loss(p["u"]) + self.boundary_loss(
                p["u"], params_c
            )

        params, hist, _ = _train(forward_loss, params, cfg, recorder=recorder)
        return params["u"], hist

    # ------------------------------------------------------------------
    # Evaluation on the RBF problem's grid (cross-method comparison)
    # ------------------------------------------------------------------
    def control_values(self, params_c) -> np.ndarray:
        """``c_θ`` sampled at the RBF problem's control abscissae."""
        x = self.problem.control_x[:, None]
        return self.net_c.apply(params_c, x).data[:, 0]

    def evaluate_cost(self, params_u) -> float:
        """J of the state surrogate on the test grid (paper's metric)."""
        p = self.problem
        pts = np.stack([p.control_x, np.ones_like(p.control_x)], axis=1)
        _, du, _ = mlp_with_derivatives(self.net_u, params_u, pts, need_second=False)
        flux = du[1].data[:, 0]
        mism = flux - p.target
        return float(p.quad_w @ (mism * mism))

    def state_values(self, params_u, points: np.ndarray) -> np.ndarray:
        """Surrogate state at arbitrary points."""
        return self.net_u.apply(params_u, points).data[:, 0]


# ======================================================================
# Navier–Stokes
# ======================================================================
class NavierStokesPINN:
    """PINN for the channel-flow control problem.

    State net ``(x, y) → (u, v, p)`` (paper: 5×50 tanh), control net
    ``y → c`` for the inflow velocity.  The loss enforces the momentum and
    continuity residuals, "all Dirichlet and homogeneous Neumann boundary
    penalty terms for the velocity", and the pressure Dirichlet condition
    at the outlet only.
    """

    def __init__(
        self,
        problem: ChannelFlowProblem,
        ns_config: Optional[NSConfig] = None,
        state_hidden: Sequence[int] = (50, 50, 50, 50, 50),
        control_hidden: Sequence[int] = (20, 20),
        config: Optional[PINNTrainConfig] = None,
    ) -> None:
        self.problem = problem
        self.ns_config = ns_config or NSConfig()
        self.config = config or PINNTrainConfig()
        self.net_u = MLP(2, state_hidden, 3)  # (u, v, p)
        self.net_c = MLP(1, control_hidden, 1)
        cfg = self.config
        geo = problem.geometry

        # Interior collocation: Halton scaled to the channel.
        h = halton_sequence(cfg.n_interior, 2)
        self.x_int = h * np.array([geo.lx, geo.ly])

        nb = cfg.n_boundary
        yb = np.linspace(0.0, geo.ly, nb)
        xb = np.linspace(0.0, geo.lx, nb)
        self.x_in = np.stack([np.zeros(nb), yb], axis=1)
        self.x_out = np.stack([np.full(nb, geo.lx), yb], axis=1)
        self.x_bot = np.stack([xb, np.zeros(nb)], axis=1)
        self.x_top = np.stack([xb, np.full(nb, geo.ly)], axis=1)
        self.out_quad = trapezoid_weights(yb)
        self.out_target = poiseuille_profile(yb, geo.ly)

        # Blowing / suction data along the walls (zero off-segment).
        from repro.pde.navier_stokes import _segment_bump

        self.v_bot_data = np.where(
            (xb >= geo.seg_lo) & (xb <= geo.seg_hi),
            _segment_bump(xb, geo.seg_lo, geo.seg_hi, problem.perturbation),
            0.0,
        )
        self.v_top_data = self.v_bot_data.copy()

    # ------------------------------------------------------------------
    def init_params(self, seed: Optional[int] = None) -> Dict[str, Any]:
        """Fresh ``{"u": state_params, "c": control_params}``."""
        seed = self.config.seed if seed is None else seed
        return {
            "u": self.net_u.init_params(seed),
            "c": self.net_c.init_params(seed + 1),
        }

    def residual_loss(self, pu) -> Any:
        """Momentum + continuity mean-square residuals (interior)."""
        Re = self.ns_config.reynolds
        w, dw, d2w = mlp_with_derivatives(self.net_u, pu, self.x_int)
        u, v = w[:, 0], w[:, 1]
        ux, vx, px = dw[0][:, 0], dw[0][:, 1], dw[0][:, 2]
        uy, vy, py = dw[1][:, 0], dw[1][:, 1], dw[1][:, 2]
        lap_u = d2w[0][:, 0] + d2w[1][:, 0]
        lap_v = d2w[0][:, 1] + d2w[1][:, 1]
        mom_x = u * ux + v * uy + px - (1.0 / Re) * lap_u
        mom_y = u * vx + v * vy + py - (1.0 / Re) * lap_v
        cont = ux + vy
        return (
            ops.mean(ops.square(mom_x))
            + ops.mean(ops.square(mom_y))
            + ops.mean(ops.square(cont))
        )

    def boundary_loss(self, pu, pc) -> Any:
        """Velocity Dirichlet/Neumann penalties + outlet pressure."""
        w_in = self.net_u.apply(pu, self.x_in)
        c_in = self.net_c.apply(pc, self.x_in[:, 1:2])[:, 0]
        w_bot = self.net_u.apply(pu, self.x_bot)
        w_top = self.net_u.apply(pu, self.x_top)
        w_out, dw_out, _ = mlp_with_derivatives(
            self.net_u, pu, self.x_out, need_second=False
        )
        loss = (
            ops.mean(ops.square(w_in[:, 0] - c_in))
            + ops.mean(ops.square(w_in[:, 1]))
            + ops.mean(ops.square(w_bot[:, 0]))
            + ops.mean(ops.square(w_bot[:, 1] - self.v_bot_data))
            + ops.mean(ops.square(w_top[:, 0]))
            + ops.mean(ops.square(w_top[:, 1] - self.v_top_data))
            # Outflow: homogeneous Neumann on u, v; Dirichlet p = 0.
            + ops.mean(ops.square(dw_out[0][:, 0]))
            + ops.mean(ops.square(dw_out[0][:, 1]))
            + ops.mean(ops.square(w_out[:, 2]))
        )
        return loss

    def cost_objective(self, pu) -> Any:
        """Outflow-tracking cost of the surrogate."""
        w = self.net_u.apply(pu, self.x_out)
        du = w[:, 0] - self.out_target
        dv = w[:, 1]
        return 0.5 * ops.sum_(self.out_quad * (ops.square(du) + ops.square(dv)))

    def loss(self, params: Dict[str, Any], omega: float) -> Any:
        """Full multi-objective loss."""
        return (
            self.residual_loss(params["u"])
            + self.boundary_loss(params["u"], params["c"])
            + omega * self.cost_objective(params["u"])
        )

    # ------------------------------------------------------------------
    def train_pair(
        self,
        omega: float,
        config: Optional[PINNTrainConfig] = None,
        seed=None,
        recorder=None,
    ) -> PINNRunResult:
        """Line-search step 1 for the channel problem."""
        cfg = config or self.config
        params = self.init_params(seed)
        trackers = (
            ("cost", lambda p: float(self.cost_objective(p["u"]).data)),
            ("residual", lambda p: float(self.residual_loss(p["u"]).data)),
        )
        if recorder:
            recorder.set_meta(omega=omega)
        params, hist, tracked = _train(
            lambda p: self.loss(p, omega),
            params,
            cfg,
            alternating_keys=("u", "c") if cfg.alternating else None,
            trackers=trackers,
            recorder=recorder,
        )
        return PINNRunResult(
            omega=omega,
            params_u=params["u"],
            params_c=params["c"],
            loss_history=hist,
            cost_history=tracked["cost"],
            residual_history=tracked["residual"],
        )

    def retrain_state(
        self,
        params_c,
        config: Optional[PINNTrainConfig] = None,
        seed=None,
        recorder=None,
    ):
        """Line-search step 2 for the channel problem."""
        cfg = config or self.config
        base_seed = cfg.seed if seed is None else seed  # 0 is a valid seed
        params = {"u": self.net_u.init_params(base_seed + 7)}

        def forward_loss(p):
            return self.residual_loss(p["u"]) + self.boundary_loss(p["u"], params_c)

        params, hist, _ = _train(forward_loss, params, cfg, recorder=recorder)
        return params["u"], hist

    # ------------------------------------------------------------------
    def control_values(self, params_c) -> np.ndarray:
        """``c_θ`` sampled at the RBF problem's inflow nodes."""
        y = self.problem.inflow_y[:, None]
        return self.net_c.apply(params_c, y).data[:, 0]

    def evaluate_cost(self, params_u) -> float:
        """Surrogate cost on the RBF problem's outflow nodes."""
        p = self.problem
        pts = np.stack(
            [np.full_like(p.outflow_y, p.geometry.lx), p.outflow_y], axis=1
        )
        w = self.net_u.apply(params_u, pts).data
        du = w[:, 0] - p.u_target
        dv = w[:, 1]
        return float(0.5 * (p.quad_w @ (du * du + dv * dv)))

    def evaluate_cost_physical(self, params_c, ns_config: Optional[NSConfig] = None) -> float:
        """Cost of the PINN *control* under the reference RBF solver.

        Fig. 1's message — "PINN achieves good control at the expense of
        first principles" — is visible by re-simulating the PINN control
        with the physical solver and comparing to the surrogate's claim.
        """
        cfg = ns_config or self.ns_config
        c = self.control_values(params_c)
        st = self.problem.solve(c, cfg)
        return self.problem.cost(st.u, st.v)


# ======================================================================
# Two-step line search (shared)
# ======================================================================
def _omega_task_key(omega: float) -> str:
    """Stable task identity for one ω candidate (drives seed derivation)."""
    return f"omega={float(omega):.17g}"


def _stack_trees(trees: Sequence[Any]) -> Any:
    """Stack same-structured pytrees leafwise along a new axis 0."""
    from repro.nn.pytree import tree_zip_map

    return tree_zip_map(lambda *xs: np.stack([np.asarray(x) for x in xs]), *trees)


def _unstack_tree(stacked: Any, i: int) -> Any:
    """Slice item ``i`` out of a stacked pytree (copies, so the slice
    survives further in-place optimiser updates to the stack)."""
    from repro.nn.pytree import tree_map

    return tree_map(lambda x: np.asarray(x)[i].copy(), stacked)


def _omega_batch_task(pinn, omegas, cfg1, cfg2, seeds, want_trace):
    """A chunk of ω candidates trained as ONE stacked tensor program.

    The vbatch analogue of looping :func:`_omega_task`: per-ω parameter
    sets are initialised from the same :func:`derive_seed` keys the
    serial and parallel paths use, stacked leafwise, and both line-search
    steps train through :func:`_train_batched` — so slice ``i`` is
    bitwise the serial candidate ``i``, at a fraction of the dispatch
    cost.  Step-2's frozen controls ride along as a stacked non-gradient
    argument; the final cost evaluation is plain per-ω NumPy.  Module
    level so the parallel engine can ship chunks to workers (process ×
    batch two-level parallelism).  ``want_trace`` is accepted for
    signature parity with ``_omega_task``; batched training emits
    profiler spans but no per-epoch trace records.
    """
    from repro.autodiff.batching import vbatch

    n = len(omegas)
    om = np.asarray([float(o) for o in omegas], dtype=np.float64)
    stacked = _stack_trees(
        [
            {
                "u": pinn.net_u.init_params(s),
                "c": pinn.net_c.init_params(s + 1),
            }
            for s in seeds
        ]
    )
    cost_fn = vbatch(lambda p: pinn.cost_objective(p["u"]))
    res_fn = vbatch(lambda p: pinn.residual_loss(p["u"]))
    trackers = (
        ("cost", lambda ps: np.asarray(cost_fn(ps).data, dtype=np.float64)),
        ("residual", lambda ps: np.asarray(res_fn(ps).data, dtype=np.float64)),
    )
    with _span("pinn.train_pair_batched", "method", {"n_omega": n}):
        stacked, hists, tracked = _train_batched(
            pinn.loss,
            (om,),
            stacked,
            n,
            cfg1,
            alternating_keys=("u", "c") if cfg1.alternating else None,
            trackers=trackers,
        )

    def retrain_loss(p, pc):
        return pinn.residual_loss(p["u"]) + pinn.boundary_loss(p["u"], pc)

    pc_stack = stacked["c"]
    stacked2 = _stack_trees(
        [{"u": pinn.net_u.init_params(s + 7)} for s in seeds]
    )
    with _span("pinn.retrain_state_batched", "method", {"n_omega": n}):
        stacked2, _, _ = _train_batched(
            retrain_loss, (pc_stack,), stacked2, n, cfg2
        )

    values = []
    for i, omega in enumerate(omegas):
        pu_re = _unstack_tree(stacked2["u"], i)
        with _span("eval", "phase"):
            cost = pinn.evaluate_cost(pu_re)
        run = PINNRunResult(
            omega=float(omega),
            params_u=_unstack_tree(stacked["u"], i),
            params_c=_unstack_tree(stacked["c"], i),
            loss_history=hists[i],
            cost_history=tracked["cost"][i],
            residual_history=tracked["residual"][i],
        )
        values.append(
            {"run": run, "cost": float(cost), "params_u": pu_re, "trace": None}
        )
    return values


def _omega_task(pinn, omega, cfg1, cfg2, seed, want_trace):
    """One ω candidate, end to end: step-1 pair, step-2 retrain, eval.

    Module-level so the parallel engine can ship it to workers under any
    start method.  Identical code runs on the serial path — per-ω results
    are bitwise equal between serial and parallel execution because the
    seed is an explicit argument, not ambient state.
    """
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder() if want_trace else None
    with _span("pinn.train_pair", "method", {"omega": float(omega)}):
        run = pinn.train_pair(omega, cfg1, seed=seed, recorder=recorder)
    with _span("pinn.retrain_state", "method", {"omega": float(omega)}):
        pu_re, _ = pinn.retrain_state(run.params_c, cfg2, seed=seed)
    with _span("eval", "phase"):
        cost = pinn.evaluate_cost(pu_re)
    return {"run": run, "cost": float(cost), "params_u": pu_re, "trace": recorder}


def omega_line_search(
    pinn,
    omegas: Sequence[float],
    config_step1: Optional[PINNTrainConfig] = None,
    config_step2: Optional[PINNTrainConfig] = None,
    recorder=None,
    jobs: Optional[int] = None,
    engine=None,
    batch: bool = False,
) -> LineSearchResult:
    """Run the Mowlavi & Nabi two-step strategy over an ω range.

    The paper tried 11 values (1e-3 … 1e+7) for Laplace, settling on
    ω* = 1e-1, and 9 values (1e-3 … 1e+5) for Navier–Stokes, settling on
    ω* = 1.

    Every ω trains from a seed derived from ``(cfg1.seed, ω)`` — never
    from shared RNG state — so the search is embarrassingly parallel and
    its outcome is independent of execution order.  With ``jobs > 1``
    (or ``$REPRO_JOBS``) the candidates fan out across worker processes
    via :mod:`repro.parallel`; step 2 retrains only the candidates whose
    step-1 worker survived (a crashed or failed ω is dropped from the
    search, recorded in ``LineSearchResult.failures``).  Serial and
    parallel runs produce bitwise-identical ``best_omega`` / costs.

    ``recorder`` receives the step-1 training epochs of every ω in
    sequence (epoch indices restart per ω; the ``omega`` metadata key
    reflects the most recent run) plus the line-search verdict.

    ``batch=True`` vectorises the candidates through
    :func:`repro.autodiff.vbatch`: all ω pairs train as one stacked
    tensor program (one Python dispatch per primitive per epoch instead
    of N), bitwise identical per candidate to the serial loop.  Combined
    with ``jobs > 1`` the candidates are split into contiguous chunks,
    one batched program per worker process — two-level (process × batch)
    parallelism.  Batched training emits profiler spans but no per-epoch
    recorder iterations (the verdict metadata is still recorded); it
    also bypasses ``config.compile``.  Every path — serial, parallel,
    batched, and N_ω == 1 degenerate runs of any of them — derives the
    identical per-ω seed from ``(cfg1.seed, ω)``, so results agree
    bitwise across all of them.
    """
    from repro.parallel import ParallelEngine, TaskError, resolve_jobs
    from repro.parallel.seeding import derive_seed

    if not omegas:
        raise ValueError("need at least one omega")
    cfg1 = config_step1 or pinn.config
    cfg2 = config_step2 or cfg1
    seeds = [derive_seed(cfg1.seed, _omega_task_key(o)) for o in omegas]
    n_jobs = engine.jobs if engine is not None else resolve_jobs(jobs)

    step1: List[PINNRunResult] = []
    step2_costs: List[float] = []
    omegas_run: List[float] = []
    failures: List[Any] = []
    best = None

    if n_jobs > 1 and len(omegas) > 1:
        from repro.parallel.task import Task

        eng = engine or ParallelEngine(jobs=n_jobs, root_seed=cfg1.seed)
        if batch:
            # Process × batch: contiguous ω chunks, one stacked batched
            # program per worker.  Chunk membership cannot change any
            # candidate's result (each slice is bitwise the serial run).
            n_chunks = min(eng.jobs, len(omegas))
            bounds = np.linspace(0, len(omegas), n_chunks + 1).astype(int)
            chunks = [
                (list(omegas[lo:hi]), seeds[lo:hi])
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            tasks = [
                Task(
                    key=f"omega_batch[{_omega_task_key(ch[0][0])}"
                    f"..{_omega_task_key(ch[0][-1])}]",
                    fn=_omega_batch_task,
                    args=(pinn, ch[0], cfg1, cfg2, ch[1], False),
                )
                for ch in chunks
            ]
        else:
            tasks = [
                Task(
                    key=_omega_task_key(o),
                    fn=_omega_task,
                    args=(pinn, o, cfg1, cfg2, s, recorder is not None),
                )
                for o, s in zip(omegas, seeds)
            ]
        with _span("pinn.line_search", "method", {"jobs": eng.jobs}):
            task_results = eng.run(tasks)
        outcomes = []
        if batch:
            for (chunk_omegas, _), res in zip(chunks, task_results):
                if res.ok:
                    outcomes.extend(zip(chunk_omegas, res.value))
                else:
                    failures.append(res)
        else:
            for omega, res in zip(omegas, task_results):
                if res.ok:
                    outcomes.append((omega, res.value))
                else:
                    failures.append(res)
        if not outcomes:
            first = failures[0]
            raise TaskError(
                f"all {len(omegas)} omega tasks failed; first: "
                f"{first.key} -> {first.status} "
                f"({(first.error or {}).get('message', 'no detail')})"
            )
    elif batch:
        with _span("pinn.line_search_batched", "method", {"n_omega": len(omegas)}):
            values = _omega_batch_task(
                pinn, list(omegas), cfg1, cfg2, seeds, False
            )
        outcomes = list(zip(omegas, values))
    else:
        # Serial path: stream every ω's epochs straight into the shared
        # recorder (same record stream a parallel run reassembles from
        # worker shards, modulo timing fields).
        outcomes = []
        for omega, seed in zip(omegas, seeds):
            with _span("pinn.train_pair", "method", {"omega": float(omega)}):
                run = pinn.train_pair(omega, cfg1, seed=seed, recorder=recorder)
            with _span("pinn.retrain_state", "method", {"omega": float(omega)}):
                pu_re, _ = pinn.retrain_state(run.params_c, cfg2, seed=seed)
            with _span("eval", "phase"):
                cost = pinn.evaluate_cost(pu_re)
            value = {
                "run": run,
                "cost": float(cost),
                "params_u": pu_re,
                "trace": None,
            }
            outcomes.append((omega, value))

    for omega, value in outcomes:
        run, cost, pu_re = value["run"], value["cost"], value["params_u"]
        if recorder and value["trace"] is not None:
            recorder.absorb(value["trace"])
        step1.append(run)
        step2_costs.append(cost)
        omegas_run.append(float(omega))
        if best is None or cost < best[1]:
            best = (omega, cost, pu_re, run.params_c)

    if recorder:
        recorder.set_meta(
            omegas=list(map(float, omegas)),
            best_omega=float(best[0]),
            step2_costs=[float(c) for c in step2_costs],
        )
        if failures:
            recorder.set_meta(failed_tasks=[f.to_dict() for f in failures])

    return LineSearchResult(
        best_omega=best[0],
        best_cost=best[1],
        step1=step1,
        step2_costs=step2_costs,
        params_u_retrained=best[2],
        params_c=best[3],
        omegas=omegas_run,
        failures=failures,
    )

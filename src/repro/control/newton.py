"""Reduced-Hessian Gauss–Newton — an extension enabled by exact gradients.

For a *linear* PDE the control-to-flux map is affine, so the Laplace cost
is an exactly quadratic function of the control:

.. math::

    \\mathcal J(c) = \\| W^{1/2} (F c + f_0 - g) \\|^2,

with ``F`` the (dense) control-to-flux Jacobian.  The reduced Hessian
``2 FᵀWF`` is constant, and a single Newton step from any starting point
lands on the discrete minimiser — compare with the hundreds of Adam
iterations the paper's first-order methods spend.  The Jacobian is
assembled column-by-column with the cached LU solver (``n_control``
triangular solves), or equivalently by reverse-mode passes; this module
uses the explicit affine structure for clarity.

This is an *extension*: the paper's comparison is deliberately
first-order-only (Adam for all three methods).  The benchmark
``bench_ablation_newton.py`` quantifies what second-order information
buys when the problem allows it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.autodiff.linalg import LUSolver
from repro.pde.laplace import LaplaceControlProblem


class LaplaceGaussNewton:
    """One-shot (or iterated) Gauss–Newton for the Laplace control problem.

    Parameters
    ----------
    problem:
        The discretised Laplace control problem.
    tikhonov:
        Optional Tikhonov regularisation weight added to the reduced
        Hessian (useful when the flux map is nearly rank-deficient on
        very fine clouds).
    """

    def __init__(
        self, problem: LaplaceControlProblem, tikhonov: float = 0.0
    ) -> None:
        self.problem = problem
        self.tikhonov = float(tikhonov)
        self.solver = LUSolver(problem.system)

        p = problem
        # Control-to-flux Jacobian F: flux_rows @ A^{-1} @ S_top, built
        # with one block triangular solve (n_control RHS columns).
        rhs_block = p.S_top  # (n, n_control)
        u_block = self.solver.solve_numpy(rhs_block)
        self.F = p.flux_rows @ u_block  # (n_control, n_control)
        u0 = self.solver.solve_numpy(p.b_fixed)
        self.f0 = p.flux_rows @ u0  # flux at zero control

        W = np.diag(p.quad_w)
        self.hessian = 2.0 * self.F.T @ W @ self.F
        if self.tikhonov > 0.0:
            self.hessian = self.hessian + self.tikhonov * np.eye(
                p.n_control
            )
        self._chol = sla.cho_factor(self.hessian, check_finite=False)

    def gradient(self, c: np.ndarray) -> np.ndarray:
        """Exact quadratic-model gradient (equals the DP gradient)."""
        p = self.problem
        resid = self.F @ c + self.f0 - p.target
        g = 2.0 * self.F.T @ (p.quad_w * resid)
        if self.tikhonov > 0.0:
            g = g + self.tikhonov * c
        return g

    def step(self, c: np.ndarray) -> np.ndarray:
        """One full Newton step ``c − H⁻¹ ∇J(c)``."""
        c = np.asarray(c, dtype=np.float64)
        return c - sla.cho_solve(self._chol, self.gradient(c), check_finite=False)

    def solve(
        self, c0: Optional[np.ndarray] = None, n_iterations: int = 1
    ) -> Tuple[np.ndarray, float]:
        """Run Gauss–Newton; returns ``(c*, J(c*))``.

        One iteration suffices for the exactly quadratic (unregularised)
        problem; more iterations are only needed to polish round-off.
        """
        p = self.problem
        c = np.zeros(p.n_control) if c0 is None else np.asarray(c0, dtype=np.float64)
        for _ in range(max(n_iterations, 1)):
            c = self.step(c)
        u = self.solver.solve_numpy(p.rhs(c))
        return c, p.cost_from_state(u)

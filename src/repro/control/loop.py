"""The shared gradient-descent loop (Adam + the paper's LR schedule).

The paper runs DAL, DP (and the PINN's network updates) through Adam with
an initial learning rate divided by 10 at 50 % completion and again at
75 %.  This module implements that loop once so the methods differ only
in their gradient oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.control.problem import CostOracle
from repro.nn.optimizers import Adam
from repro.nn.schedules import paper_schedule
from repro.utils.timers import Timer


@dataclass
class OptimizationHistory:
    """Per-iteration record of an optimisation run."""

    costs: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def best_cost(self) -> float:
        """Lowest cost seen."""
        return min(self.costs) if self.costs else np.inf


def optimize(
    oracle: CostOracle,
    n_iterations: int,
    initial_lr: float,
    c0: Optional[np.ndarray] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    grad_clip: Optional[float] = None,
) -> tuple[np.ndarray, OptimizationHistory]:
    """Run Adam with the paper's schedule on a cost oracle.

    Parameters
    ----------
    oracle:
        The method-specific gradient oracle.
    n_iterations:
        Iteration budget (the paper's "Iterations" hyperparameter).
    initial_lr:
        Initial Adam learning rate (Table 1/2 values).
    c0:
        Starting control (defaults to ``oracle.initial_control()``).
    callback:
        Optional per-iteration hook ``(iteration, control, cost)``.
    grad_clip:
        Optional global-norm gradient clip — useful for DAL on
        Navier–Stokes where the paper reports gradients "rising to very
        large values".

    Returns
    -------
    (best_control, history)
        The control achieving the lowest observed cost and the full
        per-iteration record.
    """
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    c = np.array(oracle.initial_control() if c0 is None else c0, dtype=np.float64)
    schedule = paper_schedule(initial_lr)
    opt = Adam(lr=initial_lr)
    state = opt.init(c)
    history = OptimizationHistory()
    best_c, best_j = c.copy(), np.inf

    with Timer() as timer:
        for it in range(n_iterations):
            j, g = oracle.value_and_grad(c)
            if grad_clip is not None:
                norm = float(np.linalg.norm(g))
                if norm > grad_clip:
                    g = g * (grad_clip / norm)
            lr = schedule(it, n_iterations)
            history.costs.append(float(j))
            history.grad_norms.append(float(np.linalg.norm(g)))
            history.learning_rates.append(lr)
            if np.isfinite(j) and j < best_j:
                best_j, best_c = float(j), c.copy()
            if callback is not None:
                callback(it, c, float(j))
            if not np.all(np.isfinite(g)):
                # Divergence (the DAL-on-NS failure mode): stop updating
                # but keep the record — the benchmark reports it.
                break
            c, state = opt.step(c, g, state, lr=lr)
    history.wall_time_s = timer.elapsed
    return best_c, history

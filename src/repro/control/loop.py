"""The shared gradient-descent loop (Adam + the paper's LR schedule).

The paper runs DAL, DP (and the PINN's network updates) through Adam with
an initial learning rate divided by 10 at 50 % completion and again at
75 %.  This module implements that loop once so the methods differ only
in their gradient oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.control.problem import CostOracle
from repro.nn.optimizers import Adam
from repro.nn.schedules import paper_schedule
from repro.obs.health import current_watchdog
from repro.obs.profile import span as _span
from repro.utils.timers import Timer


@dataclass
class OptimizationHistory:
    """Per-iteration record of an optimisation run."""

    costs: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def best_cost(self) -> float:
        """Lowest cost seen."""
        return min(self.costs) if self.costs else np.inf


def optimize(
    oracle: CostOracle,
    n_iterations: int,
    initial_lr: float,
    c0: Optional[np.ndarray] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    grad_clip: Optional[float] = None,
    recorder=None,
) -> tuple[np.ndarray, OptimizationHistory]:
    """Run Adam with the paper's schedule on a cost oracle.

    Parameters
    ----------
    oracle:
        The method-specific gradient oracle.
    n_iterations:
        Iteration budget (the paper's "Iterations" hyperparameter).
    initial_lr:
        Initial Adam learning rate (Table 1/2 values).
    c0:
        Starting control (defaults to ``oracle.initial_control()``).
    callback:
        Optional per-iteration hook ``(iteration, control, cost)``.
    grad_clip:
        Optional global-norm gradient clip — useful for DAL on
        Navier–Stokes where the paper reports gradients "rising to very
        large values".
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder`.  When falsy
        (``None`` or the null recorder) the loop takes no timestamps and
        allocates nothing beyond the history it always kept; when live,
        each iteration emits one record with the cost, gradient norm,
        step size and grad/update phase seconds.

    Returns
    -------
    (best_control, history)
        The control achieving the lowest observed cost and the full
        per-iteration record.
    """
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    c = np.array(oracle.initial_control() if c0 is None else c0, dtype=np.float64)
    schedule = paper_schedule(initial_lr)
    opt = Adam(lr=initial_lr)
    state = opt.init(c)
    history = OptimizationHistory()
    best_c, best_j = c.copy(), np.inf
    trace = recorder if recorder else None
    # One hoisted global read; the disabled path costs one ``is not
    # None`` test per iteration (same class as the trace guards).
    wd = current_watchdog()

    with Timer() as timer:
        for it in range(n_iterations):
            if trace is not None:
                timer.mark()
            with _span("grad", "phase"):
                j, g = oracle.value_and_grad(c)
            if trace is not None:
                t_grad = timer.lap("grad")
            with _span("eval", "phase"):
                if grad_clip is not None:
                    norm = float(np.linalg.norm(g))
                    if norm > grad_clip:
                        g = g * (grad_clip / norm)
                lr = schedule(it, n_iterations)
                history.costs.append(float(j))
                history.grad_norms.append(float(np.linalg.norm(g)))
                history.learning_rates.append(lr)
                if np.isfinite(j) and j < best_j:
                    best_j, best_c = float(j), c.copy()
                if callback is not None:
                    callback(it, c, float(j))
                grad_finite = bool(np.all(np.isfinite(g)))
                if wd is not None:
                    for ev in wd.observe_iteration(
                        it, history.costs[-1], history.grad_norms[-1]
                    ):
                        if trace is not None:
                            trace.health_event(
                                ev.check, ev.severity, ev.iteration,
                                ev.value, ev.message,
                            )
            if not grad_finite:
                # Divergence (the DAL-on-NS failure mode): stop updating
                # but keep the record — the benchmark reports it.
                if trace is not None:
                    trace.iteration(
                        it, history.costs[-1], history.grad_norms[-1], lr,
                        phases={"grad": t_grad, "update": 0.0},
                    )
                break
            with _span("update", "phase"):
                c, state = opt.step(c, g, state, lr=lr)
            if trace is not None:
                trace.iteration(
                    it, history.costs[-1], history.grad_norms[-1], lr,
                    phases={"grad": t_grad, "update": timer.lap("update")},
                )
    history.wall_time_s = timer.elapsed
    if trace is not None:
        trace.set_meta(
            iterations_run=len(history.costs),
            wall_time_s=timer.elapsed,
            phase_seconds=timer.laps(),
        )
    return best_c, history


def batched_cost_sweep(oracle, controls: np.ndarray) -> np.ndarray:
    """Evaluate the cost of N candidate controls in one stacked forward.

    Vectorises the oracle's tape-level cost (``_cost_tensor``) over the
    candidate axis with :func:`repro.autodiff.vbatch`: all N right-hand
    sides flow through ONE multi-RHS solve against the oracle's cached
    factorisation instead of N separate solves.  Used by restart seeding,
    the ``batch_smoke`` gate, and anywhere a population of controls must
    be scored (each entry bitwise-identical to ``oracle.value`` on the
    sparse backend for the narrow populations those callers use —
    SuperLU's multi-RHS solve is per-column bitwise up to ~50 columns).
    Oracles without a tape-level cost fall back to a per-candidate loop
    of ``oracle.value``.
    """
    controls = np.asarray(controls, dtype=np.float64)
    if controls.ndim != 2:
        raise ValueError(
            f"controls must be (N, n_control), got shape {controls.shape}"
        )
    fn = getattr(oracle, "_cost_tensor", None)
    if fn is None:
        return np.asarray([float(oracle.value(c)) for c in controls])
    from repro.autodiff.batching import vbatch

    with _span("batched_cost_sweep", "method", {"n": controls.shape[0]}):
        out = vbatch(fn)(controls)
    return np.asarray(out.data, dtype=np.float64).copy()

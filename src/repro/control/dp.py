"""Differentiable programming (DP): reverse-mode AD through the solver.

The discretise-then-optimise approach: the whole discrete pipeline —
right-hand-side construction, linear solves, projection refinements, cost
quadrature — runs on the autodiff tape, and one backward pass returns the
*exact* gradient of the discrete cost.  This is the method the paper
finds "extremely effective ... producing the most accurate gradients".

Memory behaviour matches the paper's discussion: the tape retains every
intermediate of the ``k`` Navier–Stokes refinements, so peak memory grows
with ``k`` (Table 3's DP rows; the ablation benchmark sweeps this).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autodiff import ops
from repro.autodiff.compile import compiled_value_and_grad, resolve_compile_mode
from repro.autodiff.functional import value_and_grad
from repro.autodiff.sparse import make_linear_solver
from repro.obs.hooks import record_compile_cache, record_solver_cache
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig


def _smoothness_penalty(c, coords: np.ndarray):
    """Discrete H¹-seminorm of the control: Σ ((c_{i+1}−c_i)/Δs)² Δs.

    The paper (§4) observes the DP control is "considerably less smooth
    than the other two" and suggests "penalising the control's variations"
    as the remedy — implemented here as an opt-in regulariser (the paper
    refrained from enabling it to keep the comparison fair, and so do the
    benchmark defaults).
    """
    ds = np.diff(coords)
    diff = c[1:] - c[:-1]
    return ops.sum_(ops.square(diff) / ds)


class LaplaceDP:
    """DP oracle for the Laplace control problem.

    The collocation matrix is constant, so it is factorised once; each
    ``value_and_grad`` costs two triangular solves (forward + adjoint) —
    the same leading cost as one DAL iteration, but with gradients exact
    to machine precision w.r.t. the *discrete* cost.

    The factorisation matches the problem's backend: dense LU for the
    global collocation system, sparse ``splu`` for the RBF-FD system
    (``backend="local"``) — the discrete adjoint identity is storage
    agnostic, so the same reverse pass runs on either.

    ``smoothness_weight`` adds the §4 control-variation penalty to the
    objective (off by default, as in the paper).

    ``compile=True`` routes ``value_and_grad`` through the trace-once
    replay engine (:mod:`repro.autodiff.compile`): the cost graph is
    recorded on the first call and subsequent iterations replay it over
    reused buffers, skipping all Tensor/closure construction — the NumPy
    analogue of wrapping the JAX loss in ``jit``.
    ``compile="codegen"`` additionally lowers the trace to fused
    straight-line NumPy source (:mod:`repro.autodiff.codegen`), falling
    back to replay automatically if the program is not fully lowerable.
    """

    def __init__(
        self,
        problem: LaplaceControlProblem,
        smoothness_weight: float = 0.0,
        compile: Union[bool, str, None] = False,
    ) -> None:
        self.problem = problem
        self.solver = make_linear_solver(
            problem.system,
            method=getattr(problem, "solver", "direct"),
            **(getattr(problem, "solver_opts", None) or {}),
        )
        self.smoothness_weight = float(smoothness_weight)
        mode = resolve_compile_mode(compile)
        self.compile = mode is not None
        self.compile_mode = mode
        self._vg = (
            compiled_value_and_grad(self._cost_tensor, mode=mode)
            if mode
            else value_and_grad(self._cost_tensor)
        )

    def _cost_tensor(self, c):
        p = self.problem
        rhs = ops.matmul(p.S_top, c) + p.b_fixed
        u = self.solver(rhs)
        mismatch = ops.matmul(p.flux_rows, u) - p.target
        j = ops.sum_(p.quad_w * ops.square(mismatch))
        if self.smoothness_weight > 0.0:
            j = j + self.smoothness_weight * _smoothness_penalty(c, p.control_x)
        return j

    def value(self, c: np.ndarray) -> float:
        """Evaluate J(c) (forward only; tape pruned automatically)."""
        return float(self._cost_tensor(np.asarray(c, dtype=np.float64)).data)

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """Exact discrete gradient via one reverse pass."""
        return self._vg(np.asarray(c, dtype=np.float64))

    def initial_control(self) -> np.ndarray:
        """Zero control (the paper's Laplace initialisation)."""
        return self.problem.zero_control()

    def solve_state(self, c: np.ndarray) -> np.ndarray:
        """The nodal state for a given control (for figures)."""
        return self.solver.solve_numpy(self.problem.rhs(np.asarray(c)))

    def report_telemetry(self, recorder) -> None:
        """End-of-run cumulative telemetry: LU and replay cache stats."""
        record_solver_cache(recorder, self.solver, "lu-cache")
        if self.compile:
            record_compile_cache(recorder, self._vg)


class NavierStokesDP:
    """DP oracle for the channel-flow problem.

    Differentiates through all ``k`` projection refinements, including the
    dependence of the momentum matrix on the previous velocity iterate.
    """

    def __init__(
        self,
        problem: ChannelFlowProblem,
        config: Optional[NSConfig] = None,
        smoothness_weight: float = 0.0,
        compile: Union[bool, str, None] = False,
    ) -> None:
        self.problem = problem
        self.config = config or NSConfig(refinements=10)
        self.smoothness_weight = float(smoothness_weight)
        mode = resolve_compile_mode(compile)
        self.compile = mode is not None
        self.compile_mode = mode
        self._vg = (
            compiled_value_and_grad(self._cost_tensor, mode=mode)
            if mode
            else value_and_grad(self._cost_tensor)
        )

    def _cost_tensor(self, c):
        u, v, _ = self.problem.solve_ad(c, self.config)
        j = self.problem.cost_ad(u, v)
        if self.smoothness_weight > 0.0:
            j = j + self.smoothness_weight * _smoothness_penalty(
                c, self.problem.inflow_y
            )
        return j

    def value(self, c: np.ndarray) -> float:
        """Evaluate J(c) with the NumPy solver (cheaper, identical value)."""
        c = np.asarray(c, dtype=np.float64)
        state = self.problem.solve(c, self.config)
        j = self.problem.cost(state.u, state.v)
        if self.smoothness_weight > 0.0:
            j += self.smoothness_weight * float(
                _smoothness_penalty(c, self.problem.inflow_y).data
            )
        return j

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """Exact discrete gradient through the whole projection loop."""
        return self._vg(np.asarray(c, dtype=np.float64))

    def initial_control(self) -> np.ndarray:
        """Parabolic inflow (the paper's NS initialisation)."""
        return self.problem.default_control()

    def report_telemetry(self, recorder) -> None:
        """End-of-run cumulative telemetry: pressure-LU and replay stats."""
        record_solver_cache(
            recorder, self.problem.pressure_solver, "pressure-lu-cache"
        )
        if self.compile:
            record_compile_cache(recorder, self._vg)

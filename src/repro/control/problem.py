"""The common oracle interface all control methods implement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class CostOracle(Protocol):
    """A differentiable cost functional ``J(c)`` over a discrete control."""

    def value(self, c: np.ndarray) -> float:
        """Evaluate ``J(c)``."""
        ...

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """Evaluate ``J(c)`` and ``∇J(c)``."""
        ...

    def initial_control(self) -> np.ndarray:
        """The method-appropriate starting control."""
        ...


@dataclass
class ControlResult:
    """Outcome of one optimisation run (one row of the paper's Table 3)."""

    method: str
    problem: str
    control: np.ndarray
    final_cost: float
    iterations: int
    wall_time_s: float = 0.0
    peak_mem_bytes: int = 0
    cost_history: List[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable summary."""
        mem = self.peak_mem_bytes / 2**20
        return (
            f"{self.problem:>13s} | {self.method:>4s} | "
            f"J={self.final_cost:.3e} | iters={self.iterations} | "
            f"t={self.wall_time_s:.2f}s | peak={mem:.1f}MiB"
        )

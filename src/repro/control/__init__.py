"""Optimal control under PDE constraints — the paper's comparison subjects.

Every method exposes the same *oracle* interface
(:class:`~repro.control.problem.CostOracle`): given a discrete control
vector it returns the cost and (for the gradient-based methods) its
gradient.  A shared Adam-driven loop (:mod:`repro.control.loop`) with the
paper's piecewise-constant learning-rate schedule optimises any oracle,
so the DAL/DP/FD comparisons differ *only* in how the gradient is
computed:

- :mod:`repro.control.dal` — **direct-adjoint looping**: solve the direct
  PDE, solve the analytically derived adjoint PDE, evaluate the continuous
  gradient formula (optimise-then-discretise);
- :mod:`repro.control.dp` — **differentiable programming**: reverse-mode
  AD through the entire discretised solver (discretise-then-optimise);
- :mod:`repro.control.fd` — central finite differences (the paper's
  footnote-11 baseline);
- :mod:`repro.control.pinn` — **physics-informed neural networks** with
  the two-step ω line-search strategy of Mowlavi & Nabi that the paper
  reproduces.
"""

from repro.control.problem import CostOracle, ControlResult
from repro.control.loop import OptimizationHistory, optimize
from repro.control.dal import LaplaceDAL, NavierStokesDAL
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.fd import FiniteDifferenceOracle
from repro.control.newton import LaplaceGaussNewton
from repro.control.pinn import (
    LaplacePINN,
    NavierStokesPINN,
    PINNTrainConfig,
    LineSearchResult,
    omega_line_search,
)

__all__ = [
    "CostOracle",
    "ControlResult",
    "OptimizationHistory",
    "optimize",
    "LaplaceDAL",
    "NavierStokesDAL",
    "LaplaceDP",
    "NavierStokesDP",
    "FiniteDifferenceOracle",
    "LaplaceGaussNewton",
    "LaplacePINN",
    "NavierStokesPINN",
    "PINNTrainConfig",
    "LineSearchResult",
    "omega_line_search",
]

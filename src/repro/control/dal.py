"""Direct-adjoint looping (DAL) — optimise-then-discretise.

For each gradient evaluation DAL solves the *direct* PDE, then the
analytically derived *adjoint* PDE, then evaluates the continuous gradient
formula — all discretised with the same RBF machinery.

Laplace (§3.1)
--------------
With ``J(c) = ∫ |u_y(x,1) − cos πx|² dx`` and Dirichlet control on the top
wall, Green's identity yields the adjoint problem

.. math::

    \\Delta \\lambda = 0, \\qquad
    \\lambda(x, 1) = 2\\,(u_y(x,1) - \\cos \\pi x), \\qquad
    \\lambda = 0 \\text{ on the other walls},

and the gradient ``∇J(x) = ∂λ/∂y(x, 1)``.  Because the adjoint system
matrix equals the direct one, a single LU factorisation serves both.

Navier–Stokes (§3.2)
--------------------
The continuous adjoint of the stationary system is the reversed-advection
problem

.. math::

    (-\\mathbf u \\cdot \\nabla)\\boldsymbol\\lambda
    - \\tfrac{1}{Re}\\Delta \\boldsymbol\\lambda
    = -(\\nabla \\mathbf u)^T \\boldsymbol\\lambda + \\nabla \\sigma,
    \\qquad \\nabla \\cdot \\boldsymbol\\lambda = 0,

with ``λ = 0`` on every boundary where the direct velocity is prescribed
and the Robin outflow condition

.. math::

    \\tfrac{1}{Re}\\partial_n \\lambda + (\\mathbf u \\cdot \\mathbf n)
    \\lambda + \\sigma \\mathbf n + (u - u_t,\\; v) = 0 ,

solved with the same projection scheme as the direct problem.  The
gradient on the inflow is ``∇J(y) = −(1/Re) ∂λ_x/∂x(0,y) − σ(0,y)``.

The reaction term ``(∇u)ᵀλ`` requires RBF derivatives of the direct
velocity — this is precisely where the paper reports DAL breaking down at
``Re = 100`` (boundary derivative noise, the Runge phenomenon), while a
reduced ``Re = 10`` "led to better solutions with DAL".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autodiff.sparse import make_linear_solver
from repro.obs.hooks import record_solver_cache
from repro.obs.profile import span as _span
from repro.pde.discrete import row_selector
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig
from repro.utils.validation import check_finite


class LaplaceDAL:
    """DAL oracle for the Laplace control problem.

    Runs on either operator backend: the direct and adjoint systems share
    one factorisation — dense LU for the global collocation matrix,
    sparse ``splu`` for the RBF-FD system (``backend="local"``).

    ``compile=True`` enables buffer reuse across iterations (the DAL
    analogue of the DP replay engine): the adjoint right-hand side is
    preallocated and zeroed once — only its top-wall entries are ever
    written, so per-call allocation of the full nodal vector disappears.
    """

    def __init__(self, problem: LaplaceControlProblem, compile: bool = False) -> None:
        self.problem = problem
        # Direct and adjoint share the system matrix (Laplace operator,
        # all-Dirichlet rows): one factorisation (or preconditioner,
        # on the iterative backend) for both.
        self.solver = make_linear_solver(
            problem.system,
            method=getattr(problem, "solver", "direct"),
            **(getattr(problem, "solver_opts", None) or {}),
        )
        self.compile = bool(compile)
        self._b_adj = np.zeros(problem.cloud.n) if self.compile else None

    def value(self, c: np.ndarray) -> float:
        """Direct solve + cost quadrature."""
        u = self.solver.solve_numpy(self.problem.rhs(np.asarray(c, dtype=np.float64)))
        return self.problem.cost_from_state(u)

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """One direct + one adjoint solve, then the OTD gradient formula."""
        p = self.problem
        c = np.asarray(c, dtype=np.float64)
        with _span("dal.direct", "method"):
            u = self.solver.solve_numpy(p.rhs(c))
        mismatch = p.flux_rows @ u - p.target
        cost = float(p.quad_w @ (mismatch * mismatch))

        # Adjoint: zero data everywhere except the top wall.  Under
        # ``compile`` the vector is a preallocated workspace — off-wall
        # entries are zeroed once at construction and never touched.
        b_adj = self._b_adj if self._b_adj is not None else np.zeros(p.cloud.n)
        b_adj[p.top] = 2.0 * mismatch
        with _span("dal.adjoint", "method"):
            lam = self.solver.solve_numpy(b_adj)

        # Continuous gradient ∇J(x) = ∂λ/∂y(x, 1), discretised with the
        # nodal derivative rows (``flux_rows`` *is* ``dy[top]`` on both
        # backends).  (OTD: no knowledge of the discrete quadrature — its
        # small inconsistency with the discrete J is the hallmark of
        # optimise-then-discretise.)
        with _span("dal.gradient", "method"):
            grad = p.flux_rows @ lam
        return cost, grad

    def initial_control(self) -> np.ndarray:
        """Zero control."""
        return self.problem.zero_control()

    def solve_adjoint(self, c: np.ndarray) -> np.ndarray:
        """Expose the adjoint field (for tests/figures)."""
        p = self.problem
        u = self.solver.solve_numpy(p.rhs(np.asarray(c, dtype=np.float64)))
        mismatch = p.flux_rows @ u - p.target
        b_adj = np.zeros(p.cloud.n)
        b_adj[p.top] = 2.0 * mismatch
        return self.solver.solve_numpy(b_adj)

    def report_telemetry(self, recorder) -> None:
        """End-of-run cumulative telemetry: shared direct/adjoint LU stats."""
        record_solver_cache(recorder, self.solver, "lu-cache")


@dataclass
class NSAdjointState:
    """Adjoint velocity/pressure fields with convergence history."""

    lx: np.ndarray
    ly: np.ndarray
    sigma: np.ndarray
    update_history: list


class NavierStokesDAL:
    """DAL oracle for the channel-flow problem.

    ``compile=True`` reuses two persistent ``(n, n)`` workspaces for the
    dense adjoint momentum matrix assembly, replacing the ~5 full-size
    temporaries that operator arithmetic would otherwise allocate on
    every gradient evaluation (no effect on the sparse backend, whose
    assembly is already pattern-bounded).

    Telemetry: assigning a :class:`~repro.obs.recorder.TraceRecorder` to
    :attr:`recorder` makes every adjoint solve emit an ``adjoint`` event
    carrying its final update residual and refinement count — the
    per-iteration signal behind the paper's DAL-at-``Re=100`` breakdown
    (§3.2): the adjoint stalling or blowing up shows in this residual
    long before the cost curve reveals it.
    """

    def __init__(
        self,
        problem: ChannelFlowProblem,
        config: Optional[NSConfig] = None,
        adjoint_refinements: Optional[int] = None,
        compile: bool = False,
        recorder=None,
    ) -> None:
        self.problem = problem
        self.config = config or NSConfig(refinements=3)
        self.adjoint_refinements = (
            adjoint_refinements
            if adjoint_refinements is not None
            else max(3 * self.config.refinements, 15)
        )
        self.compile = bool(compile)
        self.recorder = recorder
        self._A_buf: Optional[np.ndarray] = None
        self._T_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def value(self, c: np.ndarray) -> float:
        """Direct solve + outflow cost."""
        st = self.problem.solve(np.asarray(c, dtype=np.float64), self.config)
        return self.problem.cost(st.u, st.v)

    def solve_adjoint(
        self, u: np.ndarray, v: np.ndarray
    ) -> NSAdjointState:
        """Solve the adjoint system for a frozen direct flow ``(u, v)``."""
        rec = self.recorder if self.recorder else None
        t_adj0 = time.perf_counter() if rec is not None else 0.0
        pr = self.problem
        nd, mask, cfg = pr.nodal, pr.mask_int, self.config
        Re, dt = cfg.reynolds, cfg.pseudo_dt
        n = pr.cloud.n

        # RBF derivatives of the direct velocity — the noisy ingredient.
        ux, uy = nd.dx @ u, nd.dy @ u
        vx, vy = nd.dx @ v, nd.dy @ v

        # Adjoint momentum matrix: reversed advection; Dirichlet rows on
        # the velocity-prescribed boundaries; Robin rows at the outflow.
        dirichlet_groups = ("inflow", "wall_bottom", "wall_top", "blowing", "suction")
        out = pr.outflow
        beta = Re * u[out]  # Re (u·n) with n = (1, 0)
        if pr.backend == "local":
            op = (
                sp.diags(-u) @ nd.dx
                + sp.diags(-v) @ nd.dy
                - (1.0 / Re) * nd.lap
            )
            A = sp.diags(mask) @ op  # interior mask zeroes boundary rows
            for g in dirichlet_groups:
                A = A + row_selector(n, pr.cloud.groups[g])
            A = (
                A
                + row_selector(n, out) @ sp.csr_matrix(nd.normal)
                + sp.csr_matrix((beta, (out, out)), shape=(n, n))
            )
            lu = spla.splu(sp.csc_matrix(A))
            solve_sys = lu.solve
        else:
            if self.compile:
                if self._A_buf is None:
                    self._A_buf = np.empty((n, n))
                    self._T_buf = np.empty((n, n))
                A, T = self._A_buf, self._T_buf
                np.multiply((-u)[:, None], nd.dx, out=A)
                np.multiply((-v)[:, None], nd.dy, out=T)
                A += T
                np.multiply(1.0 / Re, nd.lap, out=T)
                A -= T
                A *= mask[:, None]
            else:
                op = (-u)[:, None] * nd.dx + (-v)[:, None] * nd.dy - (1.0 / Re) * nd.lap
                A = mask[:, None] * op
            for g in dirichlet_groups:
                idx = pr.cloud.groups[g]
                A[idx] = 0.0
                A[idx, idx] = 1.0
            A[out] = nd.normal[out]
            A[out, out] += beta
            lu = sla.lu_factor(A, check_finite=False)

            def solve_sys(b: np.ndarray) -> np.ndarray:
                return sla.lu_solve(lu, b, check_finite=False)

        lx = np.zeros(n)
        ly = np.zeros(n)
        sigma = np.zeros(n)
        mismatch_u = u[out] - pr.u_target
        mismatch_v = v[out]
        hist = []

        for _ in range(self.adjoint_refinements):
            sx, sy = nd.dx @ sigma, nd.dy @ sigma
            bx = mask * (-(lx * ux + ly * vx) + sx)
            by = mask * (-(lx * uy + ly * vy) + sy)
            # Outflow Robin data (σ lagged):  n = (1, 0).
            bx_full = bx.copy()
            by_full = by.copy()
            bx_full[out] = -Re * (sigma[out] + mismatch_u)
            by_full[out] = -Re * mismatch_v
            lx_star = solve_sys(bx_full)
            ly_star = solve_sys(by_full)

            div = nd.dx @ lx_star + nd.dy @ ly_star
            phi = pr.pressure_solver.solve_numpy(mask * div / dt)
            lx_new = lx_star - dt * pr.free_uv * (nd.dx @ phi)
            ly_new = ly_star - dt * pr.free_uv * (nd.dy @ phi)
            sigma = sigma - phi  # +∇σ convention: opposite sign to p

            hist.append(
                float(
                    max(np.max(np.abs(lx_new - lx)), np.max(np.abs(ly_new - ly)))
                )
            )
            lx, ly = lx_new, ly_new
            if not (np.all(np.isfinite(lx)) and np.all(np.isfinite(ly))):
                break  # adjoint blow-up: report as-is (the failure mode)

        if rec is not None:
            rec.solver_event(
                "ns-adjoint",
                "adjoint",
                n=n,
                seconds=time.perf_counter() - t_adj0,
                residual=hist[-1] if hist else None,
            )
        return NSAdjointState(lx=lx, ly=ly, sigma=sigma, update_history=hist)

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """Direct solve, adjoint solve, continuous gradient formula."""
        pr = self.problem
        c = np.asarray(c, dtype=np.float64)
        with _span("dal.direct", "method"):
            st = pr.solve(c, self.config)
        cost = pr.cost(st.u, st.v)
        with _span("dal.adjoint", "method"):
            adj = self.solve_adjoint(st.u, st.v)
        nd = pr.nodal
        inflow = pr.inflow
        # ∇J(y) = −(1/Re) ∂λx/∂x (0, y) − σ(0, y)
        with _span("dal.gradient", "method"):
            dlx_dx = nd.dx @ adj.lx
            grad = -(1.0 / self.config.reynolds) * dlx_dx[inflow] - adj.sigma[inflow]
        return cost, grad

    def initial_control(self) -> np.ndarray:
        """Parabolic inflow."""
        return self.problem.default_control()

    def report_telemetry(self, recorder) -> None:
        """End-of-run cumulative telemetry: pressure-LU cache stats."""
        record_solver_cache(
            recorder, self.problem.pressure_solver, "pressure-lu-cache"
        )

"""Finite-difference gradient baseline (paper footnote 11).

Central differences give accurate gradients at ``O(n)`` solves per
evaluation — "efficient in providing accurate gradients for our
Navier–Stokes problem at a reduced memory cost", but scaling linearly
with control dimension where DAL/DP are O(1) solves.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np


class FiniteDifferenceOracle:
    """Wrap any scalar cost ``J(c)`` into a central-difference oracle."""

    def __init__(
        self,
        cost_fn: Callable[[np.ndarray], float],
        initial: np.ndarray,
        eps: float = 1e-6,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.cost_fn = cost_fn
        self._initial = np.asarray(initial, dtype=np.float64)
        self.eps = float(eps)
        self.n_evaluations = 0

    def value(self, c: np.ndarray) -> float:
        """Evaluate the wrapped cost."""
        self.n_evaluations += 1
        return float(self.cost_fn(np.asarray(c, dtype=np.float64)))

    def value_and_grad(self, c: np.ndarray) -> Tuple[float, np.ndarray]:
        """Cost + central-difference gradient (``2n + 1`` solves)."""
        c = np.asarray(c, dtype=np.float64)
        j0 = self.value(c)
        g = np.zeros_like(c)
        for i in range(c.size):
            cp, cm = c.copy(), c.copy()
            cp[i] += self.eps
            cm[i] -= self.eps
            g[i] = (self.value(cp) - self.value(cm)) / (2.0 * self.eps)
        return j0, g

    def initial_control(self) -> np.ndarray:
        """The starting control supplied at construction."""
        return self._initial.copy()

"""Tests for the local RBF-FD extension (sparse stencil operators)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cloud.square import SquareCloud
from repro.rbf.local import (
    build_local_operators,
    default_stencil_size,
    solve_pde_local,
)
from repro.rbf.operators import build_nodal_operators
from repro.rbf.kernels import polyharmonic


@pytest.fixture(scope="module")
def cloud():
    return SquareCloud(16)


@pytest.fixture(scope="module")
def lops(cloud):
    return build_local_operators(cloud, stencil_size=15)


class TestConstruction:
    def test_default_stencil_size(self):
        assert default_stencil_size(1) == 12
        assert default_stencil_size(2) == 13
        assert default_stencil_size(3) == 21

    def test_sparsity(self, lops, cloud):
        assert sp.issparse(lops.dx)
        assert lops.dx.nnz == 15 * cloud.n
        assert lops.lap.nnz <= 15 * cloud.n

    def test_stencil_too_large_raises(self):
        small = SquareCloud(3)
        with pytest.raises(ValueError, match="stencil"):
            build_local_operators(small, stencil_size=100)

    def test_normal_rows_only_on_boundary(self, lops, cloud):
        dense = lops.normal.toarray()
        np.testing.assert_array_equal(dense[cloud.internal], 0.0)
        assert np.abs(dense[cloud.boundary]).sum() > 0


class TestAccuracy:
    def test_linear_exactness(self, lops, cloud):
        f = 1 + 2 * cloud.x - 3 * cloud.y
        np.testing.assert_allclose(lops.dx @ f, 2.0, atol=1e-10)
        np.testing.assert_allclose(lops.dy @ f, -3.0, atol=1e-10)
        np.testing.assert_allclose(lops.lap @ f, 0.0, atol=1e-9)

    def test_smooth_field_first_derivative(self, lops, cloud):
        f = np.sin(2 * cloud.x) * np.cos(cloud.y)
        fx = 2 * np.cos(2 * cloud.x) * np.cos(cloud.y)
        err = np.abs((lops.dx @ f - fx)[cloud.internal])
        assert err.max() < 0.1

    def test_convergence_with_resolution(self):
        errs = []
        for nx in (10, 20):
            c = SquareCloud(nx)
            ops = build_local_operators(c, stencil_size=15)
            f = np.sin(2 * c.x) * np.cos(c.y)
            fx = 2 * np.cos(2 * c.x) * np.cos(c.y)
            errs.append(np.abs((ops.dx @ f - fx)[c.internal]).max())
        assert errs[1] < errs[0]

    def test_agrees_with_global_on_interior(self, cloud, lops):
        gops = build_nodal_operators(cloud, polyharmonic(3), 1)
        f = np.sin(cloud.x + 0.5 * cloud.y)
        d_local = (lops.dx @ f)[cloud.internal]
        d_global = (gops.dx @ f)[cloud.internal]
        # Both approximate the same derivative; agreement at the level of
        # their individual truncation errors.
        assert np.max(np.abs(d_local - d_global)) < 0.05


class TestSparseSolve:
    def exact(self, p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)

    def test_laplace_dirichlet(self, cloud, lops):
        u = solve_pde_local(
            cloud,
            lops,
            {"lap": 1.0},
            0.0,
            {g: self.exact for g in ("top", "bottom", "left", "right")},
        )
        assert np.max(np.abs(u - self.exact(cloud.points))) < 0.05

    def test_poisson_with_source(self, cloud, lops):
        def exact(p):
            return p[:, 0] ** 2 + p[:, 1] ** 2

        u = solve_pde_local(
            cloud,
            lops,
            {"lap": 1.0},
            4.0,
            {g: exact for g in ("top", "bottom", "left", "right")},
        )
        # Degree-1 augmentation: quadratics are approximated, not exact.
        assert np.max(np.abs(u - exact(cloud.points))) < 0.1

"""Tests for nodal differentiation matrices."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.kernels import polyharmonic
from repro.rbf.operators import build_nodal_operators


@pytest.fixture(scope="module")
def ops12():
    return build_nodal_operators(SquareCloud(12), polyharmonic(3), degree=1)


class TestIdentity:
    def test_identity_reproduces_values(self, ops12):
        f = np.sin(ops12.cloud.x) * ops12.cloud.y
        np.testing.assert_allclose(ops12.identity @ f, f, atol=1e-8)


class TestPolynomialExactness:
    """Degree-1 augmentation ⇒ derivatives of linear fields are exact."""

    def test_dx_of_linear(self, ops12):
        c = ops12.cloud
        f = 2.0 + 3.0 * c.x - 1.5 * c.y
        np.testing.assert_allclose(ops12.dx @ f, 3.0 * np.ones(c.n), atol=1e-8)

    def test_dy_of_linear(self, ops12):
        c = ops12.cloud
        f = 2.0 + 3.0 * c.x - 1.5 * c.y
        np.testing.assert_allclose(ops12.dy @ f, -1.5 * np.ones(c.n), atol=1e-8)

    def test_lap_of_linear_is_zero(self, ops12):
        c = ops12.cloud
        f = 1.0 + c.x + c.y
        np.testing.assert_allclose(ops12.lap @ f, 0.0, atol=1e-7)


class TestSmoothFieldAccuracy:
    def test_dx_interior_accuracy(self, ops12):
        c = ops12.cloud
        f = np.sin(2 * c.x) * np.cos(c.y)
        exact = 2 * np.cos(2 * c.x) * np.cos(c.y)
        err = np.abs((ops12.dx @ f - exact)[c.internal])
        assert err.max() < 0.05

    def test_lap_interior_accuracy(self, ops12):
        c = ops12.cloud
        f = np.sin(2 * c.x) * np.cos(c.y)
        exact = -5 * f
        err = np.abs((ops12.lap @ f - exact)[c.internal])
        assert err.max() < 1.5  # second derivatives are the hard case

    def test_convergence_with_resolution(self):
        errs = []
        for nx in (8, 16):
            ops = build_nodal_operators(SquareCloud(nx), polyharmonic(3), 1)
            c = ops.cloud
            f = np.sin(2 * c.x) * np.cos(c.y)
            exact = 2 * np.cos(2 * c.x) * np.cos(c.y)
            errs.append(np.abs((ops.dx @ f - exact)[c.internal]).max())
        assert errs[1] < errs[0] / 1.5  # refinement reduces error

    def test_boundary_derivatives_noisier_than_interior(self):
        """The Runge-phenomenon mechanism the paper blames for DAL's NS
        failure: RBF derivative errors concentrate near the boundary."""
        ops = build_nodal_operators(SquareCloud(16), polyharmonic(3), 1)
        c = ops.cloud
        f = np.sin(3 * c.x) * np.exp(c.y)
        exact = 3 * np.cos(3 * c.x) * np.exp(c.y)
        err = np.abs(ops.dx @ f - exact)
        assert err[c.boundary].max() > err[c.internal].max()


class TestNormalMatrix:
    def test_normal_rows_match_dy_on_top(self, ops12):
        c = ops12.cloud
        top = c.groups["top"]
        np.testing.assert_allclose(
            ops12.normal[top], ops12.dy[top], atol=1e-12
        )

    def test_normal_rows_match_minus_dx_on_left(self, ops12):
        c = ops12.cloud
        left = c.groups["left"]
        np.testing.assert_allclose(
            ops12.normal[left], -ops12.dx[left], atol=1e-12
        )

    def test_internal_rows_zero(self, ops12):
        np.testing.assert_array_equal(
            ops12.normal[ops12.cloud.internal], 0.0
        )


class TestOperatorMatrix:
    def test_combined_operator(self, ops12):
        op = LinearOperator2D(lap=2.0, dx=1.0, identity=0.5)
        M = ops12.operator_matrix(op)
        expected = 2.0 * ops12.lap + 1.0 * ops12.dx + 0.5 * ops12.identity
        np.testing.assert_allclose(M, expected, atol=1e-9)

    def test_variable_coefficients(self, ops12):
        c = ops12.cloud
        b = c.x.copy()
        M = ops12.operator_matrix(LinearOperator2D(dx=b))
        f = c.y + 2 * c.x
        np.testing.assert_allclose(M @ f, b * 2.0, atol=1e-7)

"""Tests for RBF interpolation fit/evaluate."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.rbf.interpolate import fit_interpolant
from repro.rbf.kernels import gaussian, polyharmonic

RNG = np.random.default_rng(4)
QUERIES = RNG.uniform(0.1, 0.9, (20, 2))


@pytest.fixture(scope="module")
def cloud():
    return SquareCloud(12)


class TestExactness:
    def test_interpolates_nodal_values(self, cloud):
        vals = np.sin(3 * cloud.x) + cloud.y
        itp = fit_interpolant(cloud.points, vals)
        np.testing.assert_allclose(itp(cloud.points), vals, atol=1e-7)

    def test_linear_reproduction(self, cloud):
        vals = 1 + 2 * cloud.x - 3 * cloud.y
        itp = fit_interpolant(cloud.points, vals, degree=1)
        exact = 1 + 2 * QUERIES[:, 0] - 3 * QUERIES[:, 1]
        np.testing.assert_allclose(itp(QUERIES), exact, atol=1e-9)

    def test_quadratic_reproduction_with_degree2(self, cloud):
        vals = cloud.x**2 + cloud.x * cloud.y
        itp = fit_interpolant(cloud.points, vals, degree=2)
        exact = QUERIES[:, 0] ** 2 + QUERIES[:, 0] * QUERIES[:, 1]
        np.testing.assert_allclose(itp(QUERIES), exact, atol=1e-8)


class TestDerivatives:
    def test_gradient_of_linear(self, cloud):
        vals = 2 * cloud.x - 3 * cloud.y
        itp = fit_interpolant(cloud.points, vals)
        g = itp.gradient(QUERIES)
        np.testing.assert_allclose(g[:, 0], 2.0, atol=1e-8)
        np.testing.assert_allclose(g[:, 1], -3.0, atol=1e-8)

    def test_laplacian_of_smooth(self, cloud):
        vals = np.sin(2 * cloud.x) * np.cos(cloud.y)
        itp = fit_interpolant(cloud.points, vals)
        exact = -5 * np.sin(2 * QUERIES[:, 0]) * np.cos(QUERIES[:, 1])
        np.testing.assert_allclose(itp.laplacian(QUERIES), exact, atol=0.5)

    def test_single_point_query(self, cloud):
        vals = cloud.x
        itp = fit_interpolant(cloud.points, vals)
        out = itp(np.array([0.5, 0.5]))
        assert out.shape == (1,)
        assert abs(out[0] - 0.5) < 1e-8


class TestValidation:
    def test_wrong_value_shape(self, cloud):
        with pytest.raises(ValueError):
            fit_interpolant(cloud.points, np.zeros(3))

    def test_gaussian_kernel_fit(self, cloud):
        vals = np.exp(-cloud.x)
        itp = fit_interpolant(cloud.points, vals, kernel=gaussian(3.0))
        np.testing.assert_allclose(itp(cloud.points), vals, atol=1e-5)

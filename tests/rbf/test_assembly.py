"""Tests for coefficient-space assembly, cross-validated against the
nodal-space path."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.cloud.base import BoundaryKind
from repro.cloud.square import SquareCloud
from repro.rbf.assembly import (
    LinearOperator2D,
    assemble_collocation_system,
    interpolation_matrix,
    operator_eval_matrix,
)
from repro.rbf.kernels import polyharmonic
from repro.rbf.polynomials import n_poly_terms
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem, solve_pde


class TestInterpolationMatrix:
    def test_symmetric(self):
        cloud = SquareCloud(8)
        A = interpolation_matrix(polyharmonic(3), cloud.points, 1)
        np.testing.assert_allclose(A, A.T, atol=1e-12)

    def test_block_structure(self):
        cloud = SquareCloud(6)
        n, m = cloud.n, n_poly_terms(1)
        A = interpolation_matrix(polyharmonic(3), cloud.points, 1)
        assert A.shape == (n + m, n + m)
        np.testing.assert_array_equal(A[n:, n:], 0.0)

    def test_nonsingular(self):
        cloud = SquareCloud(8)
        A = interpolation_matrix(polyharmonic(3), cloud.points, 1)
        assert np.abs(np.linalg.det(A)) > 0 or np.linalg.matrix_rank(A) == A.shape[0]


class TestLinearOperator2D:
    def test_row_matrix_identity(self):
        cloud = SquareCloud(6)
        k = polyharmonic(3)
        rows = LinearOperator2D(identity=1.0).row_matrix(
            k, cloud.points[:3], cloud.points, 1
        )
        phi = k.phi_matrix(cloud.points[:3], cloud.points)
        np.testing.assert_allclose(rows[:, : cloud.n], phi)

    def test_variable_coefficient_shape_check(self):
        cloud = SquareCloud(6)
        with pytest.raises(ValueError, match="coefficient"):
            LinearOperator2D(dx=np.ones(5)).row_matrix(
                polyharmonic(3), cloud.points[:3], cloud.points, 1
            )

    def test_operator_eval_matrix_wrapper(self):
        cloud = SquareCloud(6)
        k = polyharmonic(3)
        op = LinearOperator2D(lap=1.0)
        a = operator_eval_matrix(k, op, cloud.points[:2], cloud.points, 1)
        b = op.row_matrix(k, cloud.points[:2], cloud.points, 1)
        np.testing.assert_array_equal(a, b)


class TestCoefficientSpaceSolve:
    """Solve Laplace in coefficient space; compare with the nodal path."""

    def exact(self, p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)

    def test_blocks_cover_all_rows(self):
        cloud = SquareCloud(8)
        M, blocks = assemble_collocation_system(
            cloud, polyharmonic(3), 1, LinearOperator2D(lap=1.0)
        )
        total = sum(b.stop - b.start for b in blocks.values())
        assert total == M.shape[0]

    def test_coefficient_solution_matches_nodal(self):
        cloud = SquareCloud(10)
        kernel = polyharmonic(3)
        M, blocks = assemble_collocation_system(
            cloud, kernel, 1, LinearOperator2D(lap=1.0)
        )
        n, m = cloud.n, n_poly_terms(1)
        rhs = np.zeros(n + m)
        # Fill Dirichlet rows with the exact trace, internal rows with 0.
        d_idx = cloud.indices_of_kind(BoundaryKind.DIRICHLET)
        rhs[blocks["dirichlet"]] = self.exact(cloud.points[d_idx])
        coeffs = sla.solve(M, rhs)
        u_coeff = (
            kernel.phi_matrix(cloud.points, cloud.points) @ coeffs[:n]
            + LinearOperator2D(identity=1.0).row_matrix(
                kernel, cloud.points, cloud.points, 1
            )[:, n:]
            @ coeffs[n:]
        )

        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                g: BoundaryCondition("dirichlet", value=self.exact)
                for g in ("top", "bottom", "left", "right")
            },
        )
        u_nodal = solve_pde(cloud, prob)
        np.testing.assert_allclose(u_coeff, u_nodal, atol=1e-6)

    def test_robin_block_assembly(self):
        kinds = {
            "internal": BoundaryKind.INTERNAL,
            "bottom": BoundaryKind.DIRICHLET,
            "left": BoundaryKind.DIRICHLET,
            "right": BoundaryKind.DIRICHLET,
            "top": BoundaryKind.ROBIN,
        }
        cloud = SquareCloud(8, kinds=kinds)
        M, blocks = assemble_collocation_system(
            cloud,
            polyharmonic(3),
            1,
            LinearOperator2D(lap=1.0),
            robin_beta={"top": 2.0},
        )
        r = blocks["robin"]
        assert r.stop - r.start == len(cloud.groups["top"])
        assert np.any(M[r] != 0.0)

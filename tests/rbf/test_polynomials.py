"""Tests for the monomial augmentation basis."""

import numpy as np
import pytest

from repro.rbf.polynomials import (
    monomial_exponents,
    n_poly_terms,
    poly_dx_matrix,
    poly_dy_matrix,
    poly_lap_matrix,
    poly_matrix,
)

PTS = np.array([[0.5, 2.0], [1.0, -1.0], [0.0, 0.0]])


class TestCombinatorics:
    def test_paper_count_degree1(self):
        # Paper footnote: n=1 in 2-D appends M = C(3,1) = 3 polynomials.
        assert n_poly_terms(1) == 3

    def test_counts(self):
        assert n_poly_terms(0) == 1
        assert n_poly_terms(2) == 6
        assert n_poly_terms(3) == 10
        assert n_poly_terms(-1) == 0

    def test_exponent_order(self):
        assert monomial_exponents(2) == [
            (0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)
        ]

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError):
            monomial_exponents(-1)


class TestEvaluation:
    def test_degree1_values(self):
        P = poly_matrix(PTS, 1)
        np.testing.assert_allclose(P[:, 0], 1.0)
        np.testing.assert_allclose(P[:, 1], PTS[:, 0])
        np.testing.assert_allclose(P[:, 2], PTS[:, 1])

    def test_degree2_cross_term(self):
        P = poly_matrix(PTS, 2)
        np.testing.assert_allclose(P[:, 4], PTS[:, 0] * PTS[:, 1])

    def test_dx(self):
        D = poly_dx_matrix(PTS, 2)
        np.testing.assert_allclose(D[:, 0], 0.0)  # d/dx 1
        np.testing.assert_allclose(D[:, 1], 1.0)  # d/dx x
        np.testing.assert_allclose(D[:, 3], 2 * PTS[:, 0])  # d/dx x²
        np.testing.assert_allclose(D[:, 4], PTS[:, 1])  # d/dx xy

    def test_dy(self):
        D = poly_dy_matrix(PTS, 2)
        np.testing.assert_allclose(D[:, 2], 1.0)
        np.testing.assert_allclose(D[:, 5], 2 * PTS[:, 1])

    def test_laplacian(self):
        L = poly_lap_matrix(PTS, 2)
        np.testing.assert_allclose(L[:, :3], 0.0)  # linear terms harmonic
        np.testing.assert_allclose(L[:, 3], 2.0)  # Δx² = 2
        np.testing.assert_allclose(L[:, 4], 0.0)  # Δxy = 0
        np.testing.assert_allclose(L[:, 5], 2.0)

    def test_derivatives_consistent_with_fd(self):
        eps = 1e-6
        for mat, axis in ((poly_dx_matrix, 0), (poly_dy_matrix, 1)):
            shift = np.zeros(2)
            shift[axis] = eps
            fd = (poly_matrix(PTS + shift, 3) - poly_matrix(PTS - shift, 3)) / (2 * eps)
            np.testing.assert_allclose(mat(PTS, 3), fd, atol=1e-6)

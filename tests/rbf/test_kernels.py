"""Tests for radial kernels: derivative identities and matrix builders."""

import numpy as np
import pytest

from repro.rbf.kernels import Kernel, gaussian, get_kernel, multiquadric, polyharmonic

RNG = np.random.default_rng(2)
CENTERS = RNG.uniform(0, 1, (6, 2))
POINTS = RNG.uniform(0, 1, (5, 2))

ALL_KERNELS = [polyharmonic(3), polyharmonic(5), gaussian(2.0), multiquadric(2.0)]


def fd_grad(kernel, x, c, eps=1e-6):
    def phi_at(p):
        return kernel.phi_matrix(p[None, :], c[None, :])[0, 0]

    gx = (phi_at(x + [eps, 0]) - phi_at(x - [eps, 0])) / (2 * eps)
    gy = (phi_at(x + [0, eps]) - phi_at(x - [0, eps])) / (2 * eps)
    return gx, gy


def fd_lap(kernel, x, c, eps=1e-4):
    def phi_at(p):
        return kernel.phi_matrix(np.array(p)[None, :], c[None, :])[0, 0]

    f0 = phi_at(x)
    return (
        phi_at(x + [eps, 0]) + phi_at(x - [eps, 0])
        + phi_at(x + [0, eps]) + phi_at(x - [0, eps]) - 4 * f0
    ) / eps**2


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestDerivativeIdentities:
    def test_gradient_matches_fd(self, kernel):
        x = np.array([0.3, 0.7])
        c = np.array([0.9, 0.2])
        gx_m, gy_m = kernel.grad_matrices(x[None, :], c[None, :])
        gx, gy = fd_grad(kernel, x, c)
        assert abs(gx_m[0, 0] - gx) < 1e-7
        assert abs(gy_m[0, 0] - gy) < 1e-7

    def test_laplacian_matches_fd(self, kernel):
        x = np.array([0.3, 0.7])
        c = np.array([0.9, 0.2])
        lap_m = kernel.lap_matrix(x[None, :], c[None, :])[0, 0]
        assert abs(lap_m - fd_lap(kernel, x, c)) < 1e-5

    def test_phi_symmetric_in_distance(self, kernel):
        a, b = POINTS[0], CENTERS[0]
        v1 = kernel.phi_matrix(a[None], b[None])[0, 0]
        v2 = kernel.phi_matrix(b[None], a[None])[0, 0]
        assert abs(v1 - v2) < 1e-14

    def test_matrix_shapes(self, kernel):
        assert kernel.phi_matrix(POINTS, CENTERS).shape == (5, 6)
        gx, gy = kernel.grad_matrices(POINTS, CENTERS)
        assert gx.shape == (5, 6) and gy.shape == (5, 6)

    def test_finite_at_coincident_points(self, kernel):
        same = CENTERS[:3]
        assert np.all(np.isfinite(kernel.phi_matrix(same, same)))
        gx, gy = kernel.grad_matrices(same, same)
        assert np.all(np.isfinite(gx)) and np.all(np.isfinite(gy))
        assert np.all(np.isfinite(kernel.lap_matrix(same, same)))


class TestNormalMatrix:
    def test_normal_combines_gradients(self):
        k = polyharmonic(3)
        normals = np.tile([0.0, 1.0], (5, 1))
        dn = k.normal_matrix(POINTS, CENTERS, normals)
        _, gy = k.grad_matrices(POINTS, CENTERS)
        np.testing.assert_allclose(dn, gy)

    def test_mixed_normals(self):
        k = polyharmonic(3)
        normals = np.tile([0.6, 0.8], (5, 1))
        dn = k.normal_matrix(POINTS, CENTERS, normals)
        gx, gy = k.grad_matrices(POINTS, CENTERS)
        np.testing.assert_allclose(dn, 0.6 * gx + 0.8 * gy)


class TestSpecificKernels:
    def test_phs3_values(self):
        k = polyharmonic(3)
        r = np.array([[2.0]])
        assert k.phi(r)[0, 0] == 8.0
        assert k.lap(r)[0, 0] == 9 * 2.0  # k² r^{k-2} = 9r

    def test_phs_rejects_even_order(self):
        with pytest.raises(ValueError):
            polyharmonic(2)

    def test_phs1_guard_at_origin(self):
        k = polyharmonic(1)
        assert np.isfinite(k.dphi_over_r(np.array([0.0]))[0])

    def test_gaussian_at_zero(self):
        k = gaussian(3.0)
        r0 = np.array([[0.0]])
        assert k.phi(r0)[0, 0] == 1.0
        assert k.lap(r0)[0, 0] == -4 * 9.0  # −4ε²

    def test_positive_shape_required(self):
        with pytest.raises(ValueError):
            gaussian(0.0)
        with pytest.raises(ValueError):
            multiquadric(-1.0)

    def test_factory(self):
        assert get_kernel("phs3").name == "polyharmonic3"
        assert get_kernel("phs5").name == "polyharmonic5"
        assert "gaussian" in get_kernel("gaussian").name
        assert "multiquadric" in get_kernel("mq").name
        with pytest.raises(ValueError):
            get_kernel("wendland")

"""Tests for the linear PDE solver (nodal path) and its LU caching."""

import numpy as np
import pytest

from repro.cloud.base import BoundaryKind
from repro.cloud.square import SquareCloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.kernels import polyharmonic
from repro.rbf.solver import (
    BoundaryCondition,
    LinearPDEProblem,
    LocalRBFSolver,
    RBFSolver,
    solve_pde,
)


def dirichlet_everywhere(value_fn):
    return {
        g: BoundaryCondition("dirichlet", value=value_fn)
        for g in ("top", "bottom", "left", "right")
    }


class TestLaplaceSolve:
    def exact(self, p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)

    def test_matches_analytic(self, square_cloud_16):
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs=dirichlet_everywhere(self.exact),
        )
        u = solve_pde(square_cloud_16, prob)
        err = np.max(np.abs(u - self.exact(square_cloud_16.points)))
        assert err < 0.02

    def test_convergence(self):
        errs = []
        for nx in (8, 16):
            cloud = SquareCloud(nx)
            prob = LinearPDEProblem(
                operator=LinearOperator2D(lap=1.0),
                bcs=dirichlet_everywhere(self.exact),
            )
            u = solve_pde(cloud, prob)
            errs.append(np.max(np.abs(u - self.exact(cloud.points))))
        assert errs[1] < errs[0]

    def test_boundary_values_exact(self, square_cloud_16):
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs=dirichlet_everywhere(self.exact),
        )
        u = solve_pde(square_cloud_16, prob)
        b = square_cloud_16.boundary
        np.testing.assert_allclose(
            u[b], self.exact(square_cloud_16.points[b]), atol=1e-10
        )


class TestBoundaryCondition:
    def test_constant_value(self):
        bc = BoundaryCondition("dirichlet", value=2.5)
        np.testing.assert_allclose(bc.evaluate(np.zeros((4, 2))), 2.5)

    def test_callable_value(self):
        bc = BoundaryCondition("dirichlet", value=lambda p: p[:, 0] ** 2)
        pts = np.array([[2.0, 0.0], [3.0, 0.0]])
        np.testing.assert_allclose(bc.evaluate(pts), [4.0, 9.0])

    def test_array_value(self):
        bc = BoundaryCondition("neumann", value=np.array([1.0, 2.0]))
        np.testing.assert_allclose(bc.evaluate(np.zeros((2, 2))), [1.0, 2.0])

    def test_wrong_length_raises(self):
        bc = BoundaryCondition("dirichlet", value=lambda p: np.zeros(3))
        with pytest.raises(ValueError):
            bc.evaluate(np.zeros((4, 2)))


class TestNeumannAndRobin:
    def test_neumann_problem(self):
        # u = x(1-x)/2 + y: Δu = -1; top (y=1): ∂u/∂n = ∂u/∂y = 1.
        kinds = {
            "internal": BoundaryKind.INTERNAL,
            "bottom": BoundaryKind.DIRICHLET,
            "left": BoundaryKind.DIRICHLET,
            "right": BoundaryKind.DIRICHLET,
            "top": BoundaryKind.NEUMANN,
        }
        cloud = SquareCloud(14, kinds=kinds)

        def exact(p):
            return p[:, 0] * (1 - p[:, 0]) / 2 + p[:, 1]

        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            source=-1.0,
            bcs={
                "bottom": BoundaryCondition("dirichlet", value=exact),
                "left": BoundaryCondition("dirichlet", value=exact),
                "right": BoundaryCondition("dirichlet", value=exact),
                "top": BoundaryCondition("neumann", value=1.0),
            },
        )
        u = solve_pde(cloud, prob)
        assert np.max(np.abs(u - exact(cloud.points))) < 0.02

    def test_robin_problem(self):
        # u = y: top Robin with β=2: ∂u/∂n + 2u = 1 + 2 = 3.
        kinds = {
            "internal": BoundaryKind.INTERNAL,
            "bottom": BoundaryKind.DIRICHLET,
            "left": BoundaryKind.DIRICHLET,
            "right": BoundaryKind.DIRICHLET,
            "top": BoundaryKind.ROBIN,
        }
        cloud = SquareCloud(12, kinds=kinds)

        def exact(p):
            return p[:, 1]

        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                "bottom": BoundaryCondition("dirichlet", value=exact),
                "left": BoundaryCondition("dirichlet", value=exact),
                "right": BoundaryCondition("dirichlet", value=exact),
                "top": BoundaryCondition("robin", value=3.0, beta=2.0),
            },
        )
        u = solve_pde(cloud, prob)
        assert np.max(np.abs(u - exact(cloud.points))) < 1e-6

    def test_kind_mismatch_raises(self, square_cloud_12):
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                "top": BoundaryCondition("neumann", value=0.0),
                "bottom": BoundaryCondition("dirichlet", value=0.0),
                "left": BoundaryCondition("dirichlet", value=0.0),
                "right": BoundaryCondition("dirichlet", value=0.0),
            },
        )
        with pytest.raises(ValueError, match="ordered as"):
            RBFSolver(square_cloud_12).solve(prob)

    def test_missing_bc_raises(self, square_cloud_12):
        prob = LinearPDEProblem(operator=LinearOperator2D(lap=1.0), bcs={})
        with pytest.raises(ValueError, match="missing boundary"):
            RBFSolver(square_cloud_12).solve(prob)


class TestCaching:
    def test_cached_solve_matches_fresh(self, square_cloud_12):
        solver = RBFSolver(square_cloud_12)

        def make(v):
            return LinearPDEProblem(
                operator=LinearOperator2D(lap=1.0),
                bcs={
                    g: BoundaryCondition("dirichlet", value=float(v))
                    for g in ("top", "bottom", "left", "right")
                },
            )

        u1 = solver.solve(make(1.0), cache_key="k")
        u2 = solver.solve(make(2.0), cache_key="k")  # reuses the LU
        u2_fresh = solver.solve(make(2.0))
        np.testing.assert_allclose(u2, u2_fresh, rtol=1e-12)
        np.testing.assert_allclose(u2, 2 * u1, rtol=1e-9)

    def test_clear_cache(self, square_cloud_12):
        solver = RBFSolver(square_cloud_12)
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                g: BoundaryCondition("dirichlet", value=0.0)
                for g in ("top", "bottom", "left", "right")
            },
        )
        solver.solve(prob, cache_key="a")
        assert ("a", solver._cache_token()) in solver._lu_cache
        solver.clear_cache()
        assert not solver._lu_cache


def _dirichlet_problem(value=0.0):
    return LinearPDEProblem(
        operator=LinearOperator2D(lap=1.0),
        bcs={
            g: BoundaryCondition("dirichlet", value=value)
            for g in ("top", "bottom", "left", "right")
        },
    )


class TestFactorizationCounting:
    """Factorise-once/solve-many regression: the ``n_factorizations``
    counter proves the cache is actually hit across repeated solves."""

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_cache_hit_across_solves(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        assert solver.n_factorizations == 0
        for v in (1.0, 2.0, 3.0):
            solver.solve(_dirichlet_problem(v), cache_key="loop")
        assert solver.n_factorizations == 1

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_no_key_no_cache(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        solver.solve(_dirichlet_problem(1.0))
        solver.solve(_dirichlet_problem(2.0))
        assert solver.n_factorizations == 2

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_distinct_keys_factorize_separately(
        self, square_cloud_12, solver_cls
    ):
        solver = solver_cls(square_cloud_12)
        solver.solve(_dirichlet_problem(1.0), cache_key="a")
        solver.solve(_dirichlet_problem(1.0), cache_key="b")
        solver.solve(_dirichlet_problem(2.0), cache_key="a")
        assert solver.n_factorizations == 2

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_key_invalidates_on_new_cloud(self, solver_cls):
        # Same cache_key, different cloud objects: the discretisation
        # token must keep the two factorisations apart.
        s1 = solver_cls(SquareCloud(10))
        s2 = solver_cls(SquareCloud(10))
        assert s1._cache_token() != s2._cache_token()
        key = ("shared", s1._cache_token())
        s1.solve(_dirichlet_problem(1.0), cache_key="shared")
        assert key in s1._lu_cache
        assert ("shared", s2._cache_token()) not in s1._lu_cache

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_key_depends_on_kernel(self, square_cloud_12, solver_cls):
        s1 = solver_cls(square_cloud_12, kernel=polyharmonic(3))
        s2 = solver_cls(square_cloud_12, kernel=polyharmonic(5))
        assert s1._cache_token() != s2._cache_token()

    def test_local_token_depends_on_stencil_size(self, square_cloud_12):
        s1 = LocalRBFSolver(square_cloud_12, stencil_size=12)
        s2 = LocalRBFSolver(square_cloud_12, stencil_size=20)
        assert s1._cache_token() != s2._cache_token()

    def test_local_cached_solve_matches_dense(self, square_cloud_12):
        def exact(p):
            return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(
                np.pi
            )

        prob = _dirichlet_problem(exact)
        u_dense = RBFSolver(square_cloud_12).solve(prob)
        local = LocalRBFSolver(square_cloud_12, stencil_size=25)
        u1 = local.solve(prob, cache_key="k")
        u2 = local.solve(prob, cache_key="k")
        np.testing.assert_allclose(u1, u2, rtol=1e-12)
        assert local.n_factorizations == 1
        assert np.max(np.abs(u1 - u_dense)) < 0.05


class TestSourceEvaluation:
    def test_callable_source(self, square_cloud_12):
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            source=lambda p: p[:, 0],
            bcs={
                g: BoundaryCondition("dirichlet", value=0.0)
                for g in ("top", "bottom", "left", "right")
            },
        )
        rhs = RBFSolver(square_cloud_12).assemble_rhs(prob)
        interior = square_cloud_12.internal
        np.testing.assert_allclose(rhs[interior], square_cloud_12.x[interior])

    def test_scalar_source_broadcast(self, square_cloud_12):
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            source=3.0,
            bcs={
                g: BoundaryCondition("dirichlet", value=0.0)
                for g in ("top", "bottom", "left", "right")
            },
        )
        rhs = RBFSolver(square_cloud_12).assemble_rhs(prob)
        np.testing.assert_allclose(rhs[square_cloud_12.internal], 3.0)


class TestSolveBlock:
    """Multi-RHS factorisation reuse: one LU serves an (N_rhs, n) block."""

    N_RHS = 5

    def _block(self, solver):
        rng = np.random.default_rng(17)
        return rng.standard_normal((self.N_RHS, solver.cloud.n))

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_one_factorisation_one_solve(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        solver.solve_block(_dirichlet_problem(), self._block(solver))
        assert solver.n_factorizations == 1
        assert solver.n_solves == 1

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_cache_key_reuses_factors(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        B = self._block(solver)
        solver.solve_block(_dirichlet_problem(), B, cache_key="k")
        solver.solve_block(_dirichlet_problem(), B, cache_key="k")
        assert solver.n_factorizations == 1
        assert solver.n_solves == 2

    def test_dense_block_matches_per_column(self, square_cloud_12):
        solver = RBFSolver(square_cloud_12)
        prob = _dirichlet_problem()
        B = self._block(solver)
        X = solver.solve_block(prob, B, cache_key="k")
        lu, _ = solver._factors(prob, "k", None)
        import scipy.linalg as sla

        for i in range(self.N_RHS):
            xi = sla.lu_solve(lu, B[i], check_finite=False)
            # Dense LAPACK multi-RHS reorders the substitutions, so
            # agreement is to rounding, not bitwise (unlike SuperLU).
            np.testing.assert_allclose(X[i], xi, rtol=0, atol=1e-12)

    def test_local_block_bitwise_matches_per_column(self, square_cloud_12):
        solver = LocalRBFSolver(square_cloud_12)
        prob = _dirichlet_problem()
        B = self._block(solver)
        X = solver.solve_block(prob, B, cache_key="k")
        lu, _ = solver._factors(prob, "k", None)
        for i in range(self.N_RHS):
            assert np.array_equal(X[i], lu.solve(B[i])), f"rhs {i}"

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_empty_block(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        out = solver.solve_block(
            _dirichlet_problem(), np.empty((0, square_cloud_12.n))
        )
        assert out.shape == (0, square_cloud_12.n)

    @pytest.mark.parametrize("solver_cls", [RBFSolver, LocalRBFSolver])
    def test_bad_shape_raises(self, square_cloud_12, solver_cls):
        solver = solver_cls(square_cloud_12)
        with pytest.raises(ValueError, match="b_block"):
            solver.solve_block(_dirichlet_problem(), np.zeros(square_cloud_12.n))
        with pytest.raises(ValueError, match="b_block"):
            solver.solve_block(
                _dirichlet_problem(), np.zeros((2, square_cloud_12.n + 1))
            )


class TestIterativeBackend:
    """LocalRBFSolver with ``linear_solver="iterative"`` (Krylov path)."""

    def _exact(self, p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(
            np.pi
        )

    def test_invalid_backend_name_raises(self, square_cloud_12):
        with pytest.raises(ValueError, match="linear_solver"):
            LocalRBFSolver(square_cloud_12, linear_solver="multigrid")

    def test_solver_name_reflects_backend(self, square_cloud_12):
        direct = LocalRBFSolver(square_cloud_12)
        iterative = LocalRBFSolver(square_cloud_12, linear_solver="iterative")
        assert direct.solver_name == "rbf-sparse-splu"
        assert iterative.solver_name == "rbf-sparse-krylov"

    def test_iterative_solution_matches_direct(self, square_cloud_12):
        prob = _dirichlet_problem(self._exact)
        u_direct = LocalRBFSolver(square_cloud_12).solve(prob)
        u_iter = LocalRBFSolver(
            square_cloud_12, linear_solver="iterative"
        ).solve(prob)
        np.testing.assert_allclose(u_iter, u_direct, rtol=1e-7, atol=1e-9)

    def test_solver_opts_forwarded(self, square_cloud_12):
        solver = LocalRBFSolver(
            square_cloud_12,
            linear_solver="iterative",
            solver_opts={"method": "gmres", "tol": 1e-8, "maxiter": 500},
        )
        fac, _ = solver._factors(_dirichlet_problem(), "k", None)
        assert fac.method == "gmres"
        assert fac.tol == 1e-8
        assert fac.maxiter == 500

    def test_preconditioner_cached_across_solves(self, square_cloud_12):
        solver = LocalRBFSolver(square_cloud_12, linear_solver="iterative")
        assert solver.n_factorizations == 0
        for v in (1.0, 2.0, 3.0):
            solver.solve(_dirichlet_problem(v), cache_key="loop")
        assert solver.n_factorizations == 1
        fac, _ = solver._factors(_dirichlet_problem(), "loop", None)
        assert fac.n_factorizations == 1  # ONE preconditioner build
        assert fac.n_solves == 3
        assert fac.n_fallbacks == 0

    def test_events_come_from_the_krylov_solver(self, square_cloud_12):
        from repro.obs import TraceRecorder

        solver = LocalRBFSolver(square_cloud_12, linear_solver="iterative")
        solver.recorder = TraceRecorder(test="rbf-iterative")
        solver.solve(_dirichlet_problem(1.0), cache_key="k")
        events = solver.recorder.solver_events
        # The KrylovSolver reports its own factorize/solve (with
        # iteration counts); the generic rbf-sparse events are
        # suppressed so nothing is double-counted.
        assert [e.event for e in events] == ["factorize", "solve"]
        assert all(e.solver == "sparse-krylov" for e in events)
        assert events[-1].iterations >= 1

    def test_block_solve_bitwise_matches_per_row(self, square_cloud_12):
        solver = LocalRBFSolver(square_cloud_12, linear_solver="iterative")
        prob = _dirichlet_problem()
        rng = np.random.default_rng(11)
        B = rng.standard_normal((3, square_cloud_12.n))
        X = solver.solve_block(prob, B, cache_key="k")
        fac, _ = solver._factors(prob, "k", None)
        for i in range(3):
            assert np.array_equal(X[i], fac.solve_numpy(B[i])), f"rhs {i}"

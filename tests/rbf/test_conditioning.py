"""Tests for conditioning diagnostics (the §3.1 grid-vs-scatter claim)."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.rbf.conditioning import collocation_condition_number
from repro.rbf.kernels import gaussian, polyharmonic


class TestConditionNumber:
    def test_positive_and_finite(self):
        c = collocation_condition_number(SquareCloud(8))
        assert np.isfinite(c) and c > 1.0

    def test_one_norm_option(self):
        c2 = collocation_condition_number(SquareCloud(8), norm=2)
        c1 = collocation_condition_number(SquareCloud(8), norm=1)
        assert c1 > 0 and c2 > 0

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            collocation_condition_number(SquareCloud(8), norm=3)

    def test_grows_with_resolution(self):
        # Denser polyharmonic systems are worse conditioned.
        c_small = collocation_condition_number(SquareCloud(6))
        c_big = collocation_condition_number(SquareCloud(12))
        assert c_big > c_small

    def test_regular_grid_better_than_jittered(self):
        """The paper: the regular grid 'resulted in better conditioned
        collocation matrices compared with a scattered point cloud of the
        same size'."""
        reg = collocation_condition_number(SquareCloud(10))
        jit = collocation_condition_number(SquareCloud(10, scatter="jitter", seed=0))
        assert reg < jit

    def test_flat_gaussian_worse_than_sharp(self):
        flat = collocation_condition_number(SquareCloud(8), kernel=gaussian(1.0))
        sharp = collocation_condition_number(SquareCloud(8), kernel=gaussian(8.0))
        assert flat > sharp

"""Tests for the shared discrete-assembly helpers."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.functional import grad
from repro.cloud.square import SquareCloud
from repro.pde.discrete import (
    FieldBCs,
    assemble_field_system,
    boundary_rows,
    interior_mask,
    scatter_boundary_values,
    selection_matrix,
)
from repro.rbf.kernels import polyharmonic
from repro.rbf.operators import build_nodal_operators


@pytest.fixture(scope="module")
def setup():
    cloud = SquareCloud(10)
    nodal = build_nodal_operators(cloud, polyharmonic(3), 1)
    return cloud, nodal


class TestMasksAndSelection:
    def test_interior_mask(self, setup):
        cloud, _ = setup
        m = interior_mask(cloud)
        assert m.sum() == len(cloud.internal)
        np.testing.assert_array_equal(np.flatnonzero(m), cloud.internal)

    def test_selection_matrix_scatters(self):
        S = selection_matrix(5, np.array([1, 3]))
        v = np.array([10.0, 20.0])
        np.testing.assert_array_equal(S @ v, [0, 10, 0, 20, 0])

    def test_selection_matrix_is_partial_isometry(self):
        S = selection_matrix(6, np.array([0, 2, 5]))
        np.testing.assert_array_equal(S.T @ S, np.eye(3))


class TestBoundaryRows:
    def test_dirichlet_rows_are_units(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(kinds={g: "dirichlet" for g in ("top", "bottom", "left", "right")})
        rows = boundary_rows(cloud, nodal, bcs)
        for i in cloud.groups["top"]:
            e = np.zeros(cloud.n)
            e[i] = 1.0
            np.testing.assert_array_equal(rows[i], e)

    def test_neumann_rows_are_normal_rows(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(
            kinds={
                "top": "neumann",
                "bottom": "dirichlet",
                "left": "dirichlet",
                "right": "dirichlet",
            }
        )
        rows = boundary_rows(cloud, nodal, bcs)
        top = cloud.groups["top"]
        np.testing.assert_allclose(rows[top], nodal.normal[top])

    def test_robin_rows_add_beta(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(
            kinds={
                "top": "robin",
                "bottom": "dirichlet",
                "left": "dirichlet",
                "right": "dirichlet",
            },
            robin_beta={"top": 2.0},
        )
        rows = boundary_rows(cloud, nodal, bcs)
        top = cloud.groups["top"]
        expected = nodal.normal[top].copy()
        expected[np.arange(top.size), top] += 2.0
        np.testing.assert_allclose(rows[top], expected)

    def test_robin_array_beta(self, setup):
        cloud, nodal = setup
        top = cloud.groups["top"]
        beta = np.linspace(1.0, 2.0, top.size)
        bcs = FieldBCs(
            kinds={
                "top": "robin",
                "bottom": "dirichlet",
                "left": "dirichlet",
                "right": "dirichlet",
            },
            robin_beta={"top": beta},
        )
        rows = boundary_rows(cloud, nodal, bcs)
        diag = rows[top, top] - nodal.normal[top, top]
        np.testing.assert_allclose(diag, beta)

    def test_missing_group_kind_raises(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(kinds={"top": "dirichlet"})
        with pytest.raises(ValueError, match="needs a BC kind"):
            boundary_rows(cloud, nodal, bcs)

    def test_unknown_kind_rejected(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(
            kinds={
                "top": "periodic",
                "bottom": "dirichlet",
                "left": "dirichlet",
                "right": "dirichlet",
            }
        )
        with pytest.raises(ValueError):
            boundary_rows(cloud, nodal, bcs)

    def test_internal_rows_zero(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(kinds={g: "dirichlet" for g in ("top", "bottom", "left", "right")})
        rows = boundary_rows(cloud, nodal, bcs)
        np.testing.assert_array_equal(rows[cloud.internal], 0.0)


class TestAssembleFieldSystem:
    def test_combines_interior_and_boundary(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(kinds={g: "dirichlet" for g in ("top", "bottom", "left", "right")})
        A = assemble_field_system(cloud, nodal, nodal.lap, bcs)
        np.testing.assert_allclose(A[cloud.internal], nodal.lap[cloud.internal])
        for i in cloud.boundary:
            assert A[i, i] == 1.0

    def test_accepts_tensor_operator(self, setup):
        cloud, nodal = setup
        bcs = FieldBCs(kinds={g: "dirichlet" for g in ("top", "bottom", "left", "right")})
        from repro.autodiff.tensor import Tensor

        A = assemble_field_system(cloud, nodal, Tensor(nodal.lap), bcs)
        assert hasattr(A, "data")
        np.testing.assert_allclose(
            A.data[cloud.internal], nodal.lap[cloud.internal]
        )


class TestScatter:
    def test_scatter_values(self, setup):
        cloud, _ = setup
        top = cloud.groups["top"]
        vals = np.arange(top.size, dtype=float)
        out = scatter_boundary_values(cloud, {"top": vals})
        np.testing.assert_array_equal(out.data[top], vals)
        mask = np.ones(cloud.n, dtype=bool)
        mask[top] = False
        np.testing.assert_array_equal(out.data[mask], 0.0)

    def test_scatter_two_groups(self, setup):
        cloud, _ = setup
        out = scatter_boundary_values(
            cloud,
            {
                "top": np.ones(len(cloud.groups["top"])),
                "bottom": 2 * np.ones(len(cloud.groups["bottom"])),
            },
        )
        assert out.data[cloud.groups["bottom"]].sum() == 2 * len(cloud.groups["bottom"])

    def test_scatter_empty(self, setup):
        cloud, _ = setup
        out = scatter_boundary_values(cloud, {})
        np.testing.assert_array_equal(np.asarray(out), 0.0)

    def test_scatter_differentiable(self, setup):
        cloud, _ = setup
        top = cloud.groups["top"]

        def f(v):
            out = scatter_boundary_values(cloud, {"top": v})
            return ops.sum_(ops.square(out))

        v0 = np.arange(top.size, dtype=float)
        g = grad(f)(v0)
        np.testing.assert_allclose(g, 2 * v0)

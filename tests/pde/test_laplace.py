"""Tests for the Laplace control problem definition and analytics."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.pde.laplace import (
    LaplaceControlProblem,
    default_laplace_problem,
    laplace_bottom_data,
    laplace_optimal_control,
    laplace_optimal_state,
    laplace_side_data,
    laplace_target_flux,
)


class TestAnalyticPair:
    """The analytic (c*, u*) must satisfy every piece of the PDE problem."""

    def test_state_is_harmonic(self):
        eps = 1e-4
        x = np.linspace(0.2, 0.8, 7)
        y = np.linspace(0.2, 0.8, 7)
        for xi in x:
            for yi in y:
                lap = (
                    laplace_optimal_state(xi + eps, yi)
                    + laplace_optimal_state(xi - eps, yi)
                    + laplace_optimal_state(xi, yi + eps)
                    + laplace_optimal_state(xi, yi - eps)
                    - 4 * laplace_optimal_state(xi, yi)
                ) / eps**2
                assert abs(lap) < 1e-4

    def test_bottom_trace(self):
        x = np.linspace(0, 1, 33)
        np.testing.assert_allclose(
            laplace_optimal_state(x, np.zeros_like(x)),
            laplace_bottom_data(x),
            atol=1e-12,
        )

    def test_side_traces(self):
        y = np.linspace(0, 1, 17)
        np.testing.assert_allclose(
            laplace_optimal_state(np.zeros_like(y), y), laplace_side_data(y), atol=1e-12
        )
        np.testing.assert_allclose(
            laplace_optimal_state(np.ones_like(y), y), laplace_side_data(y), atol=1e-12
        )

    def test_top_trace_equals_optimal_control(self):
        x = np.linspace(0, 1, 33)
        np.testing.assert_allclose(
            laplace_optimal_state(x, np.ones_like(x)),
            laplace_optimal_control(x),
            atol=1e-12,
        )

    def test_flux_at_top_equals_target(self):
        x = np.linspace(0, 1, 17)
        eps = 1e-6
        flux = (
            laplace_optimal_state(x, 1.0) - laplace_optimal_state(x, 1.0 - eps)
        ) / eps
        np.testing.assert_allclose(flux, laplace_target_flux(x), atol=1e-4)


class TestProblemSetup:
    def test_control_dimension(self, laplace_problem):
        # Top nodes exclude the two corners.
        assert laplace_problem.n_control == 14  # nx=16 → 16−2

    def test_quadrature_integrates_constant(self, laplace_problem):
        total = laplace_problem.quad_w.sum()
        assert abs(total - 1.0) < 1e-12

    def test_rhs_linear_in_control(self, laplace_problem):
        p = laplace_problem
        c1 = np.ones(p.n_control)
        c2 = 2 * np.ones(p.n_control)
        r0 = p.rhs(np.zeros(p.n_control))
        np.testing.assert_allclose(p.rhs(c2) - r0, 2 * (p.rhs(c1) - r0))

    def test_rhs_contains_boundary_data(self, laplace_problem):
        p = laplace_problem
        r = p.rhs(np.zeros(p.n_control))
        np.testing.assert_allclose(
            r[p.bottom], laplace_bottom_data(p.cloud.points[p.bottom, 0])
        )
        np.testing.assert_allclose(
            r[p.left], laplace_side_data(p.cloud.points[p.left, 1])
        )

    def test_rhs_rejects_bad_shape(self, laplace_problem):
        with pytest.raises(ValueError):
            laplace_problem.rhs(np.zeros(3))

    def test_cost_zero_for_exact_flux(self, laplace_problem):
        p = laplace_problem
        # Construct a synthetic state whose flux rows produce the target:
        # J computed from the mismatch must then vanish.
        u, *_ = np.linalg.lstsq(p.flux_rows, p.target, rcond=None)
        assert p.cost_from_state(u) < 1e-18

    def test_cost_at_analytic_state_is_small(self, laplace_problem):
        p = laplace_problem
        u_exact = p.optimal_state()
        # Discretisation error only (16×16 grid, second derivatives).
        assert p.cost_from_state(u_exact) < 0.5

    def test_zero_control(self, laplace_problem):
        np.testing.assert_array_equal(
            laplace_problem.zero_control(), np.zeros(laplace_problem.n_control)
        )

    def test_default_problem_factory(self):
        p = default_laplace_problem(nx=10)
        assert p.cloud.n == 100

    def test_system_has_unit_boundary_rows(self, laplace_problem):
        p = laplace_problem
        for i in p.cloud.boundary:
            assert p.system[i, i] == 1.0

    def test_forward_solve_reproduces_analytic(self, laplace_problem):
        """Solving with c = analytic c* must approximate u* well."""
        import scipy.linalg as sla

        p = laplace_problem
        u = sla.solve(p.system, p.rhs(p.optimal_control()))
        err = np.max(np.abs(u - p.optimal_state()))
        assert err < 0.05

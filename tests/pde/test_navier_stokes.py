"""Tests for the Navier–Stokes projection solver (NumPy and AD paths)."""

import numpy as np
import pytest

from repro.autodiff.check import directional_numerical_derivative
from repro.autodiff.functional import value_and_grad
from repro.cloud.channel import ChannelCloud
from repro.pde.navier_stokes import (
    ChannelFlowProblem,
    NSConfig,
    _segment_bump,
    poiseuille_profile,
)


class TestHelpers:
    def test_poiseuille_peak_and_zeros(self):
        y = np.linspace(0, 1, 11)
        p = poiseuille_profile(y)
        assert p[0] == 0.0 and p[-1] == 0.0
        assert abs(p[5] - 1.0) < 1e-12

    def test_poiseuille_scaled_height(self):
        y = np.linspace(0, 2, 21)
        p = poiseuille_profile(y, ly=2.0)
        assert abs(p[10] - 1.0) < 1e-12

    def test_segment_bump_vanishes_at_ends(self):
        x = np.array([0.6, 0.75, 0.9])
        b = _segment_bump(x, 0.6, 0.9, 0.3)
        assert b[0] == 0.0 and b[2] == 0.0
        assert abs(b[1] - 0.3) < 1e-12


class TestProblemSetup:
    def test_control_dimension(self, channel_problem):
        assert channel_problem.n_control == len(channel_problem.inflow_y)

    def test_quadrature_total_height(self, channel_problem):
        assert abs(channel_problem.quad_w.sum() - 1.0) < 1e-12

    def test_default_control_is_parabolic(self, channel_problem):
        np.testing.assert_allclose(
            channel_problem.default_control(),
            poiseuille_profile(channel_problem.inflow_y),
        )

    def test_blowing_suction_data_positive(self, channel_problem):
        assert channel_problem.v_blow.max() > 0
        assert channel_problem.v_suck.max() > 0

    def test_bad_control_shape_raises(self, channel_problem, ns_config_fast):
        with pytest.raises(ValueError):
            channel_problem.solve(np.zeros(3), ns_config_fast)


class TestPoiseuilleSteadyState:
    """With no perturbation, the parabolic profile is an exact steady
    solution; the solver must (approximately) preserve it."""

    @pytest.fixture(scope="class")
    def clean_problem(self):
        return ChannelFlowProblem(cloud=ChannelCloud(17, 9), perturbation=0.0)

    def test_cost_stays_near_zero(self, clean_problem):
        cfg = NSConfig(reynolds=100.0, refinements=8, pseudo_dt=0.5)
        st = clean_problem.solve(clean_problem.default_control(), cfg)
        assert clean_problem.cost(st.u, st.v) < 1e-3

    def test_v_stays_small(self, clean_problem):
        cfg = NSConfig(reynolds=100.0, refinements=8, pseudo_dt=0.5)
        st = clean_problem.solve(clean_problem.default_control(), cfg)
        assert np.max(np.abs(st.v)) < 0.05

    def test_pressure_gradient_poiseuille(self, clean_problem):
        """Steady Poiseuille requires dp/dx ≈ −8/(Re Ly²)."""
        Re = 50.0
        cfg = NSConfig(reynolds=Re, refinements=12, pseudo_dt=0.5)
        st = clean_problem.solve(clean_problem.default_control(), cfg)
        nd = clean_problem.nodal
        dpdx = (nd.dx @ st.p)[clean_problem.cloud.internal]
        np.testing.assert_allclose(dpdx, -8.0 / Re, atol=0.5 * 8.0 / Re)


class TestCrossFlow:
    def test_converges_to_steady_state(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=20, pseudo_dt=0.5)
        st = channel_problem.solve(channel_problem.default_control(), cfg)
        assert st.update_history[-1] < 5e-2
        assert st.update_history[-1] < st.update_history[0]

    def test_blowing_bc_imposed(self, channel_problem, ns_config_fast):
        st = channel_problem.solve(
            channel_problem.default_control(), ns_config_fast
        )
        np.testing.assert_allclose(
            st.v[channel_problem.blowing], channel_problem.v_blow, atol=1e-10
        )

    def test_inflow_control_imposed(self, channel_problem, ns_config_fast):
        c = 0.7 * channel_problem.default_control()
        st = channel_problem.solve(c, ns_config_fast)
        np.testing.assert_allclose(st.u[channel_problem.inflow], c, atol=1e-10)

    def test_cross_flow_disturbs_outlet(self, channel_problem, ns_config_fast):
        st = channel_problem.solve(
            channel_problem.default_control(), ns_config_fast
        )
        assert channel_problem.cost(st.u, st.v) > 1e-4

    def test_outflow_profiles_accessor(self, channel_problem, ns_config_fast):
        st = channel_problem.solve(
            channel_problem.default_control(), ns_config_fast
        )
        prof = channel_problem.outflow_profiles(st)
        assert set(prof) == {"y", "u", "v", "target"}
        assert prof["u"].shape == prof["target"].shape


class TestAutodiffPath:
    def test_forward_values_match_numpy(self, channel_problem, ns_config_fast):
        c = channel_problem.default_control()
        st = channel_problem.solve(c, ns_config_fast)
        u, v, p = channel_problem.solve_ad(c, ns_config_fast)
        np.testing.assert_allclose(u.data, st.u, rtol=1e-12)
        np.testing.assert_allclose(v.data, st.v, rtol=1e-12)
        np.testing.assert_allclose(p.data, st.p, rtol=1e-12)

    def test_cost_ad_matches_numpy(self, channel_problem, ns_config_fast):
        c = channel_problem.default_control()
        st = channel_problem.solve(c, ns_config_fast)
        u, v, _ = channel_problem.solve_ad(c, ns_config_fast)
        j_ad = float(channel_problem.cost_ad(u, v).data)
        assert abs(j_ad - channel_problem.cost(st.u, st.v)) < 1e-14

    def test_gradient_matches_fd_directional(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=4, pseudo_dt=0.5)
        c0 = channel_problem.default_control()

        def J(c):
            u, v, _ = channel_problem.solve_ad(c, cfg)
            return channel_problem.cost_ad(u, v)

        _, g = value_and_grad(J)(c0)
        rng = np.random.default_rng(1)
        d = rng.standard_normal(c0.shape)
        d /= np.linalg.norm(d)
        num = directional_numerical_derivative(
            lambda c: float(J(c).data), c0, d, eps=1e-6
        )
        assert abs(float(g @ d) - num) < 1e-7 * max(1.0, abs(num))

    def test_relaxation_path(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=6, pseudo_dt=0.5, relax=0.7)
        c = channel_problem.default_control()
        st = channel_problem.solve(c, cfg)
        u, v, _ = channel_problem.solve_ad(c, cfg)
        np.testing.assert_allclose(u.data, st.u, rtol=1e-12)


class TestReynoldsDependence:
    def test_low_re_converges_faster(self, channel_problem):
        cfg10 = NSConfig(reynolds=10.0, refinements=15, pseudo_dt=0.5)
        cfg100 = NSConfig(reynolds=100.0, refinements=15, pseudo_dt=0.5)
        c = channel_problem.default_control()
        st10 = channel_problem.solve(c, cfg10)
        st100 = channel_problem.solve(c, cfg100)
        assert st10.update_history[-1] <= st100.update_history[-1] * 2.0

"""Tests for the unsteady heat equation (time extension)."""

import numpy as np
import pytest

from repro.autodiff.check import directional_numerical_derivative
from repro.cloud.square import SquareCloud
from repro.pde.heat import HeatConfig, HeatEquationProblem, heat_series_solution


@pytest.fixture(scope="module")
def cloud():
    return SquareCloud(14)


@pytest.fixture(scope="module")
def problem(cloud):
    return HeatEquationProblem(
        cloud, HeatConfig(kappa=1.0, dt=2e-4, n_steps=25, theta=0.5)
    )


class TestConfig:
    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            HeatConfig(theta=1.5)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            HeatConfig(dt=0.0)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            HeatConfig(n_steps=0)


class TestForwardAccuracy:
    def test_matches_series_solution(self, cloud, problem):
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        uT = problem.evolve(u0)
        T = problem.config.dt * problem.config.n_steps
        exact = heat_series_solution(cloud.x, cloud.y, T)
        assert np.max(np.abs(uT.data - exact)) < 0.02

    def test_decay_rate(self, cloud, problem):
        """Energy of the fundamental mode decays like e^{−2κπ²t}."""
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        uT = problem.evolve(u0)
        T = problem.config.dt * problem.config.n_steps
        ratio = np.abs(uT.data).max() / np.abs(u0).max()
        assert abs(ratio - np.exp(-2 * np.pi**2 * T)) < 0.05

    def test_boundary_stays_fixed(self, cloud, problem):
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        uT = problem.evolve(u0)
        np.testing.assert_allclose(uT.data[cloud.boundary], 0.0, atol=1e-10)

    def test_implicit_euler_unconditionally_stable(self, cloud):
        # Large dt: implicit Euler must not blow up.
        prob = HeatEquationProblem(
            cloud, HeatConfig(kappa=1.0, dt=0.5, n_steps=5, theta=1.0)
        )
        rng = np.random.default_rng(0)
        uT = prob.evolve(rng.standard_normal(cloud.n))
        assert np.max(np.abs(uT.data)) < 1.0  # strongly damped

    def test_maximum_principle_flavour(self, cloud, problem):
        """Implicit heat flow with zero boundary contracts the sup-norm."""
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        uT = problem.evolve(u0)
        assert np.abs(uT.data).max() <= np.abs(u0).max() + 1e-8

    def test_record_trajectory(self, cloud, problem):
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        uT, states = problem.evolve(u0, n_steps=5, record=True)
        assert len(states) == 6
        np.testing.assert_array_equal(states[-1].data, uT.data)

    def test_nonzero_boundary_value(self, cloud):
        prob = HeatEquationProblem(
            cloud,
            HeatConfig(dt=0.05, n_steps=40, theta=1.0),
            boundary_value=1.0,
        )
        uT = prob.evolve(np.zeros(cloud.n))
        # Steady state of Δu = 0 with u=1 on the boundary is u ≡ 1.
        np.testing.assert_allclose(uT.data, 1.0, atol=0.02)


class TestDPThroughTime:
    def test_gradient_matches_fd(self, cloud, problem):
        rng = np.random.default_rng(1)
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        target = problem.evolve(u0).data
        c0 = u0 + 0.1 * rng.standard_normal(cloud.n)
        j, g = problem.misfit_value_and_grad(c0, target)
        d = rng.standard_normal(cloud.n)
        d /= np.linalg.norm(d)
        num = directional_numerical_derivative(
            lambda c: float(problem.terminal_misfit(c, target).data),
            c0,
            eps=1e-6,
            direction=d,
        )
        assert abs(float(g @ d) - num) < 1e-6 * max(1.0, abs(num))

    def test_zero_misfit_at_true_initial_condition(self, cloud, problem):
        u0 = heat_series_solution(cloud.x, cloud.y, 0.0)
        target = problem.evolve(u0).data
        j, g = problem.misfit_value_and_grad(u0, target)
        assert j < 1e-20
        assert np.linalg.norm(g) < 1e-9

    def test_inverse_problem_descends(self, cloud, problem):
        """A few Adam steps of DP-through-time reduce the terminal misfit."""
        from repro.nn.optimizers import Adam

        rng = np.random.default_rng(2)
        u_true = heat_series_solution(cloud.x, cloud.y, 0.0)
        target = problem.evolve(u_true).data
        c = np.zeros(cloud.n)
        opt = Adam(lr=0.05)
        st = opt.init(c)
        j0, _ = problem.misfit_value_and_grad(c, target)
        for _ in range(40):
            _, g = problem.misfit_value_and_grad(c, target)
            c, st = opt.step(c, g, st)
        j1, _ = problem.misfit_value_and_grad(c, target)
        assert j1 < 0.2 * j0

"""Verification via manufactured Poisson solutions."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.pde.poisson import CASES, manufactured_poisson
from repro.rbf.solver import solve_pde


@pytest.mark.parametrize("case", sorted(CASES))
class TestManufactured:
    def test_solution_accuracy(self, case):
        cloud = SquareCloud(14)
        prob = manufactured_poisson(cloud, case)
        u = solve_pde(cloud, prob)
        exact = CASES[case].exact(cloud.points)
        scale = max(np.abs(exact).max(), 1.0)
        assert np.max(np.abs(u - exact)) / scale < 0.05

    def test_source_consistent_with_exact(self, case):
        # FD Laplacian of the exact solution must match the source.
        pc = CASES[case]
        eps = 1e-4
        pts = np.random.default_rng(0).uniform(0.2, 0.8, (10, 2))

        def f(p):
            return pc.exact(p)

        lap = (
            f(pts + [eps, 0]) + f(pts - [eps, 0])
            + f(pts + [0, eps]) + f(pts - [0, eps]) - 4 * f(pts)
        ) / eps**2
        np.testing.assert_allclose(lap, pc.source(pts), atol=1e-3, rtol=1e-3)


class TestConvergence:
    def test_error_decreases_with_refinement(self):
        errs = []
        for nx in (8, 16):
            cloud = SquareCloud(nx)
            u = solve_pde(cloud, manufactured_poisson(cloud, "trig"))
            errs.append(np.max(np.abs(u - CASES["trig"].exact(cloud.points))))
        assert errs[1] < errs[0] / 1.5

"""Tests for the steady advection–diffusion operator/solver."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.pde.advection_diffusion import advection_diffusion_operator
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem, solve_pde


class TestOperatorBuilder:
    def test_signs(self):
        op = advection_diffusion_operator(1.0, 2.0, kappa=0.5, sigma=0.1)
        assert op.dx == 1.0 and op.dy == 2.0
        assert op.lap == -0.5
        assert op.identity == 0.1

    def test_array_coefficients(self):
        b = np.ones(4)
        op = advection_diffusion_operator(b, 2 * b, kappa=b)
        np.testing.assert_array_equal(np.asarray(op.lap), -b)


class TestManufacturedSolve:
    def exact(self, p):
        return np.sin(np.pi * p[:, 0]) * p[:, 1]

    def source(self, p, bx, by, kappa):
        x, y = p[:, 0], p[:, 1]
        ux = np.pi * np.cos(np.pi * x) * y
        uy = np.sin(np.pi * x)
        lap = -np.pi**2 * np.sin(np.pi * x) * y
        return bx * ux + by * uy - kappa * lap

    @pytest.mark.parametrize("peclet", [1.0, 10.0])
    def test_accuracy(self, peclet):
        cloud = SquareCloud(14)
        kappa = 1.0 / peclet
        prob = LinearPDEProblem(
            operator=advection_diffusion_operator(1.0, 0.5, kappa=kappa),
            source=lambda p: self.source(p, 1.0, 0.5, kappa),
            bcs={
                g: BoundaryCondition("dirichlet", value=self.exact)
                for g in ("top", "bottom", "left", "right")
            },
        )
        u = solve_pde(cloud, prob)
        assert np.max(np.abs(u - self.exact(cloud.points))) < 0.05

    def test_variable_wind(self):
        cloud = SquareCloud(12)
        # Coefficient arrays are evaluated at every node (only the
        # interior rows of the assembled system end up used).
        bx = cloud.y  # shear wind u = y
        by = np.zeros(cloud.n)
        prob = LinearPDEProblem(
            operator=advection_diffusion_operator(bx, by, kappa=1.0),
            source=lambda p: self.source(p, p[:, 1], 0.0, 1.0),
            bcs={
                g: BoundaryCondition("dirichlet", value=self.exact)
                for g in ("top", "bottom", "left", "right")
            },
        )
        u = solve_pde(cloud, prob)
        assert np.max(np.abs(u - self.exact(cloud.points))) < 0.05

"""Tests for the trace-once replay engine (:mod:`repro.autodiff.compile`).

The contract under test: for any supported graph, a compiled replay must
reproduce the eager tape's value AND gradients to bit-identical (or at
worst 1e-12 relative) precision across arbitrarily many input changes —
and must fall back to a fresh trace whenever the input signature changes.
"""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.compile import (
    CompileError,
    CompiledProgram,
    compiled_value_and_grad,
    compiled_value_and_grad_tree,
)
from repro.autodiff.functional import value_and_grad
from repro.autodiff.linalg import LUSolver
from repro.autodiff.sparse import sparse_pattern_solve
from repro.autodiff.tensor import Tensor
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.nn.mlp import MLP
from repro.nn.pytree import tree_flatten, value_and_grad_tree
from repro.pde.laplace import LaplaceControlProblem


# ----------------------------------------------------------------------
# Property: replay == eager, values and gradients
# ----------------------------------------------------------------------
_MASK = np.arange(12) % 2 == 0  # fixed selection: replay-safe


def _composite(c):
    """A graph touching reductions, branches, indexing and nonlinearities.

    Note the ``where`` condition is *positional*, not value-dependent: a
    condition computed from input values would be baked at trace time
    (the same restriction ``jax.jit`` places on traced control flow).
    ``maximum``/``clip`` masks are fine — their forward closures refresh
    them on every replay.
    """
    a = ops.mul(c, 2.0)
    b = ops.maximum(a, 0.1)
    d = ops.clip(ops.sin(b), -0.9, 0.9)
    e = ops.where(_MASK, d, ops.square(c))
    head = e[2:7]
    return ops.sum_(ops.square(head)) + ops.mean(ops.exp(ops.mul(e, -0.5)))


def test_composite_graph_matches_eager():
    eager = value_and_grad(_composite)
    comp = compiled_value_and_grad(_composite)
    rng = np.random.default_rng(0)
    for _ in range(10):
        x = rng.normal(size=12)
        ve, ge = eager(x)
        vc, gc = comp(x)
        np.testing.assert_allclose(vc, ve, rtol=1e-12)
        np.testing.assert_allclose(gc, ge, rtol=1e-12)
    info = comp.cache_info()
    assert info["traces"] == 1 and info["replays"] == 9


def test_composite_graph_bit_identical():
    """Replay re-executes the same ufunc sequence: exact equality expected."""
    eager = value_and_grad(_composite)
    comp = compiled_value_and_grad(_composite)
    rng = np.random.default_rng(1)
    for _ in range(5):
        x = rng.normal(size=12)
        ve, ge = eager(x)
        vc, gc = comp(x)
        assert vc == ve
        assert np.array_equal(gc, ge)


def test_mlp_forward_matches_eager():
    mlp = MLP(2, [8, 8], 1)
    params = mlp.init_params(seed=3)
    x = np.random.default_rng(4).normal(size=(16, 2))
    target = np.sin(x[:, :1].sum(axis=1, keepdims=True))

    def loss(p):
        pred = mlp.apply(p, x)
        return ops.mean(ops.square(pred - target))

    eager = value_and_grad_tree(loss)
    comp = compiled_value_and_grad_tree(loss)
    rng = np.random.default_rng(5)
    for _ in range(6):
        leaves, _ = tree_flatten(params)
        ve, ge = eager(params)
        vc, gc = comp(params)
        assert vc == ve
        ge_l, _ = tree_flatten(ge)
        gc_l, _ = tree_flatten(gc)
        for a, b in zip(ge_l, gc_l):
            assert np.array_equal(a, b)
        # perturb the parameters for the next round
        params = [
            {"W": l["W"] + 0.01 * rng.normal(size=l["W"].shape),
             "b": l["b"] + 0.01 * rng.normal(size=l["b"].shape)}
            for l in params
        ]


@pytest.mark.parametrize("backend", ["dense", "local"])
def test_laplace_dp_cost_matches_eager(backend):
    prob = LaplaceControlProblem(SquareCloud(8), backend=backend)
    eager = LaplaceDP(prob)
    comp = LaplaceDP(prob, compile=True)
    rng = np.random.default_rng(6)
    for _ in range(5):
        c = rng.normal(scale=0.2, size=prob.n_control)
        ve, ge = eager.value_and_grad(c)
        vc, gc = comp.value_and_grad(c)
        assert vc == ve
        assert np.array_equal(gc, ge)


def test_sparse_pattern_replay_refreshes_factorisation():
    """Matrix *values* on the tape: each replay must re-factorise."""
    n = 20
    rng = np.random.default_rng(7)
    dense = np.diag(rng.uniform(2.0, 3.0, size=n))
    dense[np.arange(n - 1), np.arange(1, n)] = 0.3
    rows, cols = np.nonzero(dense)
    b = rng.normal(size=n)

    def f(data):
        x = sparse_pattern_solve(rows, cols, (n, n), data, b)
        return ops.sum_(ops.square(x))

    eager = value_and_grad(f)
    comp = compiled_value_and_grad(f)
    for _ in range(4):
        data = dense[rows, cols] + rng.uniform(0, 0.5, size=rows.size)
        ve, ge = eager(data)
        vc, gc = comp(data)
        np.testing.assert_allclose(vc, ve, rtol=1e-12)
        np.testing.assert_allclose(gc, ge, rtol=1e-12)


def test_lu_solver_replay_matches_eager():
    n = 15
    rng = np.random.default_rng(8)
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    solver = LUSolver(A)

    def f(b):
        return ops.sum_(ops.square(solver(b)))

    eager = value_and_grad(f)
    comp = compiled_value_and_grad(f)
    for _ in range(4):
        b = rng.normal(size=n)
        ve, ge = eager(b)
        vc, gc = comp(b)
        assert vc == ve and np.array_equal(gc, ge)


# ----------------------------------------------------------------------
# Re-trace on signature change
# ----------------------------------------------------------------------
def test_shape_change_triggers_retrace():
    comp = compiled_value_and_grad(lambda x: ops.sum_(ops.square(x)))
    for size in (5, 5, 9, 9, 5):
        x = np.arange(size, dtype=np.float64)
        v, g = comp(x)
        assert v == float(np.sum(x**2))
        assert np.array_equal(g, 2.0 * x)
    info = comp.cache_info()
    assert info["traces"] == 2  # one per distinct shape
    assert info["replays"] == 3
    assert info["programs"] == 2


def test_constant_operand_change_triggers_retrace():
    """Baked (non-diff) operands are content-keyed: new values, new trace."""
    comp = compiled_value_and_grad(lambda x, w: ops.sum_(ops.mul(x, w)))
    x = np.ones(4)
    w1, w2 = np.full(4, 2.0), np.full(4, 3.0)
    assert comp(x, w1)[0] == 8.0
    assert comp(x, w1)[0] == 8.0
    assert comp(x, w2)[0] == 12.0  # stale replay would still give 8.0
    assert comp.cache_info()["traces"] == 2


def test_replay_rejects_mismatched_shape():
    x = np.ones(6)
    vg = compiled_value_and_grad(lambda t: ops.sum_(ops.square(t)))
    vg(x)
    (prog,) = [p for p in vg._cache.values() if isinstance(p, CompiledProgram)]
    with pytest.raises(CompileError):
        prog.replay([np.ones(7)])


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
def test_profile_counts_and_reuse():
    comp = compiled_value_and_grad(
        lambda x: ops.sum_(ops.square(ops.mul(x, 3.0))), profile=True
    )
    rng = np.random.default_rng(9)
    for _ in range(5):
        comp(rng.normal(size=50))
    p = comp.profile
    assert p.n_traces == 1
    assert p.n_replays == 4
    assert p.n_eager_calls == 0
    assert p.persistent_bytes > 0
    assert p.bytes_reused > 0
    assert p.op("square").calls == 4
    report = p.report()
    assert "square" in report and "sum" in report


# ----------------------------------------------------------------------
# Allocation discipline of the audited VJPs
# ----------------------------------------------------------------------
def test_sum_vjp_returns_readonly_view():
    x = Tensor(np.arange(12.0), requires_grad=True)
    y = ops.sum_(x)
    (_, vjp), = y._parents
    g = np.array(2.5)
    out = vjp(g)
    assert out.shape == (12,)
    assert not out.flags.writeable
    assert np.shares_memory(out, g)


def test_mean_vjp_returns_stride0_view():
    x = Tensor(np.ones((3, 4)), requires_grad=True)
    y = ops.mean(x)
    (_, vjp), = y._parents
    out = vjp(np.array(1.0))
    assert out.shape == (3, 4)
    assert not out.flags.writeable
    assert out.strides == (0, 0)


def test_getitem_forward_is_view():
    x = Tensor(np.arange(10.0), requires_grad=True)
    y = x[2:7]
    assert np.shares_memory(y.data, x.data)

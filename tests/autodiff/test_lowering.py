"""IR-lowering pass tests: fusion legality, DBE safety, CSE detection.

The lowering pass (:mod:`repro.autodiff.lowering`) decides which traced
ops become fused straight-line source, which buffers die, and which
taped values the backward sweep may reuse.  These tests pin the *legal*
boundaries of each pass — the cases where an optimisation must NOT fire:
shape changes split fusion chains, views are barriers, dead-buffer
elimination never touches a leaf gradient or a value the backward sweep
reads, and the ``1 - tanh^2`` CSE only matches the exact taped pattern.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import linalg, ops
from repro.autodiff.compile import compiled_value_and_grad
from repro.autodiff.functional import value_and_grad
from repro.autodiff.lowering import (
    LoweredProgram,
    lower,
    matmul_symbolic,
    unbroadcast_plan,
)


def traced(f, *args) -> "tuple":
    """Trace ``f`` once and return ``(CompiledProgram, wrapper)``."""
    vg = compiled_value_and_grad(f, argnums=tuple(range(len(args))))
    vg(*args)
    progs = [p for p in vg._cache.values() if p is not None]
    assert len(progs) == 1
    return progs[0], vg


def lowered(f, *args) -> LoweredProgram:
    prog, _ = traced(f, *args)
    return lower(prog)


def by_op(lw: LoweredProgram, op: str):
    return [ir for ir in lw.nodes if ir.op == op]


# ----------------------------------------------------------------------
# Fusion legality
# ----------------------------------------------------------------------
class TestFusionLegality:
    def test_same_shape_chain_fuses_into_one_group(self):
        def f(x):
            return ops.sum_(ops.sin(ops.exp(ops.square(x))))

        lw = lowered(f, np.linspace(0.1, 1.0, 12))
        gids = {by_op(lw, op)[0].group for op in ("square", "exp", "sin")}
        assert len(gids) == 1, "an unbroken same-shape chain must fuse"
        assert lw.stats.n_fused_groups == 1
        assert lw.stats.n_fused == 3

    def test_broadcast_mismatch_splits_chain(self):
        y = np.linspace(-1.0, 1.0, 12).reshape(4, 3)

        def f(x):
            return ops.sum_(ops.sin(ops.exp(x) + y))  # (3,) -> (4, 3)

        lw = lowered(f, np.linspace(0.1, 1.0, 3))
        g_exp = by_op(lw, "exp")[0].group
        g_add = by_op(lw, "add")[0].group
        g_sin = by_op(lw, "sin")[0].group
        assert g_exp != g_add, "shape change (3,)->(4,3) must close the group"
        assert g_add == g_sin, "the (4,3) ops downstream re-fuse"
        shapes = {gid: lw.groups[gid].shape for gid in (g_exp, g_add)}
        assert shapes[g_exp] == (3,) and shapes[g_add] == (4, 3)

    def test_views_are_fusion_barriers(self):
        def f(x):
            return ops.sum_(ops.sin(ops.reshape(ops.exp(x), (2, 3))))

        lw = lowered(f, np.linspace(0.1, 1.0, 6))
        view = by_op(lw, "reshape")[0]
        assert view.kind == "view"
        assert view.group == -1, "views emit no kernel and join no group"
        assert by_op(lw, "exp")[0].group != by_op(lw, "sin")[0].group

    def test_opaque_op_splits_chain(self):
        A = np.eye(5) * 4.0 + np.ones((5, 5))

        def f(b):
            return ops.sum_(ops.square(linalg.solve(A, ops.exp(b))))

        lw = lowered(f, np.linspace(0.1, 1.0, 5))
        solve = by_op(lw, "solve")[0]
        assert solve.kind == "opaque"
        assert by_op(lw, "exp")[0].group != by_op(lw, "square")[0].group

    def test_matmul_symbolic_combos(self):
        assert matmul_symbolic(2, 2) and matmul_symbolic(2, 1)
        assert matmul_symbolic(1, 2)
        assert matmul_symbolic(3, 2) and matmul_symbolic(2, 3)
        assert matmul_symbolic(3, 3) and matmul_symbolic(4, 2)
        assert not matmul_symbolic(1, 1)  # dot: scalar output, stays opaque
        assert not matmul_symbolic(3, 1) and not matmul_symbolic(1, 3)


# ----------------------------------------------------------------------
# Dead-buffer elimination safety
# ----------------------------------------------------------------------
class TestDeadBufferElimination:
    def _programs(self):
        A = np.eye(6) * 5.0 + np.ones((6, 6))
        W = np.linspace(-0.5, 0.5, 24).reshape(4, 6)
        yield lambda x: ops.sum_(ops.square(ops.tanh(x))), (
            np.linspace(-1, 1, 8),
        )
        yield lambda b: ops.sum_(ops.square(linalg.solve(A, b))), (
            np.linspace(0.1, 1.0, 6),
        )
        yield (
            lambda x, y: ops.sum_(ops.matmul(W, x) * 2.0) + ops.sum_(x * y),
            (np.linspace(0.1, 1.0, 6), np.linspace(1.0, 2.0, 6)),
        )

    def test_leaf_gradients_never_transient(self):
        for f, args in self._programs():
            lw = lowered(f, *args)
            for ir in lw.nodes:
                if ir.kind == "leaf":
                    assert not ir.cot_transient, (
                        f"DBE marked leaf {ir.idx} cotangent transient — "
                        "its gradient is the program's output"
                    )
                    assert not ir.value_transient

    def test_root_cotangent_never_transient(self):
        for f, args in self._programs():
            lw = lowered(f, *args)
            assert not lw.nodes[0].cot_transient, (
                "the root cotangent seeds the backward sweep"
            )

    def test_values_read_by_backward_are_pinned(self):
        # mul VJP reads the sibling operand; exp/tanh VJPs read their own
        # output.  None of those values may be dropped.
        def f(x, y):
            return ops.sum_(ops.exp(x) * ops.tanh(y))

        lw = lowered(f, np.linspace(0.1, 0.9, 7), np.linspace(-1, 1, 7))
        for op in ("exp", "tanh"):
            assert not by_op(lw, op)[0].value_transient, (
                f"{op} output is read by a VJP and must stay live"
            )

    def test_unneeded_intermediate_is_dropped(self):
        # add's VJP reads neither operand: the exp value is only consumed
        # in the forward and dies once its (symbolic) reader has run.
        def f(x):
            return ops.sum_(ops.exp(x) + ops.sin(x))

        lw = lowered(f, np.linspace(0.1, 1.0, 9))
        assert by_op(lw, "add")[0].value_transient
        assert lw.stats.values_dropped >= 1
        assert lw.stats.dropped_bytes > 0

    def test_dbe_preserves_gradients_end_to_end(self):
        for f, args in self._programs():
            ev, eg = value_and_grad(f, argnums=tuple(range(len(args))))(*args)
            vg = compiled_value_and_grad(
                f, argnums=tuple(range(len(args))), mode="codegen"
            )
            vg(*args)  # trace
            cv, cg = vg(*args)  # codegen replay
            assert cv == ev
            if not isinstance(cg, tuple):
                cg, eg = (cg,), (eg,)
            for a, b in zip(cg, eg):
                np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


# ----------------------------------------------------------------------
# tanh CSE: reuse of a taped ``1 - tanh^2``
# ----------------------------------------------------------------------
class TestTanhCSE:
    def test_pattern_is_detected_and_pinned(self):
        def f(x):
            t = ops.tanh(x)
            df = 1.0 - ops.square(t)  # the PINN derivative-propagation term
            return ops.sum_(df * x) + ops.sum_(t)

        lw = lowered(f, np.linspace(-1.0, 1.0, 10))
        assert lw.stats.cse_hits == 1
        ((t_idx, sub_idx),) = lw.cse_tanh.items()
        assert lw.nodes[t_idx].op == "tanh"
        assert lw.nodes[sub_idx].op == "sub"
        assert not lw.nodes[sub_idx].value_transient, (
            "the reused value must be pinned across the fwd/bwd boundary"
        )

    def test_no_false_positive_without_pattern(self):
        lw = lowered(
            lambda x: ops.sum_(ops.square(ops.tanh(x))),
            np.linspace(-1.0, 1.0, 10),
        )
        assert lw.stats.cse_hits == 0 and lw.cse_tanh == {}

    def test_wrong_constant_does_not_match(self):
        def f(x):
            t = ops.tanh(x)
            return ops.sum_((2.0 - ops.square(t)) * x) + ops.sum_(t)

        lw = lowered(f, np.linspace(-1.0, 1.0, 10))
        assert lw.cse_tanh == {}

    def test_cse_gradients_bitexact(self):
        def f(x):
            t = ops.tanh(x)
            return ops.sum_((1.0 - ops.square(t)) * ops.sin(x)) + ops.sum_(t)

        x = np.linspace(-2.0, 2.0, 50)
        ev, eg = value_and_grad(f)(x)
        vg = compiled_value_and_grad(f, mode="codegen")
        vg(x)
        cv, cg = vg(x)
        assert cv == ev
        np.testing.assert_array_equal(cg, eg)
        assert vg.cache_info()["codegen_fallbacks"] == 0


# ----------------------------------------------------------------------
# Stats / plan consistency
# ----------------------------------------------------------------------
class TestLoweredStats:
    def test_op_counts_are_consistent(self):
        def f(x):
            return ops.sum_(ops.sin(ops.exp(x)) * x)

        lw = lowered(f, np.linspace(0.1, 1.0, 8))
        st = lw.stats
        assert st.n_ops == st.n_symbolic + st.n_opaque
        assert st.n_fused <= st.n_symbolic
        assert 0.0 <= st.fused_fraction <= 1.0
        assert len(lw.fwd_schedule) == st.n_ops

    def test_unbroadcast_plan_matches_shapes(self):
        assert unbroadcast_plan((4, 3), (4, 3)) is None
        assert unbroadcast_plan((4, 3), (3,)) == ((0,), ())
        assert unbroadcast_plan((4, 3), (1, 3)) == ((), (0,))
        assert unbroadcast_plan((2, 4, 3), (4, 1)) == ((0,), (1,))


def test_lowering_rejects_unreplayable(monkeypatch):
    from repro.autodiff.lowering import LoweringError

    class FakeProgram:
        replayable = False
        unreplayable_op = "mystery"

    with pytest.raises(LoweringError, match="mystery"):
        lower(FakeProgram())

"""Multi-RHS factorisation-reuse gradchecks for the sparse solve family.

The batching solve rule lowers N independent solves to ONE triangular
solve against an ``(n, N)`` column block.  These tests pin the adjoint
side of that contract: cotangents flowing back through a stacked
``(N_rhs, n)`` solve must match N independent ``sparse_solve`` VJPs —
bitwise, since SuperLU's multi-RHS path runs the same per-column
substitutions for narrow blocks like these — and the factorisation/
solve counters must prove the reuse actually happened.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autodiff import ops
from repro.autodiff.batching import vbatch
from repro.autodiff.check import numerical_gradient
from repro.autodiff.sparse import SparseLUSolver, sparse_solve
from repro.autodiff.tensor import tensor


def _system(m: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    d0 = rng.uniform(3.0, 4.0, m)
    d1 = rng.uniform(-1.0, 1.0, m - 1)
    A = sp.diags([d1, d0, d1], [-1, 0, 1]).tocsr()
    return A, rng


M = 9
N_RHS = 4


class TestStackedSolveAdjoint:
    def test_block_vjp_matches_independent_solves(self):
        A, rng = _system(M)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        bt = tensor(B, requires_grad=True)
        xs = vbatch(lambda b: sparse_solve(A, b))(bt)
        xs.backward(cot)

        for i in range(N_RHS):
            bi = tensor(B[i], requires_grad=True)
            sparse_solve(A, bi).backward(cot[i])
            assert np.array_equal(bt.grad[i], bi.grad), f"rhs {i}"

    def test_block_vjp_through_solver_object(self):
        A, rng = _system(M, seed=1)
        solver = SparseLUSolver(A)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        bt = tensor(B, requires_grad=True)
        xs = vbatch(solver)(bt)
        xs.backward(cot)

        ref = SparseLUSolver(A)
        for i in range(N_RHS):
            bi = tensor(B[i], requires_grad=True)
            ref(bi).backward(cot[i])
            assert np.array_equal(bt.grad[i], bi.grad), f"rhs {i}"

    def test_solve_block_method_matches_batched_rule(self):
        # SparseLUSolver.solve_block is the hand-rolled version of what
        # the batching rule emits — identical results, forward and back.
        A, rng = _system(M, seed=2)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        solver = SparseLUSolver(A)
        b1 = tensor(B, requires_grad=True)
        x1 = solver.solve_block(b1)
        x1.backward(cot)

        b2 = tensor(B, requires_grad=True)
        x2 = vbatch(SparseLUSolver(A))(b2)
        x2.backward(cot)

        assert np.array_equal(x1.data, x2.data)
        assert np.array_equal(b1.grad, b2.grad)

    def test_single_factorisation_serves_forward_and_adjoint(self):
        A, rng = _system(M, seed=3)
        solver = SparseLUSolver(A)
        B = rng.standard_normal((N_RHS, M))

        bt = tensor(B, requires_grad=True)
        out = vbatch(lambda b: ops.sum_(ops.square(solver(b))))(bt)
        assert solver.n_factorizations == 1
        assert solver.n_solves == 1  # ONE multi-RHS forward call
        out.backward(np.ones(N_RHS))
        assert solver.n_factorizations == 1
        assert solver.n_solves == 2  # + ONE multi-RHS adjoint call

    def test_block_gradient_against_numerical(self):
        A, rng = _system(M, seed=4)
        B = rng.standard_normal((N_RHS, M))

        def scalar_loss(b_flat):
            xs = vbatch(lambda b: sparse_solve(A, b))(
                ops.reshape(b_flat, (N_RHS, M))
            )
            return ops.sum_(ops.square(xs))

        bt = tensor(B.ravel(), requires_grad=True)
        scalar_loss(bt).backward()
        num = numerical_gradient(
            lambda v: float(scalar_loss(tensor(v)).data), B.ravel()
        )
        np.testing.assert_allclose(bt.grad, num, rtol=1e-6, atol=1e-8)

    def test_pattern_solve_data_cotangent_matches_loop(self):
        # sparse_pattern_solve keeps matrix *values* on the tape; the
        # batched rule must deliver the same data-cotangent as N serial
        # solves accumulating into one shared data tensor.
        A, rng = _system(7, seed=5)
        coo = A.tocoo()
        rows, cols = coo.row.astype(np.int64), coo.col.astype(np.int64)
        B = rng.standard_normal((N_RHS, 7))
        cot = rng.standard_normal((N_RHS, 7))

        from repro.autodiff.sparse import sparse_pattern_solve

        d1 = tensor(coo.data.copy(), requires_grad=True)
        xs = vbatch(
            lambda b: sparse_pattern_solve(rows, cols, (7, 7), d1, b),
            in_axes=0,
        )(B)
        xs.backward(cot)

        d2 = tensor(coo.data.copy(), requires_grad=True)
        for i in range(N_RHS):
            sparse_pattern_solve(rows, cols, (7, 7), d2, B[i]).backward(cot[i])
        np.testing.assert_allclose(d1.grad, d2.grad, rtol=0, atol=1e-12)


class TestDenseSolverBlock:
    def test_lu_solver_solve_block_matches_batched_rule(self):
        from repro.autodiff.linalg import LUSolver

        rng = np.random.default_rng(6)
        A = rng.standard_normal((M, M)) + M * np.eye(M)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        s1 = LUSolver(A)
        b1 = tensor(B, requires_grad=True)
        x1 = s1.solve_block(b1)
        x1.backward(cot)

        s2 = LUSolver(A)
        b2 = tensor(B, requires_grad=True)
        x2 = vbatch(s2)(b2)
        x2.backward(cot)

        assert np.array_equal(x1.data, x2.data)
        assert np.array_equal(b1.grad, b2.grad)
        assert s1.n_solves == 2 and s2.n_solves == 2

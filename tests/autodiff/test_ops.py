"""Gradient correctness of every primitive op against finite differences."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.check import numerical_gradient
from repro.autodiff.functional import grad


def _check(f, x, atol=1e-7, rtol=1e-5):
    """Compare reverse-mode gradient to central differences.

    Works on a private copy: ``numerical_gradient`` perturbs its argument
    in place, and the lambdas under test capture module-level constants
    that must not alias the perturbed variable.
    """
    x = np.array(x, dtype=np.float64, copy=True)
    g = grad(lambda t: ops.sum_(f(t)))(x)
    num = numerical_gradient(lambda t: float(ops.sum_(f(t)).data), x)
    np.testing.assert_allclose(g, num, atol=atol, rtol=rtol)


RNG = np.random.default_rng(7)
X = RNG.uniform(0.5, 2.0, size=(3, 4))
V = RNG.uniform(0.5, 2.0, size=6)


class TestArithmetic:
    def test_add(self):
        _check(lambda t: ops.add(t, X), X.copy())

    def test_add_broadcast_scalar(self):
        _check(lambda t: ops.add(t, 2.0), X)

    def test_add_broadcast_row(self):
        _check(lambda t: ops.add(t, X[0]), X)

    def test_sub_both_sides(self):
        _check(lambda t: ops.sub(t, X), X.copy())
        _check(lambda t: ops.sub(X, t), X.copy())

    def test_mul(self):
        _check(lambda t: ops.mul(t, X + 1), X)

    def test_mul_broadcast_column(self):
        col = X[:, :1]
        _check(lambda t: ops.mul(t, col), X)

    def test_div_numerator_and_denominator(self):
        _check(lambda t: ops.div(t, X + 1), X)
        _check(lambda t: ops.div(X, t), X.copy())

    def test_neg(self):
        _check(ops.neg, X)

    def test_power_constant_exponent(self):
        _check(lambda t: ops.power(t, 3.0), X)

    def test_power_differentiable_exponent(self):
        e = np.full_like(V, 1.5)
        g = grad(lambda t: ops.sum_(ops.power(V, t)))(e)
        num = numerical_gradient(
            lambda t: float(ops.sum_(ops.power(V, t)).data), e
        )
        np.testing.assert_allclose(g, num, atol=1e-6, rtol=1e-5)

    def test_square_matches_power(self):
        a = ops.square(X).data
        np.testing.assert_allclose(a, X * X)
        _check(ops.square, X)

    def test_sqrt(self):
        _check(ops.sqrt, X)

    def test_abs(self):
        y = RNG.standard_normal(8) + 0.1  # keep away from the kink
        _check(ops.abs_, y)


class TestTranscendentals:
    @pytest.mark.parametrize(
        "fn",
        [ops.exp, ops.log, ops.sin, ops.cos, ops.tanh, ops.sinh, ops.cosh,
         ops.arctan, ops.sigmoid],
        ids=lambda f: f.__name__,
    )
    def test_elementwise(self, fn):
        _check(fn, X * 0.3 + 0.5)


class TestSelection:
    def test_maximum(self):
        y = X.copy()
        y[0, 0] += 1.0  # avoid ties
        _check(lambda t: ops.maximum(t, np.full_like(X, 1.2)), y)

    def test_minimum(self):
        _check(lambda t: ops.minimum(t, np.full_like(X, 1.2)), X + 0.01)

    def test_where(self):
        mask = X > 1.0
        _check(lambda t: ops.where(mask, t * 2.0, t * 3.0), X)

    def test_clip_gradient_zero_outside(self):
        x = np.array([-1.0, 0.5, 2.0])
        g = grad(lambda t: ops.sum_(ops.clip(t, 0.0, 1.0)))(x)
        np.testing.assert_allclose(g, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        _check(ops.sum_, X)

    def test_sum_axis0(self):
        _check(lambda t: ops.sum_(t, axis=0), X)

    def test_sum_axis1_keepdims(self):
        _check(lambda t: ops.sum_(t, axis=1, keepdims=True), X)

    def test_sum_negative_axis(self):
        _check(lambda t: ops.sum_(t, axis=-1), X)

    def test_mean_all(self):
        _check(ops.mean, X)

    def test_mean_axis(self):
        _check(lambda t: ops.mean(t, axis=0), X)

    def test_mean_value(self):
        assert abs(float(ops.mean(X).data) - X.mean()) < 1e-14


class TestLinearAlgebra:
    A = RNG.standard_normal((4, 4))
    M = RNG.standard_normal((3, 4))

    def test_matmul_matrix_vector(self):
        _check(lambda t: ops.matmul(self.M, t), X[0])

    def test_matmul_vector_matrix(self):
        _check(lambda t: ops.matmul(t, self.A), X[0])

    def test_matmul_matrix_matrix_left(self):
        _check(lambda t: ops.matmul(t, self.A), X)

    def test_matmul_matrix_matrix_right(self):
        _check(lambda t: ops.matmul(self.M, t), RNG.standard_normal((4, 2)))

    def test_matmul_inner_product(self):
        _check(lambda t: ops.matmul(t, V), V + 1.0)

    def test_dot(self):
        _check(lambda t: ops.dot(t, V), V.copy())

    def test_matmul_values(self):
        np.testing.assert_allclose(
            ops.matmul(self.M, self.A).data, self.M @ self.A
        )


class TestShapes:
    def test_reshape(self):
        _check(lambda t: ops.reshape(t, (4, 3)), X)

    def test_transpose_default(self):
        _check(ops.transpose, X)

    def test_transpose_axes(self):
        Y = RNG.standard_normal((2, 3, 4))
        _check(lambda t: ops.transpose(t, (2, 0, 1)), Y)

    def test_getitem_slice(self):
        _check(lambda t: ops.getitem(t, slice(1, 3)), X)

    def test_getitem_fancy_index_repeated(self):
        idx = np.array([0, 1, 1, 2])
        # repeated indices must accumulate in the scatter-add VJP
        _check(lambda t: ops.getitem(t, idx), V[:4])

    def test_getitem_2d(self):
        _check(lambda t: ops.getitem(t, (slice(None), 2)), X)

    def test_concatenate_axis0(self):
        _check(lambda t: ops.concatenate([t, X]), X.copy())

    def test_concatenate_axis1(self):
        _check(lambda t: ops.concatenate([t, X], axis=1), X.copy())

    def test_concatenate_three_parts(self):
        _check(lambda t: ops.concatenate([t, 2.0 * t, X]), X.copy())

    def test_stack_axis0(self):
        _check(lambda t: ops.stack([t, 2.0 * t]), V)

    def test_stack_axis1(self):
        _check(lambda t: ops.stack([t, t * t], axis=1), V)

    def test_stack_values(self):
        out = ops.stack([V, V + 1], axis=1).data
        np.testing.assert_allclose(out, np.stack([V, V + 1], axis=1))

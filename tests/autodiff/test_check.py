"""Tests for numerical gradient-checking utilities."""

import numpy as np
import pytest

from repro.autodiff.check import (
    check_gradient,
    directional_numerical_derivative,
    numerical_gradient,
)


def quadratic(x):
    return float(np.sum(x**2) + np.sum(x))


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 0.5])
        g = numerical_gradient(quadratic, x)
        np.testing.assert_allclose(g, 2 * x + 1, rtol=1e-6)

    def test_preserves_input(self):
        x = np.array([1.0, 2.0])
        x_copy = x.copy()
        numerical_gradient(quadratic, x)
        np.testing.assert_array_equal(x, x_copy)

    def test_matrix_input(self):
        X = np.ones((2, 2))
        g = numerical_gradient(lambda m: float(np.sum(m**3)), X)
        np.testing.assert_allclose(g, 3 * np.ones((2, 2)), rtol=1e-5)


class TestDirectionalDerivative:
    def test_matches_inner_product(self):
        x = np.array([1.0, 2.0])
        d = np.array([0.6, 0.8])
        num = directional_numerical_derivative(quadratic, x, d)
        analytic = float((2 * x + 1) @ d)
        assert abs(num - analytic) < 1e-6


class TestCheckGradient:
    def test_accepts_correct_gradient(self):
        x = np.array([0.3, -0.7, 1.1])
        worst = check_gradient(quadratic, 2 * x + 1, x)
        assert worst < 1e-5

    def test_rejects_wrong_gradient(self):
        x = np.array([0.3, -0.7, 1.1])
        with pytest.raises(AssertionError):
            check_gradient(quadratic, np.zeros(3), x)
